//! Integration of the simulated user study with the full stack, checking
//! the *shape* of the paper's findings on a small workload.

use std::collections::HashSet;
use subdex::prelude::*;
use subdex::sim::study::{run_study, run_subject, StudyConfig};
use subdex::sim::subject::{CsExpertise, DomainKnowledge, SubjectProfile};
use subdex::sim::workload::{Scenario, Workload};

fn workload() -> Workload {
    let raw = subdex::data::yelp::generate(GenParams::new(800, 93, 8000, 55));
    Workload::scenario1(
        raw,
        &IrregularSpec {
            reviewer_groups: 1,
            item_groups: 1,
            min_members: 5,
            min_item_members: 5,
            seed: 12,
        },
    )
}

fn cfg(subjects: usize) -> StudyConfig {
    StudyConfig {
        subjects_per_cell: subjects,
        steps: Some(6),
        engine: EngineConfig {
            parallel: false,
            max_candidates: 12,
            ..EngineConfig::default()
        },
        base_seed: 4242,
        parallel: true,
    }
}

#[test]
fn study_produces_full_figure7_grid() {
    let w = workload();
    let res = run_study(&w, &cfg(8));
    assert_eq!(res.scenario, Scenario::IrregularGroups);
    assert_eq!(res.cells.len(), 4);
    // All six (cell, mode) columns populated with bounded scores.
    for cell in &res.cells {
        for mode in &cell.modes {
            assert_eq!(mode.scores.len(), 8);
            let s = mode.summary();
            assert!(s.mean >= 0.0 && s.mean <= 2.0);
        }
    }
}

#[test]
fn recommendation_powered_dominates_on_average() {
    // The paper's central qualitative finding: RP beats both UD and FA.
    // Averaged over enough subjects this must emerge from the mechanism.
    let w = workload();
    let res = run_study(&w, &cfg(12));
    let rp_high = res.mean(
        CsExpertise::High,
        DomainKnowledge::Low,
        ExplorationMode::RecommendationPowered,
    );
    let ud_high = res.mean(
        CsExpertise::High,
        DomainKnowledge::Low,
        ExplorationMode::UserDriven,
    );
    let rp_low = res.mean(
        CsExpertise::Low,
        DomainKnowledge::Low,
        ExplorationMode::RecommendationPowered,
    );
    let fa_low = res.mean(
        CsExpertise::Low,
        DomainKnowledge::Low,
        ExplorationMode::FullyAutomated,
    );
    assert!(
        rp_high >= ud_high,
        "RP ({rp_high:.2}) should not lose to UD ({ud_high:.2})"
    );
    assert!(
        rp_low >= fa_low,
        "RP ({rp_low:.2}) should not lose to FA ({fa_low:.2})"
    );
}

#[test]
fn domain_knowledge_is_not_significant() {
    let w = workload();
    let res = run_study(&w, &cfg(10));
    for cs in [CsExpertise::High, CsExpertise::Low] {
        for mode in subdex::sim::study::modes_for(cs) {
            if let Some(a) = res.domain_effect(cs, mode) {
                assert!(
                    !a.significant_at(0.01),
                    "domain knowledge should not matter: {cs:?}/{mode} p={}",
                    a.p_value
                );
            }
        }
    }
}

#[test]
fn second_run_excludes_first_finds() {
    let w = workload();
    let profile = SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 5);
    let engine = cfg(1).engine;
    let first = run_subject(
        &w,
        ExplorationMode::RecommendationPowered,
        &profile,
        6,
        &engine,
        &HashSet::new(),
    );
    let exclude: HashSet<usize> = first.found.iter().map(|&(t, _)| t).collect();
    let second = run_subject(
        &w,
        ExplorationMode::RecommendationPowered,
        &profile,
        6,
        &engine,
        &exclude,
    );
    for (t, _) in &second.found {
        assert!(
            !exclude.contains(t),
            "second run must find *different* targets"
        );
    }
}

#[test]
fn scenario2_subjects_extract_insights() {
    let ds = subdex::data::yelp::dataset(GenParams::new(1500, 93, 15_000, 55));
    let w = Workload::scenario2(ds);
    let profile = SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 9);
    let out = run_subject(
        &w,
        ExplorationMode::RecommendationPowered,
        &profile,
        10,
        &cfg(1).engine,
        &HashSet::new(),
    );
    assert!(out.count() <= 5);
    // With 10 guided steps over a dataset with 5 planted biases, at least
    // one insight should surface for a high-CS subject.
    assert!(out.count() >= 1, "guided subject found nothing");
}
