//! Property-based tests of the whole engine over random small databases:
//! no panics, correct shapes, pruning soundness relative to the unpruned
//! run.

use proptest::prelude::*;
use std::sync::Arc;
use subdex::prelude::*;
use subdex::store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema};

#[derive(Debug, Clone)]
struct SpecDb {
    reviewers: Vec<(u8, u8)>,
    items: Vec<(u8, u8)>,
    ratings: Vec<(u8, u8, u8, u8)>, // reviewer, item, dim0, dim1
}

fn spec_db() -> impl Strategy<Value = SpecDb> {
    (3usize..10, 3usize..8).prop_flat_map(|(n_rev, n_item)| {
        (
            prop::collection::vec((0u8..3, 0u8..3), n_rev),
            prop::collection::vec((0u8..3, 0u8..3), n_item),
            prop::collection::vec((0..n_rev as u8, 0..n_item as u8, 1u8..=5, 1u8..=5), 8..60),
        )
            .prop_map(|(reviewers, items, ratings)| SpecDb {
                reviewers,
                items,
                ratings,
            })
    })
}

fn build(spec: &SpecDb) -> Arc<SubjectiveDb> {
    let mut us = Schema::new();
    us.add("ua", false);
    us.add("ub", false);
    let mut ub = EntityTableBuilder::new(us);
    for &(a, b) in &spec.reviewers {
        ub.push_row(vec![
            Cell::One(Value::int(i64::from(a))),
            Cell::One(Value::int(i64::from(b))),
        ]);
    }
    let mut is = Schema::new();
    is.add("ia", false);
    is.add("ib", false);
    let mut ib = EntityTableBuilder::new(is);
    for &(a, b) in &spec.items {
        ib.push_row(vec![
            Cell::One(Value::int(i64::from(a))),
            Cell::One(Value::int(i64::from(b))),
        ]);
    }
    let mut rb = RatingTableBuilder::new(vec!["d0".into(), "d1".into()], 5);
    for &(r, i, s0, s1) in &spec.ratings {
        rb.push(u32::from(r), u32::from(i), &[s0, s1]);
    }
    Arc::new(SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(spec.reviewers.len(), spec.items.len()),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_never_panics_and_keeps_shapes(spec in spec_db(), seed in 0u64..50) {
        let db = build(&spec);
        let cfg = EngineConfig {
            parallel: false,
            max_candidates: 8,
            seed,
            ..EngineConfig::default()
        };
        let mut engine = SdeEngine::new(db.clone(), cfg);
        let mut query = SelectionQuery::all();
        for _ in 0..3 {
            let res = engine.step(&query);
            prop_assert!(res.maps.len() <= 3);
            for sm in &res.maps {
                prop_assert!((0.0..=1.0).contains(&sm.utility), "utility {}", sm.utility);
                prop_assert!(sm.dw_utility <= sm.utility + 1e-12, "DW never exceeds raw");
                prop_assert!(sm.map.subgroup_count() >= 1);
            }
            prop_assert!(res.recommendations.len() <= 3);
            for rec in &res.recommendations {
                prop_assert!(rec.group_size > 0, "empty recommendations are filtered");
            }
            match res.recommendations.first() {
                Some(r) => query = r.query.clone(),
                None => break,
            }
        }
    }

    #[test]
    fn pruned_top1_matches_unpruned_top1(spec in spec_db()) {
        let db = build(&spec);
        let run = |pruning: PruningStrategy| {
            let cfg = EngineConfig {
                parallel: false,
                pruning,
                recommendations: false,
                ..EngineConfig::default()
            };
            let mut engine = SdeEngine::new(db.clone(), cfg);
            let res = engine.step(&SelectionQuery::all());
            res.maps.first().map(|m| m.map.key)
        };
        let unpruned = run(PruningStrategy::None);
        let pruned = run(PruningStrategy::Both);
        prop_assert_eq!(unpruned, pruned, "pruning must keep the top map (w.h.p.)");
    }

    #[test]
    fn user_driven_sessions_never_compute_recommendations(spec in spec_db()) {
        let db = build(&spec);
        let mut s = ExplorationSession::new(
            db,
            EngineConfig { parallel: false, ..EngineConfig::default() },
            ExplorationMode::UserDriven,
        );
        s.apply_operation(&SelectionQuery::all());
        prop_assert!(s.recommendations().is_empty());
    }

    #[test]
    fn seen_context_grows_monotonically(spec in spec_db()) {
        let db = build(&spec);
        let cfg = EngineConfig {
            parallel: false,
            recommendations: false,
            ..EngineConfig::default()
        };
        let mut engine = SdeEngine::new(db, cfg);
        let mut prev = 0u64;
        for _ in 0..3 {
            let res = engine.step(&SelectionQuery::all());
            let now = engine.seen().total_displayed();
            prop_assert_eq!(now, prev + res.maps.len() as u64);
            prev = now;
        }
    }
}
