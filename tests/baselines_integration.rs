//! Integration of the baseline recommenders with the exploration stack:
//! the Table 4 mechanism (SubDEx can roll up, SDD/QAGView cannot).

use subdex::baselines::qagview::QagConfig;
use subdex::baselines::sdd::SddConfig;
use subdex::prelude::*;
use subdex::sim::autopath::{run_auto_path, OpSource};
use subdex::sim::workload::Workload;

fn workload() -> Workload {
    let raw = subdex::data::yelp::generate(GenParams::new(600, 60, 6000, 77));
    Workload::scenario1(
        raw,
        &IrregularSpec {
            reviewer_groups: 1,
            item_groups: 1,
            min_members: 5,
            min_item_members: 5,
            seed: 21,
        },
    )
}

#[test]
fn all_three_sources_drive_paths() {
    let w = workload();
    let cfg = EngineConfig {
        parallel: false,
        max_candidates: 12,
        ..EngineConfig::default()
    };
    for source in [OpSource::Subdex, OpSource::Sdd, OpSource::Qagview] {
        let stats = run_auto_path(&w, source, 4, &cfg);
        assert!(stats.steps >= 2, "{source}: path too short");
        assert!(stats.total_utility > 0.0);
    }
}

#[test]
fn baseline_ops_extend_queries_subdex_can_shrink() {
    let w = workload();
    // After a drill-down, SDD/QAGView candidates all extend the query;
    // SubDEx's candidate set includes at least one roll-up.
    let young =
        w.db.pred(Entity::Reviewer, "age_group", &Value::str("young"))
            .unwrap();
    let q = SelectionQuery::from_preds(vec![young]);

    let sdd_ops = subdex::baselines::smart_drill_down(&w.db, &q, 3, &SddConfig::default());
    for op in &sdd_ops {
        assert!(op.len() > q.len(), "SDD only drills down");
    }
    let qag_ops = subdex::baselines::qagview(&w.db, &q, 3, &QagConfig::default());
    for op in &qag_ops {
        assert!(op.len() > q.len(), "QAGView only drills down");
    }

    // SubDEx enumerates roll-ups among its candidates.
    let cands = subdex::core::recommend::enumerate_candidates(
        &w.db,
        &q,
        &[],
        &subdex::core::recommend::RecommendConfig::default(),
    );
    assert!(
        cands.iter().any(|c| c.len() < q.len()),
        "SubDEx candidates include a roll-up"
    );
}

#[test]
fn subdex_surfaces_at_least_as_many_irregulars() {
    // Averaged over a few plantings, SubDEx's recommendations surface at
    // least as many irregular groups as each drill-down-only baseline —
    // the Table 4 shape.
    let cfg = EngineConfig {
        parallel: false,
        max_candidates: 12,
        ..EngineConfig::default()
    };
    let mut totals = [0usize; 3];
    for seed in 0..4u64 {
        let raw = subdex::data::yelp::generate(GenParams::new(600, 60, 6000, 77));
        let w = Workload::scenario1(
            raw,
            &IrregularSpec {
                reviewer_groups: 1,
                item_groups: 1,
                min_members: 5,
                min_item_members: 5,
                seed: 100 + seed,
            },
        );
        for (i, source) in [OpSource::Subdex, OpSource::Sdd, OpSource::Qagview]
            .into_iter()
            .enumerate()
        {
            totals[i] += run_auto_path(&w, source, 6, &cfg).irregulars_shown.len();
        }
    }
    assert!(
        totals[0] >= totals[1] && totals[0] >= totals[2],
        "SubDEx {totals:?} should lead"
    );
}
