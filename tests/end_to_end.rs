//! Cross-crate integration: store → data → core, end to end.

use std::sync::Arc;
use subdex::prelude::*;
use subdex::store::DimId;

fn yelp_small() -> subdex::data::datasets::Dataset {
    subdex::data::yelp::dataset(GenParams::new(600, 60, 6000, 99))
}

#[test]
fn full_pipeline_generates_and_explores() {
    let ds = yelp_small();
    let db = Arc::new(ds.db);
    let mut engine = SdeEngine::new(db.clone(), EngineConfig::default());

    let step0 = engine.step(&SelectionQuery::all());
    assert_eq!(step0.maps.len(), 3, "k = 3 maps");
    assert!(step0.recommendations.len() <= 3 && !step0.recommendations.is_empty());
    assert_eq!(step0.group_size, 6000);

    // The recommendations are genuine small edits and lead to non-empty
    // groups with their own maps.
    for rec in &step0.recommendations {
        assert!(rec.group_size > 0);
        assert!(rec.utility >= 0.0);
        assert!(!rec.maps.is_empty());
    }

    // Follow the top recommendation: engine state carries over.
    let next_q = step0.recommendations[0].query.clone();
    let step1 = engine.step(&next_q);
    assert_eq!(step1.step, 1);
    assert_eq!(
        engine.seen().total_displayed(),
        (step0.maps.len() + step1.maps.len()) as u64
    );
}

#[test]
fn maps_render_like_figure3() {
    let ds = yelp_small();
    let db = Arc::new(ds.db);
    let mut engine = SdeEngine::new(db.clone(), EngineConfig::default());
    let res = engine.step(&SelectionQuery::all());
    let rendered = res.maps[0].map.render(&db);
    assert!(rendered.contains("GROUPBY"), "{rendered}");
    assert!(rendered.contains("rating distribution"));
    // One row per subgroup.
    let rows = rendered.lines().count() - 2; // header lines
    assert_eq!(rows, res.maps[0].map.subgroup_count());
}

#[test]
fn session_modes_integrate() {
    let ds = yelp_small();
    let db = Arc::new(ds.db);

    let mut fa = ExplorationSession::new(
        db.clone(),
        EngineConfig {
            max_candidates: 12,
            ..EngineConfig::default()
        },
        ExplorationMode::FullyAutomated,
    );
    let n = fa.auto_run(&SelectionQuery::all(), 4);
    assert_eq!(n, 4);
    // The path visits distinct queries.
    let queries: std::collections::HashSet<_> = fa.path().iter().map(|s| s.query.clone()).collect();
    assert!(queries.len() >= 2, "path should move somewhere");
}

#[test]
fn csv_round_trip_of_generated_dataset() {
    let ds = subdex::data::movielens::dataset(GenParams::new(80, 50, 800, 3));
    let (u_csv, i_csv, r_csv) = subdex::store::csv::db_to_csv(&ds.db);
    let u = subdex::store::csv::entity_from_csv(&u_csv, &[]).unwrap();
    let i = subdex::store::csv::entity_from_csv(&i_csv, &["genre"]).unwrap();
    let r = subdex::store::csv::ratings_from_csv(&r_csv, 5, u.len(), i.len()).unwrap();
    let db2 = SubjectiveDb::new(u, i, r);
    assert_eq!(db2.stats(), ds.db.stats());
}

#[test]
fn engine_on_single_dimension_dataset() {
    // MovieLens has one dimension: Equation 1 must not zero everything.
    let ds = subdex::data::movielens::dataset(GenParams::new(150, 80, 2000, 5));
    let db = Arc::new(ds.db);
    let mut engine = SdeEngine::new(db, EngineConfig::default());
    for _ in 0..3 {
        let res = engine.step(&SelectionQuery::all());
        assert_eq!(res.maps.len(), 3);
        assert!(
            res.maps.iter().any(|m| m.dw_utility > 0.0),
            "single-dim utilities must stay positive"
        );
        assert!(res.maps.iter().all(|m| m.map.key.dim == DimId(0)));
    }
}

#[test]
fn empty_selection_is_graceful() {
    let ds = yelp_small();
    let db = Arc::new(ds.db);
    let male = db
        .pred(Entity::Reviewer, "gender", &Value::str("male"))
        .unwrap();
    let female = db
        .pred(Entity::Reviewer, "gender", &Value::str("female"))
        .unwrap();
    let q = SelectionQuery::from_preds(vec![male, female]);
    let mut engine = SdeEngine::new(db, EngineConfig::default());
    let res = engine.step(&q);
    assert_eq!(res.group_size, 0);
    assert!(res.maps.is_empty());
}

#[test]
fn pruning_variants_agree_on_top_map() {
    let ds = yelp_small();
    let db = Arc::new(ds.db);
    let mut tops = Vec::new();
    for cfg in [
        EngineConfig::no_pruning(),
        EngineConfig::ci_pruning(),
        EngineConfig::mab_pruning(),
        EngineConfig::subdex(),
    ] {
        let mut engine = SdeEngine::new(
            db.clone(),
            EngineConfig {
                recommendations: false,
                parallel: false,
                ..cfg
            },
        );
        let res = engine.step(&SelectionQuery::all());
        tops.push(res.maps[0].map.key);
    }
    assert!(
        tops.iter().all(|&k| k == tops[0]),
        "all variants should surface the same top map: {tops:?}"
    );
}

#[test]
fn sentiment_pipeline_to_database() {
    // Build a tiny subjective DB whose scores come from the review-text
    // pipeline, then explore it — the paper's Yelp ingestion, end to end.
    use subdex::data::reviews::{extract_score, generate_corpus};
    use subdex::store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema};

    let corpus = generate_corpus(120, &["food", "service"], 8);
    let mut us = Schema::new();
    us.add("segment", false);
    let mut ub = EntityTableBuilder::new(us);
    for i in 0..30 {
        ub.push_row(vec![Cell::from(if i % 2 == 0 { "a" } else { "b" })]);
    }
    let mut is = Schema::new();
    is.add("kind", false);
    let mut ib = EntityTableBuilder::new(is);
    for i in 0..4 {
        ib.push_row(vec![Cell::from(["x", "y", "z", "w"][i])]);
    }
    let mut rb = RatingTableBuilder::new(vec!["food".into(), "service".into()], 5);
    for (n, (text, _)) in corpus.iter().enumerate() {
        let food = extract_score(text, "food", 5).unwrap_or(3);
        let service = extract_score(text, "service", 5).unwrap_or(3);
        rb.push((n % 30) as u32, (n % 4) as u32, &[food, service]);
    }
    let db = Arc::new(SubjectiveDb::new(ub.build(), ib.build(), rb.build(30, 4)));
    let mut engine = SdeEngine::new(db, EngineConfig::default());
    let res = engine.step(&SelectionQuery::all());
    assert!(!res.maps.is_empty());
    assert_eq!(res.group_size, 120);
}
