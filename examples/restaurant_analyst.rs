//! Mary's three-step exploration of New York City restaurants — the
//! running example of the paper's introduction (Figure 1) — in
//! Recommendation-Powered mode.
//!
//! Step I looks at everything; Step II drills into young reviewers;
//! Step III further drills into young *female* reviewers. At every step
//! the engine surfaces the most useful & diverse rating maps and suggests
//! follow-up operations.
//!
//! Run with: `cargo run --release --example restaurant_analyst`

use std::sync::Arc;
use subdex::prelude::*;

fn print_step(db: &SubjectiveDb, step: &StepResult) {
    println!(
        "\n════ Step {} — {} ({} records) ════",
        step.step + 1,
        db.describe_query(&step.query),
        step.group_size
    );
    for sm in &step.maps {
        println!();
        print!("{}", sm.map.render(db));
    }
    if !step.recommendations.is_empty() {
        println!("\nRecommended next operations:");
        for (i, rec) in step.recommendations.iter().enumerate() {
            println!(
                "  {}. {} (utility {:.3})",
                i + 1,
                db.describe_query(&rec.query),
                rec.utility
            );
        }
    }
}

fn main() {
    let ds = subdex::data::yelp::dataset(GenParams::new(4_000, 93, 30_000, 7));
    let db = Arc::new(ds.db);

    let mut session = ExplorationSession::new(
        db.clone(),
        EngineConfig::default(),
        ExplorationMode::RecommendationPowered,
    );

    // Step I: the overall picture.
    let q1 = SelectionQuery::all();
    print_step(&db, session.apply_operation(&q1));

    // Step II: Mary drills into young reviewers.
    let young = db
        .pred(Entity::Reviewer, "age_group", &Value::str("young"))
        .expect("age_group=young exists");
    let q2 = q1.with_added(young);
    print_step(&db, session.apply_operation(&q2));

    // Step III: …and further into young *female* reviewers.
    let female = db
        .pred(Entity::Reviewer, "gender", &Value::str("female"))
        .expect("gender=female exists");
    let q3 = q2.with_added(female);
    print_step(&db, session.apply_operation(&q3));

    println!(
        "\nIn three steps Mary saw {} rating maps over {} exploration operations.",
        session.path().iter().map(|s| s.maps.len()).sum::<usize>(),
        session.path().len()
    );
    println!(
        "Dimension exposure (Figure 9's bookkeeping): {:?}",
        db.ratings()
            .dim_names()
            .iter()
            .enumerate()
            .map(|(i, n)| format!(
                "{n}: {}",
                session
                    .engine()
                    .seen()
                    .weights()
                    .seen_for(subdex::store::DimId(i as u16))
            ))
            .collect::<Vec<_>>()
    );
}
