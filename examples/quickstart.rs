//! Quickstart: one exploration step over a Yelp-like subjective database.
//!
//! Builds a small dataset, runs a single SubDEx step on the full data, and
//! prints the k diverse rating maps plus the top-o next-step
//! recommendations — the content of one screen of the paper's UI.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use subdex::prelude::*;

fn main() {
    // A scaled-down Yelp-like dataset (full scale: 150 318 reviewers).
    let ds = subdex::data::yelp::dataset(GenParams::new(3_000, 93, 20_000, 42));
    let db = Arc::new(ds.db);
    let stats = db.stats();
    println!(
        "Loaded Yelp-like subjective database: {} reviewers, {} restaurants, \
         {} rating records, {} attributes, {} rating dimensions\n",
        stats.reviewer_count,
        stats.item_count,
        stats.rating_count,
        stats.attr_count,
        stats.dim_count
    );

    let mut engine = SdeEngine::new(db.clone(), EngineConfig::default());
    let query = SelectionQuery::all();
    let result = engine.step(&query);

    println!(
        "Step 0 over `{}` ({} rating records) took {:?}; \
         {} candidate maps considered, {} pruned (CI), {} pruned (MAB)\n",
        db.describe_query(&query),
        result.group_size,
        result.stats.elapsed,
        result.stats.generator.candidates_total,
        result.stats.generator.pruned_ci,
        result.stats.generator.pruned_mab,
    );

    println!(
        "=== The {} most useful & diverse rating maps ===\n",
        result.maps.len()
    );
    for (i, sm) in result.maps.iter().enumerate() {
        println!(
            "--- map #{} (utility {:.3}, DW utility {:.3}) ---",
            i + 1,
            sm.utility,
            sm.dw_utility
        );
        print!("{}", sm.map.render(&db));
        println!(
            "criteria: conc {:.2}  agr {:.2}  pec_self {:.2}  pec_glob {:.2}\n",
            sm.criteria.conciseness,
            sm.criteria.agreement,
            sm.criteria.self_peculiarity,
            sm.criteria.global_peculiarity
        );
    }

    println!(
        "=== Top-{} next-step recommendations ===\n",
        result.recommendations.len()
    );
    for (i, rec) in result.recommendations.iter().enumerate() {
        println!(
            "{}. {}   (utility {:.3}, {} records)",
            i + 1,
            db.describe_query(&rec.query),
            rec.utility,
            rec.group_size
        );
    }
}
