//! Scenario I end-to-end: inject irregular groups, explore, find them.
//!
//! Injects the paper's "irregular groups" — randomly described reviewer /
//! item groups whose scores on one dimension are all forced to 1 — then
//! runs a simulated Recommendation-Powered subject and reports which
//! groups were surfaced and identified.
//!
//! Run with: `cargo run --release --example irregular_hunt`

use std::collections::HashSet;
use subdex::prelude::*;
use subdex::sim::study::{run_subject, StudyConfig};
use subdex::sim::subject::{CsExpertise, DomainKnowledge, SubjectProfile};
use subdex::sim::workload::Workload;

fn main() {
    let raw = subdex::data::yelp::generate(GenParams::new(2_000, 93, 15_000, 31));
    // Reviewer-side groups need enough members to be statistically visible
    // in grouped histograms (~2% of reviewers); item tables are small and
    // item rows carry many records each, so 5 items suffice.
    let spec = IrregularSpec {
        reviewer_groups: 1,
        item_groups: 1,
        min_members: 40,
        min_item_members: 5,
        seed: 5,
    };
    let w = Workload::scenario1(raw, &spec);

    println!("Planted {} irregular groups:", w.irregulars.len());
    for (i, g) in w.irregulars.iter().enumerate() {
        let desc: Vec<String> = g
            .description
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect();
        println!(
            "  [{}] {} group {{{}}} — {} members, {} records forced to 1 on '{}'",
            i,
            g.entity,
            desc.join(", "),
            g.member_count,
            g.record_count,
            g.dim_name
        );
    }

    let cfg = StudyConfig::default();
    for (label, cs) in [
        ("high-CS analyst", CsExpertise::High),
        ("low-CS analyst", CsExpertise::Low),
    ] {
        let profile = SubjectProfile::new(cs, DomainKnowledge::High, 1234);
        let outcome = run_subject(
            &w,
            ExplorationMode::RecommendationPowered,
            &profile,
            7,
            &cfg.engine,
            &HashSet::new(),
        );
        println!(
            "\n{label} (Recommendation-Powered, 7 steps): identified {} of {}",
            outcome.count(),
            w.irregulars.len()
        );
        for (t, step) in &outcome.found {
            println!("  found irregular group [{t}] at step {step}");
        }
    }
}
