//! The subjective-ingestion pipeline: from review text to rating
//! dimensions.
//!
//! The paper extracted Yelp's food / service / ambiance scores from review
//! text: phrases containing the dimension keyword (window of 5 words) are
//! scored with VADER and averaged. This example generates a synthetic
//! corpus with known latent scores, runs the same extraction, and reports
//! how faithfully the pipeline recovers the latent ratings.
//!
//! Run with: `cargo run --release --example review_mining`

use subdex::data::reviews::{extract_phrases, extract_score, generate_corpus};
use subdex::data::sentiment::score_phrase;

fn main() {
    let keywords = ["food", "service", "ambiance"];
    let corpus = generate_corpus(500, &keywords, 2024);
    println!("Generated {} synthetic reviews.\n", corpus.len());

    // Show the pipeline on one review.
    let (text, latents) = &corpus[0];
    println!("Example review:\n  \"{text}\"\n");
    for (kw, latent) in keywords.iter().zip(latents) {
        let phrases = extract_phrases(text, kw);
        println!("dimension '{kw}' (latent score {latent}):");
        for p in &phrases {
            println!("  phrase: \"{p}\"  → sentiment {:+.3}", score_phrase(p));
        }
        match extract_score(text, kw, 5) {
            Some(s) => println!("  extracted rating: {s}\n"),
            None => println!("  keyword not mentioned\n"),
        }
    }

    // Aggregate fidelity: confusion between latent and extracted scores.
    let mut exact = 0usize;
    let mut within_one = 0usize;
    let mut total = 0usize;
    let mut confusion = [[0usize; 5]; 5];
    for (text, latents) in &corpus {
        for (kw, &latent) in keywords.iter().zip(latents) {
            if let Some(got) = extract_score(text, kw, 5) {
                total += 1;
                confusion[usize::from(latent) - 1][usize::from(got) - 1] += 1;
                if got == latent {
                    exact += 1;
                }
                if got.abs_diff(latent) <= 1 {
                    within_one += 1;
                }
            }
        }
    }
    println!("Recovery over {total} (review, dimension) pairs:");
    println!("  exact:      {:5.1}%", 100.0 * exact as f64 / total as f64);
    println!(
        "  within ±1:  {:5.1}%",
        100.0 * within_one as f64 / total as f64
    );
    println!("\nConfusion matrix (rows = latent, cols = extracted):");
    println!("        1     2     3     4     5");
    for (i, row) in confusion.iter().enumerate() {
        print!("  {}: ", i + 1);
        for c in row {
            print!("{c:5} ");
        }
        println!();
    }
}
