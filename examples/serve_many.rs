//! serve_many: 16 concurrent exploration sessions through the service.
//!
//! Starts a `SubdexService` over a `subdex-sim` study workload (a Yelp-like
//! insight-extraction task; shared group cache on, bounded submit queue),
//! then drives 16 sessions from 8 client threads. Each client follows a
//! recommendation-powered script seeded by its session index, retrying when
//! the service sheds load. Finishes with the service metrics snapshot:
//! requests served vs rejected, queue high-water mark, cache hit rate, and
//! the step-latency histogram.
//!
//! Run with: `cargo run --release --example serve_many`

use std::sync::Arc;
use std::time::{Duration, Instant};

use subdex::core::{EngineConfig, ExplorationMode};
use subdex::prelude::*;
use subdex::service::{ServiceError, StepRequest};
use subdex::sim::Workload;

const CLIENT_THREADS: usize = 8;
const SESSIONS: usize = 16;
const STEPS: usize = 6;

fn main() {
    // The same Scenario II (insight extraction) workload the simulated
    // user studies run on — here every "subject" is a service client.
    let ds = subdex::data::yelp::dataset(GenParams::new(1_500, 93, 10_000, 42));
    let workload = Workload::scenario2(ds);
    let db = Arc::clone(&workload.db);
    let stats = db.stats();
    println!(
        "Serving Yelp-like subjective database: {} reviewers, {} restaurants, \
         {} rating records ({} scenario, {} planted insights)\n",
        stats.reviewer_count,
        stats.item_count,
        stats.rating_count,
        match workload.scenario {
            subdex::sim::Scenario::IrregularGroups => "irregular-groups",
            subdex::sim::Scenario::InsightExtraction => "insight-extraction",
        },
        workload.target_count()
    );

    let config = ServiceConfig {
        workers: 4,
        queue_capacity: 8,
        cache_enabled: true,
        engine: EngineConfig {
            parallel: false, // the worker pool is the parallelism
            max_candidates: 12,
            ..EngineConfig::default()
        },
        mode: ExplorationMode::RecommendationPowered,
        ..ServiceConfig::default()
    };
    println!(
        "service: {} workers, queue capacity {}, cache {}",
        config.workers,
        config.queue_capacity,
        if config.cache_enabled { "on" } else { "off" }
    );

    let service = Arc::new(SubdexService::start(Arc::clone(&db), config));
    let sessions: Vec<SessionId> = (0..SESSIONS).map(|_| service.create_session()).collect();
    println!(
        "created {} sessions across {} client threads, {} steps each\n",
        SESSIONS, CLIENT_THREADS, STEPS
    );

    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let mine: Vec<(usize, SessionId)> = sessions
                .iter()
                .enumerate()
                .filter(|(idx, _)| idx % CLIENT_THREADS == t)
                .map(|(idx, &id)| (idx, id))
                .collect();
            std::thread::spawn(move || {
                let mut retries = 0u64;
                for (idx, id) in mine {
                    drive_session(&service, id, idx, &mut retries);
                }
                retries
            })
        })
        .collect();

    let mut total_retries = 0;
    for h in handles {
        total_retries += h.join().expect("client thread must not panic");
    }
    let elapsed = started.elapsed();

    let total_steps = (SESSIONS * STEPS) as u64;
    println!(
        "ran {} steps in {:.2?} ({:.1} steps/sec), {} backpressure retries\n",
        total_steps,
        elapsed,
        total_steps as f64 / elapsed.as_secs_f64(),
        total_retries
    );
    println!("=== service metrics ===\n{}\n", service.metrics());

    // Show what one of the sessions actually explored.
    let tour = service
        .registry()
        .with_session(sessions[0], |s| {
            s.path()
                .iter()
                .map(|step| db.describe_query(&step.query))
                .collect::<Vec<_>>()
        })
        .expect("session 0 is registered");
    println!("=== session 0's exploration path ===");
    for (i, q) in tour.iter().enumerate() {
        println!("{}. {q}", i + 1);
    }

    service.shutdown();
}

/// Runs one session's scripted exploration, retrying on load-shedding.
fn drive_session(service: &SubdexService, id: SessionId, session_idx: usize, retries: &mut u64) {
    let run = |request: StepRequest, retries: &mut u64| loop {
        match service.run_step(id, request.clone()) {
            Ok(step) => break step,
            Err(ServiceError::Rejected { .. }) => {
                *retries += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("session {id}: {e}"),
        }
    };
    let mut last = run(StepRequest::Operation(SelectionQuery::all()), retries);
    for step in 1..STEPS {
        let n = last.recommendations.len();
        last = if n == 0 {
            run(StepRequest::Operation(SelectionQuery::all()), retries)
        } else {
            run(
                StepRequest::Recommendation((session_idx + step) % n),
                retries,
            )
        };
    }
}
