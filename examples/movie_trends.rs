//! Fully-Automated exploration of a MovieLens-like dataset.
//!
//! The engine applies its own top-1 recommendation for a fixed number of
//! steps (the paper's Fully-Automated mode), printing the path and which
//! planted insights the displayed maps revealed along the way.
//!
//! Run with: `cargo run --release --example movie_trends`

use std::sync::Arc;
use subdex::prelude::*;

fn main() {
    let ds = subdex::data::movielens::dataset(GenParams::new(943, 800, 40_000, 11));
    let insights = ds.insights.clone();
    let db = Arc::new(ds.db);

    println!(
        "MovieLens-like dataset: {} reviewers, {} movies, {} ratings, 1 dimension",
        db.reviewers().len(),
        db.items().len(),
        db.ratings().len()
    );
    println!("\nPlanted ground-truth insights:");
    for ins in &insights {
        println!("  [{}] {}", ins.id, ins.description);
    }

    let mut session = ExplorationSession::new(
        db.clone(),
        EngineConfig::default(),
        ExplorationMode::FullyAutomated,
    );
    let steps = session.auto_run(&SelectionQuery::all(), 7);
    println!("\nFully-Automated path of {steps} steps:");

    let mut revealed: Vec<usize> = Vec::new();
    for step in session.path() {
        println!(
            "\nStep {}: {} ({} records, {:?})",
            step.step + 1,
            db.describe_query(&step.query),
            step.group_size,
            step.stats.elapsed
        );
        for sm in &step.maps {
            let table = db.table(sm.map.key.entity);
            let attr = &table.schema().attr(sm.map.key.attr).name;
            println!(
                "  · GROUPBY {}.{} on {} — {} subgroups, utility {:.3}",
                sm.map.key.entity,
                attr,
                db.ratings().dim_name(sm.map.key.dim),
                sm.map.subgroup_count(),
                sm.utility
            );
            for ins in &insights {
                if ins.revealed_by(&db, &sm.map) && !revealed.contains(&ins.id) {
                    revealed.push(ins.id);
                    println!("    ★ reveals insight [{}]: {}", ins.id, ins.description);
                }
            }
        }
    }

    println!(
        "\nThe automated path revealed {} of {} planted insights.",
        revealed.len(),
        insights.len()
    );
}
