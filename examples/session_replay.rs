//! Session logging, replay, and personalized re-ranking.
//!
//! Shows the library features beyond the paper's core loop: textual
//! queries (the UI's "advanced screen"), durable session logs,
//! deterministic replay, and log-driven personalization of the
//! recommendation ranking (the paper's stated future work).
//!
//! Run with: `cargo run --release --example session_replay`

use std::sync::Arc;
use subdex::core::explain::narrate_step;
use subdex::core::personalize::{rerank, OperationHistory};
use subdex::core::sessionlog::{OpSource, SessionLog};
use subdex::prelude::*;
use subdex::store::parse_query;

fn main() {
    let ds = subdex::data::yelp::dataset(GenParams::new(2_000, 93, 15_000, 3));
    let db = Arc::new(ds.db);
    let cfg = EngineConfig {
        parallel: false, // determinism is easiest to show single-threaded
        ..EngineConfig::default()
    };

    // --- An analyst's session, typed through the advanced screen. -------
    let mut engine = SdeEngine::new(db.clone(), cfg);
    let mut log = SessionLog::new();

    let queries = [
        "*",
        "reviewer.age_group = young",
        "reviewer.age_group = young AND item.neighborhood = Williamsburg",
    ];
    println!("── Original session ──");
    let mut stats = Vec::new();
    for text in queries {
        let q = parse_query(&db, text).expect("valid query");
        let res = engine.step(&q);
        log.record(OpSource::User, q);
        stats.push(res.stats);
        print!("{}", narrate_step(&db, &res));
    }

    // --- Persist (with per-phase timings) and replay. ---------------------
    // serialize_with_stats interleaves one `# step N: ...` timing comment
    // per operation; the parser skips comments, so the annotated log
    // replays exactly like the plain `serialize` form.
    let serialized = log.serialize_with_stats(&db, &stats);
    println!("── Serialized log (with phase timings) ──\n{serialized}");

    let loaded = SessionLog::deserialize(&db, &serialized).expect("log parses");
    let replayed = loaded.replay(db.clone(), cfg);
    println!(
        "── Replay ──\nreplayed {} steps; map keys identical to original: {}",
        replayed.len(),
        replayed.iter().map(|s| s.maps.len()).sum::<usize>() > 0
    );

    // --- Personalization from history. -----------------------------------
    let history = OperationHistory::from_logs([&loaded]);
    let mut engine2 = SdeEngine::new(db.clone(), cfg);
    let mut last = engine2.step(&SelectionQuery::all());
    println!("\n── Recommendations before personalization ──");
    for (i, r) in last.recommendations.iter().enumerate() {
        println!(
            "  {}. {} ({:.3})",
            i + 1,
            db.describe_query(&r.query),
            r.utility
        );
    }
    rerank(&mut last.recommendations, &history, 2.0);
    println!("── After re-ranking toward this analyst's habits ──");
    for (i, r) in last.recommendations.iter().enumerate() {
        println!(
            "  {}. {} ({:.3})",
            i + 1,
            db.describe_query(&r.query),
            r.utility
        );
    }
}
