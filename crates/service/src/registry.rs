//! The session registry: many live [`ExplorationSession`]s behind one
//! thread-safe map.
//!
//! Locking is two-level. The registry map sits behind a
//! [`parking_lot::RwLock`], so looking a session up is a shared read;
//! each session then has its own [`parking_lot::Mutex`], so steps on
//! *different* sessions run fully in parallel while steps on the *same*
//! session serialize (an `ExplorationSession` is inherently sequential —
//! its seen-context evolves step by step).
//!
//! Sessions that have not been touched for a TTL are evicted by
//! [`SessionRegistry::evict_idle`]; a session currently executing a step is
//! never evicted (its slot mutex is held, and `try_lock` protects it).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use subdex_core::ExplorationSession;

/// Opaque handle to one registered session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

struct Slot {
    session: Mutex<ExplorationSession>,
    /// Milliseconds since the registry's clock origin at the most recent
    /// touch; written with a relaxed store so touching a session never
    /// takes a second lock, and the idle sweeper never contends with
    /// steppers.
    last_access_ms: AtomicU64,
}

/// Thread-safe registry of live exploration sessions.
pub struct SessionRegistry {
    slots: RwLock<HashMap<SessionId, Arc<Slot>>>,
    next_id: AtomicU64,
    /// Origin of the coarse millisecond clock the idle sweeper compares
    /// `last_access_ms` against.
    clock_origin: Instant,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self {
            slots: RwLock::default(),
            next_id: AtomicU64::new(0),
            clock_origin: Instant::now(),
        }
    }
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Milliseconds elapsed since the registry was created — the coarse
    /// idle clock. Millisecond resolution is far finer than any plausible
    /// session TTL.
    fn now_ms(&self) -> u64 {
        self.clock_origin.elapsed().as_millis() as u64
    }

    /// Registers a session and returns its handle.
    pub fn insert(&self, session: ExplorationSession) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let slot = Arc::new(Slot {
            session: Mutex::new(session),
            last_access_ms: AtomicU64::new(self.now_ms()),
        });
        self.slots.write().insert(id, slot);
        id
    }

    /// Runs `f` with exclusive access to the session, refreshing its idle
    /// clock. Returns `None` if the id is unknown (never registered, or
    /// already evicted/removed).
    ///
    /// The registry read lock is released *before* `f` runs, so a slow step
    /// never blocks registration, lookup, or eviction of other sessions.
    pub fn with_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut ExplorationSession) -> R,
    ) -> Option<R> {
        let slot = Arc::clone(self.slots.read().get(&id)?);
        let mut session = slot.session.lock();
        slot.last_access_ms.store(self.now_ms(), Ordering::Relaxed);
        Some(f(&mut session))
    }

    /// Unregisters a session, returning whether it existed. A worker
    /// mid-step on it finishes normally (it holds the slot `Arc`).
    pub fn remove(&self, id: SessionId) -> bool {
        self.slots.write().remove(&id).is_some()
    }

    /// Whether `id` is currently registered.
    pub fn contains(&self, id: SessionId) -> bool {
        self.slots.read().contains_key(&id)
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// Whether no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered session ids, in ascending creation order.
    pub fn ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self.slots.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Evicts every session idle for longer than `ttl`, returning the
    /// evicted ids. Sessions whose slot mutex is held (a step is running)
    /// are skipped — they are busy by definition, not idle.
    pub fn evict_idle(&self, ttl: Duration) -> Vec<SessionId> {
        let now_ms = self.now_ms();
        let ttl_ms = ttl.as_millis() as u64;
        let mut evicted = Vec::new();
        let mut slots = self.slots.write();
        slots.retain(|&id, slot| {
            // A held session lock means a step is in flight right now.
            let Some(_busy_guard) = slot.session.try_lock() else {
                return true;
            };
            let touched = slot.last_access_ms.load(Ordering::Relaxed);
            let idle = now_ms.saturating_sub(touched);
            if idle > ttl_ms {
                evicted.push(id);
                false
            } else {
                true
            }
        });
        evicted.sort_unstable();
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subdex_core::{EngineConfig, ExplorationMode};
    use subdex_store::{
        Cell, EntityTableBuilder, RatingTableBuilder, Schema, SelectionQuery, SubjectiveDb,
    };

    fn tiny_db() -> Arc<SubjectiveDb> {
        let mut us = Schema::new();
        us.add("g", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..4 {
            ub.push_row(vec![Cell::from(if i % 2 == 0 { "a" } else { "b" })]);
        }
        let mut is = Schema::new();
        is.add("c", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..2 {
            ib.push_row(vec![Cell::from(if i == 0 { "x" } else { "y" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        for r in 0..4u32 {
            for i in 0..2u32 {
                rb.push(r, i, &[1 + ((r + i) % 5) as u8]);
            }
        }
        Arc::new(SubjectiveDb::new(ub.build(), ib.build(), rb.build(4, 2)))
    }

    fn session() -> ExplorationSession {
        let cfg = EngineConfig {
            parallel: false,
            ..EngineConfig::default()
        };
        ExplorationSession::new(tiny_db(), cfg, ExplorationMode::UserDriven)
    }

    #[test]
    fn insert_lookup_remove() {
        let reg = SessionRegistry::new();
        assert!(reg.is_empty());
        let id = reg.insert(session());
        assert!(reg.contains(id));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.ids(), vec![id]);

        let steps = reg.with_session(id, |s| {
            s.apply_operation(&SelectionQuery::all());
            s.path().len()
        });
        assert_eq!(steps, Some(1));

        assert!(reg.remove(id));
        assert!(!reg.remove(id), "second removal is a no-op");
        assert_eq!(reg.with_session(id, |_| ()), None);
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let reg = SessionRegistry::new();
        let a = reg.insert(session());
        let b = reg.insert(session());
        let c = reg.insert(session());
        assert_eq!(reg.ids(), vec![a, b, c]);
        assert!(a < b && b < c);
    }

    #[test]
    fn ttl_eviction_spares_recent_sessions() {
        let reg = SessionRegistry::new();
        let old = reg.insert(session());
        std::thread::sleep(Duration::from_millis(30));
        let fresh = reg.insert(session());
        let evicted = reg.evict_idle(Duration::from_millis(15));
        assert_eq!(evicted, vec![old]);
        assert!(!reg.contains(old));
        assert!(reg.contains(fresh));
    }

    #[test]
    fn touching_a_session_resets_its_idle_clock() {
        let reg = SessionRegistry::new();
        let id = reg.insert(session());
        std::thread::sleep(Duration::from_millis(30));
        reg.with_session(id, |_| ());
        assert!(reg.evict_idle(Duration::from_millis(15)).is_empty());
        assert!(reg.contains(id));
    }

    #[test]
    fn eviction_skips_sessions_mid_step() {
        let reg = Arc::new(SessionRegistry::new());
        let id = reg.insert(session());
        std::thread::sleep(Duration::from_millis(20));

        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let reg2 = Arc::clone(&reg);
        let worker = std::thread::spawn(move || {
            reg2.with_session(id, |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap(); // hold the slot lock
            });
        });

        started_rx.recv().unwrap();
        // The session is far past the TTL but busy: must survive.
        assert!(reg.evict_idle(Duration::from_millis(1)).is_empty());
        assert!(reg.contains(id));

        release_tx.send(()).unwrap();
        worker.join().unwrap();
        // Done stepping (and freshly touched): still resident.
        assert!(reg.contains(id));
    }
}
