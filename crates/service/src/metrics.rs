//! Service-level metrics: lock-free counters updated on the hot path and a
//! consistent [`MetricsSnapshot`] for reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use subdex_core::{Materialization, SelectionStats, StepStats};
use subdex_persist::PersistStats;
use subdex_store::{CacheStats, IndexStats};

/// Upper bounds (inclusive, microseconds) of the step-latency histogram
/// buckets; the last bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 8] = [
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    u64::MAX,
];

/// Shared atomic counters; every method is safe to call concurrently.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    served: AtomicU64,
    rejected: AtomicU64,
    queue_depth_hwm: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_US.len()],
    /// Cumulative time steps spent in phase scans, in microseconds.
    scan_time_us: AtomicU64,
    /// Group-materialization paths across served steps (see
    /// [`Materialization`]).
    groups_derived: AtomicU64,
    groups_walked: AtomicU64,
    groups_probed: AtomicU64,
    groups_cached: AtomicU64,
    groups_skipped: AtomicU64,
    records_filtered: AtomicU64,
    /// Selection-phase distance breakdown across served steps (see
    /// [`SelectionStats`]).
    dist_exact_solves: AtomicU64,
    dist_pruned_mixture: AtomicU64,
    dist_pruned_matrix: AtomicU64,
    dist_cache_hits: AtomicU64,
    /// Cumulative wall-clock time steps spent in diverse selection, in
    /// microseconds.
    select_time_us: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The single instrumentation point for a completed step: records the
    /// service latency (queue wait plus execution) and folds the step's
    /// whole [`StepStats`] aggregate — phase-scan time, materialization
    /// paths, and the selection-distance breakdown — into the counters.
    pub fn record_step(&self, latency: Duration, stats: &StepStats) {
        self.record_served(latency);
        self.record_scan_time(stats.phases.scan);
        self.record_materialization(&stats.materialization);
        self.record_selection(&stats.selection);
    }

    /// Records one completed step and its service latency (queue wait plus
    /// execution).
    fn record_served(&self, latency: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .expect("last bucket is unbounded");
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one submission rejected by backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates the phase-scan component of one served step
    /// (`StepStats::phases.scan`), so operators can see how much of the
    /// service's work is the scan kernels versus everything else.
    fn record_scan_time(&self, scan: Duration) {
        let us = scan.as_micros().min(u128::from(u64::MAX)) as u64;
        self.scan_time_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Accumulates one served step's group-materialization counters
    /// (`StepStats::materialization`): how many candidate groups were
    /// derived from ancestor columns, walked, index-probed, cache-served,
    /// or skipped as provably empty.
    fn record_materialization(&self, m: &Materialization) {
        self.groups_derived.fetch_add(m.derived, Ordering::Relaxed);
        self.groups_walked.fetch_add(m.walked, Ordering::Relaxed);
        self.groups_probed.fetch_add(m.probed, Ordering::Relaxed);
        self.groups_cached.fetch_add(m.cached, Ordering::Relaxed);
        self.groups_skipped
            .fetch_add(m.skipped_empty, Ordering::Relaxed);
        self.records_filtered
            .fetch_add(m.records_filtered, Ordering::Relaxed);
    }

    /// Accumulates one served step's selection-phase counters
    /// (`StepStats::selection`): how the GMM distance evaluations resolved
    /// — exact transportation solves, bound-pruned pairs, and
    /// distance-cache hits — plus time spent selecting.
    fn record_selection(&self, s: &SelectionStats) {
        self.dist_exact_solves
            .fetch_add(s.exact_solves, Ordering::Relaxed);
        self.dist_pruned_mixture
            .fetch_add(s.pruned_mixture, Ordering::Relaxed);
        self.dist_pruned_matrix
            .fetch_add(s.pruned_matrix, Ordering::Relaxed);
        self.dist_cache_hits
            .fetch_add(s.cache_hits, Ordering::Relaxed);
        let us = s.select_time.as_micros().min(u128::from(u64::MAX)) as u64;
        self.select_time_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Folds an observed queue depth into the high-water mark.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_hwm
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// A snapshot of the counters; `cache` carries the shared group cache's
    /// statistics and `dist_cache` the shared distance cache's, when the
    /// service runs with the respective cache enabled. `persist` carries the
    /// durable store's counters when the service was warm-started from one,
    /// and `index` the current database's compressed-index census and
    /// routing counters.
    pub fn snapshot(
        &self,
        cache: Option<CacheStats>,
        dist_cache: Option<CacheStats>,
        persist: Option<PersistStats>,
        index: Option<IndexStats>,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_served: self.served.load(Ordering::Relaxed),
            requests_rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth_hwm: self.queue_depth_hwm.load(Ordering::Relaxed) as usize,
            latency_buckets: LATENCY_BUCKETS_US
                .iter()
                .zip(&self.latency_buckets)
                .map(|(&bound, count)| (bound, count.load(Ordering::Relaxed)))
                .collect(),
            scan_time_total: Duration::from_micros(self.scan_time_us.load(Ordering::Relaxed)),
            materialization: Materialization {
                derived: self.groups_derived.load(Ordering::Relaxed),
                walked: self.groups_walked.load(Ordering::Relaxed),
                probed: self.groups_probed.load(Ordering::Relaxed),
                cached: self.groups_cached.load(Ordering::Relaxed),
                skipped_empty: self.groups_skipped.load(Ordering::Relaxed),
                records_filtered: self.records_filtered.load(Ordering::Relaxed),
            },
            selection: SelectionStats {
                exact_solves: self.dist_exact_solves.load(Ordering::Relaxed),
                pruned_mixture: self.dist_pruned_mixture.load(Ordering::Relaxed),
                pruned_matrix: self.dist_pruned_matrix.load(Ordering::Relaxed),
                cache_hits: self.dist_cache_hits.load(Ordering::Relaxed),
                select_time: Duration::from_micros(self.select_time_us.load(Ordering::Relaxed)),
            },
            cache,
            dist_cache,
            persist,
            index,
        }
    }
}

/// Point-in-time view of service health; see [`ServiceMetrics::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Steps executed to completion.
    pub requests_served: u64,
    /// Submissions refused because the queue was full.
    pub requests_rejected: u64,
    /// Deepest the submit queue has ever been.
    pub queue_depth_hwm: usize,
    /// `(upper bound in µs, count)` per latency bucket; the final bound is
    /// `u64::MAX` (overflow bucket).
    pub latency_buckets: Vec<(u64, u64)>,
    /// Total time served steps spent in phase scans (µs resolution).
    pub scan_time_total: Duration,
    /// Aggregate group-materialization paths across served steps.
    pub materialization: Materialization,
    /// Aggregate selection-phase distance breakdown across served steps.
    pub selection: SelectionStats,
    /// Shared group-cache statistics (None when caching is disabled).
    pub cache: Option<CacheStats>,
    /// Shared distance-cache statistics (None when disabled).
    pub dist_cache: Option<CacheStats>,
    /// Durable-store counters (None when the service is in-memory only).
    pub persist: Option<PersistStats>,
    /// Compressed-index census and routing counters of the current
    /// database snapshot.
    pub index: Option<IndexStats>,
}

impl MetricsSnapshot {
    /// Total latency observations (equals `requests_served`).
    pub fn latency_count(&self) -> u64 {
        self.latency_buckets.iter().map(|&(_, n)| n).sum()
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "served {} | rejected {} | queue hwm {} | scan {}µs",
            self.requests_served,
            self.requests_rejected,
            self.queue_depth_hwm,
            self.scan_time_total.as_micros()
        )?;
        let m = &self.materialization;
        if m.total() > 0 {
            writeln!(
                f,
                "groups: {} derived / {} walked / {} probed / {} cached / {} skipped \
                 ({} records filtered)",
                m.derived, m.walked, m.probed, m.cached, m.skipped_empty, m.records_filtered
            )?;
        }
        let s = &self.selection;
        if s.evaluations() > 0 {
            writeln!(
                f,
                "selection: {} exact / {} pruned ({} mixture, {} matrix) / {} cache hits, {}µs",
                s.exact_solves,
                s.pruned(),
                s.pruned_mixture,
                s.pruned_matrix,
                s.cache_hits,
                s.select_time.as_micros()
            )?;
        }
        if let Some(c) = &self.cache {
            writeln!(
                f,
                "cache: {} hits / {} misses ({:.1}% hit rate), {} entries, {} bytes, \
                 {} evicted, {} rejected",
                c.hits,
                c.misses,
                100.0 * c.hit_rate(),
                c.entries,
                c.resident_bytes,
                c.evictions,
                c.rejected_inserts
            )?;
        }
        if let Some(c) = &self.dist_cache {
            writeln!(
                f,
                "dist-cache: {} hits / {} misses ({:.1}% hit rate), {} entries, {} bytes, \
                 {} evicted, {} rejected",
                c.hits,
                c.misses,
                100.0 * c.hit_rate(),
                c.entries,
                c.resident_bytes,
                c.evictions,
                c.rejected_inserts
            )?;
        }
        if let Some(i) = &self.index {
            writeln!(
                f,
                "index: {} arrays / {} bitmaps / {} runs, {} bytes ({} flat), \
                 {} intersections, routes {} walk / {} probe",
                i.array_containers,
                i.bitmap_containers,
                i.run_containers,
                i.resident_bytes,
                i.flat_bytes,
                i.intersections,
                i.route_walk,
                i.route_probe
            )?;
        }
        if let Some(p) = &self.persist {
            writeln!(
                f,
                "persist: snapshot {} bytes, load {}µs, wal replayed {} batches / {} records, \
                 {} appended ({} dirty), {} checkpoints, epoch {}",
                p.snapshot_bytes,
                p.load_micros,
                p.wal_replayed_batches,
                p.wal_replayed_records,
                p.appended_records,
                p.dirty_records,
                p.checkpoints,
                p.epoch
            )?;
        }
        write!(f, "latency:")?;
        for &(bound, count) in &self.latency_buckets {
            if bound == u64::MAX {
                write!(f, " inf:{count}")?;
            } else {
                write!(f, " ≤{bound}µs:{count}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_lands_in_one_bucket() {
        let m = ServiceMetrics::new();
        m.record_served(Duration::from_micros(500));
        m.record_served(Duration::from_secs(10)); // overflow bucket
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.requests_served, 2);
        assert_eq!(snap.latency_count(), 2);
        assert_eq!(snap.latency_buckets[1], (1_000, 1));
        assert_eq!(snap.latency_buckets.last().unwrap().1, 1);
    }

    #[test]
    fn scan_time_accumulates() {
        let m = ServiceMetrics::new();
        m.record_scan_time(Duration::from_micros(300));
        m.record_scan_time(Duration::from_micros(700));
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.scan_time_total, Duration::from_micros(1_000));
        assert!(snap.to_string().contains("scan 1000µs"));
    }

    #[test]
    fn record_step_threads_the_whole_aggregate() {
        use subdex_core::PhaseTimes;
        let m = ServiceMetrics::new();
        let stats = StepStats {
            elapsed: Duration::from_micros(2_000),
            phases: PhaseTimes {
                scan: Duration::from_micros(800),
                ..PhaseTimes::default()
            },
            materialization: Materialization {
                derived: 3,
                walked: 1,
                probed: 1,
                cached: 2,
                skipped_empty: 0,
                records_filtered: 40,
            },
            selection: SelectionStats {
                exact_solves: 2,
                pruned_mixture: 1,
                pruned_matrix: 0,
                cache_hits: 1,
                select_time: Duration::from_micros(90),
            },
            ..StepStats::default()
        };
        m.record_step(Duration::from_micros(500), &stats);
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.requests_served, 1);
        assert_eq!(snap.latency_buckets[1], (1_000, 1));
        assert_eq!(snap.scan_time_total, Duration::from_micros(800));
        assert_eq!(snap.materialization.derived, 3);
        assert_eq!(snap.selection.exact_solves, 2);
        assert_eq!(snap.selection.select_time, Duration::from_micros(90));
    }

    #[test]
    fn queue_hwm_is_monotone() {
        let m = ServiceMetrics::new();
        m.observe_queue_depth(3);
        m.observe_queue_depth(9);
        m.observe_queue_depth(5);
        assert_eq!(m.snapshot(None, None, None, None).queue_depth_hwm, 9);
    }

    #[test]
    fn rejections_count() {
        let m = ServiceMetrics::new();
        m.record_rejected();
        m.record_rejected();
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.requests_rejected, 2);
        assert_eq!(snap.requests_served, 0);
    }

    #[test]
    fn selection_accumulates_and_renders() {
        let m = ServiceMetrics::new();
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.selection, SelectionStats::default());
        assert!(!snap.to_string().contains("selection:"));

        m.record_selection(&SelectionStats {
            exact_solves: 4,
            pruned_mixture: 2,
            pruned_matrix: 1,
            cache_hits: 3,
            select_time: Duration::from_micros(120),
        });
        m.record_selection(&SelectionStats {
            exact_solves: 1,
            pruned_mixture: 0,
            pruned_matrix: 2,
            cache_hits: 0,
            select_time: Duration::from_micros(30),
        });
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.selection.exact_solves, 5);
        assert_eq!(snap.selection.pruned(), 5);
        assert_eq!(snap.selection.cache_hits, 3);
        assert_eq!(snap.selection.select_time, Duration::from_micros(150));
        assert!(snap
            .to_string()
            .contains("selection: 5 exact / 5 pruned (2 mixture, 3 matrix) / 3 cache hits, 150µs"));
    }

    #[test]
    fn materialization_accumulates_and_renders() {
        let m = ServiceMetrics::new();
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.materialization, Materialization::default());
        assert!(!snap.to_string().contains("groups:"));

        m.record_materialization(&Materialization {
            derived: 5,
            walked: 2,
            probed: 1,
            cached: 1,
            skipped_empty: 3,
            records_filtered: 400,
        });
        m.record_materialization(&Materialization {
            derived: 1,
            walked: 0,
            probed: 2,
            cached: 4,
            skipped_empty: 0,
            records_filtered: 50,
        });
        let snap = m.snapshot(None, None, None, None);
        assert_eq!(snap.materialization.derived, 6);
        assert_eq!(snap.materialization.walked, 2);
        assert_eq!(snap.materialization.probed, 3);
        assert_eq!(snap.materialization.cached, 5);
        assert_eq!(snap.materialization.skipped_empty, 3);
        assert_eq!(snap.materialization.records_filtered, 450);
        assert!(snap.to_string().contains(
            "groups: 6 derived / 2 walked / 3 probed / 5 cached / 3 skipped (450 records filtered)"
        ));
    }

    #[test]
    fn display_renders_index_line_only_when_present() {
        let m = ServiceMetrics::new();
        let without = m.snapshot(None, None, None, None).to_string();
        assert!(!without.contains("index:"));
        let with = m
            .snapshot(
                None,
                None,
                None,
                Some(IndexStats {
                    array_containers: 10,
                    bitmap_containers: 2,
                    run_containers: 1,
                    resident_bytes: 640,
                    flat_bytes: 1_280,
                    intersections: 7,
                    route_walk: 5,
                    route_probe: 2,
                }),
            )
            .to_string();
        assert!(
            with.contains(
                "index: 10 arrays / 2 bitmaps / 1 runs, 640 bytes (1280 flat), \
                 7 intersections, routes 5 walk / 2 probe"
            ),
            "{with}"
        );
    }

    #[test]
    fn display_renders_cache_line_only_when_present() {
        let m = ServiceMetrics::new();
        let without = m.snapshot(None, None, None, None).to_string();
        assert!(!without.contains("cache:"));
        let with = m
            .snapshot(
                Some(CacheStats {
                    hits: 3,
                    misses: 1,
                    evictions: 0,
                    rejected_inserts: 0,
                    entries: 1,
                    resident_bytes: 64,
                }),
                Some(CacheStats {
                    hits: 9,
                    misses: 1,
                    evictions: 2,
                    rejected_inserts: 1,
                    entries: 4,
                    resident_bytes: 384,
                }),
                None,
                None,
            )
            .to_string();
        assert!(with.contains("cache: 3 hits / 1 misses (75.0% hit rate)"));
        assert!(with.contains("dist-cache: 9 hits / 1 misses (90.0% hit rate)"));
    }
}
