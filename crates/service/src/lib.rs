//! `subdex-service`: a concurrent multi-session exploration server.
//!
//! Hosts many [`subdex_core::ExplorationSession`]s behind a thread-safe
//! registry, executes exploration steps on a bounded worker pool with
//! explicit backpressure, and shares materialized rating groups across
//! sessions through [`subdex_store::GroupCache`].

pub mod metrics;
pub mod registry;
pub mod service;

pub use metrics::{MetricsSnapshot, ServiceMetrics, LATENCY_BUCKETS_US};
pub use registry::{SessionId, SessionRegistry};
pub use service::{
    ServiceConfig, ServiceError, StepRequest, StepTicket, SubdexService, SubmitError,
};
