//! The exploration service: a worker pool with bounded queueing, explicit
//! backpressure, and graceful shutdown.
//!
//! Clients [`submit`](SubdexService::submit) step requests and receive a
//! [`StepTicket`] redeemable for the [`StepResult`]. The submit queue is a
//! bounded crossbeam channel: when it is full, submission fails *fast* with
//! [`SubmitError::Rejected`] carrying the observed queue depth, instead of
//! blocking the caller — the service's load-shedding contract.
//!
//! Workers pull jobs off the shared queue (MPMC, so any worker may serve
//! any session; per-session ordering is enforced by the registry's slot
//! mutex, not by the queue). [`shutdown`](SubdexService::shutdown) closes
//! the queue and joins the workers, draining every job already accepted —
//! accepted work is never dropped.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;

use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::registry::{SessionId, SessionRegistry};
use subdex_core::{
    EngineConfig, ExplorationMode, ExplorationSession, SdeEngine, SessionError, StepResult,
};
use subdex_persist::PersistentStore;
use subdex_store::{
    DistanceCache, GroupCache, RatingDraft, SelectionQuery, StoreError, SubjectiveDb,
};

/// Service-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing steps; `0` means one per available core
    /// (resolved through [`subdex_core::resolve_threads`]).
    pub workers: usize,
    /// Bounded submit-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Idle time after which [`SubdexService::evict_idle`] drops a session.
    pub session_ttl: Duration,
    /// Byte budget of the shared group cache.
    pub cache_capacity_bytes: usize,
    /// Whether sessions share a group cache at all (off reproduces the
    /// independent-sessions baseline the throughput benchmark compares
    /// against).
    pub cache_enabled: bool,
    /// Byte budget of the shared map-distance cache.
    pub dist_cache_capacity_bytes: usize,
    /// Whether sessions share a map-distance cache: exact EMDs computed by
    /// any session's selection phase are reused by every other (results
    /// are byte-identical either way).
    pub dist_cache_enabled: bool,
    /// Engine configuration given to every new session.
    pub engine: EngineConfig,
    /// Exploration mode of new sessions.
    pub mode: ExplorationMode,
    /// How long the background checkpointer waits between looking for dirty
    /// WAL records to fold into a snapshot (persistent services only).
    pub checkpoint_interval: Duration,
    /// Dirty-record count that triggers an early checkpoint, ahead of the
    /// interval (persistent services only).
    pub checkpoint_dirty_threshold: u64,
    /// Per-step worker-thread cap handed to the stepping session. `0`
    /// (default) divides the core budget across currently-busy workers —
    /// `max(1, cores / busy)` — so one step stops claiming every core while
    /// other sessions wait; any other value is a fixed cap. Budgets change
    /// scheduling only: step results are byte-identical across them.
    pub thread_budget: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            session_ttl: Duration::from_secs(300),
            cache_capacity_bytes: 64 << 20,
            cache_enabled: true,
            dist_cache_capacity_bytes: 8 << 20,
            dist_cache_enabled: true,
            engine: EngineConfig::default(),
            mode: ExplorationMode::RecommendationPowered,
            checkpoint_interval: Duration::from_secs(30),
            checkpoint_dirty_threshold: 10_000,
            thread_budget: 0,
        }
    }
}

/// One step request against a session.
#[derive(Debug, Clone)]
pub enum StepRequest {
    /// Apply an explicit selection query.
    Operation(SelectionQuery),
    /// Take the `idx`-th recommendation offered by the session's last step.
    Recommendation(usize),
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue was full — backpressure. `queue_depth` is the
    /// depth observed at rejection time (the configured capacity, unless
    /// workers drained the queue in the meantime).
    Rejected {
        /// Observed queue depth at rejection.
        queue_depth: usize,
    },
    /// The service is shutting down; no new work is accepted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { queue_depth } => {
                write!(f, "submit queue full (depth {queue_depth})")
            }
            SubmitError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted (or attempted) step did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The session id is not registered (never created, or evicted).
    UnknownSession(SessionId),
    /// The session itself refused the request.
    Session(SessionError),
    /// Rejected at submission (see [`SubmitError::Rejected`]).
    Rejected {
        /// Observed queue depth at rejection.
        queue_depth: usize,
    },
    /// The service shut down before the step could run.
    ShuttingDown,
    /// The durable store refused the request (invalid drafts, I/O failure).
    Persist(StoreError),
    /// A persistence-only call on a service started without a store.
    NotPersistent,
}

impl From<SubmitError> for ServiceError {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Rejected { queue_depth } => ServiceError::Rejected { queue_depth },
            SubmitError::ShuttingDown => ServiceError::ShuttingDown,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServiceError::Session(e) => write!(f, "session error: {e}"),
            ServiceError::Rejected { queue_depth } => {
                write!(f, "submit queue full (depth {queue_depth})")
            }
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::Persist(e) => write!(f, "persist error: {e}"),
            ServiceError::NotPersistent => {
                write!(f, "service was started without a persistent store")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

struct Job {
    session: SessionId,
    request: StepRequest,
    submitted: Instant,
    reply: Sender<Result<StepResult, ServiceError>>,
}

/// Claim on an accepted step; redeem with [`wait`](StepTicket::wait).
#[must_use = "an unredeemed ticket discards the step result"]
pub struct StepTicket {
    rx: Receiver<Result<StepResult, ServiceError>>,
}

impl StepTicket {
    /// Blocks until the step completes.
    pub fn wait(self) -> Result<StepResult, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }

    /// Non-blocking poll; `None` while the step is still queued or running.
    pub fn try_wait(&self) -> Option<Result<StepResult, ServiceError>> {
        self.rx.try_recv().ok()
    }
}

/// The background checkpointer's handle: a nudge channel (appends poke it
/// when the dirty set crosses the threshold) and the thread itself.
struct Checkpointer {
    nudge: Sender<()>,
    handle: JoinHandle<()>,
}

/// A concurrent multi-session exploration server over one shared database.
pub struct SubdexService {
    db: Arc<SubjectiveDb>,
    config: ServiceConfig,
    registry: Arc<SessionRegistry>,
    metrics: Arc<ServiceMetrics>,
    cache: Option<Arc<GroupCache>>,
    dist_cache: Option<Arc<DistanceCache>>,
    store: Option<Arc<PersistentStore>>,
    submit_tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    checkpointer: Mutex<Option<Checkpointer>>,
}

impl SubdexService {
    /// Starts the worker pool over `db`. `config.workers == 0` spawns one
    /// worker per available core.
    ///
    /// # Panics
    /// Panics if `config.queue_capacity == 0`.
    pub fn start(db: Arc<SubjectiveDb>, config: ServiceConfig) -> Self {
        Self::start_inner(db, None, config)
    }

    /// Warm-starts the worker pool from a durable store: sessions explore
    /// the store's published database,
    /// [`append_ratings`](Self::append_ratings) goes through its WAL, and
    /// a background
    /// checkpointer folds the log into fresh snapshots on the configured
    /// interval (or earlier, once `checkpoint_dirty_threshold` records are
    /// dirty). [`shutdown`](Self::shutdown) drains the checkpointer too: a
    /// final compaction leaves the directory snapshot-only.
    ///
    /// # Panics
    /// Panics if `config.queue_capacity == 0`.
    pub fn start_persistent(store: Arc<PersistentStore>, config: ServiceConfig) -> Self {
        let service = Self::start_inner(store.db(), Some(Arc::clone(&store)), config);
        let (nudge_tx, nudge_rx) = channel::bounded::<()>(1);
        let interval = config.checkpoint_interval;
        let threshold = config.checkpoint_dirty_threshold.max(1);
        let handle = std::thread::spawn(move || {
            checkpointer_loop(&store, interval, threshold, &nudge_rx);
        });
        *service.checkpointer.lock() = Some(Checkpointer {
            nudge: nudge_tx,
            handle,
        });
        service
    }

    fn start_inner(
        db: Arc<SubjectiveDb>,
        store: Option<Arc<PersistentStore>>,
        config: ServiceConfig,
    ) -> Self {
        let worker_count = subdex_core::resolve_threads(config.workers);
        assert!(config.queue_capacity > 0, "need a nonzero queue");
        let registry = Arc::new(SessionRegistry::new());
        let metrics = Arc::new(ServiceMetrics::new());
        let cache = config
            .cache_enabled
            .then(|| Arc::new(GroupCache::new(config.cache_capacity_bytes)));
        let dist_cache = config
            .dist_cache_enabled
            .then(|| Arc::new(DistanceCache::new(config.dist_cache_capacity_bytes)));
        let (tx, rx) = channel::bounded::<Job>(config.queue_capacity);
        // Oversubscription budget: workers stepping concurrently split the
        // core budget (`max(1, cores / busy)`) instead of each phase
        // claiming every core.
        let cores = subdex_core::resolve_threads(0);
        let busy = Arc::new(AtomicUsize::new(0));
        let budget_override = config.thread_budget;
        let workers = (0..worker_count)
            .map(|_| {
                let rx = rx.clone();
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let busy = Arc::clone(&busy);
                std::thread::spawn(move || {
                    worker_loop(&rx, &registry, &metrics, &busy, cores, budget_override)
                })
            })
            .collect();
        Self {
            db,
            config,
            registry,
            metrics,
            cache,
            dist_cache,
            store,
            submit_tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            checkpointer: Mutex::new(None),
        }
    }

    /// The database the service booted with. Persistent services may have
    /// appended ratings since; [`current_db`](Self::current_db) follows
    /// those.
    pub fn db(&self) -> &Arc<SubjectiveDb> {
        &self.db
    }

    /// The latest published database: the store's current version for a
    /// persistent service, the boot database otherwise. New sessions always
    /// start from this.
    pub fn current_db(&self) -> Arc<SubjectiveDb> {
        match &self.store {
            Some(store) => store.db(),
            None => Arc::clone(&self.db),
        }
    }

    /// The durable store behind a persistent service (None otherwise).
    pub fn store(&self) -> Option<&Arc<PersistentStore>> {
        self.store.as_ref()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The session registry (shared with the workers).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// The shared group cache (None when caching is disabled).
    pub fn cache(&self) -> Option<&Arc<GroupCache>> {
        self.cache.as_ref()
    }

    /// The shared map-distance cache (None when disabled).
    pub fn distance_cache(&self) -> Option<&Arc<DistanceCache>> {
        self.dist_cache.as_ref()
    }

    /// Creates a session with the service's engine configuration (and the
    /// shared cache, when enabled), returning its handle.
    pub fn create_session(&self) -> SessionId {
        let mut engine_cfg = self.config.engine;
        if self.config.mode == ExplorationMode::UserDriven {
            // Mirrors ExplorationSession::new: User-Driven sessions never
            // display recommendations, so don't compute them.
            engine_cfg.recommendations = false;
        }
        let mut engine = SdeEngine::new(self.current_db(), engine_cfg);
        if let Some(cache) = &self.cache {
            engine = engine.with_group_cache(Arc::clone(cache));
        }
        if let Some(cache) = &self.dist_cache {
            engine = engine.with_distance_cache(Arc::clone(cache));
        }
        self.registry
            .insert(ExplorationSession::with_engine(engine, self.config.mode))
    }

    /// Unregisters a session; an in-flight step on it completes normally.
    pub fn remove_session(&self, id: SessionId) -> bool {
        self.registry.remove(id)
    }

    /// Enqueues a step without blocking. `Err(Rejected {..})` is the
    /// backpressure signal: the caller should retry later or shed load.
    pub fn submit(
        &self,
        session: SessionId,
        request: StepRequest,
    ) -> Result<StepTicket, SubmitError> {
        let guard = self.submit_tx.lock();
        let Some(tx) = guard.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job {
            session,
            request,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.metrics.observe_queue_depth(tx.len());
                Ok(StepTicket { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                Err(SubmitError::Rejected {
                    queue_depth: tx.len(),
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submits and waits — the blocking convenience wrapper around
    /// [`submit`](Self::submit) + [`StepTicket::wait`]. Backpressure is
    /// surfaced as [`ServiceError::Rejected`], not absorbed by retrying.
    pub fn run_step(
        &self,
        session: SessionId,
        request: StepRequest,
    ) -> Result<StepResult, ServiceError> {
        let ticket = self.submit(session, request)?;
        ticket.wait()
    }

    /// Durably appends ratings through the store's WAL, publishes the new
    /// database version, and invalidates the shared caches up to the new
    /// epoch (cached groups and distances may describe superseded data).
    /// Sessions created before the append keep their epoch-consistent view;
    /// sessions created after see the new ratings. Returns the new epoch.
    ///
    /// Fails with [`ServiceError::NotPersistent`] on an in-memory service
    /// and never partially applies: a rejected batch leaves database, WAL
    /// and caches untouched.
    pub fn append_ratings(&self, drafts: &[RatingDraft]) -> Result<u64, ServiceError> {
        let store = self.store.as_ref().ok_or(ServiceError::NotPersistent)?;
        let epoch = store
            .append_ratings(drafts)
            .map_err(ServiceError::Persist)?;
        if let Some(cache) = &self.cache {
            cache.bump_epoch(epoch);
        }
        if let Some(cache) = &self.dist_cache {
            cache.bump_epoch(epoch);
        }
        if store.dirty_records() >= self.config.checkpoint_dirty_threshold {
            if let Some(cp) = self.checkpointer.lock().as_ref() {
                // A full nudge channel means a wake-up is already pending.
                let _ = cp.nudge.try_send(());
            }
        }
        Ok(epoch)
    }

    /// Forces a checkpoint now (folds the WAL into a fresh snapshot),
    /// returning the snapshot size in bytes. Requires a persistent service.
    pub fn checkpoint(&self) -> Result<u64, ServiceError> {
        let store = self.store.as_ref().ok_or(ServiceError::NotPersistent)?;
        store.compact().map_err(ServiceError::Persist)
    }

    /// Evicts sessions idle past the configured TTL, returning their ids.
    pub fn evict_idle(&self) -> Vec<SessionId> {
        self.registry.evict_idle(self.config.session_ttl)
    }

    /// Current metrics, including cache statistics when caching is on,
    /// persistence counters when the service runs over a durable store, and
    /// the current database's compressed-index census and routing counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.cache.as_ref().map(|c| c.stats()),
            self.dist_cache.as_ref().map(|c| c.stats()),
            self.store.as_ref().map(|s| s.stats()),
            Some(self.current_db().index_stats()),
        )
    }

    /// Stops accepting work, drains every accepted job, joins the workers,
    /// and (on a persistent service) drains the checkpointer — its final
    /// act is compacting any dirty WAL records into a snapshot. Idempotent;
    /// also invoked on drop.
    pub fn shutdown(&self) {
        // Dropping the only Sender closes the channel; workers finish the
        // queued jobs (crossbeam receivers drain before disconnecting) and
        // exit on RecvError.
        drop(self.submit_tx.lock().take());
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
        // Workers are done, so no more appends race the final compaction.
        if let Some(cp) = self.checkpointer.lock().take() {
            drop(cp.nudge);
            let _ = cp.handle.join();
        }
    }
}

impl Drop for SubdexService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Background checkpointing: wake on a nudge (dirty set crossed the
/// threshold) or on the interval, compact when there is anything dirty, and
/// run one final compaction when the service drops the nudge sender at
/// shutdown. Compaction errors are swallowed deliberately — the WAL still
/// holds every acknowledged append, so a failed fold loses nothing and the
/// next pass retries.
fn checkpointer_loop(
    store: &PersistentStore,
    interval: Duration,
    threshold: u64,
    nudge: &Receiver<()>,
) {
    loop {
        match nudge.recv_timeout(interval) {
            Ok(()) => {
                if store.dirty_records() >= threshold {
                    let _ = store.compact();
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if store.dirty_records() > 0 {
                    let _ = store.compact();
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                if store.dirty_records() > 0 {
                    let _ = store.compact();
                }
                return;
            }
        }
    }
}

fn worker_loop(
    rx: &Receiver<Job>,
    registry: &SessionRegistry,
    metrics: &ServiceMetrics,
    busy: &AtomicUsize,
    cores: usize,
    budget_override: usize,
) {
    while let Ok(job) = rx.recv() {
        // Split the core budget across whoever is stepping right now; a
        // fixed configured budget overrides the division.
        let busy_now = busy.fetch_add(1, Ordering::Relaxed) + 1;
        let budget = if budget_override > 0 {
            budget_override
        } else {
            (cores / busy_now).max(1)
        };
        let outcome = registry.with_session(job.session, |session| {
            session.set_thread_budget(budget);
            match &job.request {
                StepRequest::Operation(query) => Ok(session.apply_operation(query).clone()),
                StepRequest::Recommendation(idx) => session
                    .apply_recommendation(*idx)
                    .cloned()
                    .map_err(ServiceError::Session),
            }
        });
        busy.fetch_sub(1, Ordering::Relaxed);
        let result = match outcome {
            None => Err(ServiceError::UnknownSession(job.session)),
            Some(Ok(step)) => {
                metrics.record_step(job.submitted.elapsed(), &step.stats);
                Ok(step)
            }
            Some(Err(e)) => Err(e),
        };
        // A client that dropped its ticket just doesn't read the result.
        let _ = job.reply.send(result);
    }
}

/// The service is handed across threads wholesale (e.g. behind an `Arc`
/// shared by client threads); prove at compile time that this is sound.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SubdexService>();
    assert_send_sync::<SessionRegistry>();
    assert_send_sync::<ServiceMetrics>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema};

    pub(crate) fn test_db() -> Arc<SubjectiveDb> {
        let mut us = Schema::new();
        us.add("gender", false);
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..10 {
            ub.push_row(vec![
                Cell::from(if i % 2 == 0 { "F" } else { "M" }),
                Cell::from(["young", "old"][i % 2]),
            ]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..4 {
            ib.push_row(vec![Cell::from(if i < 2 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        for r in 0..10u32 {
            for i in 0..4u32 {
                rb.push(
                    r,
                    i,
                    &[1 + ((r + i) % 5) as u8, 1 + ((r * 3 + i) % 5) as u8],
                );
            }
        }
        Arc::new(SubjectiveDb::new(ub.build(), ib.build(), rb.build(10, 4)))
    }

    pub(crate) fn quick_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            engine: EngineConfig {
                parallel: false,
                max_candidates: 12,
                ..EngineConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn create_step_and_metrics() {
        let service = SubdexService::start(test_db(), quick_config());
        let id = service.create_session();
        let step = service
            .run_step(id, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        assert_eq!(step.step, 0);
        assert!(!step.recommendations.is_empty());

        let step2 = service
            .run_step(id, StepRequest::Recommendation(0))
            .unwrap();
        assert_eq!(step2.step, 1);

        let m = service.metrics();
        assert_eq!(m.requests_served, 2);
        assert_eq!(m.requests_rejected, 0);
        let cache = m.cache.expect("cache enabled by default");
        assert!(cache.misses > 0);
        // Candidate groups were materialized somehow — and with displayed
        // maps anchoring drill-downs, at least one was derived from its
        // parent's columns rather than walked.
        let mat = m.materialization;
        assert!(mat.total() > 0, "{mat:?}");
        assert!(mat.derived > 0, "{mat:?}");
    }

    #[test]
    fn zero_workers_means_one_per_core() {
        let config = ServiceConfig {
            workers: 0,
            ..quick_config()
        };
        let service = SubdexService::start(test_db(), config);
        let id = service.create_session();
        let step = service
            .run_step(id, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        assert_eq!(step.step, 0);
    }

    #[test]
    fn unknown_session_and_bad_recommendation() {
        let service = SubdexService::start(test_db(), quick_config());
        let id = service.create_session();
        assert!(service.remove_session(id));
        assert_eq!(
            service
                .run_step(id, StepRequest::Operation(SelectionQuery::all()))
                .unwrap_err(),
            ServiceError::UnknownSession(id)
        );

        let id2 = service.create_session();
        assert_eq!(
            service
                .run_step(id2, StepRequest::Recommendation(0))
                .unwrap_err(),
            ServiceError::Session(SessionError::NotStarted)
        );
    }

    #[test]
    fn full_queue_rejects_with_depth() {
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            ..quick_config()
        };
        let service = SubdexService::start(test_db(), config);
        let blocker = service.create_session();
        let victim = service.create_session();

        // Hold the blocker session's slot lock so the single worker wedges
        // on its first job, leaving the queue for us to fill.
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let registry = Arc::clone(service.registry());
        let holder = std::thread::spawn(move || {
            registry.with_session(blocker, |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
        });
        started_rx.recv().unwrap();

        // Job 1 is picked up by the worker and wedges; jobs 2-3 fill the
        // queue; job 4 must be rejected with the observed depth.
        let t1 = service
            .submit(blocker, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        let mut tickets = Vec::new();
        let mut rejected = None;
        for _ in 0..8 {
            match service.submit(victim, StepRequest::Operation(SelectionQuery::all())) {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        match rejected.expect("bounded queue must eventually reject") {
            SubmitError::Rejected { queue_depth } => assert!(queue_depth > 0),
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert!(service.metrics().requests_rejected >= 1);
        assert!(service.metrics().queue_depth_hwm >= 1);

        release_tx.send(()).unwrap();
        holder.join().unwrap();
        t1.wait().unwrap();
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            ..quick_config()
        };
        let service = SubdexService::start(test_db(), config);
        let id = service.create_session();
        let tickets: Vec<StepTicket> = (0..4)
            .map(|_| {
                service
                    .submit(id, StepRequest::Operation(SelectionQuery::all()))
                    .unwrap()
            })
            .collect();
        service.shutdown();
        // Every accepted job completed despite the shutdown racing them.
        for (i, t) in tickets.into_iter().enumerate() {
            let step = t.wait().unwrap_or_else(|e| panic!("job {i} dropped: {e}"));
            assert_eq!(step.step, i);
        }
        // After shutdown, new submissions are refused.
        assert_eq!(
            service
                .submit(id, StepRequest::Operation(SelectionQuery::all()))
                .err(),
            Some(SubmitError::ShuttingDown)
        );
        assert_eq!(service.metrics().requests_served, 4);
    }

    #[test]
    fn idle_ttl_eviction_through_service() {
        let config = ServiceConfig {
            session_ttl: Duration::from_millis(20),
            ..quick_config()
        };
        let service = SubdexService::start(test_db(), config);
        let stale = service.create_session();
        std::thread::sleep(Duration::from_millis(40));
        let fresh = service.create_session();
        let evicted = service.evict_idle();
        assert_eq!(evicted, vec![stale]);
        assert!(!service.registry().contains(stale));
        assert!(service.registry().contains(fresh));
        assert_eq!(
            service
                .run_step(stale, StepRequest::Operation(SelectionQuery::all()))
                .unwrap_err(),
            ServiceError::UnknownSession(stale)
        );
    }

    #[test]
    fn cache_disabled_service_has_no_cache_stats() {
        let config = ServiceConfig {
            cache_enabled: false,
            ..quick_config()
        };
        let service = SubdexService::start(test_db(), config);
        let id = service.create_session();
        service
            .run_step(id, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        assert!(service.cache().is_none());
        assert!(service.metrics().cache.is_none());
    }

    #[test]
    fn sessions_share_one_distance_cache() {
        let service = SubdexService::start(test_db(), quick_config());
        let a = service.create_session();
        let b = service.create_session();
        service
            .run_step(a, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        let first = service.metrics().selection;
        assert!(
            first.exact_solves > 0,
            "first session must solve exact EMDs: {first:?}"
        );
        service
            .run_step(b, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        let m = service.metrics();
        assert!(
            m.selection.cache_hits > 0,
            "second session re-running the same query must reuse cached distances: {:?}",
            m.selection
        );
        let dist = m.dist_cache.expect("dist cache enabled by default");
        assert!(dist.hits > 0, "{dist:?}");
        assert!(dist.entries > 0, "{dist:?}");
    }

    #[test]
    fn dist_cache_disabled_service_has_no_dist_cache_stats() {
        let config = ServiceConfig {
            dist_cache_enabled: false,
            ..quick_config()
        };
        let service = SubdexService::start(test_db(), config);
        let id = service.create_session();
        service
            .run_step(id, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        assert!(service.distance_cache().is_none());
        assert!(service.metrics().dist_cache.is_none());
    }

    fn persist_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("subdex-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn drafts(n: u32) -> Vec<RatingDraft> {
        (0..n)
            .map(|i| RatingDraft::new(i % 10, i % 4, vec![1 + (i % 5) as u8, 1 + (i % 5) as u8]))
            .collect()
    }

    #[test]
    fn persistent_service_appends_survive_restart() {
        let dir = persist_dir("restart");
        let db = Arc::unwrap_or_clone(test_db());
        let base_ratings = db.ratings().len();
        {
            let store = Arc::new(PersistentStore::create(&dir, db).unwrap());
            let service = SubdexService::start_persistent(Arc::clone(&store), quick_config());
            let id = service.create_session();
            let step = service
                .run_step(id, StepRequest::Operation(SelectionQuery::all()))
                .unwrap();
            assert_eq!(step.stats.db_epoch, 0);

            let epoch = service.append_ratings(&drafts(6)).unwrap();
            assert_eq!(epoch, 1);
            // The pre-append session keeps its consistent view...
            let step = service
                .run_step(id, StepRequest::Operation(SelectionQuery::all()))
                .unwrap();
            assert_eq!(step.stats.db_epoch, 0);
            assert_eq!(step.group_size, base_ratings);
            // ...while a fresh session sees the appended ratings.
            let id2 = service.create_session();
            let step2 = service
                .run_step(id2, StepRequest::Operation(SelectionQuery::all()))
                .unwrap();
            assert_eq!(step2.stats.db_epoch, 1);
            assert_eq!(step2.group_size, base_ratings + 6);

            let m = service.metrics();
            let p = m.persist.expect("persistent service reports stats");
            assert_eq!(p.appended_records, 6);
            assert!(m.to_string().contains("persist: snapshot"));
            service.shutdown();
            // Shutdown's final checkpoint folded the WAL.
            assert_eq!(store.dirty_records(), 0);
            assert!(store.stats().checkpoints >= 1);
        }
        // A later process warm-starts with nothing to replay.
        let store = Arc::new(PersistentStore::open(&dir).unwrap());
        assert_eq!(store.stats().wal_replayed_records, 0);
        let service = SubdexService::start_persistent(Arc::clone(&store), quick_config());
        assert_eq!(service.current_db().ratings().len(), base_ratings + 6);
        let id = service.create_session();
        let step = service
            .run_step(id, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        assert_eq!(step.group_size, base_ratings + 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_invalidates_shared_caches_by_epoch() {
        let dir = persist_dir("epoch-bump");
        let db = Arc::unwrap_or_clone(test_db());
        let store = Arc::new(PersistentStore::create(&dir, db).unwrap());
        let service = SubdexService::start_persistent(store, quick_config());
        let id = service.create_session();
        service
            .run_step(id, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        let cache = service.cache().unwrap();
        assert!(cache.stats().entries > 0, "step populated the group cache");

        service.append_ratings(&drafts(3)).unwrap();
        assert_eq!(cache.stats().entries, 0, "append invalidated cached groups");
        assert_eq!(cache.epoch(), 1);
        assert_eq!(service.distance_cache().unwrap().epoch(), 1);
        let _ = std::fs::remove_dir_all(service.store().unwrap().dir());
    }

    #[test]
    fn dirty_threshold_triggers_background_checkpoint() {
        let dir = persist_dir("threshold");
        let db = Arc::unwrap_or_clone(test_db());
        let store = Arc::new(PersistentStore::create(&dir, db).unwrap());
        let config = ServiceConfig {
            // Interval far beyond the test: only the nudge can fire.
            checkpoint_interval: Duration::from_secs(3_600),
            checkpoint_dirty_threshold: 4,
            ..quick_config()
        };
        let service = SubdexService::start_persistent(Arc::clone(&store), config);
        service.append_ratings(&drafts(6)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while store.stats().checkpoints == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(store.stats().checkpoints >= 1, "nudge compacted the WAL");
        assert_eq!(store.dirty_records(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_service_refuses_persistence_calls() {
        let service = SubdexService::start(test_db(), quick_config());
        assert_eq!(
            service.append_ratings(&drafts(1)).unwrap_err(),
            ServiceError::NotPersistent
        );
        assert_eq!(
            service.checkpoint().unwrap_err(),
            ServiceError::NotPersistent
        );
        assert!(service.store().is_none());
        assert!(service.metrics().persist.is_none());
    }

    #[test]
    fn invalid_append_is_rejected_and_changes_nothing() {
        let dir = persist_dir("invalid");
        let db = Arc::unwrap_or_clone(test_db());
        let store = Arc::new(PersistentStore::create(&dir, db).unwrap());
        let service = SubdexService::start_persistent(store, quick_config());
        let bad = vec![RatingDraft::new(99, 0, vec![3, 3])]; // reviewer out of range
        match service.append_ratings(&bad).unwrap_err() {
            ServiceError::Persist(e) => {
                assert_eq!(e.kind, subdex_store::StoreErrorKind::Invalid)
            }
            other => panic!("expected Persist error, got {other:?}"),
        }
        assert_eq!(service.current_db().epoch(), 0);
        assert_eq!(service.store().unwrap().dirty_records(), 0);
        let _ = std::fs::remove_dir_all(service.store().unwrap().dir());
    }

    #[test]
    fn sessions_share_one_cache() {
        let service = SubdexService::start(test_db(), quick_config());
        let a = service.create_session();
        let b = service.create_session();
        service
            .run_step(a, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        let misses_after_first = service.metrics().cache.unwrap().misses;
        service
            .run_step(b, StepRequest::Operation(SelectionQuery::all()))
            .unwrap();
        let cache = service.metrics().cache.unwrap();
        assert!(
            cache.hits > 0,
            "second session re-running the same query must hit: {cache:?}"
        );
        assert!(cache.misses >= misses_after_first, "counters monotone");
    }
}
