//! Concurrency acceptance test: many client threads driving many sessions
//! through the service (shared cache ON) must produce *byte-identical*
//! exploration paths to the same scripts replayed single-threaded with the
//! cache OFF. This is the service's core correctness contract — neither
//! thread interleaving nor the shared group cache may leak into results.
//!
//! Each session's script is deterministic: step 0 applies the full-database
//! query, and every later step takes recommendation
//! `(session_index + step) % n_recs` of the previous step. Sixteen sessions
//! starting from the same query guarantee heavy cache overlap.

use std::sync::Arc;
use std::time::Duration;

use subdex_core::{EngineConfig, ExplorationMode, ExplorationSession, SdeEngine};
use subdex_data::datasets::hotels;
use subdex_service::{ServiceConfig, ServiceError, SessionId, StepRequest, SubdexService};
use subdex_store::{SelectionQuery, SubjectiveDb};

const CLIENT_THREADS: usize = 8;
const SESSIONS: usize = 16;
const STEPS: usize = 5;

fn study_db() -> Arc<SubjectiveDb> {
    Arc::new(hotels::dataset(hotels::default_params().scaled(0.01)).db)
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        parallel: false,
        max_candidates: 8,
        ..EngineConfig::default()
    }
}

/// The deterministic per-session recommendation choice.
fn pick(session_idx: usize, step: usize, n_recs: usize) -> usize {
    (session_idx + step) % n_recs.max(1)
}

/// Drives one session's full script through the service, retrying on
/// backpressure (rejection is load-shedding, not failure).
fn drive(service: &SubdexService, session: SessionId, session_idx: usize) {
    let run = |request: StepRequest| loop {
        match service.run_step(session, request.clone()) {
            Ok(step) => break step,
            Err(ServiceError::Rejected { .. }) => std::thread::sleep(Duration::from_micros(50)),
            Err(e) => panic!("session {session} step failed: {e}"),
        }
    };
    let mut last = run(StepRequest::Operation(SelectionQuery::all()));
    for step in 1..STEPS {
        let n = last.recommendations.len();
        last = if n == 0 {
            run(StepRequest::Operation(SelectionQuery::all()))
        } else {
            run(StepRequest::Recommendation(pick(session_idx, step, n)))
        };
    }
}

/// Replays one session's script directly, single-threaded, cache disabled.
fn reference_signature(db: &Arc<SubjectiveDb>, session_idx: usize) -> u64 {
    let engine = SdeEngine::new(Arc::clone(db), engine_config());
    let mut s = ExplorationSession::with_engine(engine, ExplorationMode::RecommendationPowered);
    s.apply_operation(&SelectionQuery::all());
    for step in 1..STEPS {
        let n = s.recommendations().len();
        if n == 0 {
            s.apply_operation(&SelectionQuery::all());
        } else {
            s.apply_recommendation(pick(session_idx, step, n))
                .expect("index is in range by construction");
        }
    }
    s.path_signature()
}

#[test]
fn concurrent_cached_service_matches_single_threaded_uncached() {
    let db = study_db();
    let config = ServiceConfig {
        workers: 4,
        queue_capacity: 8, // small on purpose: exercise backpressure under load
        cache_enabled: true,
        engine: engine_config(),
        mode: ExplorationMode::RecommendationPowered,
        ..ServiceConfig::default()
    };
    let service = Arc::new(SubdexService::start(Arc::clone(&db), config));
    let sessions: Vec<SessionId> = (0..SESSIONS).map(|_| service.create_session()).collect();

    // 8 client threads, 2 sessions each, all scripts running concurrently.
    assert_eq!(SESSIONS % CLIENT_THREADS, 0);
    let per_thread = SESSIONS / CLIENT_THREADS;
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let mine: Vec<(usize, SessionId)> = (0..per_thread)
                .map(|k| {
                    let idx = t * per_thread + k;
                    (idx, sessions[idx])
                })
                .collect();
            std::thread::spawn(move || {
                for (idx, id) in mine {
                    drive(&service, id, idx);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not panic");
    }

    let m = service.metrics();
    assert_eq!(
        m.requests_served,
        (SESSIONS * STEPS) as u64,
        "every scripted step served exactly once (rejections were retried)"
    );
    let cache = m.cache.expect("cache enabled");
    assert!(
        cache.hits > 0,
        "16 sessions sharing a start query must hit the cache: {cache:?}"
    );

    // Byte-identity: the concurrent cached paths equal the sequential
    // uncached replays, session by session.
    for (idx, &id) in sessions.iter().enumerate() {
        let concurrent = service
            .registry()
            .with_session(id, |s| {
                assert_eq!(s.path().len(), STEPS);
                s.path_signature()
            })
            .expect("session still registered");
        let reference = reference_signature(&db, idx);
        assert_eq!(
            concurrent, reference,
            "session {idx}: concurrent+cached path diverged from \
             single-threaded uncached reference"
        );
    }

    service.shutdown();
}
