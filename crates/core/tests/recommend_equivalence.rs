//! Property tests pinning the derived-group materialization layer: over
//! randomized databases, (1) deriving a refinement's columns from the
//! parent's gathered columns must be byte-identical to the full
//! posting-list walk for any added predicate on either entity side,
//! (2) `collect_group_records` must emit ascending record ids no matter
//! which entity side drives the walk, and (3) the recommendation builder
//! must produce identical output across derive × cache × parallel
//! configurations.

use proptest::prelude::*;
use proptest::strategy::Just;

use subdex_core::generator::{self, CriterionNormalizers, GeneratorConfig};
use subdex_core::ratingmap::ScoredRatingMap;
use subdex_core::recommend::{recommend_with_stats, RecommendConfig, Recommendation};
use subdex_core::{PruningStrategy, SeenContext};
use subdex_stats::normalize::NormalizerKind;
use subdex_store::{
    table::EntityTableBuilder, AttrValue, Cell, Entity, GroupCache, Schema, SelectionQuery,
    SubjectiveDb, Value,
};

const SCALE: u8 = 5;

/// Blueprint for one randomized database (same shape as
/// `scan_equivalence.rs`).
#[derive(Debug, Clone)]
struct DbSpec {
    reviewer_attr: Vec<usize>,
    item_city: Vec<usize>,
    item_tags: Vec<Vec<bool>>,
    dims: usize,
    ratings: Vec<(u32, u32, Vec<u8>)>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (2usize..8, 2usize..6, 1usize..=2)
        .prop_flat_map(|(n_reviewers, n_items, dims)| {
            (
                prop::collection::vec(0usize..3, n_reviewers),
                prop::collection::vec(0usize..3, n_items),
                prop::collection::vec(prop::collection::vec(prop::bool::ANY, 3usize), n_items),
                Just(dims),
                prop::collection::vec(
                    (
                        0..n_reviewers as u32,
                        0..n_items as u32,
                        prop::collection::vec(1u8..=SCALE, dims),
                    ),
                    1..40,
                ),
            )
        })
        .prop_map(|(reviewer_attr, item_city, item_tags, dims, mut ratings)| {
            let mut seen = std::collections::HashSet::new();
            ratings.retain(|&(r, i, _)| seen.insert((r, i)));
            DbSpec {
                reviewer_attr,
                item_city,
                item_tags,
                dims,
                ratings,
            }
        })
}

fn build_db(spec: &DbSpec) -> SubjectiveDb {
    let mut us = Schema::new();
    us.add("group", false);
    let mut ub = EntityTableBuilder::new(us);
    for &v in &spec.reviewer_attr {
        ub.push_row(vec![Cell::from(["a", "b", "c"][v])]);
    }
    let mut is = Schema::new();
    is.add("city", false);
    is.add("tags", true);
    let mut ib = EntityTableBuilder::new(is);
    for (&city, tags) in spec.item_city.iter().zip(&spec.item_tags) {
        let tag_values = ["t0", "t1", "t2"]
            .iter()
            .zip(tags)
            .filter(|(_, &on)| on)
            .map(|(t, _)| Value::str(*t))
            .collect();
        ib.push_row(vec![
            Cell::from(["NYC", "SF", "LA"][city]),
            Cell::Many(tag_values),
        ]);
    }
    let dim_names = (0..spec.dims).map(|d| format!("d{d}")).collect();
    let mut rb = subdex_store::ratings::RatingTableBuilder::new(dim_names, SCALE);
    for (r, i, scores) in &spec.ratings {
        rb.push(*r, *i, scores);
    }
    SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(spec.reviewer_attr.len(), spec.item_city.len()),
    )
}

/// Every predicate the randomized schema can express, resolved against the
/// database's dictionaries (values absent from a given instance drop out).
fn candidate_preds(db: &SubjectiveDb) -> Vec<AttrValue> {
    let mut preds = Vec::new();
    for v in ["a", "b", "c"] {
        preds.extend(db.pred(Entity::Reviewer, "group", &Value::str(v)));
    }
    for v in ["NYC", "SF", "LA"] {
        preds.extend(db.pred(Entity::Item, "city", &Value::str(v)));
    }
    for v in ["t0", "t1", "t2"] {
        preds.extend(db.pred(Entity::Item, "tags", &Value::str(v)));
    }
    preds
}

fn parent_query(preds: &[AttrValue], mask: &[bool]) -> SelectionQuery {
    SelectionQuery::from_preds(
        preds
            .iter()
            .zip(mask.iter().cycle())
            .filter(|(_, &on)| on)
            .map(|(p, _)| *p),
    )
}

fn displayed(db: &SubjectiveDb, q: &SelectionQuery) -> Vec<ScoredRatingMap> {
    let group = db.scan_group(q, 3);
    let seen = SeenContext::new(db.ratings().dim_count());
    let mut norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
    let cfg = GeneratorConfig {
        pruning: PruningStrategy::None,
        parallel: false,
        phases: 4,
        ..GeneratorConfig::default()
    };
    let out = generator::generate(db, &group, q, &seen, &mut norms, &cfg);
    out.pool.into_iter().take(3).collect()
}

fn fingerprint(recs: &[Recommendation]) -> Vec<(SelectionQuery, u64, usize)> {
    recs.iter()
        .map(|r| (r.query.clone(), r.utility.to_bits(), r.group_size))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Deriving a refinement from the parent's columns is byte-identical to
    /// the full walk, for every parent query and added predicate (both
    /// entity sides, single- and multi-valued attributes, including
    /// contradictory additions that empty the group).
    #[test]
    fn derived_refinement_equals_full_walk(
        spec in db_spec(),
        mask in prop::collection::vec(prop::bool::ANY, 9),
    ) {
        let db = build_db(&spec);
        let preds = candidate_preds(&db);
        prop_assume!(!preds.is_empty());
        let parent = parent_query(&preds, &mask);
        let parent_cols = db.collect_group_columns(&parent);
        for &pred in &preds {
            let child = parent.with_added(pred);
            let derived = db.derive_refinement_columns(&parent_cols, &pred);
            let walked = db.collect_group_columns(&child);
            prop_assert_eq!(derived, walked, "parent {:?} + {:?}", &parent, pred);
        }
    }

    /// The canonical pre-shuffle walk order is ascending record id no
    /// matter which entity side drives the adjacency walk.
    #[test]
    fn walk_order_is_ascending(
        spec in db_spec(),
        mask in prop::collection::vec(prop::bool::ANY, 9),
    ) {
        let db = build_db(&spec);
        let preds = candidate_preds(&db);
        prop_assume!(!preds.is_empty());
        let q = parent_query(&preds, &mask);
        let recs = db.collect_group_records(&q);
        prop_assert!(recs.windows(2).all(|w| w[0] < w[1]), "{:?}: {:?}", &q, &recs);
    }

    /// The recommendation builder's full output (queries, bit-exact
    /// utilities, group sizes) is identical with candidate derivation on or
    /// off, with or without a shared cache (cold and warm), and sequential
    /// or parallel.
    #[test]
    fn recommend_identical_across_derive_cache_parallel(
        spec in db_spec(),
        mask in prop::collection::vec(prop::bool::ANY, 9),
        seed in 0u64..1000,
    ) {
        let db = build_db(&spec);
        let preds = candidate_preds(&db);
        prop_assume!(!preds.is_empty());
        let query = parent_query(&preds, &mask);
        let parent_cols = db.collect_group_columns(&query);
        let maps = displayed(&db, &query);
        let seen = SeenContext::new(db.ratings().dim_count());
        let norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let gen_cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            phases: 4,
            ..GeneratorConfig::default()
        };
        let run = |derive: bool, parallel: bool, cache: Option<&GroupCache>| {
            let cfg = RecommendConfig {
                max_candidates: 16,
                parallel,
                threads: if parallel { 3 } else { 0 },
                derive_candidates: derive,
                ..RecommendConfig::default()
            };
            recommend_with_stats(
                &db,
                &query,
                &maps,
                &seen,
                &norms,
                &gen_cfg,
                &cfg,
                seed,
                cache,
                derive.then_some(&parent_cols),
                None,
            )
        };

        let (reference, _, _) = run(false, false, None);
        for derive in [false, true] {
            for parallel in [false, true] {
                let cache = GroupCache::new(1 << 20);
                let (plain, _, _) = run(derive, parallel, None);
                prop_assert_eq!(
                    fingerprint(&plain),
                    fingerprint(&reference),
                    "derive={} parallel={} uncached",
                    derive,
                    parallel
                );
                let (cold, _, _) = run(derive, parallel, Some(&cache));
                prop_assert_eq!(
                    fingerprint(&cold),
                    fingerprint(&reference),
                    "derive={} parallel={} cold cache",
                    derive,
                    parallel
                );
                let (warm, warm_stats, _) = run(derive, parallel, Some(&cache));
                prop_assert_eq!(
                    fingerprint(&warm),
                    fingerprint(&reference),
                    "derive={} parallel={} warm cache",
                    derive,
                    parallel
                );
                prop_assert_eq!(warm_stats.derived + warm_stats.walked, 0,
                    "warm pass must be fully cache-served: {:?}", warm_stats);
            }
        }
    }
}
