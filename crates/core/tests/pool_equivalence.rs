//! Property tests pinning pool-executed steps byte-identical across the
//! scheduling knobs the persistent task pool introduced.
//!
//! The engine's parallel phases (phase scan, candidate evaluation, GMM row
//! pass) now run on the process-wide task pool under an oversubscription
//! thread budget, and the shared caches are sharded. None of those knobs
//! may change results: over randomized databases and drill-down paths,
//! every thread count {1, 2, 4, 8} × shard count {1, 4, 16} × thread
//! budget must produce bit-exact displayed maps, recommendations, and
//! counters against the serial single-shard baseline (the scoped-spawn
//! path's serial fallback, which the `plan_equivalence` suite pins against
//! the pre-refactor engine).

use std::sync::Arc;

use proptest::prelude::*;
use proptest::strategy::Just;

use subdex_core::ratingmap::ScoredRatingMap;
use subdex_core::recommend::{Materialization, Recommendation};
use subdex_core::{EngineConfig, SdeEngine, SelectionStats, StepResult};
use subdex_store::{
    table::EntityTableBuilder, AttrValue, Cell, DistanceCache, Entity, GroupCache, Schema,
    SelectionQuery, SubjectiveDb, Value,
};

const SCALE: u8 = 5;

/// Everything observable about a step except wall-clock times (which can
/// never match across runs). Selection counters are compared without
/// `select_time` for the same reason.
type Fingerprint = (
    usize,                             // step
    usize,                             // group_size
    Vec<(u64, u64)>,                   // map keys' (dw_utility, utility) bits
    Vec<String>,                       // map keys rendered
    Vec<(SelectionQuery, u64, usize)>, // recommendations
    (usize, usize, usize),             // generator counters
    Materialization,                   // materialization paths
    (u64, u64, u64, u64),              // selection counters sans time
    u64,                               // db epoch
);

fn sel_fp(s: &SelectionStats) -> (u64, u64, u64, u64) {
    (
        s.exact_solves,
        s.pruned_mixture,
        s.pruned_matrix,
        s.cache_hits,
    )
}

fn step_fp(r: &StepResult) -> Fingerprint {
    let bits: Vec<(u64, u64)> = r
        .maps
        .iter()
        .map(|m: &ScoredRatingMap| (m.dw_utility.to_bits(), m.utility.to_bits()))
        .collect();
    let keys: Vec<String> = r.maps.iter().map(|m| format!("{:?}", m.map.key)).collect();
    let recs: Vec<(SelectionQuery, u64, usize)> = r
        .recommendations
        .iter()
        .map(|rec: &Recommendation| (rec.query.clone(), rec.utility.to_bits(), rec.group_size))
        .collect();
    (
        r.step,
        r.group_size,
        bits,
        keys,
        recs,
        (
            r.stats.generator.candidates_total,
            r.stats.generator.pruned_ci,
            r.stats.generator.pruned_mab,
        ),
        r.stats.materialization,
        sel_fp(&r.stats.selection),
        r.stats.db_epoch,
    )
}

/// Runs the query path with the given cache shard counts and per-step
/// thread budget, fingerprinting every step.
fn run_path(
    db: &Arc<SubjectiveDb>,
    cfg: EngineConfig,
    queries: &[SelectionQuery],
    shards: usize,
    budget: usize,
) -> Vec<Fingerprint> {
    let mut e = SdeEngine::new(db.clone(), cfg);
    e.set_group_cache(Some(Arc::new(GroupCache::with_shards(1 << 20, shards))));
    e.set_distance_cache(Some(Arc::new(DistanceCache::with_shards(1 << 20, shards))));
    e.set_thread_budget(budget);
    queries.iter().map(|q| step_fp(&e.step(q))).collect()
}

const THREAD_GRID: [usize; 4] = [1, 2, 4, 8];
const SHARD_GRID: [usize; 3] = [1, 4, 16];

/// The serial single-shard baseline every grid cell must match.
fn baseline(
    db: &Arc<SubjectiveDb>,
    cfg: EngineConfig,
    queries: &[SelectionQuery],
) -> Vec<Fingerprint> {
    let serial = EngineConfig {
        parallel: false,
        threads: 1,
        ..cfg
    };
    run_path(db, serial, queries, 1, 0)
}

/// Asserts the full pool grid — thread counts × shard counts, plus every
/// thread budget at the widest thread count — against the serial baseline.
fn assert_pool_grid_equal(db: &Arc<SubjectiveDb>, cfg: EngineConfig, queries: &[SelectionQuery]) {
    let expect = baseline(db, cfg, queries);
    for threads in THREAD_GRID {
        for shards in SHARD_GRID {
            let pooled = EngineConfig {
                parallel: true,
                threads,
                ..cfg
            };
            assert_eq!(
                run_path(db, pooled, queries, shards, 0),
                expect,
                "threads={threads} shards={shards} cfg={cfg:?}"
            );
        }
    }
    for budget in THREAD_GRID {
        let pooled = EngineConfig {
            parallel: true,
            threads: 8,
            ..cfg
        };
        assert_eq!(
            run_path(db, pooled, queries, 4, budget),
            expect,
            "thread_budget={budget} cfg={cfg:?}"
        );
    }
}

// ---- randomized databases (same shape as plan_equivalence.rs) ----------

#[derive(Debug, Clone)]
struct DbSpec {
    reviewer_attr: Vec<usize>,
    item_city: Vec<usize>,
    dims: usize,
    ratings: Vec<(u32, u32, Vec<u8>)>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (3usize..9, 2usize..6, 1usize..=2)
        .prop_flat_map(|(n_reviewers, n_items, dims)| {
            (
                prop::collection::vec(0usize..3, n_reviewers),
                prop::collection::vec(0usize..3, n_items),
                Just(dims),
                prop::collection::vec(
                    (
                        0..n_reviewers as u32,
                        0..n_items as u32,
                        prop::collection::vec(1u8..=SCALE, dims),
                    ),
                    4..40,
                ),
            )
        })
        .prop_map(|(reviewer_attr, item_city, dims, mut ratings)| {
            let mut seen = std::collections::HashSet::new();
            ratings.retain(|&(r, i, _)| seen.insert((r, i)));
            DbSpec {
                reviewer_attr,
                item_city,
                dims,
                ratings,
            }
        })
}

fn build_db(spec: &DbSpec) -> Arc<SubjectiveDb> {
    let mut us = Schema::new();
    us.add("group", false);
    let mut ub = EntityTableBuilder::new(us);
    for &v in &spec.reviewer_attr {
        ub.push_row(vec![Cell::from(["a", "b", "c"][v])]);
    }
    let mut is = Schema::new();
    is.add("city", false);
    let mut ib = EntityTableBuilder::new(is);
    for &city in &spec.item_city {
        ib.push_row(vec![Cell::from(["NYC", "SF", "LA"][city])]);
    }
    let dim_names = (0..spec.dims).map(|d| format!("d{d}")).collect();
    let mut rb = subdex_store::ratings::RatingTableBuilder::new(dim_names, SCALE);
    for (r, i, scores) in &spec.ratings {
        rb.push(*r, *i, scores);
    }
    Arc::new(SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(spec.reviewer_attr.len(), spec.item_city.len()),
    ))
}

fn candidate_preds(db: &SubjectiveDb) -> Vec<AttrValue> {
    let mut preds = Vec::new();
    for v in ["a", "b", "c"] {
        preds.extend(db.pred(Entity::Reviewer, "group", &Value::str(v)));
    }
    for v in ["NYC", "SF", "LA"] {
        preds.extend(db.pred(Entity::Item, "city", &Value::str(v)));
    }
    preds
}

/// A 3-step path: the root, one drill-down picked by the mask, the root
/// again (revisits make the caches and seen-context state matter).
fn query_path(db: &SubjectiveDb, pick: usize) -> Vec<SelectionQuery> {
    let preds = candidate_preds(db);
    let mut path = vec![SelectionQuery::all()];
    if !preds.is_empty() {
        path.push(SelectionQuery::from_preds(vec![preds[pick % preds.len()]]));
    }
    path.push(SelectionQuery::all());
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pool-executed steps equal the serial baseline across thread counts
    /// × shard counts × thread budgets, over randomized databases and
    /// drill-down paths, under the full SubDEx preset.
    #[test]
    fn pooled_steps_equal_serial_across_budgets_and_shards(
        spec in db_spec(),
        pick in 0usize..16,
        seed in 0u64..100,
    ) {
        let db = build_db(&spec);
        let queries = query_path(&db, pick);
        let cfg = EngineConfig {
            seed,
            max_candidates: 8,
            ..EngineConfig::subdex()
        };
        assert_pool_grid_equal(&db, cfg, &queries);
    }

    /// The budget clamp composes with pruning the same way: a preset with
    /// both pruners on stays byte-identical across the grid.
    #[test]
    fn pooled_pruning_presets_stay_byte_identical(
        spec in db_spec(),
        pick in 0usize..16,
    ) {
        let db = build_db(&spec);
        let queries = query_path(&db, pick);
        for base in [EngineConfig::ci_pruning(), EngineConfig::mab_pruning()] {
            let cfg = EngineConfig {
                max_candidates: 8,
                ..base
            };
            assert_pool_grid_equal(&db, cfg, &queries);
        }
    }
}

/// Deterministic pin over a fixed database: the exhaustive corner the
/// proptests sample around, including a mid-path budget change (the
/// service re-budgets every step as workers come and go).
#[test]
fn pooled_fixed_db_grid_and_midpath_rebudget() {
    let spec = DbSpec {
        reviewer_attr: vec![0, 1, 2, 0, 1, 2, 0, 1],
        item_city: vec![0, 1, 2, 0],
        dims: 2,
        ratings: (0..8u32)
            .flat_map(|r| {
                (0..4u32).map(move |i| {
                    (
                        r,
                        i,
                        vec![1 + ((r + i) % 5) as u8, 1 + ((r * 3 + i) % 5) as u8],
                    )
                })
            })
            .collect(),
    };
    let db = build_db(&spec);
    let queries = query_path(&db, 1);
    let cfg = EngineConfig {
        max_candidates: 8,
        ..EngineConfig::subdex()
    };
    assert_pool_grid_equal(&db, cfg, &queries);

    // Re-budgeting between steps (as the service's busy-divided budget
    // does) must leave the path byte-identical too.
    let expect = baseline(&db, cfg, &queries);
    let pooled = EngineConfig {
        parallel: true,
        threads: 8,
        ..cfg
    };
    let mut e = SdeEngine::new(db.clone(), pooled);
    e.set_group_cache(Some(Arc::new(GroupCache::with_shards(1 << 20, 4))));
    e.set_distance_cache(Some(Arc::new(DistanceCache::with_shards(1 << 20, 4))));
    let budgets = [4usize, 1, 2];
    let got: Vec<Fingerprint> = queries
        .iter()
        .zip(budgets.iter().cycle())
        .map(|(q, &b)| {
            e.set_thread_budget(b);
            step_fp(&e.step(q))
        })
        .collect();
    assert_eq!(got, expect, "mid-path re-budgeting changed results");
}
