//! Property-based tests for the exploration core.

use proptest::prelude::*;
use std::sync::Arc;
use subdex_core::interest::{agreement_raw, conciseness_raw, self_peculiarity_raw};
use subdex_core::mapdist::{
    lower_bound, map_distance, refined_lower_bound, set_diversity, signature_distance, upper_bound,
    DistScratch, DistanceEngine, MapSignature, SelectionStats,
};
use subdex_core::pruning::{ci_survivors, utility_envelope, SarDecision, SarState};
use subdex_core::ratingmap::{MapKey, RatingMap, ScoredRatingMap, Subgroup};
use subdex_core::selector::{select_diverse, select_diverse_tracked, SelectionStrategy};
use subdex_core::utility::{CriterionScores, DimensionWeights, UtilityCombiner};
use subdex_stats::{ConfidenceInterval, RatingDistribution};
use subdex_store::{AttrId, DimId, DistanceCache, Entity, ValueId};

fn subgroups_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..20, 5), 0..8)
}

fn make_map(attr: u16, groups: &[Vec<u64>]) -> RatingMap {
    let subs = groups
        .iter()
        .enumerate()
        .map(|(i, c)| Subgroup {
            value: ValueId(i as u32),
            distribution: RatingDistribution::from_counts(c.clone()),
            avg_score: None,
        })
        .collect();
    RatingMap::from_subgroups(MapKey::new(Entity::Item, AttrId(attr), DimId(0)), subs, 5)
}

fn scored_pool() -> impl Strategy<Value = Vec<ScoredRatingMap>> {
    prop::collection::vec(subgroups_strategy(), 2..8).prop_map(|pools| {
        pools
            .into_iter()
            .enumerate()
            .map(|(i, groups)| ScoredRatingMap {
                map: make_map(i as u16, &groups),
                utility: 1.0 / (i + 1) as f64,
                dw_utility: 1.0 / (i + 1) as f64,
                criteria: CriterionScores::default(),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn rating_map_invariants(groups in subgroups_strategy()) {
        let map = make_map(0, &groups);
        // Subgroups sorted by descending average.
        for w in map.subgroups.windows(2) {
            prop_assert!(w[0].avg_score.unwrap() >= w[1].avg_score.unwrap() - 1e-12);
        }
        // No empty subgroups survive; overall = sum of subgroups.
        let mut total = 0u64;
        for sg in &map.subgroups {
            prop_assert!(!sg.distribution.is_empty());
            total += sg.distribution.total();
        }
        prop_assert_eq!(map.overall.total(), total);
    }

    #[test]
    fn map_distance_is_bounded_symmetric(a in subgroups_strategy(), b in subgroups_strategy()) {
        let ma = make_map(0, &a);
        let mb = make_map(1, &b);
        let d = map_distance(&ma, &mb);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d), "d = {d}");
        prop_assert!((d - map_distance(&mb, &ma)).abs() < 1e-7);
        prop_assert!(map_distance(&ma, &ma) < 1e-7);
    }

    #[test]
    fn gmm_is_2_approximation(pool in scored_pool(), k in 2usize..4) {
        prop_assume!(pool.len() > k);
        // Optimal min-pairwise over all k-subsets (pool ≤ 7, k ≤ 3: cheap).
        let maps: Vec<&RatingMap> = pool.iter().map(|m| &m.map).collect();
        let n = maps.len();
        let mut opt = 0.0f64;
        let mut idx = vec![0usize; k];
        fn subsets(n: usize, k: usize, start: usize, idx: &mut Vec<usize>, pos: usize, best: &mut f64, maps: &[&RatingMap]) {
            if pos == k {
                let sel: Vec<&RatingMap> = idx.iter().map(|&i| maps[i]).collect();
                let d = set_diversity(&sel);
                if d > *best {
                    *best = d;
                }
                return;
            }
            for i in start..n {
                idx[pos] = i;
                subsets(n, k, i + 1, idx, pos + 1, best, maps);
            }
        }
        subsets(n, k, 0, &mut idx, 0, &mut opt, &maps);
        let sel = select_diverse(pool, k, SelectionStrategy::DiversityOnly);
        let got = set_diversity(&sel.iter().map(|m| &m.map).collect::<Vec<_>>());
        prop_assert!(got * 2.0 + 1e-9 >= opt, "GMM {got} vs OPT {opt}");
    }

    #[test]
    fn select_diverse_returns_k_and_preserves_pool_order(pool in scored_pool(), k in 1usize..5) {
        let n = pool.len();
        let out = select_diverse(pool, k, SelectionStrategy::Hybrid { l: 3 });
        prop_assert_eq!(out.len(), k.min(n));
        for w in out.windows(2) {
            prop_assert!(w[0].dw_utility >= w[1].dw_utility - 1e-12, "pool order kept");
        }
    }

    #[test]
    fn envelope_contains_the_max_criterion(
        intervals in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..5),
        weight in 0.0f64..1.0,
    ) {
        let cis: Vec<ConfidenceInterval> = intervals
            .iter()
            .map(|&(a, b)| ConfidenceInterval::new(a.min(b), a.max(b)))
            .collect();
        let env = utility_envelope(&cis, weight);
        // The true max of any point values drawn from the intervals lies in
        // the envelope: check the extreme cases.
        let max_of_his = cis.iter().fold(0.0f64, |m, c| m.max(c.hi)) * weight;
        let max_of_los = cis.iter().fold(0.0f64, |m, c| m.max(c.lo)) * weight;
        prop_assert!(env.hi >= max_of_his - 1e-12);
        prop_assert!(env.lo <= max_of_los + 1e-12, "paper's lb is conservative");
    }

    #[test]
    fn ci_survivors_never_prunes_top_k(
        mut bounds in prop::collection::vec((0.0f64..1.0, 0.0f64..0.3), 2..12),
        k in 1usize..6,
    ) {
        let envelopes: Vec<ConfidenceInterval> = bounds
            .drain(..)
            .map(|(mid, half)| ConfidenceInterval::new((mid - half).max(0.0), (mid + half).min(1.0)))
            .collect();
        let keep = ci_survivors(&envelopes, k);
        prop_assert_eq!(keep.len(), envelopes.len());
        // The k highest upper bounds always survive.
        let mut order: Vec<usize> = (0..envelopes.len()).collect();
        order.sort_by(|&a, &b| envelopes[b].hi.partial_cmp(&envelopes[a].hi).unwrap());
        for &i in order.iter().take(k) {
            prop_assert!(keep[i], "top-k by upper bound must be kept");
        }
        // Anything pruned is strictly below the k-th lower bound.
        let lowest_lb = order
            .iter()
            .take(k)
            .map(|&i| envelopes[i].lo)
            .fold(f64::INFINITY, f64::min);
        for (i, &kept) in keep.iter().enumerate() {
            if !kept {
                prop_assert!(envelopes[i].hi < lowest_lb);
            }
        }
    }

    #[test]
    fn sar_terminates_and_keeps_slots(means in prop::collection::vec(0.0f64..1.0, 2..20), k in 1usize..6) {
        let mut sar = SarState::new(k);
        let mut active: Vec<(usize, f64)> = means.iter().copied().enumerate().collect();
        let mut accepted = 0usize;
        for _ in 0..means.len() * 2 {
            match sar.decide(&active) {
                SarDecision::Accept(i) => {
                    accepted += 1;
                    active.retain(|&(j, _)| j != i);
                }
                SarDecision::Reject(i) => active.retain(|&(j, _)| j != i),
                SarDecision::Nothing => break,
            }
        }
        prop_assert!(accepted <= k);
        prop_assert!(active.len() + accepted >= k.min(means.len()));
    }

    #[test]
    fn dimension_weights_sum_property(shows in prop::collection::vec(0u16..4, 0..40)) {
        let mut w = DimensionWeights::new(4);
        for &d in &shows {
            w.record_shown(DimId(d));
        }
        if !shows.is_empty() {
            let sum: f64 = (0..4).map(|d| w.fraction(DimId(d))).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1");
            for d in 0..4 {
                let f = w.dw_factor(DimId(d));
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn combiner_bounds(c in 0.0f64..1.0, a in 0.0f64..1.0, s in 0.0f64..1.0, g in 0.0f64..1.0) {
        let scores = CriterionScores {
            conciseness: c,
            agreement: a,
            self_peculiarity: s,
            global_peculiarity: g,
        };
        let max = UtilityCombiner::Max.combine(&scores);
        let avg = UtilityCombiner::Average.combine(&scores);
        prop_assert!(avg <= max + 1e-12, "avg never exceeds max");
        prop_assert!((0.0..=1.0).contains(&max));
        for crit in subdex_core::interest::ALL_CRITERIA {
            let single = UtilityCombiner::Single(crit).combine(&scores);
            prop_assert!(single <= max + 1e-12);
        }
    }

    #[test]
    fn sessionlog_deserialize_never_panics(text in ".{0,200}") {
        // Needs a database for schema resolution; a minimal one suffices.
        use subdex_store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema};
        let mut us = Schema::new();
        us.add("a", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec![Cell::from("x")]);
        let mut is = Schema::new();
        is.add("b", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![Cell::from("y")]);
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        rb.push(0, 0, &[3]);
        let db = subdex_store::SubjectiveDb::new(ub.build(), ib.build(), rb.build(1, 1));
        let _ = subdex_core::sessionlog::SessionLog::deserialize(&db, &text);
        let with_header = format!("#subdex-session v1\n{text}");
        let _ = subdex_core::sessionlog::SessionLog::deserialize(&db, &with_header);
    }

    #[test]
    fn candidate_enumeration_respects_cap_and_kinds(cap in 1usize..20) {
        use subdex_store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema, SelectionQuery};
        let mut us = Schema::new();
        us.add("a", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..6 {
            ub.push_row(vec![Cell::from(["x", "y", "z"][i % 3])]);
        }
        let mut is = Schema::new();
        is.add("b", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..4 {
            ib.push_row(vec![Cell::from(["p", "q"][i % 2])]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        for r in 0..6u32 {
            for i in 0..4u32 {
                rb.push(r, i, &[1 + ((r + i) % 5) as u8]);
            }
        }
        let db = subdex_store::SubjectiveDb::new(ub.build(), ib.build(), rb.build(6, 4));
        let p = db
            .pred(subdex_store::Entity::Reviewer, "a", &subdex_store::Value::str("x"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![p]);
        // Use a generated pool of displayed maps.
        let group = db.rating_group(&q, 1);
        let seen = subdex_core::SeenContext::new(1);
        let mut norms = subdex_core::generator::CriterionNormalizers::new(Default::default());
        let gcfg = subdex_core::generator::GeneratorConfig {
            pruning: subdex_core::PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let pool = subdex_core::generator::generate(&db, &group, &q, &seen, &mut norms, &gcfg).pool;
        let cfg = subdex_core::recommend::RecommendConfig {
            max_candidates: cap,
            ..Default::default()
        };
        let cands = subdex_core::recommend::enumerate_candidates(&db, &q, &pool, &cfg);
        prop_assert!(cands.len() <= cap);
        // The roll-up must survive any cap ≥ 2 (kind interleaving).
        if cap >= 2 && !cands.is_empty() {
            prop_assert!(
                cands.iter().any(|c| c.len() < q.len() || c.is_empty()),
                "roll-up must survive the cap"
            );
        }
    }

    #[test]
    fn bounds_sandwich_exact_distance(a in subgroups_strategy(), b in subgroups_strategy()) {
        let (ma, mb) = (make_map(0, &a), make_map(1, &b));
        let (sa, sb) = (MapSignature::of(&ma), MapSignature::of(&mb));
        let mut scratch = DistScratch::default();
        let exact = signature_distance(&sa, &sb, &mut scratch);
        prop_assert_eq!(exact.to_bits(), map_distance(&ma, &mb).to_bits());
        let lo = lower_bound(&sa, &sb);
        let lo_refined = refined_lower_bound(&sa, &sb, &mut scratch);
        let hi = upper_bound(&sa, &sb, &mut scratch);
        prop_assert!(lo <= exact + 1e-9, "mixture {lo} > exact {exact}");
        prop_assert!(lo <= lo_refined + 1e-12, "refining must not loosen");
        prop_assert!(lo_refined <= exact + 1e-9, "refined {lo_refined} > exact {exact}");
        prop_assert!(exact <= hi + 1e-9, "exact {exact} > upper {hi}");
    }

    #[test]
    fn lower_bound_tight_for_single_subgroup_maps(
        a in prop::collection::vec(0u64..20, 5),
        b in prop::collection::vec(0u64..20, 5),
    ) {
        // One subgroup per side: the mixture is the lone subgroup, so the
        // centroid bound and the exact distance coincide.
        let ma = make_map(0, std::slice::from_ref(&a));
        let mb = make_map(1, std::slice::from_ref(&b));
        let (sa, sb) = (MapSignature::of(&ma), MapSignature::of(&mb));
        let exact = map_distance(&ma, &mb);
        prop_assert!((lower_bound(&sa, &sb) - exact).abs() < 1e-9);
    }

    #[test]
    fn gmm_byte_identical_across_engine_configs(pool in scored_pool(), k in 1usize..5) {
        // bounds × cache × parallel must all reproduce the default
        // engine's selection exactly, and warm cache replays must too.
        let reference: Vec<MapKey> = select_diverse(pool.clone(), k, SelectionStrategy::DiversityOnly)
            .iter()
            .map(|m| m.map.key)
            .collect();
        let shared = Arc::new(DistanceCache::new(1 << 20));
        let engines = [
            DistanceEngine::new().with_bounds(false),
            DistanceEngine::new().with_cache(Some(shared.clone())),
            DistanceEngine::new().with_bounds(false).with_cache(Some(shared.clone())),
            DistanceEngine::new().with_threads(3),
            DistanceEngine::new().with_cache(Some(shared)).with_threads(3),
        ];
        for (i, engine) in engines.iter().enumerate() {
            let (sel, stats) = select_diverse_tracked(
                pool.clone(),
                k,
                SelectionStrategy::DiversityOnly,
                engine,
            );
            let keys: Vec<MapKey> = sel.iter().map(|m| m.map.key).collect();
            prop_assert_eq!(&keys, &reference, "engine #{} diverged", i);
            let _ = stats.evaluations();
        }
    }

    #[test]
    fn engine_pruning_never_changes_the_minimum(
        a in subgroups_strategy(),
        b in subgroups_strategy(),
        current_min in 0.0f64..1.0,
    ) {
        // Whenever the engine prunes a pair against current_min, the exact
        // distance must indeed be >= current_min (so min() is unchanged).
        let (sa, sb) = (MapSignature::of(&make_map(0, &a)), MapSignature::of(&make_map(1, &b)));
        let mut scratch = DistScratch::default();
        let mut stats = SelectionStats::default();
        let engine = DistanceEngine::new();
        match engine.evaluate_against(&sa, &sb, current_min, &mut scratch, &mut stats) {
            Some(d) => {
                prop_assert_eq!(
                    d.to_bits(),
                    signature_distance(&sa, &sb, &mut scratch).to_bits()
                );
            }
            None => {
                let exact = signature_distance(&sa, &sb, &mut scratch);
                prop_assert!(
                    exact >= current_min,
                    "pruned pair with exact {exact} < min {current_min}"
                );
            }
        }
    }

    #[test]
    fn raw_criteria_ranges(groups in subgroups_strategy()) {
        let dists: Vec<RatingDistribution> = groups
            .iter()
            .map(|c| RatingDistribution::from_counts(c.clone()))
            .filter(|d| !d.is_empty())
            .collect();
        let mut overall = RatingDistribution::new(5);
        for d in &dists {
            overall.merge(d);
        }
        let records: u64 = overall.total();
        let conc = conciseness_raw(records, dists.len());
        prop_assert!(conc >= 0.0);
        let agr = agreement_raw(&dists);
        prop_assert!((0.0..=1.0).contains(&agr));
        let pec = self_peculiarity_raw(&dists, &overall);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&pec));
    }
}
