//! Failure injection and degenerate inputs for the exploration core.

use std::sync::Arc;
use subdex_core::selector::SelectionStrategy;
use subdex_core::{EngineConfig, ExplorationMode, ExplorationSession, PruningStrategy, SdeEngine};
use subdex_store::{
    Cell, Entity, EntityTableBuilder, RatingTableBuilder, Schema, SelectionQuery, SubjectiveDb,
    Value,
};

fn tiny_db(rows: usize, identical_scores: bool) -> Arc<SubjectiveDb> {
    let mut us = Schema::new();
    us.add("a", false);
    let mut ub = EntityTableBuilder::new(us);
    for i in 0..rows.max(1) {
        ub.push_row(vec![Cell::from(if i % 2 == 0 { "x" } else { "y" })]);
    }
    let mut is = Schema::new();
    is.add("b", false);
    let mut ib = EntityTableBuilder::new(is);
    ib.push_row(vec![Cell::from("only")]);
    let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
    for r in 0..rows.max(1) as u32 {
        let s = if identical_scores {
            3
        } else {
            1 + (r % 5) as u8
        };
        rb.push(r, 0, &[s]);
    }
    Arc::new(SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(rows.max(1), 1),
    ))
}

#[test]
fn single_record_database() {
    let db = tiny_db(1, false);
    let mut engine = SdeEngine::new(db, EngineConfig::default());
    let res = engine.step(&SelectionQuery::all());
    assert_eq!(res.group_size, 1);
    // "a" has two dictionary values? No — one row interned only "x";
    // item attr has one value. With all attrs effectively unary the
    // candidate set may be empty; either way: no panic, shapes sane.
    assert!(res.maps.len() <= 3);
}

#[test]
fn all_identical_scores_degenerate_utilities() {
    // Zero variance everywhere: agreement is 1 for every candidate, the
    // peculiarities are 0, conciseness ties — normalizers must not blow up.
    let db = tiny_db(40, true);
    let mut engine = SdeEngine::new(db, EngineConfig::default());
    for _ in 0..3 {
        let res = engine.step(&SelectionQuery::all());
        for m in &res.maps {
            assert!(m.utility.is_finite());
            assert!(m.dw_utility.is_finite());
        }
    }
}

#[test]
fn k_larger_than_candidate_count() {
    let db = tiny_db(30, false);
    let cfg = EngineConfig {
        k: 50,
        ..EngineConfig::default()
    };
    let mut engine = SdeEngine::new(db, cfg);
    let res = engine.step(&SelectionQuery::all());
    // Only one binary attribute × one dimension → 1 candidate map.
    assert!(res.maps.len() <= 1);
}

#[test]
fn more_phases_than_records() {
    let db = tiny_db(4, false);
    let cfg = EngineConfig {
        phases: 64,
        ..EngineConfig::default()
    };
    let mut engine = SdeEngine::new(db, cfg);
    let res = engine.step(&SelectionQuery::all());
    assert_eq!(res.group_size, 4);
    assert!(res.maps.len() <= 3);
}

#[test]
fn zero_recommendations_requested() {
    let db = tiny_db(30, false);
    let cfg = EngineConfig {
        o: 0,
        ..EngineConfig::default()
    };
    let mut engine = SdeEngine::new(db, cfg);
    let res = engine.step(&SelectionQuery::all());
    assert!(res.recommendations.is_empty());
}

#[test]
fn extreme_delta_values() {
    let db = tiny_db(50, false);
    for delta in [1e-9, 0.999_999] {
        let cfg = EngineConfig {
            delta,
            pruning: PruningStrategy::ConfidenceInterval,
            ..EngineConfig::default()
        };
        let mut engine = SdeEngine::new(db.clone(), cfg);
        let res = engine.step(&SelectionQuery::all());
        assert!(res.maps.iter().all(|m| m.utility.is_finite()));
    }
}

#[test]
fn diversity_only_with_single_candidate() {
    let db = tiny_db(30, false);
    let cfg = EngineConfig {
        selection: SelectionStrategy::DiversityOnly,
        ..EngineConfig::default()
    };
    let mut engine = SdeEngine::new(db, cfg);
    let res = engine.step(&SelectionQuery::all());
    assert!(res.maps.len() <= 1);
}

#[test]
fn session_survives_dead_end() {
    // Query a value that exists but leads nowhere further; the session
    // should stop gracefully rather than loop or panic.
    let db = tiny_db(20, false);
    let mut s = ExplorationSession::new(
        db.clone(),
        EngineConfig::default(),
        ExplorationMode::FullyAutomated,
    );
    let x = db.pred(Entity::Reviewer, "a", &Value::str("x")).unwrap();
    let q = SelectionQuery::from_preds(vec![x]);
    let steps = s.auto_run(&q, 10);
    assert!(steps >= 1);
    assert!(steps <= 10);
}

#[test]
fn unconstrained_unary_attribute_excluded_from_maps() {
    // Item attribute "b" has a single value → cannot partition → never a map.
    let db = tiny_db(30, false);
    let mut engine = SdeEngine::new(db.clone(), EngineConfig::default());
    let res = engine.step(&SelectionQuery::all());
    let b = db.items().schema().attr_by_name("b").unwrap();
    assert!(res
        .maps
        .iter()
        .all(|m| !(m.map.key.entity == Entity::Item && m.map.key.attr == b)));
}

#[test]
fn repeated_identical_steps_accumulate_seen_state() {
    let db = tiny_db(30, false);
    let mut engine = SdeEngine::new(db, EngineConfig::default());
    let q = SelectionQuery::all();
    let first = engine.step(&q);
    let second = engine.step(&q);
    // Global peculiarity of a re-shown map drops to ~0 (its distribution
    // is now among the seen references), so utilities may shift — but the
    // engine must keep functioning and dimension counts keep growing.
    assert_eq!(first.maps.len(), second.maps.len());
    assert_eq!(
        engine.seen().total_displayed() as usize,
        first.maps.len() + second.maps.len()
    );
}
