//! Property tests pinning the columnar scan layer to a naive per-record
//! reference: over randomized databases (atomic and multi-valued grouping
//! attributes), the gathered-block kernels must produce exactly the counts
//! a record-at-a-time loop produces, and the generator's final pool must be
//! byte-identical across parallelism, chunking, and group construction
//! paths, for every pruning mode.

use proptest::prelude::*;
use proptest::strategy::Just;

use subdex_core::accumulator::{candidate_keys, FamilyAccumulator};
use subdex_core::generator::{self, CriterionNormalizers, GeneratorConfig};
use subdex_core::{PruningStrategy, SeenContext};
use subdex_stats::RatingDistribution;
use subdex_store::{
    table::EntityTableBuilder, Cell, DimId, Entity, RatingGroup, ScanScratch, Schema,
    SelectionQuery, SubjectiveDb, Value, ValueId,
};

const SCALE: u8 = 5;

/// Blueprint for one randomized database.
#[derive(Debug, Clone)]
struct DbSpec {
    /// Reviewer attribute value index (0..3) per reviewer.
    reviewer_attr: Vec<usize>,
    /// Item city value index (0..3) per item.
    item_city: Vec<usize>,
    /// Tag subset per item (multi-valued attribute, possibly empty).
    item_tags: Vec<Vec<bool>>,
    /// Rating dimension count (1..=3).
    dims: usize,
    /// `(reviewer, item, scores)` triples; deduped by (reviewer, item).
    ratings: Vec<(u32, u32, Vec<u8>)>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (2usize..8, 2usize..6, 1usize..=3)
        .prop_flat_map(|(n_reviewers, n_items, dims)| {
            (
                prop::collection::vec(0usize..3, n_reviewers),
                prop::collection::vec(0usize..3, n_items),
                prop::collection::vec(prop::collection::vec(prop::bool::ANY, 3usize), n_items),
                Just(dims),
                prop::collection::vec(
                    (
                        0..n_reviewers as u32,
                        0..n_items as u32,
                        prop::collection::vec(1u8..=SCALE, dims),
                    ),
                    1..40,
                ),
            )
        })
        .prop_map(|(reviewer_attr, item_city, item_tags, dims, mut ratings)| {
            // The rating table is keyed by (reviewer, item); keep the
            // first occurrence of each pair.
            let mut seen = std::collections::HashSet::new();
            ratings.retain(|&(r, i, _)| seen.insert((r, i)));
            DbSpec {
                reviewer_attr,
                item_city,
                item_tags,
                dims,
                ratings,
            }
        })
}

fn build_db(spec: &DbSpec) -> SubjectiveDb {
    let mut us = Schema::new();
    us.add("group", false);
    let mut ub = EntityTableBuilder::new(us);
    for &v in &spec.reviewer_attr {
        ub.push_row(vec![Cell::from(["a", "b", "c"][v])]);
    }
    let mut is = Schema::new();
    is.add("city", false);
    is.add("tags", true);
    let mut ib = EntityTableBuilder::new(is);
    for (&city, tags) in spec.item_city.iter().zip(&spec.item_tags) {
        let tag_values = ["t0", "t1", "t2"]
            .iter()
            .zip(tags)
            .filter(|(_, &on)| on)
            .map(|(t, _)| Value::str(*t))
            .collect();
        ib.push_row(vec![
            Cell::from(["NYC", "SF", "LA"][city]),
            Cell::Many(tag_values),
        ]);
    }
    let dim_names = (0..spec.dims).map(|d| format!("d{d}")).collect();
    let mut rb = subdex_store::ratings::RatingTableBuilder::new(dim_names, SCALE);
    for (r, i, scores) in &spec.ratings {
        rb.push(*r, *i, scores);
    }
    SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(spec.reviewer_attr.len(), spec.item_city.len()),
    )
}

/// Record-at-a-time reference: resolve each record's entity row, then bump
/// one count per (dimension, grouping value, score). This is the loop the
/// columnar kernels replaced.
fn naive_counts(
    db: &SubjectiveDb,
    entity: Entity,
    attr: subdex_store::AttrId,
    dims: &[DimId],
    records: &[u32],
) -> Vec<Vec<u64>> {
    let table = db.table(entity);
    let ratings = db.ratings();
    let scale = SCALE as usize;
    let value_count = table.dictionary(attr).len();
    let mut counts = vec![vec![0u64; value_count * scale]; dims.len()];
    for &rec in records {
        let row = match entity {
            Entity::Reviewer => ratings.reviewer_of(rec),
            Entity::Item => ratings.item_of(rec),
        };
        for (dim_pos, &dim) in dims.iter().enumerate() {
            let score = ratings.score(rec, dim) as usize;
            for &v in table.values(row, attr) {
                counts[dim_pos][v.index() * scale + score - 1] += 1;
            }
        }
    }
    counts
}

/// Distributions exactly as [`FamilyAccumulator::distributions`] reports
/// them: non-empty subgroups only, plus the merged overall distribution.
fn distributions_from_counts(
    counts: &[u64],
    value_count: usize,
) -> (Vec<(ValueId, RatingDistribution)>, RatingDistribution) {
    let scale = SCALE as usize;
    let mut subs = Vec::new();
    let mut overall = RatingDistribution::new(scale);
    for v in 0..value_count {
        let slice = &counts[v * scale..(v + 1) * scale];
        if slice.iter().all(|&c| c == 0) {
            continue;
        }
        let dist = RatingDistribution::from_counts(slice.to_vec());
        overall.merge(&dist);
        subs.push((ValueId(v as u32), dist));
    }
    (subs, overall)
}

/// Fingerprint of a generator pool: key plus bit-exact utility scores.
fn pool_fingerprint(out: &generator::GeneratorOutput) -> Vec<(String, u64, u64)> {
    out.pool
        .iter()
        .map(|m| {
            (
                format!("{:?}", m.map.key),
                m.utility.to_bits(),
                m.dw_utility.to_bits(),
            )
        })
        .collect()
}

fn run_generate(
    db: &SubjectiveDb,
    group: &RatingGroup,
    pruning: PruningStrategy,
    parallel: bool,
    threads: usize,
) -> generator::GeneratorOutput {
    let q = SelectionQuery::all();
    let seen = SeenContext::new(db.ratings().dim_count());
    let mut norms = CriterionNormalizers::new(Default::default());
    let cfg = GeneratorConfig {
        pruning,
        parallel,
        threads,
        phases: 4,
        ..GeneratorConfig::default()
    };
    generator::generate(db, group, &q, &seen, &mut norms, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both kernels (atomic "group"/"city", CSR "tags") must reproduce the
    /// naive per-record counts exactly, whole-block and chunked.
    #[test]
    fn kernel_counts_match_naive_reference(spec in db_spec()) {
        let db = build_db(&spec);
        let group = db.scan_group(&SelectionQuery::all(), 42);
        prop_assume!(!group.is_empty());
        let dims: Vec<DimId> = db.ratings().dims().collect();
        let mut scratch = ScanScratch::new();
        scratch.prepare_group(db.ratings(), &group);

        for (entity, attr, fam_dims) in candidate_keys(&db, &SelectionQuery::all()) {
            let value_count = db.table(entity).dictionary(attr).len();
            let naive = naive_counts(&db, entity, attr, &fam_dims, group.records());

            // Whole block through update_block.
            let mut fam = FamilyAccumulator::new(&db, entity, attr, fam_dims.clone());
            let block = scratch.gather_phase(db.ratings(), &group, 0..group.len(), &dims);
            fam.update_block(&db, &block);
            for (dim_pos, counts) in naive.iter().enumerate() {
                prop_assert_eq!(
                    fam.distributions(dim_pos),
                    distributions_from_counts(counts, value_count)
                );
            }
            prop_assert_eq!(fam.records_processed(), group.len() as u64);

            // Chunked through scan_block at several thread counts.
            for threads in [1usize, 2, 3] {
                let mut fams =
                    vec![FamilyAccumulator::new(&db, entity, attr, fam_dims.clone())];
                let block = scratch.gather_phase(db.ratings(), &group, 0..group.len(), &dims);
                generator::scan_block(&db, &mut fams, &block, threads);
                for (dim_pos, counts) in naive.iter().enumerate() {
                    prop_assert_eq!(
                        fams[0].distributions(dim_pos),
                        distributions_from_counts(counts, value_count)
                    );
                }
            }
        }
    }

    /// The generator's final rating-map pool must be byte-identical across
    /// every pruning mode × parallelism setting, and across the two group
    /// construction paths (in-place shuffle vs gathered columns — the
    /// uncached and cached paths respectively).
    #[test]
    fn generate_identical_across_modes(spec in db_spec()) {
        let db = build_db(&spec);
        let q = SelectionQuery::all();
        let group = db.rating_group(&q, 7);
        prop_assume!(!group.is_empty());
        let columnar = db.scan_group(&q, 7);
        prop_assert_eq!(group.records(), columnar.records());

        for pruning in [
            PruningStrategy::None,
            PruningStrategy::ConfidenceInterval,
            PruningStrategy::Mab,
            PruningStrategy::Both,
        ] {
            let reference = pool_fingerprint(&run_generate(&db, &group, pruning, false, 0));
            for threads in [2usize, 4] {
                let parallel = run_generate(&db, &group, pruning, true, threads);
                prop_assert_eq!(&pool_fingerprint(&parallel), &reference);
            }
            let via_columns = run_generate(&db, &columnar, pruning, false, 0);
            prop_assert_eq!(&pool_fingerprint(&via_columns), &reference);
        }
    }
}
