//! The executor's high-water scratch trim: a session that steps from a
//! huge root group down to small refined groups must stop pinning the
//! root-sized pooled buffers once a trim window of small steps closes.

use std::sync::Arc;

use subdex_core::generator::{CriterionNormalizers, SeenContext};
use subdex_core::plan::{ExecContext, StepExecutor, StepPlan};
use subdex_core::EngineConfig;
use subdex_store::{
    table::EntityTableBuilder, AttrValue, Cell, Entity, Schema, SelectionQuery, SubjectiveDb, Value,
};

const SCALE: u8 = 5;
const REVIEWERS: u32 = 300;
const ITEMS: u32 = 150;

/// A database whose root group is large (every reviewer rates every item)
/// and where `city = LA` selects a single item — a ~1% refinement.
fn build_db() -> Arc<SubjectiveDb> {
    let mut rs = Schema::new();
    rs.add("team", false);
    let mut rb = EntityTableBuilder::new(rs);
    for r in 0..REVIEWERS {
        rb.push_row(vec![Cell::from(["red", "green", "blue"][(r % 3) as usize])]);
    }
    let mut is = Schema::new();
    is.add("city", false);
    let mut ib = EntityTableBuilder::new(is);
    for i in 0..ITEMS {
        ib.push_row(vec![Cell::from(if i == ITEMS - 1 { "LA" } else { "NYC" })]);
    }
    let mut tb = subdex_store::ratings::RatingTableBuilder::new(
        vec![
            "overall".into(),
            "food".into(),
            "service".into(),
            "value".into(),
        ],
        SCALE,
    );
    for r in 0..REVIEWERS {
        for i in 0..ITEMS {
            let scores: Vec<u8> = (0..4u32)
                .map(|d| ((r * (7 + d) + i * (3 + d)) % SCALE as u32) as u8 + 1)
                .collect();
            tb.push(r, i, &scores);
        }
    }
    Arc::new(SubjectiveDb::new(
        rb.build(),
        ib.build(),
        tb.build(REVIEWERS as usize, ITEMS as usize),
    ))
}

fn la_query(db: &SubjectiveDb) -> SelectionQuery {
    let attr = db
        .table(Entity::Item)
        .schema()
        .attr_by_name("city")
        .unwrap();
    let value = db
        .table(Entity::Item)
        .dictionary(attr)
        .code(&Value::str("LA"))
        .unwrap();
    SelectionQuery::from_preds(vec![AttrValue::new(Entity::Item, attr, value)])
}

#[test]
fn resident_scratch_drops_after_large_to_small_sequence() {
    let db = build_db();
    // Two wide phases: each phase gathers half the group's records for all
    // four dimensions, so the pooled scan buffers actually reach
    // root-group scale (with many narrow phases they stay per-phase-sized).
    // Recommendations are off so the refined steps are genuinely small:
    // with them on, every small step would still evaluate the
    // change-predicate candidate `city = NYC` — almost the whole database —
    // and the scratch would legitimately stay large (which the policy
    // correctly preserves; see `steady_large_workload_is_never_trimmed`).
    let config = EngineConfig {
        phases: 2,
        recommendations: false,
        ..EngineConfig::default()
    };
    let root = SelectionQuery::all();
    let small = la_query(&db);
    let root_plan = StepPlan::compile(&config, &root);
    let small_plan = StepPlan::compile(&config, &small);

    let mut seen = SeenContext::new(db.ratings().dim_count());
    let mut normalizers = CriterionNormalizers::new(config.normalizer);
    let mut ctx = ExecContext::new();
    let mut exec = StepExecutor {
        db: &db,
        group_cache: None,
        dist_cache: None,
        seen: &mut seen,
        normalizers: &mut normalizers,
        ctx: &mut ctx,
    };

    // Two steps over the full database grow every pooled buffer to
    // root-group size.
    for step in 0..2 {
        let result = exec.run(&root_plan, &root, step);
        assert_eq!(result.group_size, (REVIEWERS * ITEMS) as usize);
    }
    let resident_large = exec.ctx.resident_scratch_bytes();
    assert!(
        resident_large > 64 * 1024,
        "root-group scratch must be far above the trim floor, got {resident_large} bytes"
    );

    // A run of small-query steps: once a whole trim window holds only
    // small demand, the executor must release the root-sized capacity.
    for step in 2..12 {
        let result = exec.run(&small_plan, &small, step);
        assert_eq!(result.group_size, REVIEWERS as usize);
    }
    let resident_after = exec.ctx.resident_scratch_bytes();
    assert!(
        resident_after < resident_large / 4,
        "resident scratch must drop after the trim \
         ({resident_large} -> {resident_after} bytes)"
    );

    // Steady small-query stepping afterwards never re-triggers growth back
    // to root scale.
    for step in 12..16 {
        exec.run(&small_plan, &small, step);
    }
    assert!(
        exec.ctx.resident_scratch_bytes() < resident_large / 4,
        "small steady state must stay small"
    );
}

#[test]
fn steady_large_workload_is_never_trimmed() {
    let db = build_db();
    let config = EngineConfig {
        phases: 2,
        recommendations: false,
        ..EngineConfig::default()
    };
    let root = SelectionQuery::all();
    let plan = StepPlan::compile(&config, &root);

    let mut seen = SeenContext::new(db.ratings().dim_count());
    let mut normalizers = CriterionNormalizers::new(config.normalizer);
    let mut ctx = ExecContext::new();
    let mut exec = StepExecutor {
        db: &db,
        group_cache: None,
        dist_cache: None,
        seen: &mut seen,
        normalizers: &mut normalizers,
        ctx: &mut ctx,
    };

    exec.run(&plan, &root, 0);
    let warm = exec.ctx.resident_scratch_bytes();
    // Several full trim windows of identical demand: capacity must be
    // retained (a trim here would force a re-warm every window).
    for step in 1..13 {
        exec.run(&plan, &root, step);
        assert!(
            exec.ctx.resident_scratch_bytes() >= warm,
            "steady workload lost its warm buffers at step {step}"
        );
    }
}
