//! Property tests pinning the plan executor byte-identical to the
//! pre-refactor monolithic `SdeEngine::step`.
//!
//! `LegacyEngine` below is a line-for-line replica of the engine's step
//! loop as it existed before the `core::plan` planner/executor split —
//! the hard-coded phase order, the unpooled scratch, the scattered result
//! fields. Over randomized databases and query paths, every engine
//! variant (the five Section 5.1 presets) × group-cache on/off ×
//! distance-cache on/off must produce bit-exact displayed maps,
//! recommendations, and counters through both paths.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::strategy::Just;

use subdex_core::generator::{self, CriterionNormalizers, SeenContext};
use subdex_core::mapdist::DistanceEngine;
use subdex_core::ratingmap::ScoredRatingMap;
use subdex_core::recommend::{self, Materialization, Recommendation};
use subdex_core::selector::select_diverse_tracked;
use subdex_core::{EngineConfig, SdeEngine, SelectionStats, StepResult};
use subdex_store::{
    table::EntityTableBuilder, AttrValue, Cell, DistanceCache, Entity, GroupCache, GroupColumns,
    RatingGroup, ScanScratch, Schema, SelectionQuery, SubjectiveDb, Value,
};

const SCALE: u8 = 5;

/// The engine's step loop exactly as it was before the planner/executor
/// refactor. Kept test-only; the production path is `SdeEngine::step`.
struct LegacyEngine {
    db: Arc<SubjectiveDb>,
    config: EngineConfig,
    seen: SeenContext,
    normalizers: CriterionNormalizers,
    step_counter: usize,
    group_cache: Option<Arc<GroupCache>>,
    dist_cache: Option<Arc<DistanceCache>>,
    scratch: ScanScratch,
}

struct LegacyResult {
    step: usize,
    group_size: usize,
    maps: Vec<ScoredRatingMap>,
    recommendations: Vec<Recommendation>,
    generator_stats: (usize, usize, usize),
    materialization: Materialization,
    selection: SelectionStats,
    db_epoch: u64,
}

impl LegacyEngine {
    fn new(db: Arc<SubjectiveDb>, config: EngineConfig) -> Self {
        let dim_count = db.ratings().dim_count();
        Self {
            db,
            seen: SeenContext::new(dim_count),
            normalizers: CriterionNormalizers::new(config.normalizer),
            config,
            step_counter: 0,
            group_cache: None,
            dist_cache: None,
            scratch: ScanScratch::new(),
        }
    }

    fn step(&mut self, query: &SelectionQuery) -> LegacyResult {
        let step = self.step_counter;
        self.step_counter += 1;

        let seed = self
            .config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(step as u64);
        let mut materialization = Materialization::default();
        // Route accounting mirrors the production executor: the planner's
        // walk-vs-probe decision is part of the observable counters now.
        let count_route = |m: &mut Materialization, route| {
            if route == subdex_store::GroupRoute::Probe {
                m.probed += 1;
            } else {
                m.walked += 1;
            }
        };
        let parent_cols: Arc<GroupColumns> = match &self.group_cache {
            Some(cache) => {
                let mut computed = None;
                let arc = cache.get_or_insert_with(query, self.db.epoch(), || {
                    let (cols, route) = self.db.collect_group_columns_routed(query);
                    computed = Some(route);
                    cols
                });
                match computed {
                    Some(route) => count_route(&mut materialization, route),
                    None => materialization.cached += 1,
                }
                arc
            }
            None => {
                let (cols, route) = self.db.collect_group_columns_routed(query);
                count_route(&mut materialization, route);
                Arc::new(cols)
            }
        };
        let group = RatingGroup::from_columns(&parent_cols, seed);
        let gen_cfg = self.config.generator_config();
        let out = generator::generate_with_scratch(
            &self.db,
            &group,
            query,
            &self.seen,
            &mut self.normalizers,
            &gen_cfg,
            &mut self.scratch,
        );
        let (total, ci, mab) = (out.candidates_total, out.pruned_ci, out.pruned_mab);
        let pool_size = self
            .config
            .selection
            .pool_size(self.config.k, out.pool.len());
        let pool: Vec<ScoredRatingMap> = out
            .pool
            .into_iter()
            .take(pool_size.max(self.config.k))
            .collect();
        let dist_engine = DistanceEngine::new()
            .with_bounds(self.config.distance_bounds)
            .with_cache(self.dist_cache.clone())
            .with_threads(if self.config.parallel {
                self.config.threads
            } else {
                1
            });
        let (maps, mut selection) = select_diverse_tracked(
            pool.clone(),
            self.config.k,
            self.config.selection,
            &dist_engine,
        );

        for m in &maps {
            self.seen.record_displayed(&m.map);
        }

        let recommendations = if self.config.recommendations {
            let (recs, rec_stats, rec_sel) = recommend::recommend_with_stats(
                &self.db,
                query,
                &pool,
                &self.seen,
                &self.normalizers,
                &gen_cfg,
                &self.config.recommend_config(),
                seed,
                self.group_cache.as_deref(),
                Some(&parent_cols),
                Some(&dist_engine),
            );
            materialization.merge(&rec_stats);
            selection.merge(&rec_sel);
            recs
        } else {
            Vec::new()
        };

        LegacyResult {
            step,
            group_size: group.len(),
            maps,
            recommendations,
            generator_stats: (total, ci, mab),
            materialization,
            selection,
            db_epoch: self.db.epoch(),
        }
    }
}

/// Everything observable about a step except wall-clock times (which can
/// never match across runs). Selection counters are compared without
/// `select_time` for the same reason.
type Fingerprint = (
    usize,                             // step
    usize,                             // group_size
    Vec<(u64, u64)>,                   // map keys' (dw_utility, utility) bits
    Vec<String>,                       // map keys rendered
    Vec<(SelectionQuery, u64, usize)>, // recommendations
    (usize, usize, usize),             // generator counters
    Materialization,                   // materialization paths
    (u64, u64, u64, u64),              // selection counters sans time
    u64,                               // db epoch
);

fn map_bits(maps: &[ScoredRatingMap]) -> (Vec<(u64, u64)>, Vec<String>) {
    (
        maps.iter()
            .map(|m| (m.dw_utility.to_bits(), m.utility.to_bits()))
            .collect(),
        maps.iter().map(|m| format!("{:?}", m.map.key)).collect(),
    )
}

fn rec_fp(recs: &[Recommendation]) -> Vec<(SelectionQuery, u64, usize)> {
    recs.iter()
        .map(|r| (r.query.clone(), r.utility.to_bits(), r.group_size))
        .collect()
}

fn sel_fp(s: &SelectionStats) -> (u64, u64, u64, u64) {
    (
        s.exact_solves,
        s.pruned_mixture,
        s.pruned_matrix,
        s.cache_hits,
    )
}

fn legacy_fp(r: &LegacyResult) -> Fingerprint {
    let (bits, keys) = map_bits(&r.maps);
    (
        r.step,
        r.group_size,
        bits,
        keys,
        rec_fp(&r.recommendations),
        r.generator_stats,
        r.materialization,
        sel_fp(&r.selection),
        r.db_epoch,
    )
}

fn planned_fp(r: &StepResult) -> Fingerprint {
    let (bits, keys) = map_bits(&r.maps);
    (
        r.step,
        r.group_size,
        bits,
        keys,
        rec_fp(&r.recommendations),
        (
            r.stats.generator.candidates_total,
            r.stats.generator.pruned_ci,
            r.stats.generator.pruned_mab,
        ),
        r.stats.materialization,
        sel_fp(&r.stats.selection),
        r.stats.db_epoch,
    )
}

/// Runs the same query path through both engines under the same caches
/// configuration and asserts bit-exact agreement at every step.
fn assert_paths_equal(
    db: &Arc<SubjectiveDb>,
    cfg: EngineConfig,
    queries: &[SelectionQuery],
    group_cache: bool,
    dist_cache: bool,
) {
    let run_legacy = || {
        let mut e = LegacyEngine::new(db.clone(), cfg);
        e.group_cache = group_cache.then(|| Arc::new(GroupCache::new(1 << 20)));
        e.dist_cache = dist_cache.then(|| Arc::new(DistanceCache::new(1 << 20)));
        queries
            .iter()
            .map(|q| legacy_fp(&e.step(q)))
            .collect::<Vec<_>>()
    };
    let run_planned = || {
        let mut e = SdeEngine::new(db.clone(), cfg);
        e.set_group_cache(group_cache.then(|| Arc::new(GroupCache::new(1 << 20))));
        e.set_distance_cache(dist_cache.then(|| Arc::new(DistanceCache::new(1 << 20))));
        queries
            .iter()
            .map(|q| planned_fp(&e.step(q)))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run_planned(),
        run_legacy(),
        "group_cache={group_cache} dist_cache={dist_cache} cfg={cfg:?}"
    );
}

// ---- randomized databases (same shape as recommend_equivalence.rs) -----

#[derive(Debug, Clone)]
struct DbSpec {
    reviewer_attr: Vec<usize>,
    item_city: Vec<usize>,
    dims: usize,
    ratings: Vec<(u32, u32, Vec<u8>)>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (3usize..9, 2usize..6, 1usize..=2)
        .prop_flat_map(|(n_reviewers, n_items, dims)| {
            (
                prop::collection::vec(0usize..3, n_reviewers),
                prop::collection::vec(0usize..3, n_items),
                Just(dims),
                prop::collection::vec(
                    (
                        0..n_reviewers as u32,
                        0..n_items as u32,
                        prop::collection::vec(1u8..=SCALE, dims),
                    ),
                    4..40,
                ),
            )
        })
        .prop_map(|(reviewer_attr, item_city, dims, mut ratings)| {
            let mut seen = std::collections::HashSet::new();
            ratings.retain(|&(r, i, _)| seen.insert((r, i)));
            DbSpec {
                reviewer_attr,
                item_city,
                dims,
                ratings,
            }
        })
}

fn build_db(spec: &DbSpec) -> Arc<SubjectiveDb> {
    let mut us = Schema::new();
    us.add("group", false);
    let mut ub = EntityTableBuilder::new(us);
    for &v in &spec.reviewer_attr {
        ub.push_row(vec![Cell::from(["a", "b", "c"][v])]);
    }
    let mut is = Schema::new();
    is.add("city", false);
    let mut ib = EntityTableBuilder::new(is);
    for &city in &spec.item_city {
        ib.push_row(vec![Cell::from(["NYC", "SF", "LA"][city])]);
    }
    let dim_names = (0..spec.dims).map(|d| format!("d{d}")).collect();
    let mut rb = subdex_store::ratings::RatingTableBuilder::new(dim_names, SCALE);
    for (r, i, scores) in &spec.ratings {
        rb.push(*r, *i, scores);
    }
    Arc::new(SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(spec.reviewer_attr.len(), spec.item_city.len()),
    ))
}

fn candidate_preds(db: &SubjectiveDb) -> Vec<AttrValue> {
    let mut preds = Vec::new();
    for v in ["a", "b", "c"] {
        preds.extend(db.pred(Entity::Reviewer, "group", &Value::str(v)));
    }
    for v in ["NYC", "SF", "LA"] {
        preds.extend(db.pred(Entity::Item, "city", &Value::str(v)));
    }
    preds
}

/// A 3-step path: the root, one drill-down picked by the mask, the root
/// again (revisits make the caches and seen-context state matter).
fn query_path(db: &SubjectiveDb, pick: usize) -> Vec<SelectionQuery> {
    let preds = candidate_preds(db);
    let mut path = vec![SelectionQuery::all()];
    if !preds.is_empty() {
        path.push(SelectionQuery::from_preds(vec![preds[pick % preds.len()]]));
    }
    path.push(SelectionQuery::all());
    path
}

fn presets() -> [EngineConfig; 5] {
    [
        EngineConfig::subdex(),
        EngineConfig::no_pruning(),
        EngineConfig::ci_pruning(),
        EngineConfig::mab_pruning(),
        EngineConfig::no_parallelism(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The planned path equals the legacy path on every preset, over
    /// randomized databases and drill-down paths, without caches.
    #[test]
    fn planned_equals_legacy_across_presets(
        spec in db_spec(),
        pick in 0usize..16,
        seed in 0u64..100,
    ) {
        let db = build_db(&spec);
        let queries = query_path(&db, pick);
        for mut cfg in presets() {
            cfg.seed = seed;
            cfg.max_candidates = 8;
            assert_paths_equal(&db, cfg, &queries, false, false);
        }
    }

    /// Cache configurations (group × distance) agree too: pooled scratch
    /// must not perturb cache hit/miss accounting or results.
    #[test]
    fn planned_equals_legacy_across_caches(
        spec in db_spec(),
        pick in 0usize..16,
    ) {
        let db = build_db(&spec);
        let queries = query_path(&db, pick);
        let cfg = EngineConfig {
            max_candidates: 8,
            ..EngineConfig::subdex()
        };
        for group_cache in [false, true] {
            for dist_cache in [false, true] {
                assert_paths_equal(&db, cfg, &queries, group_cache, dist_cache);
            }
        }
    }
}

/// Deterministic (non-property) pin: the naive preset and the
/// recommendations-off / diversity-only variants over a fixed database,
/// exercised with both caches on — the exhaustive corner the proptests
/// sample around.
#[test]
fn pinned_variants_on_fixed_db() {
    let spec = DbSpec {
        reviewer_attr: vec![0, 1, 2, 0, 1, 2, 0, 1],
        item_city: vec![0, 1, 2, 0],
        dims: 2,
        ratings: (0..8u32)
            .flat_map(|r| {
                (0..4u32).map(move |i| {
                    (
                        r,
                        i,
                        vec![1 + ((r + i) % 5) as u8, 1 + ((r * 3 + i) % 5) as u8],
                    )
                })
            })
            .collect(),
    };
    let db = build_db(&spec);
    let queries = query_path(&db, 1);

    let mut variants = vec![EngineConfig::naive()];
    variants.push(EngineConfig {
        recommendations: false,
        ..EngineConfig::subdex()
    });
    variants.push(EngineConfig {
        selection: subdex_core::selector::SelectionStrategy::DiversityOnly,
        parallel: false,
        ..EngineConfig::subdex()
    });
    for cfg in variants {
        assert_paths_equal(&db, cfg, &queries, true, true);
    }
}
