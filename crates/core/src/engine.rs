//! The SDE engine (Section 4, Figure 4).
//!
//! [`SdeEngine`] wires the pieces of the architecture together. Per step it
//! materializes the rating group for the current selection, asks the
//! RM-Set generator for the diverse top-`k` rating maps, asks the
//! Recommendation Builder for the top-`o` next-step operations, and updates
//! the seen-context (dimension counts + global-peculiarity references).
//!
//! [`EngineConfig`] exposes every knob of the evaluation, with named
//! constructors for the scalability baselines of Section 5.1
//! (No-Pruning, CI Pruning, MAB Pruning, No-Parallelism, Naive).

use crate::generator::{CriterionNormalizers, GeneratorConfig, SeenContext};
use crate::plan::{ExecContext, StepExecutor, StepPlan, StepStats};
use crate::pruning::PruningStrategy;
use crate::ratingmap::ScoredRatingMap;
use crate::recommend::{RecommendConfig, Recommendation};
use crate::selector::SelectionStrategy;
use crate::utility::UtilityCombiner;
use std::sync::Arc;
use subdex_stats::normalize::NormalizerKind;
use subdex_store::{DistanceCache, GroupCache, SelectionQuery, SubjectiveDb};

/// Full engine configuration (defaults follow Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Rating maps displayed per step (`k`, default 3).
    pub k: usize,
    /// Next-step recommendations per step (`o`, default 3).
    pub o: usize,
    /// Pruning-diversity factor (`l`, default 3).
    pub l: usize,
    /// Final-selection strategy. [`EngineConfig::selection`] defaults to
    /// `Hybrid { l }`; override for the Table 5 utility-only /
    /// diversity-only variants.
    pub selection: SelectionStrategy,
    /// Phase count `n` (default 10, as in SeeDB).
    pub phases: usize,
    /// Hoeffding–Serfling error probability.
    pub delta: f64,
    /// Which pruning optimizations run.
    pub pruning: PruningStrategy,
    /// Whether family scans and candidate evaluation run on worker threads.
    pub parallel: bool,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
    /// Criterion normalization family.
    pub normalizer: NormalizerKind,
    /// Criterion → utility aggregation (Max is the paper's; the rest are
    /// ablations).
    pub combiner: UtilityCombiner,
    /// Whether to compute next-step recommendations at all (User-Driven
    /// exploration does not need them).
    pub recommendations: bool,
    /// Apply dimension weighting (Equation 1); the Figure 9 ablation
    /// turns this off.
    pub dimension_weighting: bool,
    /// Distance backing the peculiarity criteria (TVD by default).
    pub peculiarity: crate::interest::PeculiarityMeasure,
    /// Cap on evaluated candidate operations per step.
    pub max_candidates: usize,
    /// Prune GMM distance evaluations with exact lower bounds (selections
    /// are byte-identical either way; disable only to measure the
    /// unbounded path).
    pub distance_bounds: bool,
    /// Base RNG seed (phase shuffles are derived deterministically).
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            k: 3,
            o: 3,
            l: 3,
            selection: SelectionStrategy::Hybrid { l: 3 },
            phases: 10,
            delta: 0.05,
            pruning: PruningStrategy::Both,
            parallel: true,
            threads: 0,
            normalizer: NormalizerKind::ZLogistic,
            combiner: UtilityCombiner::Max,
            recommendations: true,
            dimension_weighting: true,
            peculiarity: crate::interest::PeculiarityMeasure::TotalVariation,
            max_candidates: 48,
            distance_bounds: true,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// The full SubDEx configuration (both prunings + parallelism).
    pub fn subdex() -> Self {
        Self::default()
    }

    /// Baseline (I): no pruning, parallelism kept.
    pub fn no_pruning() -> Self {
        Self {
            pruning: PruningStrategy::None,
            ..Self::subdex()
        }
    }

    /// Baseline (II): confidence-interval pruning only.
    pub fn ci_pruning() -> Self {
        Self {
            pruning: PruningStrategy::ConfidenceInterval,
            ..Self::subdex()
        }
    }

    /// Baseline (III): multi-armed-bandit pruning only.
    pub fn mab_pruning() -> Self {
        Self {
            pruning: PruningStrategy::Mab,
            ..Self::subdex()
        }
    }

    /// Baseline (IV): sequential recommendation builder and scans.
    pub fn no_parallelism() -> Self {
        Self {
            parallel: false,
            ..Self::subdex()
        }
    }

    /// Baseline (V): no pruning *and* no parallelism.
    pub fn naive() -> Self {
        Self {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Self::subdex()
        }
    }

    /// Sets the pruning-diversity factor and keeps the selection strategy
    /// consistent (`l == 1` ⇒ utility-only).
    pub fn with_l(mut self, l: usize) -> Self {
        self.l = l.max(1);
        self.selection = if self.l == 1 {
            SelectionStrategy::UtilityOnly
        } else {
            SelectionStrategy::Hybrid { l: self.l }
        };
        self
    }

    /// Compiles the generate-phase configuration this engine config
    /// implies (the `k′ = k·l` focus, the Diversity-Only pruning
    /// override, the thread counts). Public so the plan compiler and the
    /// equivalence tests see the exact same derivation the engine uses.
    pub fn generator_config(&self) -> GeneratorConfig {
        let k_prime = match self.selection {
            SelectionStrategy::UtilityOnly => self.k,
            SelectionStrategy::Hybrid { l } => self.k * l.max(1),
            // Diversity-only needs every candidate: disable the top-k′
            // focus by making it unbounded.
            SelectionStrategy::DiversityOnly => usize::MAX / 2,
        };
        GeneratorConfig {
            k_prime,
            phases: self.phases,
            delta: self.delta,
            pruning: match self.selection {
                SelectionStrategy::DiversityOnly => PruningStrategy::None,
                _ => self.pruning,
            },
            parallel: self.parallel,
            threads: self.threads,
            combiner: self.combiner,
            use_dw: self.dimension_weighting,
            peculiarity: self.peculiarity,
        }
    }

    /// Compiles the recommendation-phase configuration this engine config
    /// implies. Public for the same reason as
    /// [`EngineConfig::generator_config`].
    pub fn recommend_config(&self) -> RecommendConfig {
        RecommendConfig {
            o: self.o,
            k: self.k,
            selection: self.selection,
            max_candidates: self.max_candidates,
            change_fanout: 2,
            parallel: self.parallel,
            threads: self.threads,
            derive_candidates: true,
        }
    }
}

/// Everything one exploration step produced.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Step index within the session (0-based).
    pub step: usize,
    /// The executed selection.
    pub query: SelectionQuery,
    /// Size of the selected rating group.
    pub group_size: usize,
    /// The displayed `k` diverse rating maps, by descending DW utility.
    pub maps: Vec<ScoredRatingMap>,
    /// The top-`o` next-step recommendations (empty when disabled).
    pub recommendations: Vec<Recommendation>,
    /// The step's unified statistics aggregate: total + per-phase wall
    /// time, generator counters, materialization and selection breakdowns,
    /// and the database epoch — emitted at one instrumentation point by
    /// the executor (see [`StepStats`]).
    pub stats: StepStats,
}

/// The SubDEx engine: owns the seen-context and normalizer state of one
/// exploration.
pub struct SdeEngine {
    db: Arc<SubjectiveDb>,
    config: EngineConfig,
    seen: SeenContext,
    normalizers: CriterionNormalizers,
    step_counter: usize,
    group_cache: Option<Arc<GroupCache>>,
    dist_cache: Option<Arc<DistanceCache>>,
    /// Pooled execution scratch reused across steps so steady-state steps
    /// allocate ~nothing on the hot path (see [`ExecContext`]).
    ctx: ExecContext,
}

impl SdeEngine {
    /// Creates an engine over a shared database.
    pub fn new(db: Arc<SubjectiveDb>, config: EngineConfig) -> Self {
        let dim_count = db.ratings().dim_count();
        Self {
            db,
            seen: SeenContext::new(dim_count),
            normalizers: CriterionNormalizers::new(config.normalizer),
            config,
            step_counter: 0,
            group_cache: None,
            dist_cache: None,
            ctx: ExecContext::new(),
        }
    }

    /// Attaches a shared rating-group cache: group materialization (both
    /// the stepped query and every recommendation candidate) is looked up
    /// there first. Results are byte-identical with or without a cache —
    /// the cache stores pre-shuffle gather columns, and the per-step seed
    /// is applied after lookup (see
    /// [`SubjectiveDb::group_for_query_cached`]).
    pub fn with_group_cache(mut self, cache: Arc<GroupCache>) -> Self {
        self.group_cache = Some(cache);
        self
    }

    /// Attaches or detaches the shared rating-group cache in place.
    pub fn set_group_cache(&mut self, cache: Option<Arc<GroupCache>>) {
        self.group_cache = cache;
    }

    /// The attached rating-group cache, if any.
    pub fn group_cache(&self) -> Option<&Arc<GroupCache>> {
        self.group_cache.as_ref()
    }

    /// Attaches a shared map-distance cache: every exact EMD the selection
    /// phase computes is memoized there and reused across steps and across
    /// engines sharing the cache. Selections are byte-identical with or
    /// without it — the cache stores exact canonical-order values.
    pub fn with_distance_cache(mut self, cache: Arc<DistanceCache>) -> Self {
        self.dist_cache = Some(cache);
        self
    }

    /// Attaches or detaches the shared map-distance cache in place.
    pub fn set_distance_cache(&mut self, cache: Option<Arc<DistanceCache>>) {
        self.dist_cache = cache;
    }

    /// Caps the worker threads every parallel phase of subsequent steps may
    /// use (`0` = uncapped). The service sets this per step from its
    /// oversubscription budget; results are byte-identical across budgets.
    pub fn set_thread_budget(&mut self, budget: usize) {
        self.ctx.set_thread_budget(budget);
    }

    /// The current per-step worker-thread cap (`0` = uncapped).
    pub fn thread_budget(&self) -> usize {
        self.ctx.thread_budget()
    }

    /// The attached map-distance cache, if any.
    pub fn distance_cache(&self) -> Option<&Arc<DistanceCache>> {
        self.dist_cache.as_ref()
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<SubjectiveDb> {
        &self.db
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current seen-context (dimension weights + references).
    pub fn seen(&self) -> &SeenContext {
        &self.seen
    }

    /// Steps executed so far.
    pub fn steps_taken(&self) -> usize {
        self.step_counter
    }

    /// Compiles the phase plan executing `query` would run, without
    /// running it. Useful for logging / inspecting what a step will do.
    pub fn plan(&self, query: &SelectionQuery) -> StepPlan {
        StepPlan::compile(&self.config, query)
    }

    /// Executes one exploration operation: compiles the step's phase plan
    /// and interprets it against this session's pooled [`ExecContext`] —
    /// selecting the rating group, generating and selecting the `k`
    /// diverse rating maps, registering them as seen, and (unless
    /// disabled) computing the top-`o` recommendations.
    pub fn step(&mut self, query: &SelectionQuery) -> StepResult {
        let step = self.step_counter;
        self.step_counter += 1;
        let plan = StepPlan::compile(&self.config, query);
        StepExecutor {
            db: &self.db,
            group_cache: self.group_cache.as_deref(),
            dist_cache: self.dist_cache.as_ref(),
            seen: &mut self.seen,
            normalizers: &mut self.normalizers,
            ctx: &mut self.ctx,
        }
        .run(&plan, query, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, Entity, EntityTableBuilder, RatingTableBuilder, Schema, Value};

    fn db() -> Arc<SubjectiveDb> {
        let mut us = Schema::new();
        us.add("gender", false);
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..10 {
            ub.push_row(vec![
                Cell::from(if i % 2 == 0 { "F" } else { "M" }),
                Cell::from(["young", "old"][i % 2]),
            ]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..4 {
            ib.push_row(vec![Cell::from(if i < 2 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        for r in 0..10u32 {
            for i in 0..4u32 {
                rb.push(
                    r,
                    i,
                    &[1 + ((r + i) % 5) as u8, 1 + ((r * 3 + i) % 5) as u8],
                );
            }
        }
        Arc::new(SubjectiveDb::new(ub.build(), ib.build(), rb.build(10, 4)))
    }

    #[test]
    fn step_produces_k_maps_and_o_recommendations() {
        let mut engine = SdeEngine::new(db(), EngineConfig::default());
        let res = engine.step(&SelectionQuery::all());
        assert_eq!(res.step, 0);
        assert_eq!(res.group_size, 40);
        assert_eq!(res.maps.len(), 3);
        assert!(!res.recommendations.is_empty() && res.recommendations.len() <= 3);
        assert_eq!(engine.steps_taken(), 1);
        assert_eq!(engine.seen().total_displayed(), 3);
    }

    #[test]
    fn recommendations_can_be_disabled() {
        let cfg = EngineConfig {
            recommendations: false,
            ..EngineConfig::default()
        };
        let mut engine = SdeEngine::new(db(), cfg);
        let res = engine.step(&SelectionQuery::all());
        assert!(res.recommendations.is_empty());
        assert_eq!(res.maps.len(), 3);
    }

    #[test]
    fn steps_are_deterministic_across_engines() {
        let run = || {
            let cfg = EngineConfig {
                parallel: false,
                ..EngineConfig::default()
            };
            let mut engine = SdeEngine::new(db(), cfg);
            let r1 = engine.step(&SelectionQuery::all());
            let keys: Vec<_> = r1.maps.iter().map(|m| m.map.key).collect();
            let recs: Vec<_> = r1.recommendations.iter().map(|r| r.query.clone()).collect();
            (keys, recs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cached_steps_match_uncached_byte_for_byte() {
        use subdex_store::GroupCache;
        let db = db();
        let cfg = EngineConfig {
            parallel: false,
            ..EngineConfig::default()
        };
        let queries = [
            SelectionQuery::all(),
            SelectionQuery::from_preds(vec![db
                .pred(Entity::Item, "city", &Value::str("NYC"))
                .unwrap()]),
            SelectionQuery::all(), // revisit: must hit the cache
        ];
        let run = |cache: Option<Arc<GroupCache>>| {
            let mut engine = SdeEngine::new(db.clone(), cfg);
            engine.set_group_cache(cache);
            queries
                .iter()
                .map(|q| {
                    let r = engine.step(q);
                    let keys: Vec<_> = r.maps.iter().map(|m| m.map.key).collect();
                    let utils: Vec<_> = r.maps.iter().map(|m| m.dw_utility.to_bits()).collect();
                    let recs: Vec<_> = r.recommendations.iter().map(|x| x.query.clone()).collect();
                    (r.group_size, keys, utils, recs)
                })
                .collect::<Vec<_>>()
        };
        let cache = Arc::new(GroupCache::new(1 << 20));
        let cached = run(Some(cache.clone()));
        let uncached = run(None);
        assert_eq!(cached, uncached);
        let stats = cache.stats();
        assert!(stats.hits > 0, "revisited queries must hit: {stats:?}");
    }

    #[test]
    fn parallel_and_cache_variants_are_byte_identical() {
        use subdex_store::GroupCache;
        let db = db();
        let queries = [
            SelectionQuery::all(),
            SelectionQuery::from_preds(vec![db
                .pred(Entity::Item, "city", &Value::str("SF"))
                .unwrap()]),
            // A two-sided query: its group walk can be driven from either
            // entity side, so this pins the walk-order canonicalization
            // (ascending record id regardless of driving side).
            SelectionQuery::from_preds(vec![
                db.pred(Entity::Reviewer, "gender", &Value::str("F"))
                    .unwrap(),
                db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap(),
            ]),
            SelectionQuery::all(),
        ];
        let run = |parallel: bool, cache: Option<Arc<GroupCache>>| {
            let cfg = EngineConfig {
                parallel,
                threads: if parallel { 4 } else { 0 },
                ..EngineConfig::default()
            };
            let mut engine = SdeEngine::new(db.clone(), cfg);
            engine.set_group_cache(cache);
            queries
                .iter()
                .map(|q| {
                    let r = engine.step(q);
                    let keys: Vec<_> = r.maps.iter().map(|m| m.map.key).collect();
                    let utils: Vec<_> = r.maps.iter().map(|m| m.dw_utility.to_bits()).collect();
                    let recs: Vec<_> = r.recommendations.iter().map(|x| x.query.clone()).collect();
                    (r.group_size, keys, utils, recs)
                })
                .collect::<Vec<_>>()
        };
        let reference = run(false, None);
        for parallel in [false, true] {
            for cached in [false, true] {
                let cache = cached.then(|| Arc::new(GroupCache::new(1 << 20)));
                assert_eq!(
                    run(parallel, cache),
                    reference,
                    "parallel={parallel} cached={cached} diverged"
                );
            }
        }
    }

    #[test]
    fn step_reports_materialization_paths() {
        use subdex_store::GroupCache;
        let db = db();
        let cfg = EngineConfig {
            parallel: false,
            ..EngineConfig::default()
        };

        // Without a cache: the parent group is walked, every add-predicate
        // candidate is derived from it, and no path reports cache hits.
        let mut engine = SdeEngine::new(db.clone(), cfg);
        let r = engine.step(&SelectionQuery::all());
        let m = r.stats.materialization;
        assert!(m.walked >= 1, "{m:?}");
        assert!(m.derived > 0, "drill-down candidates derive: {m:?}");
        assert!(m.records_filtered > 0, "{m:?}");
        assert_eq!(m.cached, 0, "{m:?}");

        // A sibling engine sharing the cache replays the same step and is
        // served the derived entries straight from the cache.
        let cache = Arc::new(GroupCache::new(1 << 20));
        let mut first = SdeEngine::new(db.clone(), cfg);
        first.set_group_cache(Some(cache.clone()));
        let warm = first.step(&SelectionQuery::all()).stats.materialization;
        assert!(warm.derived > 0, "{warm:?}");

        let mut second = SdeEngine::new(db, cfg);
        second.set_group_cache(Some(cache));
        let hot = second.step(&SelectionQuery::all()).stats.materialization;
        assert_eq!(hot.derived, 0, "{hot:?}");
        assert_eq!(hot.walked, 0, "{hot:?}");
        assert!(hot.cached > 0, "{hot:?}");
        assert_eq!(warm.total(), hot.total(), "same groups needed");
    }

    #[test]
    fn step_reports_selection_breakdown() {
        let db = db();
        let cfg = EngineConfig {
            parallel: false,
            selection: SelectionStrategy::DiversityOnly,
            ..EngineConfig::default()
        };
        let mut engine = SdeEngine::new(db, cfg);
        let r = engine.step(&SelectionQuery::all());
        let s = r.stats.selection;
        assert!(s.exact_solves > 0, "{s:?}");
        assert!(s.evaluations() >= s.exact_solves);
        assert!(s.select_time > std::time::Duration::ZERO);
        // `stats.selection` also merges the recommendation candidates'
        // preview selections, so the displayed-maps phase is a lower bound.
        assert!(r.stats.phases.select <= s.select_time);
        assert!(r.stats.elapsed >= r.stats.phases.select);
    }

    #[test]
    fn shared_distance_cache_replays_byte_identically() {
        use subdex_store::DistanceCache;
        let db = db();
        let cfg = EngineConfig {
            parallel: false,
            selection: SelectionStrategy::DiversityOnly,
            ..EngineConfig::default()
        };
        let fingerprint = |r: &StepResult| {
            let keys: Vec<_> = r.maps.iter().map(|m| m.map.key).collect();
            let utils: Vec<_> = r.maps.iter().map(|m| m.dw_utility.to_bits()).collect();
            let recs: Vec<_> = r.recommendations.iter().map(|x| x.query.clone()).collect();
            (r.group_size, keys, utils, recs)
        };

        let mut plain = SdeEngine::new(db.clone(), cfg);
        let reference = fingerprint(&plain.step(&SelectionQuery::all()));

        let cache = Arc::new(DistanceCache::new(1 << 20));
        let mut cold = SdeEngine::new(db.clone(), cfg);
        cold.set_distance_cache(Some(cache.clone()));
        let cold_step = cold.step(&SelectionQuery::all());
        assert_eq!(fingerprint(&cold_step), reference);
        assert!(cold_step.stats.selection.exact_solves > 0);
        assert!(!cache.is_empty(), "cold step must populate the cache");

        // A sibling engine sharing the cache replays the identical step
        // with every distance served warm.
        let mut warm = SdeEngine::new(db, cfg);
        warm.set_distance_cache(Some(cache));
        let warm_step = warm.step(&SelectionQuery::all());
        assert_eq!(fingerprint(&warm_step), reference);
        assert_eq!(
            warm_step.stats.selection.exact_solves, 0,
            "{:?}",
            warm_step.stats.selection
        );
        assert!(warm_step.stats.selection.cache_hits > 0);
    }

    #[test]
    fn baseline_constructors() {
        assert_eq!(EngineConfig::no_pruning().pruning, PruningStrategy::None);
        assert!(EngineConfig::no_pruning().parallel);
        assert_eq!(EngineConfig::naive().pruning, PruningStrategy::None);
        assert!(!EngineConfig::naive().parallel);
        assert!(!EngineConfig::no_parallelism().parallel);
        assert_eq!(
            EngineConfig::no_parallelism().pruning,
            PruningStrategy::Both
        );
        assert_eq!(
            EngineConfig::ci_pruning().pruning,
            PruningStrategy::ConfidenceInterval
        );
        assert_eq!(EngineConfig::mab_pruning().pruning, PruningStrategy::Mab);
    }

    #[test]
    fn presets_differ_from_subdex_only_in_documented_fields() {
        // Every preset must be expressible as subdex() plus its documented
        // deltas — so a field added to EngineConfig later cannot silently
        // diverge across presets.
        let base = EngineConfig::subdex();
        assert_eq!(
            EngineConfig::no_pruning(),
            EngineConfig {
                pruning: PruningStrategy::None,
                ..base
            }
        );
        assert_eq!(
            EngineConfig::ci_pruning(),
            EngineConfig {
                pruning: PruningStrategy::ConfidenceInterval,
                ..base
            }
        );
        assert_eq!(
            EngineConfig::mab_pruning(),
            EngineConfig {
                pruning: PruningStrategy::Mab,
                ..base
            }
        );
        assert_eq!(
            EngineConfig::no_parallelism(),
            EngineConfig {
                parallel: false,
                ..base
            }
        );
        assert_eq!(
            EngineConfig::naive(),
            EngineConfig {
                pruning: PruningStrategy::None,
                parallel: false,
                ..base
            }
        );
    }

    #[test]
    fn with_l_adjusts_selection() {
        let c1 = EngineConfig::default().with_l(1);
        assert_eq!(c1.selection, SelectionStrategy::UtilityOnly);
        let c4 = EngineConfig::default().with_l(4);
        assert_eq!(c4.selection, SelectionStrategy::Hybrid { l: 4 });
    }

    #[test]
    fn drill_down_step_narrows_group() {
        let db = db();
        let mut engine = SdeEngine::new(db.clone(), EngineConfig::default());
        let all = engine.step(&SelectionQuery::all());
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let narrowed = engine.step(&SelectionQuery::from_preds(vec![nyc]));
        assert!(narrowed.group_size < all.group_size);
        assert!(narrowed.maps.iter().all(|m| {
            // The pinned attribute never appears as a grouping attribute.
            !(m.map.key.entity == Entity::Item
                && m.map.key.attr == db.items().schema().attr_by_name("city").unwrap())
        }));
    }

    #[test]
    fn dimension_balance_emerges_over_steps() {
        // With DW weighting, both dimensions should be displayed over a
        // few steps rather than one dominating.
        let mut engine = SdeEngine::new(db(), EngineConfig::default());
        for _ in 0..4 {
            engine.step(&SelectionQuery::all());
        }
        let w = engine.seen().weights();
        let d0 = w.seen_for(subdex_store::DimId(0));
        let d1 = w.seen_for(subdex_store::DimId(1));
        assert!(d0 > 0 && d1 > 0, "both dims shown: {d0} vs {d1}");
    }
}
