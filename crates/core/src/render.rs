//! ASCII rendering of rating maps — the terminal stand-in for the paper's
//! histogram UI (Figure 5).
//!
//! Each subgroup renders as a labeled bar (length ∝ average score) plus
//! its rating distribution as a sparkline over the scale, e.g.:
//!
//! ```text
//! GROUPBY item.neighborhood · food score
//! Williamsburg  ████████████████░░░░ 3.9 ▁▂▁▅▇ (16)
//! SoHo          ██████████████░░░░░░ 3.5 ▂▂▁▅▇ (20)
//! ```

use crate::ratingmap::RatingMap;
use subdex_store::SubjectiveDb;

/// Bar width in character cells.
const BAR_WIDTH: usize = 20;
/// Sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a horizontal bar of `width` cells filled proportionally to
/// `fraction` (clamped to `[0, 1]`).
pub fn bar(fraction: f64, width: usize) -> String {
    let f = fraction.clamp(0.0, 1.0);
    let filled = (f * width as f64).round() as usize;
    let mut s = String::with_capacity(width * 3);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '░' });
    }
    s
}

/// Renders a distribution's counts as a sparkline (one glyph per score).
pub fn sparkline(counts: &[u64]) -> String {
    let max = counts.iter().copied().max().unwrap_or(0);
    counts
        .iter()
        .map(|&c| {
            if max == 0 {
                SPARKS[0]
            } else {
                let idx = ((c as f64 / max as f64) * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[idx.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// Renders a full rating map as ASCII bars (paper-UI style).
pub fn render_map(db: &SubjectiveDb, map: &RatingMap) -> String {
    use std::fmt::Write as _;
    let table = db.table(map.key.entity);
    let attr = &table.schema().attr(map.key.attr).name;
    let dict = table.dictionary(map.key.attr);
    let dim = db.ratings().dim_name(map.key.dim);
    let scale = db.ratings().scale() as f64;

    let mut out = String::new();
    let _ = writeln!(out, "GROUPBY {}.{attr} · {dim} score", map.key.entity);
    if map.subgroups.is_empty() {
        let _ = writeln!(out, "  (no records)");
        return out;
    }
    let label_width = map
        .subgroups
        .iter()
        .map(|s| dict.value(s.value).to_string().chars().count())
        .max()
        .unwrap_or(4)
        .min(24);
    for sg in &map.subgroups {
        let label: String = dict.value(sg.value).to_string();
        let label: String = label.chars().take(24).collect();
        let avg = sg.avg_score.unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  {label:<label_width$}  {} {:>4.1} {} ({})",
            bar(avg / scale, BAR_WIDTH),
            avg,
            sparkline(sg.distribution.counts()),
            sg.distribution.total(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratingmap::{MapKey, Subgroup};
    use subdex_stats::RatingDistribution;
    use subdex_store::{
        Cell, DimId, Entity, EntityTableBuilder, RatingTableBuilder, Schema, ValueId,
    };

    #[test]
    fn bar_proportions() {
        assert_eq!(bar(0.0, 4), "░░░░");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██░░");
        assert_eq!(bar(2.0, 4), "████", "clamped above");
        assert_eq!(bar(-1.0, 4), "░░░░", "clamped below");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        let s = sparkline(&[1, 5, 10]);
        let glyphs: Vec<char> = s.chars().collect();
        assert_eq!(glyphs.len(), 3);
        assert!(glyphs[0] < glyphs[1] && glyphs[1] < glyphs[2]);
        assert_eq!(glyphs[2], '█');
    }

    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("g", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec![Cell::from("x")]);
        let mut is = Schema::new();
        is.add("neighborhood", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![Cell::from("Williamsburg")]);
        ib.push_row(vec![Cell::from("SoHo")]);
        let mut rb = RatingTableBuilder::new(vec!["food".into()], 5);
        rb.push(0, 0, &[4]);
        rb.push(0, 1, &[2]);
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(1, 2))
    }

    #[test]
    fn render_map_lists_subgroups_with_bars() {
        let db = db();
        let attr = db.items().schema().attr_by_name("neighborhood").unwrap();
        let map = RatingMap::from_subgroups(
            MapKey::new(Entity::Item, attr, DimId(0)),
            vec![
                Subgroup {
                    value: ValueId(0),
                    distribution: RatingDistribution::from_counts(vec![1, 1, 0, 5, 7]),
                    avg_score: None,
                },
                Subgroup {
                    value: ValueId(1),
                    distribution: RatingDistribution::from_counts(vec![3, 3, 2, 5, 7]),
                    avg_score: None,
                },
            ],
            5,
        );
        let s = render_map(&db, &map);
        assert!(s.contains("GROUPBY item.neighborhood · food score"), "{s}");
        assert!(s.contains("Williamsburg"), "{s}");
        assert!(s.contains('█'), "{s}");
        assert!(s.contains('▇') || s.contains('█'), "{s}");
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn render_empty_map() {
        let db = db();
        let attr = db.items().schema().attr_by_name("neighborhood").unwrap();
        let map = RatingMap::from_subgroups(MapKey::new(Entity::Item, attr, DimId(0)), vec![], 5);
        assert!(render_map(&db, &map).contains("no records"));
    }
}
