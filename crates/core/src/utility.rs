//! Utility of rating maps: max-combined criteria and dimension weighting.
//!
//! `u(rm, RM) = max(Conc, Agr, Pec_self, Pec_global)` over the *normalized*
//! criteria, and the dimension-weighted (DW) utility (Equation 1)
//! `û(rm_ri, RM) = (1 − m_ri / m) · u(rm, RM)` promotes rating dimensions
//! the user has rarely seen (need N2). [`DimensionWeights`] is the
//! `getWeights` procedure of Algorithm 2.
//!
//! The evaluation's utility-criteria ablation (Section 5.2.3) swaps the
//! max-aggregation for a single criterion or the average —
//! [`UtilityCombiner`] is that knob.

use crate::interest::Criterion;
use serde::{Deserialize, Serialize};
use subdex_store::DimId;

/// The four normalized criterion scores of one rating map.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CriterionScores {
    /// Normalized conciseness.
    pub conciseness: f64,
    /// Normalized agreement.
    pub agreement: f64,
    /// Normalized self peculiarity.
    pub self_peculiarity: f64,
    /// Normalized global peculiarity.
    pub global_peculiarity: f64,
}

impl CriterionScores {
    /// Score of one criterion.
    pub fn get(&self, c: Criterion) -> f64 {
        match c {
            Criterion::Conciseness => self.conciseness,
            Criterion::Agreement => self.agreement,
            Criterion::SelfPeculiarity => self.self_peculiarity,
            Criterion::GlobalPeculiarity => self.global_peculiarity,
        }
    }

    /// Scores in [`crate::interest::ALL_CRITERIA`] order.
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.conciseness,
            self.agreement,
            self.self_peculiarity,
            self.global_peculiarity,
        ]
    }
}

/// How the four criteria combine into the utility `u(rm, RM)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UtilityCombiner {
    /// The paper's choice: the maximum criterion.
    #[default]
    Max,
    /// Ablation: the average of the four criteria.
    Average,
    /// Ablation: a single criterion.
    Single(Criterion),
}

impl UtilityCombiner {
    /// Combines normalized criterion scores into a utility in `[0, 1]`.
    pub fn combine(self, s: &CriterionScores) -> f64 {
        match self {
            UtilityCombiner::Max => s
                .as_array()
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max)
                .max(0.0),
            UtilityCombiner::Average => s.as_array().iter().sum::<f64>() / 4.0,
            UtilityCombiner::Single(c) => s.get(c),
        }
    }

    /// Combines a batch of score vectors in one pass, writing one utility
    /// per input into `out` (cleared first). The combiner is resolved once
    /// outside the loop instead of per candidate; each element is computed
    /// by the same expression as [`combine`](Self::combine), so results are
    /// bit-identical to the scalar path.
    pub fn combine_batch(self, scores: &[CriterionScores], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(scores.len());
        match self {
            UtilityCombiner::Max => out.extend(scores.iter().map(|s| {
                s.as_array()
                    .into_iter()
                    .fold(f64::NEG_INFINITY, f64::max)
                    .max(0.0)
            })),
            UtilityCombiner::Average => out.extend(
                scores
                    .iter()
                    .map(|s| s.as_array().iter().sum::<f64>() / 4.0),
            ),
            UtilityCombiner::Single(c) => out.extend(scores.iter().map(|s| s.get(c))),
        }
    }
}

/// Dimension weights (Algorithm 2 + Equation 1).
///
/// Tracks `m_ri` — how many of the `m` rating maps displayed so far were
/// aggregated by dimension `r_i` — and exposes the DW factor
/// `1 − m_ri / m`. Two boundary cases the paper leaves implicit:
///
/// * before anything is displayed (`m = 0`) every dimension weighs 1;
/// * with a single rating dimension (`t = 1`, e.g. MovieLens) the fraction
///   is always 1 and Equation 1 would zero every utility, so the weight is
///   pinned to 1 — dimension diversity is vacuous there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionWeights {
    counts: Vec<u64>,
    total: u64,
}

impl DimensionWeights {
    /// Creates weights for `dim_count` rating dimensions, nothing seen yet.
    ///
    /// # Panics
    /// Panics if `dim_count == 0`.
    pub fn new(dim_count: usize) -> Self {
        assert!(dim_count > 0, "at least one rating dimension");
        Self {
            counts: vec![0; dim_count],
            total: 0,
        }
    }

    /// Number of dimensions `t`.
    pub fn dim_count(&self) -> usize {
        self.counts.len()
    }

    /// Total maps seen, `m`.
    pub fn total_seen(&self) -> u64 {
        self.total
    }

    /// Maps seen for one dimension, `m_ri`.
    pub fn seen_for(&self, dim: DimId) -> u64 {
        self.counts[dim.index()]
    }

    /// Records that a map aggregated by `dim` was displayed.
    pub fn record_shown(&mut self, dim: DimId) {
        self.counts[dim.index()] += 1;
        self.total += 1;
    }

    /// The fraction `m_ri / m` returned by Algorithm 2's `getWeights`
    /// (0 when nothing was seen).
    pub fn fraction(&self, dim: DimId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[dim.index()] as f64 / self.total as f64
    }

    /// The DW factor `1 − m_ri / m` of Equation 1 (with the boundary cases
    /// documented on the type).
    pub fn dw_factor(&self, dim: DimId) -> f64 {
        if self.total == 0 || self.counts.len() == 1 {
            return 1.0;
        }
        1.0 - self.fraction(dim)
    }

    /// Applies Equation 1: `û = dw_factor(dim) · u`.
    pub fn weighted(&self, dim: DimId, utility: f64) -> f64 {
        self.dw_factor(dim) * utility
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(c: f64, a: f64, s: f64, g: f64) -> CriterionScores {
        CriterionScores {
            conciseness: c,
            agreement: a,
            self_peculiarity: s,
            global_peculiarity: g,
        }
    }

    #[test]
    fn max_combiner_picks_largest() {
        let s = scores(0.2, 0.9, 0.5, 0.1);
        assert_eq!(UtilityCombiner::Max.combine(&s), 0.9);
    }

    #[test]
    fn average_combiner() {
        let s = scores(0.2, 0.4, 0.6, 0.8);
        assert!((UtilityCombiner::Average.combine(&s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_combiner() {
        let s = scores(0.2, 0.4, 0.6, 0.8);
        assert_eq!(
            UtilityCombiner::Single(Criterion::SelfPeculiarity).combine(&s),
            0.6
        );
    }

    #[test]
    fn paper_equation1_example() {
        // Paper's Section 3.2.3 example: m = 10, m_r1 = m_r2 = m_r3 = 3,
        // m_r4 = 1; u(rm_r2) = 0.6 → û = 0.7·0.6 = 0.42;
        // u(rm'_r4) = 0.8 → û = 0.9·0.8 = 0.72.
        let mut w = DimensionWeights::new(4);
        for (dim, n) in [(0u16, 3u64), (1, 3), (2, 3), (3, 1)] {
            for _ in 0..n {
                w.record_shown(DimId(dim));
            }
        }
        assert_eq!(w.total_seen(), 10);
        assert!((w.weighted(DimId(1), 0.6) - 0.42).abs() < 1e-12);
        assert!((w.weighted(DimId(3), 0.8) - 0.72).abs() < 1e-12);
    }

    #[test]
    fn no_history_weighs_one() {
        let w = DimensionWeights::new(4);
        assert_eq!(w.dw_factor(DimId(2)), 1.0);
        assert_eq!(w.fraction(DimId(2)), 0.0);
    }

    #[test]
    fn single_dimension_never_zeroed() {
        let mut w = DimensionWeights::new(1);
        for _ in 0..5 {
            w.record_shown(DimId(0));
        }
        assert_eq!(w.dw_factor(DimId(0)), 1.0, "t = 1 pins the weight to 1");
    }

    #[test]
    fn saturated_dimension_fully_demoted() {
        let mut w = DimensionWeights::new(2);
        w.record_shown(DimId(0));
        w.record_shown(DimId(0));
        assert_eq!(w.dw_factor(DimId(0)), 0.0);
        assert_eq!(w.dw_factor(DimId(1)), 1.0);
    }

    #[test]
    fn max_combiner_clamps_at_zero() {
        let s = scores(-0.5, -0.1, -0.2, -0.9);
        assert_eq!(UtilityCombiner::Max.combine(&s), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_dims_panics() {
        let _ = DimensionWeights::new(0);
    }
}
