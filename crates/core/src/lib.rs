//! # subdex-core
//!
//! The SubDEx exploration engine — the primary contribution of
//! *Exploring Ratings in Subjective Databases* (SIGMOD '21).
//!
//! Given a subjective database (from `subdex-store`), the engine supports a
//! multi-step exploration process. At each step it:
//!
//! 1. materializes the rating group selected by the current query,
//! 2. generates, with high probability, the `l·k` rating maps with the
//!    highest *dimension-weighted utility* using the phase-based execution
//!    framework with sharing and pruning optimizations
//!    ([`generator::generate`], Algorithms 1–3),
//! 3. selects the most diverse `k`-subset with the GMM algorithm
//!    ([`selector`], Problem 1),
//! 4. recommends the top-`o` next-step operations by evaluating candidate
//!    query edits in parallel ([`recommend`], Problem 2).
//!
//! The three exploration modes of the paper — *User-Driven*,
//! *Recommendation-Powered* and *Fully-Automated* — are driven through
//! [`session::ExplorationSession`].
//!
//! Module map:
//!
//! | module | paper section |
//! |---|---|
//! | [`ratingmap`] | rating maps (Defs. 1–2, Sec. 3.2.2) |
//! | [`interest`] | interestingness criteria (Secs. 3.2.3, 4.1) |
//! | [`accumulator`] | shared multi-aggregate GroupBy state (Sec. 4.2.1) |
//! | [`utility`] | utility, DW utility, `getWeights` (Eq. 1, Alg. 2) |
//! | [`pruning`] | CI pruning (Alg. 3), MAB pruning (SAR) |
//! | [`generator`] | phase-based execution framework (Alg. 1) |
//! | [`mapdist`] | EMD distance between rating maps (Sec. 3.2.4) |
//! | [`selector`] | GMM diverse subset selection (Sec. 4.2.2) |
//! | [`recommend`] | Recommendation Builder (Sec. 4.3) |
//! | [`plan`] | step plan IR + pooled executor (Alg. 1 as a DAG) |
//! | [`engine`] | SDE engine & configuration (Sec. 4, Fig. 4) |
//! | [`session`] | exploration modes (Sec. 3.3) |
//! | [`explain`] | textual narration of steps (the UI layer's voice) |
//! | [`sessionlog`] | durable operation logs + deterministic replay |
//! | [`personalize`] | log-driven recommendation re-ranking (future work §6) |

pub mod accumulator;
pub mod engine;
pub mod explain;
pub mod generator;
pub mod interest;
pub mod mapdist;
pub mod parallel;
pub mod personalize;
pub mod plan;
pub mod pruning;
pub mod ratingmap;
pub mod recommend;
pub mod render;
pub mod selector;
pub mod session;
pub mod sessionlog;
pub mod utility;

pub use engine::{EngineConfig, SdeEngine, StepResult};
pub use generator::SeenContext;
pub use mapdist::{DistScratch, DistanceEngine, MapSignature, SelectionStats};
pub use parallel::{budget_threads, resolve_threads, task_pool, TaskPool};
pub use plan::{
    ExecContext, GeneratorStats, PhaseOp, PhaseTimes, PlanNode, StepExecutor, StepPlan, StepStats,
};
pub use pruning::PruningStrategy;
pub use ratingmap::{MapKey, RatingMap, ScoredRatingMap};
pub use recommend::{Materialization, Recommendation};
pub use session::{ExplorationMode, ExplorationSession, SessionError};
pub use sessionlog::SessionLog;
pub use utility::{CriterionScores, UtilityCombiner};
