//! Session logs: record, save, and replay exploration sessions.
//!
//! The paper points at next-step recommenders driven by "logs of previous
//! operations" (\[23, 42\]) as drop-in alternatives for the
//! Recommendation Builder, and the conclusion names personalized
//! exploration as future work. Both need a durable record of what an
//! analyst did, so sessions log their operations in a human-readable,
//! line-based format:
//!
//! ```text
//! #subdex-session v1
//! user<TAB>*
//! # step 0: total 812µs | groups 14µs | scan 210µs | generate 433µs | select 96µs | recommend 255µs
//! recommendation<TAB>reviewer.age_group = young
//! user<TAB>reviewer.age_group = young AND item.city = NYC
//! ```
//!
//! `#`-prefixed lines are comments: [`SessionLog::serialize_with_stats`]
//! emits one per step with the per-phase timing breakdown from the step's
//! [`StepStats`], and the parser skips them, so both forms replay
//! identically.
//!
//! Queries use the same textual form as
//! [`SubjectiveDb::describe_query`] / [`subdex_store::parse_query`], so a
//! log replays against any database with the same schema — and because the
//! engine is deterministic given its configuration and seed, a replay
//! reproduces the original maps and recommendations exactly.

use crate::engine::{EngineConfig, SdeEngine, StepResult};
use crate::plan::StepStats;
use subdex_store::{parse_query, ParseError, SelectionQuery, SubjectiveDb};

/// How an operation entered the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSource {
    /// Typed / chosen by the user.
    User,
    /// A system recommendation the user accepted.
    Recommendation,
    /// Applied by the Fully-Automated mode.
    Auto,
}

impl OpSource {
    fn tag(self) -> &'static str {
        match self {
            OpSource::User => "user",
            OpSource::Recommendation => "recommendation",
            OpSource::Auto => "auto",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "user" => Some(OpSource::User),
            "recommendation" => Some(OpSource::Recommendation),
            "auto" => Some(OpSource::Auto),
            _ => None,
        }
    }
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Provenance of the operation.
    pub source: OpSource,
    /// The executed query.
    pub query: SelectionQuery,
}

/// An in-memory session log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionLog {
    entries: Vec<LogEntry>,
}

/// Errors when loading a serialized log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// Missing or wrong header line.
    BadHeader,
    /// A line had no tab separator or an unknown source tag.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A query failed to parse against the database.
    BadQuery {
        /// 1-based line number.
        line: usize,
        /// Underlying parse error.
        error: ParseError,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadHeader => write!(f, "missing #subdex-session header"),
            LogError::BadLine { line } => write!(f, "line {line}: malformed log line"),
            LogError::BadQuery { line, error } => write!(f, "line {line}: {error}"),
        }
    }
}

impl std::error::Error for LogError {}

const HEADER: &str = "#subdex-session v1";

impl SessionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one operation.
    pub fn record(&mut self, source: OpSource, query: SelectionQuery) {
        self.entries.push(LogEntry { source, query });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the line-based format (schema names resolved through
    /// `db`).
    pub fn serialize(&self, db: &SubjectiveDb) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(e.source.tag());
            out.push('\t');
            out.push_str(&db.describe_query(&e.query));
            out.push('\n');
        }
        out
    }

    /// Serializes to the line-based format with one `#`-prefixed timing
    /// comment per step, rendered from that step's [`StepStats`] (the
    /// per-phase breakdown of [`crate::plan::PhaseTimes`]). Comments are
    /// ignored by [`SessionLog::deserialize`], so the stats-annotated form
    /// round-trips to the same entries as the plain one. `stats` pairs
    /// positionally with the entries; extra or missing stats are tolerated
    /// (entries without one get no comment).
    pub fn serialize_with_stats(&self, db: &SubjectiveDb, stats: &[StepStats]) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(e.source.tag());
            out.push('\t');
            out.push_str(&db.describe_query(&e.query));
            out.push('\n');
            if let Some(s) = stats.get(i) {
                out.push_str(&format!(
                    "# step {i}: total {}µs | groups {}µs | scan {}µs | generate {}µs | \
                     select {}µs | recommend {}µs\n",
                    s.elapsed.as_micros(),
                    s.phases.scan_groups.as_micros(),
                    s.phases.scan.as_micros(),
                    s.phases.generate.as_micros(),
                    s.phases.select.as_micros(),
                    s.phases.recommend.as_micros(),
                ));
            }
        }
        out
    }

    /// Parses a serialized log against a database. Lines starting with `#`
    /// (e.g. the per-step timing comments of
    /// [`SessionLog::serialize_with_stats`]) are skipped.
    pub fn deserialize(db: &SubjectiveDb, text: &str) -> Result<Self, LogError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            _ => return Err(LogError::BadHeader),
        }
        let mut log = SessionLog::new();
        for (i, line) in lines {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let line_no = i + 1;
            let Some((tag, query_text)) = line.split_once('\t') else {
                return Err(LogError::BadLine { line: line_no });
            };
            let Some(source) = OpSource::from_tag(tag.trim()) else {
                return Err(LogError::BadLine { line: line_no });
            };
            let query = parse_query(db, query_text).map_err(|error| LogError::BadQuery {
                line: line_no,
                error,
            })?;
            log.record(source, query);
        }
        Ok(log)
    }

    /// Replays the logged operations on a fresh engine, returning each
    /// step's result. With the same configuration (and seed) as the
    /// original session, the results are identical to the original run.
    pub fn replay(
        &self,
        db: std::sync::Arc<SubjectiveDb>,
        config: EngineConfig,
    ) -> Vec<StepResult> {
        let mut engine = SdeEngine::new(db, config);
        self.entries.iter().map(|e| engine.step(&e.query)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subdex_store::{Cell, Entity, EntityTableBuilder, RatingTableBuilder, Schema, Value};

    fn db() -> Arc<SubjectiveDb> {
        let mut us = Schema::new();
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..6 {
            ub.push_row(vec![Cell::from(if i % 2 == 0 { "young" } else { "old" })]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..4 {
            ib.push_row(vec![Cell::from(if i < 2 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        for r in 0..6u32 {
            for i in 0..4u32 {
                rb.push(
                    r,
                    i,
                    &[1 + ((r + i) % 5) as u8, 1 + ((r * 2 + i) % 5) as u8],
                );
            }
        }
        Arc::new(SubjectiveDb::new(ub.build(), ib.build(), rb.build(6, 4)))
    }

    fn sample_log(db: &SubjectiveDb) -> SessionLog {
        let mut log = SessionLog::new();
        log.record(OpSource::User, SelectionQuery::all());
        let young = db
            .pred(Entity::Reviewer, "age", &Value::str("young"))
            .unwrap();
        log.record(
            OpSource::Recommendation,
            SelectionQuery::from_preds(vec![young]),
        );
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        log.record(OpSource::Auto, SelectionQuery::from_preds(vec![young, nyc]));
        log
    }

    #[test]
    fn round_trip() {
        let db = db();
        let log = sample_log(&db);
        let text = log.serialize(&db);
        assert!(text.starts_with(HEADER));
        let back = SessionLog::deserialize(&db, &text).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn serialized_form_is_readable() {
        let db = db();
        let text = sample_log(&db).serialize(&db);
        assert!(text.contains("user\t*"));
        assert!(text.contains("recommendation\treviewer.age = young"));
        assert!(text.contains("auto\t"));
    }

    #[test]
    fn replay_reproduces_a_session() {
        let db = db();
        let cfg = EngineConfig {
            parallel: false,
            ..EngineConfig::default()
        };
        // Original session.
        let mut engine = SdeEngine::new(db.clone(), cfg);
        let mut log = SessionLog::new();
        let q0 = SelectionQuery::all();
        let r0 = engine.step(&q0);
        log.record(OpSource::User, q0);
        let q1 = r0.recommendations[0].query.clone();
        let r1 = engine.step(&q1);
        log.record(OpSource::Recommendation, q1);

        // Replay (optionally through serialization).
        let text = log.serialize(&db);
        let loaded = SessionLog::deserialize(&db, &text).unwrap();
        let replayed = loaded.replay(db.clone(), cfg);
        assert_eq!(replayed.len(), 2);
        for (orig, rep) in [r0, r1].iter().zip(&replayed) {
            assert_eq!(orig.query, rep.query);
            assert_eq!(orig.group_size, rep.group_size);
            let ok: Vec<_> = orig.maps.iter().map(|m| m.map.key).collect();
            let rk: Vec<_> = rep.maps.iter().map(|m| m.map.key).collect();
            assert_eq!(ok, rk, "replay shows identical maps");
        }
    }

    #[test]
    fn stats_annotated_log_round_trips() {
        let db = db();
        let cfg = EngineConfig {
            parallel: false,
            ..EngineConfig::default()
        };
        let mut engine = SdeEngine::new(db.clone(), cfg);
        let mut log = SessionLog::new();
        let mut stats = Vec::new();
        let q0 = SelectionQuery::all();
        let r0 = engine.step(&q0);
        log.record(OpSource::User, q0);
        stats.push(r0.stats);
        let q1 = r0.recommendations[0].query.clone();
        let r1 = engine.step(&q1);
        log.record(OpSource::Recommendation, q1);
        stats.push(r1.stats);

        let text = log.serialize_with_stats(&db, &stats);
        // One timing comment per step, each carrying the phase breakdown.
        assert_eq!(text.lines().filter(|l| l.starts_with("# step")).count(), 2);
        assert!(text.contains("# step 0: total "));
        assert!(text.contains("| select "));
        assert!(text.contains("| recommend "));

        // Comments are ignored on load: both forms parse to the same log,
        // and the annotated form replays to the same steps.
        let back = SessionLog::deserialize(&db, &text).unwrap();
        assert_eq!(back, log);
        assert_eq!(
            SessionLog::deserialize(&db, &log.serialize(&db)).unwrap(),
            back
        );
        let replayed = back.replay(db.clone(), cfg);
        let keys = |r: &StepResult| r.maps.iter().map(|m| m.map.key).collect::<Vec<_>>();
        assert_eq!(keys(&replayed[0]), keys(&r0));
        assert_eq!(keys(&replayed[1]), keys(&r1));
    }

    #[test]
    fn error_cases() {
        let db = db();
        assert_eq!(
            SessionLog::deserialize(&db, "not a log").unwrap_err(),
            LogError::BadHeader
        );
        let bad_line = format!("{HEADER}\nnonsense-without-tab\n");
        assert_eq!(
            SessionLog::deserialize(&db, &bad_line).unwrap_err(),
            LogError::BadLine { line: 2 }
        );
        let bad_tag = format!("{HEADER}\nrobot\t*\n");
        assert_eq!(
            SessionLog::deserialize(&db, &bad_tag).unwrap_err(),
            LogError::BadLine { line: 2 }
        );
        let bad_query = format!("{HEADER}\nuser\titem.city = Atlantis\n");
        assert!(matches!(
            SessionLog::deserialize(&db, &bad_query).unwrap_err(),
            LogError::BadQuery { line: 2, .. }
        ));
    }

    #[test]
    fn empty_log_round_trip() {
        let db = db();
        let log = SessionLog::new();
        assert!(log.is_empty());
        let back = SessionLog::deserialize(&db, &log.serialize(&db)).unwrap();
        assert!(back.is_empty());
        assert!(back.replay(db, EngineConfig::default()).is_empty());
    }
}
