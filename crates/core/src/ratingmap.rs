//! Rating maps (Definitions 1 and 2 of the paper).
//!
//! A rating map partitions a rating group by one reviewer or item attribute
//! and associates each subgroup with its rating distribution (for one rating
//! dimension) and an aggregated score (the average, in this work). It is
//! exactly the result of a `GROUP BY` over the rating group followed by an
//! aggregation, and it is the unit the engine scores, prunes, diversifies
//! and displays.

use serde::{Deserialize, Serialize};
use subdex_stats::RatingDistribution;
use subdex_store::{AttrId, DimId, Entity, SubjectiveDb, ValueId};

use crate::utility::CriterionScores;

/// Identity of a candidate rating map: which attribute partitions the group
/// and which rating dimension is aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MapKey {
    /// Entity side of the grouping attribute.
    pub entity: Entity,
    /// The grouping attribute.
    pub attr: AttrId,
    /// The aggregated rating dimension.
    pub dim: DimId,
}

impl MapKey {
    /// Creates a key.
    pub fn new(entity: Entity, attr: AttrId, dim: DimId) -> Self {
        Self { entity, attr, dim }
    }
}

/// One subgroup of a rating map: a grouping-attribute value, the rating
/// distribution of matching records, and the average score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subgroup {
    /// The grouping-attribute value shared by all records in the subgroup.
    pub value: ValueId,
    /// The subgroup's rating distribution on the map's dimension.
    pub distribution: RatingDistribution,
    /// Aggregated (average) score; `None` for an empty subgroup.
    pub avg_score: Option<f64>,
}

/// How a subgroup's aggregated score is computed (Definition 2 uses the
/// average; the paper notes "other aggregations could be used such as the
/// highest probability for the rating dimension" — that is [`Self::Mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AggregationKind {
    /// Mean rating (the paper's choice).
    #[default]
    Average,
    /// The most probable rating (the distribution's mode).
    Mode,
}

impl AggregationKind {
    /// Aggregated score of a distribution under this kind.
    pub fn score(self, dist: &subdex_stats::RatingDistribution) -> Option<f64> {
        match self {
            AggregationKind::Average => dist.mean(),
            AggregationKind::Mode => dist.mode().map(f64::from),
        }
    }
}

/// A materialized rating map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatingMap {
    /// Identity (grouping attribute + dimension).
    pub key: MapKey,
    /// Non-empty subgroups, sorted by descending average score (the order
    /// in which the paper's UI lists them — cf. Figure 3).
    pub subgroups: Vec<Subgroup>,
    /// The rating distribution of the whole group on this dimension
    /// (reference distribution for self-peculiarity, and the map's
    /// signature for global peculiarity).
    pub overall: RatingDistribution,
}

impl RatingMap {
    /// Builds a map from raw subgroups; filters empty subgroups, sorts by
    /// descending average, and derives the overall distribution.
    ///
    /// Note: for multi-valued grouping attributes a record contributes to
    /// several subgroups, so `overall` (the sum over subgroups) may weigh
    /// such records more than once; this mirrors how the GroupBy itself
    /// treats them.
    pub fn from_subgroups(key: MapKey, subgroups: Vec<Subgroup>, scale: usize) -> Self {
        Self::from_subgroups_agg(key, subgroups, scale, AggregationKind::Average)
    }

    /// [`Self::from_subgroups`] with an explicit aggregation kind.
    pub fn from_subgroups_agg(
        key: MapKey,
        mut subgroups: Vec<Subgroup>,
        scale: usize,
        agg: AggregationKind,
    ) -> Self {
        subgroups.retain(|s| !s.distribution.is_empty());
        let mut overall = RatingDistribution::new(scale);
        for s in &subgroups {
            overall.merge(&s.distribution);
        }
        for s in &mut subgroups {
            s.avg_score = agg.score(&s.distribution);
        }
        subgroups.sort_by(|a, b| {
            b.avg_score
                .partial_cmp(&a.avg_score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.value.cmp(&b.value))
        });
        Self {
            key,
            subgroups,
            overall,
        }
    }

    /// Number of (non-empty) subgroups — `|rm|` in the conciseness measure.
    pub fn subgroup_count(&self) -> usize {
        self.subgroups.len()
    }

    /// Total records aggregated (records under multi-valued attributes may
    /// count once per carried value).
    pub fn record_weight(&self) -> u64 {
        self.overall.total()
    }

    /// The subgroup with the highest average score.
    pub fn top_subgroup(&self) -> Option<&Subgroup> {
        self.subgroups.first()
    }

    /// The subgroup with the lowest average score.
    pub fn bottom_subgroup(&self) -> Option<&Subgroup> {
        self.subgroups.last()
    }

    /// Renders the map as the paper's Figure 3-style table.
    pub fn render(&self, db: &SubjectiveDb) -> String {
        use std::fmt::Write as _;
        let table = db.table(self.key.entity);
        let attr = &table.schema().attr(self.key.attr).name;
        let dict = table.dictionary(self.key.attr);
        let dim = db.ratings().dim_name(self.key.dim);
        let mut out = String::new();
        let _ = writeln!(out, "rm: GROUPBY {attr}, aggregated by {dim} score");
        let _ = writeln!(
            out,
            "{:<20} {:>9}  {:<28} {:>9}",
            attr, "# records", "rating distribution", "avg score"
        );
        for s in &self.subgroups {
            let _ = writeln!(
                out,
                "{:<20} {:>9}  {:<28} {:>9.1}",
                dict.value(s.value).to_string(),
                s.distribution.total(),
                s.distribution.to_string(),
                s.avg_score.unwrap_or(f64::NAN),
            );
        }
        out
    }
}

/// A rating map together with its scores, as produced by the RM-Generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredRatingMap {
    /// The map itself.
    pub map: RatingMap,
    /// Raw (un-weighted) utility `u(rm, RM)` — the max-combined normalized
    /// criteria.
    pub utility: f64,
    /// Dimension-weighted utility `û(rm, RM)` (Equation 1).
    pub dw_utility: f64,
    /// The individual normalized criterion scores.
    pub criteria: CriterionScores,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(counts: &[u64]) -> RatingDistribution {
        RatingDistribution::from_counts(counts.to_vec())
    }

    fn key() -> MapKey {
        MapKey::new(Entity::Item, AttrId(0), DimId(0))
    }

    fn sg(value: u32, counts: &[u64]) -> Subgroup {
        Subgroup {
            value: ValueId(value),
            distribution: dist(counts),
            avg_score: None,
        }
    }

    #[test]
    fn from_subgroups_sorts_by_avg_desc() {
        let m = RatingMap::from_subgroups(
            key(),
            vec![
                sg(0, &[5, 0, 0, 0, 0]), // avg 1.0
                sg(1, &[0, 0, 0, 0, 5]), // avg 5.0
                sg(2, &[0, 0, 5, 0, 0]), // avg 3.0
            ],
            5,
        );
        let order: Vec<u32> = m.subgroups.iter().map(|s| s.value.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(m.top_subgroup().unwrap().value, ValueId(1));
        assert_eq!(m.bottom_subgroup().unwrap().value, ValueId(0));
    }

    #[test]
    fn empty_subgroups_filtered() {
        let m = RatingMap::from_subgroups(
            key(),
            vec![sg(0, &[0, 0, 0, 0, 0]), sg(1, &[1, 0, 0, 0, 0])],
            5,
        );
        assert_eq!(m.subgroup_count(), 1);
    }

    #[test]
    fn overall_is_merge_of_subgroups() {
        let m = RatingMap::from_subgroups(
            key(),
            vec![sg(0, &[1, 2, 0, 0, 0]), sg(1, &[0, 1, 3, 0, 0])],
            5,
        );
        assert_eq!(m.overall.counts(), &[1, 3, 3, 0, 0]);
        assert_eq!(m.record_weight(), 7);
    }

    #[test]
    fn avg_scores_computed() {
        let m = RatingMap::from_subgroups(key(), vec![sg(0, &[0, 0, 0, 0, 4])], 5);
        assert_eq!(m.subgroups[0].avg_score, Some(5.0));
    }

    #[test]
    fn tie_break_on_value_id() {
        let m = RatingMap::from_subgroups(
            key(),
            vec![sg(7, &[0, 0, 2, 0, 0]), sg(3, &[0, 0, 2, 0, 0])],
            5,
        );
        let order: Vec<u32> = m.subgroups.iter().map(|s| s.value.0).collect();
        assert_eq!(order, vec![3, 7], "equal averages tie-break by value id");
    }

    #[test]
    fn mode_aggregation_uses_highest_probability() {
        // avg would order sg(1) (mean 3.0 via extremes) equal to a solid
        // 3-distribution, but their modes differ: {5,0,0,0,5} → mode 1.
        let m = RatingMap::from_subgroups_agg(
            key(),
            vec![sg(0, &[5, 0, 0, 0, 5]), sg(1, &[0, 0, 10, 0, 0])],
            5,
            AggregationKind::Mode,
        );
        let by_value: std::collections::HashMap<u32, f64> = m
            .subgroups
            .iter()
            .map(|s| (s.value.0, s.avg_score.unwrap()))
            .collect();
        assert_eq!(by_value[&0], 1.0, "bimodal ties resolve to lowest score");
        assert_eq!(by_value[&1], 3.0);
        // Ordering reflects mode scores: subgroup 1 (3.0) above 0 (1.0).
        assert_eq!(m.top_subgroup().unwrap().value, ValueId(1));
    }

    #[test]
    fn aggregation_kind_score() {
        let d = RatingDistribution::from_counts(vec![0, 0, 1, 0, 3]);
        assert_eq!(AggregationKind::Average.score(&d), Some(4.5));
        assert_eq!(AggregationKind::Mode.score(&d), Some(5.0));
        let empty = RatingDistribution::new(5);
        assert_eq!(AggregationKind::Mode.score(&empty), None);
    }

    #[test]
    fn empty_map() {
        let m = RatingMap::from_subgroups(key(), vec![], 5);
        assert_eq!(m.subgroup_count(), 0);
        assert!(m.top_subgroup().is_none());
        assert_eq!(m.record_weight(), 0);
    }
}
