//! RM-Selector: diverse subset selection via the GMM algorithm
//! (Section 4.2.2).
//!
//! Given the top-`l·k` rating maps by DW utility, select the `k` most
//! diverse using Gonzalez's greedy max-min algorithm \[29\]: seed with one
//! map, then `k − 1` times add the map maximizing the minimum distance to
//! the chosen set. A 2-approximation for max-min diversification, running
//! in `O(k² · l)` distance evaluations.
//!
//! We seed deterministically with the highest-DW-utility map (the paper
//! allows an arbitrary seed), so the "most interesting" map is always
//! shown.

use crate::mapdist::map_distance;
use crate::ratingmap::ScoredRatingMap;

/// How the final `k`-subset is chosen — the knob behind Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Take the `k` highest-DW-utility maps (`l = 1`, "Utility-Only").
    UtilityOnly,
    /// GMM over the top-`l·k` (the paper's default, `l = 3`).
    Hybrid {
        /// The pruning-diversity factor `l > 1`.
        l: usize,
    },
    /// GMM over *all* candidates regardless of utility ("Diversity-Only").
    DiversityOnly,
}

impl SelectionStrategy {
    /// The candidate-pool size (`k′`) this strategy needs from the
    /// generator, given `k` and the total number of candidates.
    pub fn pool_size(self, k: usize, total_candidates: usize) -> usize {
        match self {
            SelectionStrategy::UtilityOnly => k,
            SelectionStrategy::Hybrid { l } => k * l.max(1),
            SelectionStrategy::DiversityOnly => total_candidates,
        }
        .min(total_candidates.max(k))
    }
}

/// Selects `k` maps from `pool` (already ranked by descending DW utility).
///
/// For [`SelectionStrategy::UtilityOnly`] this is the prefix; otherwise
/// GMM runs over the pool. Returns at most `k` maps (fewer when the pool is
/// smaller).
pub fn select_diverse(
    pool: Vec<ScoredRatingMap>,
    k: usize,
    strategy: SelectionStrategy,
) -> Vec<ScoredRatingMap> {
    if pool.len() <= k || k == 0 {
        return pool.into_iter().take(k).collect();
    }
    if matches!(strategy, SelectionStrategy::UtilityOnly) {
        return pool.into_iter().take(k).collect();
    }
    gmm(pool, k)
}

/// Gonzalez's greedy max-min selection, seeded with index 0 (the
/// highest-utility map, since pools arrive utility-sorted).
fn gmm(pool: Vec<ScoredRatingMap>, k: usize) -> Vec<ScoredRatingMap> {
    let n = pool.len();
    debug_assert!(k < n || n == 0);
    let mut picked = vec![false; n];
    let mut taken = 1;
    let mut min_dist = vec![f64::INFINITY; n];
    picked[0] = true;
    for (i, d) in min_dist.iter_mut().enumerate().skip(1) {
        *d = map_distance(&pool[0].map, &pool[i].map);
    }
    while taken < k {
        // Farthest-point: maximize the minimum distance to the chosen set;
        // tie-break toward higher utility (lower pool index).
        let mut best = None;
        let mut best_d = f64::NEG_INFINITY;
        for (i, &d) in min_dist.iter().enumerate() {
            if picked[i] {
                continue;
            }
            if d > best_d {
                best_d = d;
                best = Some(i);
            }
        }
        let Some(next) = best else { break };
        picked[next] = true;
        taken += 1;
        for (i, md) in min_dist.iter_mut().enumerate() {
            // Chosen maps are never candidates again, so their min-dist
            // entries (and the self-distance) need no update.
            if picked[i] {
                continue;
            }
            let d = map_distance(&pool[next].map, &pool[i].map);
            if d < *md {
                *md = d;
            }
        }
    }
    // Emitting in pool order keeps utility order within the selection.
    pool.into_iter()
        .zip(picked)
        .filter_map(|(m, keep)| keep.then_some(m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapdist::set_diversity;
    use crate::ratingmap::{MapKey, RatingMap, Subgroup};
    use crate::utility::CriterionScores;
    use subdex_stats::RatingDistribution;
    use subdex_store::{AttrId, DimId, Entity, ValueId};

    fn scored(attr: u16, counts: &[&[u64]], dw: f64) -> ScoredRatingMap {
        let subs = counts
            .iter()
            .enumerate()
            .map(|(i, c)| Subgroup {
                value: ValueId(i as u32),
                distribution: RatingDistribution::from_counts(c.to_vec()),
                avg_score: None,
            })
            .collect();
        ScoredRatingMap {
            map: RatingMap::from_subgroups(
                MapKey::new(Entity::Item, AttrId(attr), DimId(0)),
                subs,
                5,
            ),
            utility: dw,
            dw_utility: dw,
            criteria: CriterionScores::default(),
        }
    }

    /// Pool: three near-identical high-utility maps + one far-away map.
    fn clustered_pool() -> Vec<ScoredRatingMap> {
        vec![
            scored(0, &[&[10, 0, 0, 0, 0]], 0.9),
            scored(1, &[&[9, 1, 0, 0, 0]], 0.8),
            scored(2, &[&[10, 0, 0, 0, 1]], 0.7),
            scored(3, &[&[0, 0, 0, 0, 10]], 0.4),
        ]
    }

    #[test]
    fn utility_only_takes_prefix() {
        let out = select_diverse(clustered_pool(), 2, SelectionStrategy::UtilityOnly);
        let attrs: Vec<u16> = out.iter().map(|m| m.map.key.attr.0).collect();
        assert_eq!(attrs, vec![0, 1]);
    }

    #[test]
    fn gmm_prefers_distant_maps() {
        let out = select_diverse(clustered_pool(), 2, SelectionStrategy::Hybrid { l: 2 });
        let attrs: Vec<u16> = out.iter().map(|m| m.map.key.attr.0).collect();
        assert_eq!(attrs, vec![0, 3], "seed + the farthest map");
    }

    #[test]
    fn gmm_beats_prefix_on_diversity() {
        let pool = clustered_pool();
        let prefix = select_diverse(pool.clone(), 2, SelectionStrategy::UtilityOnly);
        let gmm_sel = select_diverse(pool, 2, SelectionStrategy::DiversityOnly);
        let d_prefix = set_diversity(&prefix.iter().map(|m| &m.map).collect::<Vec<_>>());
        let d_gmm = set_diversity(&gmm_sel.iter().map(|m| &m.map).collect::<Vec<_>>());
        assert!(d_gmm > d_prefix);
    }

    #[test]
    fn small_pool_returned_whole() {
        let pool = clustered_pool();
        let out = select_diverse(pool.clone(), 10, SelectionStrategy::Hybrid { l: 3 });
        assert_eq!(out.len(), 4);
        let out0 = select_diverse(pool, 0, SelectionStrategy::Hybrid { l: 3 });
        assert!(out0.is_empty());
    }

    #[test]
    fn gmm_two_approximation_on_brute_forceable_instance() {
        // 6 maps; check GMM's min-pairwise ≥ ½ of the optimum over all
        // 3-subsets.
        let pool = vec![
            scored(0, &[&[10, 0, 0, 0, 0]], 0.9),
            scored(1, &[&[0, 10, 0, 0, 0]], 0.8),
            scored(2, &[&[0, 0, 10, 0, 0]], 0.7),
            scored(3, &[&[0, 0, 0, 10, 0]], 0.6),
            scored(4, &[&[0, 0, 0, 0, 10]], 0.5),
            scored(5, &[&[5, 0, 0, 0, 5]], 0.4),
        ];
        let k = 3;
        let maps: Vec<&RatingMap> = pool.iter().map(|m| &m.map).collect();
        let mut opt: f64 = 0.0;
        for i in 0..maps.len() {
            for j in (i + 1)..maps.len() {
                for l in (j + 1)..maps.len() {
                    opt = opt.max(set_diversity(&[maps[i], maps[j], maps[l]]));
                }
            }
        }
        let sel = select_diverse(pool, k, SelectionStrategy::DiversityOnly);
        let got = set_diversity(&sel.iter().map(|m| &m.map).collect::<Vec<_>>());
        assert!(got * 2.0 + 1e-9 >= opt, "GMM {got} vs OPT {opt}");
    }

    /// The pre-rewrite GMM verbatim (`chosen.contains` check, unconditional
    /// distance updates), kept as the reference the optimized version must
    /// match index-for-index.
    fn gmm_reference(pool: &[ScoredRatingMap], k: usize) -> Vec<usize> {
        let n = pool.len();
        let mut chosen: Vec<usize> = vec![0];
        let mut min_dist = vec![f64::INFINITY; n];
        for (i, d) in min_dist.iter_mut().enumerate() {
            *d = crate::mapdist::map_distance(&pool[0].map, &pool[i].map);
        }
        while chosen.len() < k {
            let mut best = None;
            let mut best_d = f64::NEG_INFINITY;
            for (i, &d) in min_dist.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                if d > best_d {
                    best_d = d;
                    best = Some(i);
                }
            }
            let Some(next) = best else { break };
            chosen.push(next);
            for (i, md) in min_dist.iter_mut().enumerate() {
                let d = crate::mapdist::map_distance(&pool[next].map, &pool[i].map);
                if d < *md {
                    *md = d;
                }
            }
        }
        chosen.sort_unstable();
        chosen
    }

    #[test]
    fn gmm_selection_pinned_on_fixed_pool() {
        // Regression pin for the bookkeeping rewrite (picked-array check +
        // skipped self/chosen distance updates): exact selections on a
        // fixed 6-map pool must never change.
        let pool = vec![
            scored(0, &[&[10, 0, 0, 0, 0]], 0.9),
            scored(1, &[&[9, 1, 0, 0, 0]], 0.8),
            scored(2, &[&[0, 0, 10, 0, 0]], 0.7),
            scored(3, &[&[0, 0, 9, 1, 0]], 0.6),
            scored(4, &[&[0, 0, 0, 0, 10]], 0.5),
            scored(5, &[&[5, 0, 0, 0, 5]], 0.4),
        ];
        for (k, expect) in [
            (2usize, vec![0u16, 4]),
            (3, vec![0, 2, 4]),
            (4, vec![0, 2, 4, 5]),
            (5, vec![0, 1, 2, 4, 5]),
        ] {
            let sel = select_diverse(pool.clone(), k, SelectionStrategy::DiversityOnly);
            let attrs: Vec<u16> = sel.iter().map(|m| m.map.key.attr.0).collect();
            assert_eq!(attrs, expect, "k={k}");
            let reference: Vec<u16> = gmm_reference(&pool, k)
                .into_iter()
                .map(|i| pool[i].map.key.attr.0)
                .collect();
            assert_eq!(attrs, reference, "k={k} diverged from reference GMM");
        }
        // Also sweep the clustered pool against the reference.
        let clustered = clustered_pool();
        for k in 1..clustered.len() {
            let sel = select_diverse(clustered.clone(), k, SelectionStrategy::DiversityOnly);
            let attrs: Vec<u16> = sel.iter().map(|m| m.map.key.attr.0).collect();
            let reference: Vec<u16> = gmm_reference(&clustered, k)
                .into_iter()
                .map(|i| clustered[i].map.key.attr.0)
                .collect();
            assert_eq!(attrs, reference, "clustered k={k}");
        }
    }

    #[test]
    fn pool_size_per_strategy() {
        assert_eq!(SelectionStrategy::UtilityOnly.pool_size(3, 100), 3);
        assert_eq!(SelectionStrategy::Hybrid { l: 3 }.pool_size(3, 100), 9);
        assert_eq!(SelectionStrategy::DiversityOnly.pool_size(3, 100), 100);
        assert_eq!(
            SelectionStrategy::Hybrid { l: 3 }.pool_size(3, 5),
            5,
            "clamped to available candidates"
        );
    }
}
