//! RM-Selector: diverse subset selection via the GMM algorithm
//! (Section 4.2.2).
//!
//! Given the top-`l·k` rating maps by DW utility, select the `k` most
//! diverse using Gonzalez's greedy max-min algorithm \[29\]: seed with one
//! map, then `k − 1` times add the map maximizing the minimum distance to
//! the chosen set. A 2-approximation for max-min diversification, running
//! in `O(k² · l)` distance evaluations.
//!
//! We seed deterministically with the highest-DW-utility map (the paper
//! allows an arbitrary seed), so the "most interesting" map is always
//! shown.
//!
//! Distance evaluations go through [`DistanceEngine`]: map signatures are
//! built once per pool, the per-pick update `min_dist[i] = min(min_dist[i],
//! d(next, i))` skips exact transportation solves that a lower bound proves
//! irrelevant, exact values can be served from a shared cross-step cache,
//! and rows are evaluated in parallel chunks with a deterministic merge.
//! Every engine configuration returns byte-identical selections (see the
//! equivalence tests in `tests/proptests.rs`).

use crate::mapdist::{DistScratch, DistanceEngine, MapSignature, SelectionStats};
use crate::ratingmap::ScoredRatingMap;
use subdex_stats::kernels::BatchScratch;

/// How the final `k`-subset is chosen — the knob behind Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Take the `k` highest-DW-utility maps (`l = 1`, "Utility-Only").
    UtilityOnly,
    /// GMM over the top-`l·k` (the paper's default, `l = 3`).
    Hybrid {
        /// The pruning-diversity factor `l > 1`.
        l: usize,
    },
    /// GMM over *all* candidates regardless of utility ("Diversity-Only").
    DiversityOnly,
}

impl SelectionStrategy {
    /// The candidate-pool size (`k′`) this strategy needs from the
    /// generator, given `k` and the total number of candidates.
    pub fn pool_size(self, k: usize, total_candidates: usize) -> usize {
        match self {
            SelectionStrategy::UtilityOnly => k,
            SelectionStrategy::Hybrid { l } => k * l.max(1),
            SelectionStrategy::DiversityOnly => total_candidates,
        }
        .min(total_candidates.max(k))
    }
}

/// Reusable buffers for diverse selection: the per-pool signature vector,
/// the GMM bookkeeping arrays, and the distance engine's cost-matrix
/// scratch. Pooled inside [`crate::plan::ExecContext`] so steady-state
/// selections re-use one grown-to-size set of containers instead of
/// allocating five fresh ones per pass.
#[derive(Debug, Default)]
pub struct SelectScratch {
    sigs: Vec<MapSignature>,
    sig_tmp: BatchScratch,
    picked: Vec<bool>,
    min_dist: Vec<f64>,
    dist: DistScratch,
}

impl SelectScratch {
    /// Heap bytes currently held across all pooled buffers.
    pub fn resident_bytes(&self) -> usize {
        self.sigs.capacity() * std::mem::size_of::<MapSignature>()
            + self.sigs.iter().map(|s| s.heap_bytes()).sum::<usize>()
            + self.sig_tmp.resident_bytes()
            + self.picked.capacity()
            + self.min_dist.capacity() * std::mem::size_of::<f64>()
            + self.dist.resident_bytes()
    }

    /// Heap bytes the most recent selection actually needed (length, not
    /// capacity) — the demand signal of the executor's high-water trim.
    pub fn used_bytes(&self) -> usize {
        self.sigs.len() * std::mem::size_of::<MapSignature>()
            + self.sigs.iter().map(|s| s.heap_bytes()).sum::<usize>()
            + self.sig_tmp.used_bytes()
            + self.picked.len()
            + self.min_dist.len() * std::mem::size_of::<f64>()
            + self.dist.used_bytes()
    }

    /// Releases all retained capacity (the high-water shrink hook; see
    /// `ExecContext` in the plan module).
    pub fn shrink(&mut self) {
        self.sigs = Vec::new();
        self.sig_tmp.shrink();
        self.picked = Vec::new();
        self.min_dist = Vec::new();
        self.dist.shrink();
    }
}

/// Selects `k` maps from `pool` (already ranked by descending DW utility)
/// with a default (bounds-on, serial, uncached) engine, discarding stats.
///
/// For [`SelectionStrategy::UtilityOnly`] this is the prefix; otherwise
/// GMM runs over the pool. Returns at most `k` maps (fewer when the pool is
/// smaller).
pub fn select_diverse(
    pool: Vec<ScoredRatingMap>,
    k: usize,
    strategy: SelectionStrategy,
) -> Vec<ScoredRatingMap> {
    select_diverse_tracked(pool, k, strategy, &DistanceEngine::new()).0
}

/// [`select_diverse`] through a caller-configured [`DistanceEngine`],
/// reporting how the distance evaluations were resolved. Allocates its
/// scratch per call; hot paths should hold a [`SelectScratch`] and use
/// [`select_diverse_with`] instead.
pub fn select_diverse_tracked(
    pool: Vec<ScoredRatingMap>,
    k: usize,
    strategy: SelectionStrategy,
    engine: &DistanceEngine,
) -> (Vec<ScoredRatingMap>, SelectionStats) {
    select_diverse_with(pool, k, strategy, engine, &mut SelectScratch::default())
}

/// [`select_diverse_tracked`] over caller-pooled buffers. Selections are
/// byte-identical to the allocating path for every `(pool, k, strategy,
/// engine)` — the scratch only recycles containers, never values.
pub fn select_diverse_with(
    pool: Vec<ScoredRatingMap>,
    k: usize,
    strategy: SelectionStrategy,
    engine: &DistanceEngine,
    scratch: &mut SelectScratch,
) -> (Vec<ScoredRatingMap>, SelectionStats) {
    let start = std::time::Instant::now();
    let mut stats = SelectionStats::default();
    let out = if pool.len() <= k || k == 0 || matches!(strategy, SelectionStrategy::UtilityOnly) {
        pool.into_iter().take(k).collect()
    } else {
        gmm(pool, k, engine, &mut stats, scratch)
    };
    stats.select_time = start.elapsed();
    (out, stats)
}

/// Gonzalez's greedy max-min selection, seeded with index 0 (the
/// highest-utility map, since pools arrive utility-sorted).
fn gmm(
    pool: Vec<ScoredRatingMap>,
    k: usize,
    engine: &DistanceEngine,
    stats: &mut SelectionStats,
    scratch: &mut SelectScratch,
) -> Vec<ScoredRatingMap> {
    let n = pool.len();
    debug_assert!(k < n || n == 0);
    let SelectScratch {
        sigs,
        sig_tmp,
        picked,
        min_dist,
        dist,
    } = scratch;
    sigs.clear();
    sigs.extend(pool.iter().map(|m| MapSignature::build(&m.map, sig_tmp)));
    picked.clear();
    picked.resize(n, false);
    min_dist.clear();
    min_dist.resize(n, f64::INFINITY);
    let mut taken = 1;
    picked[0] = true;
    // Seed row: every min-dist is infinite, so nothing can be pruned and
    // every pair resolves exactly (possibly from the cache).
    engine.update_row(sigs, 0, picked, min_dist, dist, stats);
    while taken < k {
        // Farthest-point: maximize the minimum distance to the chosen set;
        // tie-break toward higher utility (lower pool index).
        let mut best = None;
        let mut best_d = f64::NEG_INFINITY;
        for (i, &d) in min_dist.iter().enumerate() {
            if picked[i] {
                continue;
            }
            if d > best_d {
                best_d = d;
                best = Some(i);
            }
        }
        let Some(next) = best else { break };
        picked[next] = true;
        taken += 1;
        // Chosen maps are never candidates again, so their min-dist entries
        // (and the self-distance) need no update; for the rest, a bound
        // reaching min_dist[i] proves the exact solve irrelevant.
        engine.update_row(sigs, next, picked, min_dist, dist, stats);
    }
    // Emitting in pool order keeps utility order within the selection.
    pool.into_iter()
        .zip(picked.iter())
        .filter_map(|(m, &keep)| keep.then_some(m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapdist::set_diversity;
    use crate::ratingmap::{MapKey, RatingMap, Subgroup};
    use crate::utility::CriterionScores;
    use std::sync::Arc;
    use subdex_stats::RatingDistribution;
    use subdex_store::{AttrId, DimId, DistanceCache, Entity, ValueId};

    fn scored(attr: u16, counts: &[&[u64]], dw: f64) -> ScoredRatingMap {
        let subs = counts
            .iter()
            .enumerate()
            .map(|(i, c)| Subgroup {
                value: ValueId(i as u32),
                distribution: RatingDistribution::from_counts(c.to_vec()),
                avg_score: None,
            })
            .collect();
        ScoredRatingMap {
            map: RatingMap::from_subgroups(
                MapKey::new(Entity::Item, AttrId(attr), DimId(0)),
                subs,
                5,
            ),
            utility: dw,
            dw_utility: dw,
            criteria: CriterionScores::default(),
        }
    }

    /// Pool: three near-identical high-utility maps + one far-away map.
    fn clustered_pool() -> Vec<ScoredRatingMap> {
        vec![
            scored(0, &[&[10, 0, 0, 0, 0]], 0.9),
            scored(1, &[&[9, 1, 0, 0, 0]], 0.8),
            scored(2, &[&[10, 0, 0, 0, 1]], 0.7),
            scored(3, &[&[0, 0, 0, 0, 10]], 0.4),
        ]
    }

    #[test]
    fn utility_only_takes_prefix() {
        let out = select_diverse(clustered_pool(), 2, SelectionStrategy::UtilityOnly);
        let attrs: Vec<u16> = out.iter().map(|m| m.map.key.attr.0).collect();
        assert_eq!(attrs, vec![0, 1]);
    }

    #[test]
    fn gmm_prefers_distant_maps() {
        let out = select_diverse(clustered_pool(), 2, SelectionStrategy::Hybrid { l: 2 });
        let attrs: Vec<u16> = out.iter().map(|m| m.map.key.attr.0).collect();
        assert_eq!(attrs, vec![0, 3], "seed + the farthest map");
    }

    #[test]
    fn gmm_beats_prefix_on_diversity() {
        let pool = clustered_pool();
        let prefix = select_diverse(pool.clone(), 2, SelectionStrategy::UtilityOnly);
        let gmm_sel = select_diverse(pool, 2, SelectionStrategy::DiversityOnly);
        let d_prefix = set_diversity(&prefix.iter().map(|m| &m.map).collect::<Vec<_>>());
        let d_gmm = set_diversity(&gmm_sel.iter().map(|m| &m.map).collect::<Vec<_>>());
        assert!(d_gmm > d_prefix);
    }

    #[test]
    fn small_pool_returned_whole() {
        let pool = clustered_pool();
        let out = select_diverse(pool.clone(), 10, SelectionStrategy::Hybrid { l: 3 });
        assert_eq!(out.len(), 4);
        let out0 = select_diverse(pool, 0, SelectionStrategy::Hybrid { l: 3 });
        assert!(out0.is_empty());
    }

    #[test]
    fn gmm_two_approximation_on_brute_forceable_instance() {
        // 6 maps; check GMM's min-pairwise ≥ ½ of the optimum over all
        // 3-subsets.
        let pool = vec![
            scored(0, &[&[10, 0, 0, 0, 0]], 0.9),
            scored(1, &[&[0, 10, 0, 0, 0]], 0.8),
            scored(2, &[&[0, 0, 10, 0, 0]], 0.7),
            scored(3, &[&[0, 0, 0, 10, 0]], 0.6),
            scored(4, &[&[0, 0, 0, 0, 10]], 0.5),
            scored(5, &[&[5, 0, 0, 0, 5]], 0.4),
        ];
        let k = 3;
        let maps: Vec<&RatingMap> = pool.iter().map(|m| &m.map).collect();
        let mut opt: f64 = 0.0;
        for i in 0..maps.len() {
            for j in (i + 1)..maps.len() {
                for l in (j + 1)..maps.len() {
                    opt = opt.max(set_diversity(&[maps[i], maps[j], maps[l]]));
                }
            }
        }
        let sel = select_diverse(pool, k, SelectionStrategy::DiversityOnly);
        let got = set_diversity(&sel.iter().map(|m| &m.map).collect::<Vec<_>>());
        assert!(got * 2.0 + 1e-9 >= opt, "GMM {got} vs OPT {opt}");
    }

    /// The pre-rewrite GMM verbatim (`chosen.contains` check, unconditional
    /// distance updates), kept as the reference the optimized version must
    /// match index-for-index.
    fn gmm_reference(pool: &[ScoredRatingMap], k: usize) -> Vec<usize> {
        let n = pool.len();
        let mut chosen: Vec<usize> = vec![0];
        let mut min_dist = vec![f64::INFINITY; n];
        for (i, d) in min_dist.iter_mut().enumerate() {
            *d = crate::mapdist::map_distance(&pool[0].map, &pool[i].map);
        }
        while chosen.len() < k {
            let mut best = None;
            let mut best_d = f64::NEG_INFINITY;
            for (i, &d) in min_dist.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                if d > best_d {
                    best_d = d;
                    best = Some(i);
                }
            }
            let Some(next) = best else { break };
            chosen.push(next);
            for (i, md) in min_dist.iter_mut().enumerate() {
                let d = crate::mapdist::map_distance(&pool[next].map, &pool[i].map);
                if d < *md {
                    *md = d;
                }
            }
        }
        chosen.sort_unstable();
        chosen
    }

    fn attrs_of(sel: &[ScoredRatingMap]) -> Vec<u16> {
        sel.iter().map(|m| m.map.key.attr.0).collect()
    }

    #[test]
    fn gmm_selection_pinned_on_fixed_pool() {
        // Regression pin for the engine rewrite (bound pruning, distance
        // cache, parallel rows): exact selections on a fixed 6-map pool
        // must never change, under every engine configuration.
        let pool = vec![
            scored(0, &[&[10, 0, 0, 0, 0]], 0.9),
            scored(1, &[&[9, 1, 0, 0, 0]], 0.8),
            scored(2, &[&[0, 0, 10, 0, 0]], 0.7),
            scored(3, &[&[0, 0, 9, 1, 0]], 0.6),
            scored(4, &[&[0, 0, 0, 0, 10]], 0.5),
            scored(5, &[&[5, 0, 0, 0, 5]], 0.4),
        ];
        let engines = engine_matrix();
        for (k, expect) in [
            (2usize, vec![0u16, 4]),
            (3, vec![0, 2, 4]),
            (4, vec![0, 2, 4, 5]),
            (5, vec![0, 1, 2, 4, 5]),
        ] {
            let sel = select_diverse(pool.clone(), k, SelectionStrategy::DiversityOnly);
            let attrs = attrs_of(&sel);
            assert_eq!(attrs, expect, "k={k}");
            let reference: Vec<u16> = gmm_reference(&pool, k)
                .into_iter()
                .map(|i| pool[i].map.key.attr.0)
                .collect();
            assert_eq!(attrs, reference, "k={k} diverged from reference GMM");
            for (name, engine) in &engines {
                let (sel_e, _) = select_diverse_tracked(
                    pool.clone(),
                    k,
                    SelectionStrategy::DiversityOnly,
                    engine,
                );
                assert_eq!(attrs_of(&sel_e), expect, "k={k} engine={name}");
            }
        }
        // Also sweep the clustered pool against the reference.
        let clustered = clustered_pool();
        for k in 1..clustered.len() {
            let sel = select_diverse(clustered.clone(), k, SelectionStrategy::DiversityOnly);
            let attrs = attrs_of(&sel);
            let reference: Vec<u16> = gmm_reference(&clustered, k)
                .into_iter()
                .map(|i| clustered[i].map.key.attr.0)
                .collect();
            assert_eq!(attrs, reference, "clustered k={k}");
            for (name, engine) in &engines {
                let (sel_e, _) = select_diverse_tracked(
                    clustered.clone(),
                    k,
                    SelectionStrategy::DiversityOnly,
                    engine,
                );
                assert_eq!(attrs_of(&sel_e), attrs, "clustered k={k} engine={name}");
            }
        }
    }

    /// Every bounds × cache × threads configuration under test.
    fn engine_matrix() -> Vec<(&'static str, DistanceEngine)> {
        let cache = || Some(Arc::new(DistanceCache::new(1 << 20)));
        vec![
            ("bounds", DistanceEngine::new()),
            ("no-bounds", DistanceEngine::new().with_bounds(false)),
            ("bounds+cache", DistanceEngine::new().with_cache(cache())),
            (
                "no-bounds+cache",
                DistanceEngine::new().with_bounds(false).with_cache(cache()),
            ),
            ("bounds+par", DistanceEngine::new().with_threads(4)),
            (
                "bounds+cache+par",
                DistanceEngine::new().with_cache(cache()).with_threads(4),
            ),
        ]
    }

    #[test]
    fn warm_cache_replays_the_same_selection_without_solves() {
        let pool = clustered_pool();
        let cache = Arc::new(DistanceCache::new(1 << 20));
        let engine = DistanceEngine::new().with_cache(Some(cache.clone()));
        let (cold_sel, cold) =
            select_diverse_tracked(pool.clone(), 2, SelectionStrategy::DiversityOnly, &engine);
        assert!(cold.exact_solves > 0);
        let (warm_sel, warm) =
            select_diverse_tracked(pool, 2, SelectionStrategy::DiversityOnly, &engine);
        assert_eq!(attrs_of(&cold_sel), attrs_of(&warm_sel));
        assert_eq!(warm.exact_solves, 0, "every pair must be served warm");
        assert_eq!(warm.cache_hits, cold.exact_solves + cold.cache_hits);
    }

    #[test]
    fn stats_account_for_every_pair() {
        // Pool large enough that GMM does real work; every (pivot, i) pair
        // the update loop visits must be counted exactly once.
        let pool = vec![
            scored(0, &[&[10, 0, 0, 0, 0]], 0.9),
            scored(1, &[&[9, 1, 0, 0, 0]], 0.8),
            scored(2, &[&[0, 0, 10, 0, 0]], 0.7),
            scored(3, &[&[0, 0, 9, 1, 0]], 0.6),
            scored(4, &[&[0, 0, 0, 0, 10]], 0.5),
            scored(5, &[&[5, 0, 0, 0, 5]], 0.4),
        ];
        let n = pool.len() as u64;
        let k = 4u64;
        let (_, stats) = select_diverse_tracked(
            pool,
            k as usize,
            SelectionStrategy::DiversityOnly,
            &DistanceEngine::new(),
        );
        // A row runs after every pick t = 1..=k (including the last) and
        // visits the n - t still-unpicked candidates.
        let expected: u64 = (1..=k).map(|t| n - t).sum();
        assert_eq!(stats.evaluations(), expected);
        assert!(stats.select_time > std::time::Duration::ZERO);
    }

    #[test]
    fn pool_size_per_strategy() {
        assert_eq!(SelectionStrategy::UtilityOnly.pool_size(3, 100), 3);
        assert_eq!(SelectionStrategy::Hybrid { l: 3 }.pool_size(3, 100), 9);
        assert_eq!(SelectionStrategy::DiversityOnly.pool_size(3, 100), 100);
        assert_eq!(
            SelectionStrategy::Hybrid { l: 3 }.pool_size(3, 5),
            5,
            "clamped to available candidates"
        );
    }
}
