//! Pruning-based optimizations (Section 4.2.1).
//!
//! Two schemes, both adapted from SeeDB \[54\]:
//!
//! * **Confidence-interval pruning** (Algorithm 3). Each candidate carries
//!   four criterion intervals (Hoeffding–Serfling around the running
//!   normalized estimates). Intervals entirely dominated by a sibling
//!   criterion are discarded; the surviving envelope — upper bound = max
//!   remaining upper bound, lower bound = min remaining lower bound, as the
//!   paper specifies — is scaled by the dimension weight, and a candidate
//!   whose upper bound falls below the lowest lower bound of the current
//!   top-`k′` is pruned.
//! * **MAB pruning** — the Successive Accepts and Rejects strategy of
//!   Bubeck et al. \[13\]: once per phase, either confidently *accept* the
//!   best remaining arm into the top-`k′` or *reject* the worst, whichever
//!   gap is larger.

use serde::{Deserialize, Serialize};
use subdex_stats::ConfidenceInterval;

/// Which pruning optimizations a generator run uses. The scalability
/// baselines of Section 5.1 are exactly these variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruningStrategy {
    /// No pruning: every candidate is fully evaluated ("No-Pruning").
    None,
    /// Confidence-interval pruning only ("CI Pruning").
    ConfidenceInterval,
    /// Multi-armed-bandit pruning only ("MAB Pruning").
    Mab,
    /// Both schemes — the full SubDEx configuration.
    #[default]
    Both,
}

impl PruningStrategy {
    /// Whether CI pruning is active.
    pub fn uses_ci(self) -> bool {
        matches!(
            self,
            PruningStrategy::ConfidenceInterval | PruningStrategy::Both
        )
    }

    /// Whether MAB pruning is active.
    pub fn uses_mab(self) -> bool {
        matches!(self, PruningStrategy::Mab | PruningStrategy::Both)
    }
}

/// Algorithm 3, lines 1–11: collapse the four criterion intervals into one
/// utility envelope and scale it by the dimension weight.
///
/// Ordering intervals by upper bound, dominated intervals (entirely below
/// the leading one) do not contribute; among the overlapping rest the upper
/// bound is the largest upper bound and the lower bound the smallest lower
/// bound (the paper's — sound, slightly conservative — choice).
pub fn utility_envelope(criteria: &[ConfidenceInterval], weight: f64) -> ConfidenceInterval {
    assert!(!criteria.is_empty(), "at least one criterion interval");
    let mut sorted: Vec<ConfidenceInterval> = criteria.to_vec();
    sorted.sort_by(|a, b| b.hi.partial_cmp(&a.hi).unwrap_or(std::cmp::Ordering::Equal));
    let mut ub = sorted[0].hi;
    let mut lb = sorted[0].lo;
    for i in &sorted[1..] {
        if i.hi < lb {
            // Entirely below the current envelope: can never define the max.
            continue;
        }
        ub = ub.max(i.hi);
        lb = lb.min(i.lo);
    }
    ConfidenceInterval::new(lb, ub).scale(weight)
}

/// Algorithm 3, lines 12–17: marks which candidates survive.
///
/// Candidates are ranked by envelope upper bound; with `k′` slots, any
/// candidate outside the top `k′` whose upper bound is below the lowest
/// lower bound among the top `k′` cannot (w.h.p.) belong to the result and
/// is dropped. Returns a keep-mask aligned with `envelopes`.
pub fn ci_survivors(envelopes: &[ConfidenceInterval], k_prime: usize) -> Vec<bool> {
    let n = envelopes.len();
    if n <= k_prime {
        return vec![true; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        envelopes[b]
            .hi
            .partial_cmp(&envelopes[a].hi)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let top = &order[..k_prime];
    let lowest_lb = top
        .iter()
        .map(|&i| envelopes[i].lo)
        .fold(f64::INFINITY, f64::min);
    let mut keep = vec![true; n];
    for &i in &order[k_prime..] {
        if envelopes[i].hi < lowest_lb {
            keep[i] = false;
        }
    }
    keep
}

/// One decision of the Successive-Accepts-and-Rejects strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SarDecision {
    /// Arm (by caller index) is confidently in the top set; freeze it.
    Accept(usize),
    /// Arm (by caller index) is confidently out; drop it.
    Reject(usize),
    /// No confident decision this phase (too few active arms).
    Nothing,
}

/// Successive Accepts and Rejects over the generator's phases.
///
/// `remaining_slots` counts top-set positions not yet filled by accepted
/// arms. Each call to [`SarState::decide`] inspects the active arms' current
/// mean utilities and accepts the best or rejects the worst, per the gap
/// comparison the paper describes: Δ₁ (best minus the (k′+1)-th mean)
/// against Δ₂ (the k′-th mean minus the worst).
#[derive(Debug, Clone)]
pub struct SarState {
    remaining_slots: usize,
}

impl SarState {
    /// Creates the state for a top-`k_prime` selection.
    pub fn new(k_prime: usize) -> Self {
        Self {
            remaining_slots: k_prime,
        }
    }

    /// Slots not yet filled.
    pub fn remaining_slots(&self) -> usize {
        self.remaining_slots
    }

    /// Decides one accept/reject given `(caller_index, mean)` pairs of the
    /// *active* (not yet accepted/rejected) arms. Call once per phase.
    pub fn decide(&mut self, means: &[(usize, f64)]) -> SarDecision {
        let n = means.len();
        if self.remaining_slots == 0 || n <= self.remaining_slots || n < 2 {
            return SarDecision::Nothing;
        }
        let mut sorted: Vec<(usize, f64)> = means.to_vec();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.remaining_slots;
        // Δ1: top arm vs the best arm that would be excluded.
        let delta1 = sorted[0].1 - sorted[k].1;
        // Δ2: the worst arm vs the last arm that would be included.
        let delta2 = sorted[k - 1].1 - sorted[n - 1].1;
        if delta1 > delta2 {
            self.remaining_slots -= 1;
            SarDecision::Accept(sorted[0].0)
        } else {
            SarDecision::Reject(sorted[n - 1].0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(lo: f64, hi: f64) -> ConfidenceInterval {
        ConfidenceInterval::new(lo, hi)
    }

    #[test]
    fn strategy_flags() {
        assert!(PruningStrategy::Both.uses_ci() && PruningStrategy::Both.uses_mab());
        assert!(PruningStrategy::ConfidenceInterval.uses_ci());
        assert!(!PruningStrategy::ConfidenceInterval.uses_mab());
        assert!(!PruningStrategy::None.uses_ci() && !PruningStrategy::None.uses_mab());
    }

    #[test]
    fn envelope_drops_dominated_interval() {
        // Figure 6's rm1: envelope from global-peculiarity's ub down to
        // agreement's lb; a self-peculiarity interval entirely below is
        // ignored.
        let glob = ci(0.6, 0.9);
        let agr = ci(0.5, 0.7);
        let dominated = ci(0.1, 0.2);
        let env = utility_envelope(&[glob, agr, dominated], 1.0);
        assert_eq!((env.lo, env.hi), (0.5, 0.9));
    }

    #[test]
    fn envelope_keeps_overlapping_intervals() {
        let a = ci(0.4, 0.9);
        let b = ci(0.3, 0.5); // overlaps the envelope → extends lb
        let env = utility_envelope(&[a, b], 1.0);
        assert_eq!((env.lo, env.hi), (0.3, 0.9));
    }

    #[test]
    fn envelope_applies_weight() {
        let env = utility_envelope(&[ci(0.4, 0.8)], 0.5);
        assert!((env.lo - 0.2).abs() < 1e-12 && (env.hi - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ci_survivors_prunes_clearly_low() {
        // Figure 6: rm3 entirely below rm1 and rm2 → pruned at k' = 2.
        let rm1 = ci(0.5, 0.9);
        let rm2 = ci(0.45, 0.8);
        let rm3 = ci(0.1, 0.3);
        let keep = ci_survivors(&[rm1, rm2, rm3], 2);
        assert_eq!(keep, vec![true, true, false]);
    }

    #[test]
    fn ci_survivors_keeps_overlapping() {
        let a = ci(0.5, 0.9);
        let b = ci(0.4, 0.8);
        let c = ci(0.45, 0.6); // overlaps the top-2's lowest lb (0.4)
        let keep = ci_survivors(&[a, b, c], 2);
        assert_eq!(keep, vec![true, true, true]);
    }

    #[test]
    fn ci_survivors_all_kept_when_few() {
        let keep = ci_survivors(&[ci(0.0, 0.1), ci(0.2, 0.3)], 5);
        assert_eq!(keep, vec![true, true]);
    }

    #[test]
    fn sar_accepts_clear_winner() {
        let mut s = SarState::new(2);
        // Arm 7 far ahead; bottom is bunched → Δ1 > Δ2.
        let means = vec![(7, 0.95), (1, 0.50), (2, 0.48), (3, 0.47)];
        assert_eq!(s.decide(&means), SarDecision::Accept(7));
        assert_eq!(s.remaining_slots(), 1);
    }

    #[test]
    fn sar_rejects_clear_loser() {
        let mut s = SarState::new(2);
        // Top bunched; arm 9 far behind → Δ2 > Δ1.
        let means = vec![(1, 0.52), (2, 0.51), (3, 0.50), (9, 0.05)];
        assert_eq!(s.decide(&means), SarDecision::Reject(9));
        assert_eq!(s.remaining_slots(), 2, "rejection keeps slots");
    }

    #[test]
    fn sar_nothing_when_no_excess() {
        let mut s = SarState::new(3);
        let means = vec![(0, 0.9), (1, 0.8), (2, 0.7)];
        assert_eq!(s.decide(&means), SarDecision::Nothing);
    }

    #[test]
    fn sar_single_slot_rejects_down_to_winner() {
        // With one slot, Δ2 = (top − bottom) ≥ Δ1 = (top − second), so SAR
        // eliminates from the bottom until only the winner remains.
        let mut s = SarState::new(1);
        assert_eq!(
            s.decide(&[(0, 0.99), (1, 0.01), (2, 0.02)]),
            SarDecision::Reject(1)
        );
        assert_eq!(s.decide(&[(0, 0.99), (2, 0.02)]), SarDecision::Reject(2));
        assert_eq!(
            s.decide(&[(0, 0.99)]),
            SarDecision::Nothing,
            "only the top set remains"
        );
        assert_eq!(s.remaining_slots(), 1);
    }

    #[test]
    fn sar_sequence_converges_to_topk() {
        // Repeatedly applying decisions must isolate the true top-2.
        let mut s = SarState::new(2);
        let mut active: Vec<(usize, f64)> = vec![(0, 0.9), (1, 0.85), (2, 0.3), (3, 0.2), (4, 0.1)];
        let mut accepted = Vec::new();
        loop {
            match s.decide(&active) {
                SarDecision::Accept(i) => {
                    accepted.push(i);
                    active.retain(|&(j, _)| j != i);
                }
                SarDecision::Reject(i) => active.retain(|&(j, _)| j != i),
                SarDecision::Nothing => break,
            }
        }
        let mut survivors: Vec<usize> = accepted
            .into_iter()
            .chain(active.iter().map(|&(i, _)| i))
            .collect();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_envelope_panics() {
        let _ = utility_envelope(&[], 1.0);
    }
}
