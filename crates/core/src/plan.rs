//! The step planner/executor: an explicit phase-plan IR with a pooled
//! execution context.
//!
//! The paper's Algorithm 1 describes one exploration step as a phased
//! pipeline — materialize the rating group, generate candidate maps under
//! pruning, select a diverse `k`-subset, recommend next-step operations.
//! This module makes that pipeline a first-class value instead of a
//! hard-coded monolith:
//!
//! * [`StepPlan`] is a small DAG of typed phase ops ([`PhaseOp`]) compiled
//!   from an [`EngineConfig`] + [`SelectionQuery`] by [`StepPlan::compile`].
//!   The *logical* plan records every op the configuration enables —
//!   including the pruning ops the physical execution fuses into the scan
//!   loop — so tooling can inspect, render ([`StepPlan::describe`]), and
//!   eventually re-order or shard what a step will do without running it.
//! * [`StepExecutor`] interprets a plan against borrowed session state
//!   (seen-context, normalizers, caches) and a session-owned
//!   [`ExecContext`] that pools *all* step scratch — scan gather blocks,
//!   distance cost matrices, GMM bookkeeping arrays, per-worker candidate
//!   evaluation buffers, and the candidate-query vector — so steps 2..n of
//!   a session re-use grown-to-size buffers instead of reallocating them.
//! * [`StepStats`] is the single nested per-step statistics aggregate
//!   (wall-clock per phase + generator / materialization / selection
//!   counters + the database epoch), emitted at one instrumentation point
//!   at the end of [`StepExecutor::run`] and threaded as one value through
//!   [`StepResult`], the service metrics, and session logs.
//!
//! Two IR ops are *fused* by the executor rather than dispatched
//! separately, exactly as Algorithm 1 interleaves them:
//! [`PhaseOp::PruneCi`] / [`PhaseOp::PruneMab`] run inside the generator's
//! phase-scan loop (a pruned candidate must stop scanning mid-run, so
//! pruning cannot be a post-pass), and [`PhaseOp::DeriveCandidates`] is the
//! materialization strategy of [`PhaseOp::RecommendOps`] (each candidate
//! group is derived from the parent's columns at the moment the candidate
//! is evaluated). The plan still records them as distinct nodes because
//! they are logically distinct phases with their own dependencies.
//!
//! Every engine variant executes byte-identically through the executor and
//! through the pre-refactor monolithic step — pinned by the property tests
//! in `tests/plan_equivalence.rs`.

use crate::accumulator::EstimateScratch;
use crate::engine::{EngineConfig, StepResult};
use crate::generator::{self, CriterionNormalizers, GeneratorConfig, SeenContext};
use crate::mapdist::{DistanceEngine, SelectionStats};
use crate::pruning::PruningStrategy;
use crate::ratingmap::ScoredRatingMap;
use crate::recommend::{self, Materialization, RecommendConfig, RecommendScratch, Recommendation};
use crate::selector::{select_diverse_with, SelectScratch, SelectionStrategy};
use std::sync::Arc;
use std::time::{Duration, Instant};
use subdex_store::{
    DistanceCache, GroupCache, GroupColumns, RatingGroup, ScanScratch, SelectionQuery, SubjectiveDb,
};

/// One typed phase operation of a step plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseOp {
    /// Materialize the stepped query's rating group (cache lookup or
    /// posting-list walk) and run the `n`-phase candidate scan over it.
    ScanGroups {
        /// Phase count `n` of the incremental scan.
        phases: usize,
    },
    /// Hoeffding–Serfling confidence-interval pruning, interleaved with
    /// the phase scan (Algorithm 3).
    PruneCi {
        /// Error probability `δ` of the concentration bound.
        delta: f64,
    },
    /// Multi-armed-bandit (successive-accepts-rejects) pruning,
    /// interleaved with the phase scan.
    PruneMab,
    /// Diverse `k`-subset selection over the utility-ranked pool.
    SelectDiverse {
        /// The final-selection strategy.
        strategy: SelectionStrategy,
        /// Maps to display.
        k: usize,
    },
    /// Derive add-predicate candidate groups from the parent's gathered
    /// columns instead of re-walking the database.
    DeriveCandidates {
        /// Whether *every* enumerated candidate is derivable: true when
        /// the stepped query is the root (no predicates to remove or
        /// change, so all edits are pure drill-downs).
        all_candidates: bool,
    },
    /// Evaluate candidate next-step operations and keep the top `o`.
    RecommendOps {
        /// Recommendations to return.
        o: usize,
    },
}

impl PhaseOp {
    /// Short stable name for rendering.
    fn name(&self) -> &'static str {
        match self {
            PhaseOp::ScanGroups { .. } => "ScanGroups",
            PhaseOp::PruneCi { .. } => "PruneCi",
            PhaseOp::PruneMab => "PruneMab",
            PhaseOp::SelectDiverse { .. } => "SelectDiverse",
            PhaseOp::DeriveCandidates { .. } => "DeriveCandidates",
            PhaseOp::RecommendOps { .. } => "RecommendOps",
        }
    }
}

/// One node of the plan DAG: an op plus the indices of the nodes it
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The typed phase operation.
    pub op: PhaseOp,
    /// Indices (into [`StepPlan::nodes`]) this node depends on. Nodes are
    /// stored in a topological order, so every dep index is smaller than
    /// the node's own.
    pub deps: Vec<usize>,
}

/// A compiled step plan: the op DAG plus the per-phase configurations the
/// executor needs. Compiling is cheap (no allocation beyond the node
/// vector) and deterministic; the same `(config, query)` always yields the
/// same plan.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPlan {
    nodes: Vec<PlanNode>,
    gen_cfg: GeneratorConfig,
    rec_cfg: RecommendConfig,
    k: usize,
    selection: SelectionStrategy,
    distance_bounds: bool,
    dist_threads: usize,
    base_seed: u64,
}

impl StepPlan {
    /// Compiles the phase plan for executing `query` under `config`.
    pub fn compile(config: &EngineConfig, query: &SelectionQuery) -> Self {
        let gen_cfg = config.generator_config();
        let rec_cfg = config.recommend_config();
        let mut nodes = Vec::with_capacity(6);
        let scan = nodes.len();
        nodes.push(PlanNode {
            op: PhaseOp::ScanGroups {
                phases: gen_cfg.phases,
            },
            deps: Vec::new(),
        });
        // The *effective* pruning (gen_cfg.pruning) already accounts for
        // the DiversityOnly override, so the plan shows what will run.
        let mut select_deps = vec![scan];
        if matches!(
            gen_cfg.pruning,
            PruningStrategy::ConfidenceInterval | PruningStrategy::Both
        ) {
            select_deps.push(nodes.len());
            nodes.push(PlanNode {
                op: PhaseOp::PruneCi {
                    delta: gen_cfg.delta,
                },
                deps: vec![scan],
            });
        }
        if matches!(
            gen_cfg.pruning,
            PruningStrategy::Mab | PruningStrategy::Both
        ) {
            select_deps.push(nodes.len());
            nodes.push(PlanNode {
                op: PhaseOp::PruneMab,
                deps: vec![scan],
            });
        }
        let select = nodes.len();
        nodes.push(PlanNode {
            op: PhaseOp::SelectDiverse {
                strategy: config.selection,
                k: config.k,
            },
            deps: select_deps,
        });
        if config.recommendations {
            let mut rec_deps = vec![select];
            if rec_cfg.derive_candidates {
                rec_deps.push(nodes.len());
                nodes.push(PlanNode {
                    op: PhaseOp::DeriveCandidates {
                        all_candidates: query.is_empty(),
                    },
                    deps: vec![scan],
                });
            }
            nodes.push(PlanNode {
                op: PhaseOp::RecommendOps { o: config.o },
                deps: rec_deps,
            });
        }
        Self {
            nodes,
            gen_cfg,
            rec_cfg,
            k: config.k,
            selection: config.selection,
            distance_bounds: config.distance_bounds,
            dist_threads: if config.parallel { config.threads } else { 1 },
            base_seed: config.seed,
        }
    }

    /// The plan's nodes in topological order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The compiled generator-phase configuration.
    pub fn generator_config(&self) -> &GeneratorConfig {
        &self.gen_cfg
    }

    /// The compiled recommendation-phase configuration.
    pub fn recommend_config(&self) -> &RecommendConfig {
        &self.rec_cfg
    }

    /// Resolves the plan's per-phase thread counts under an
    /// oversubscription budget (`0` = no budget, the compiled counts pass
    /// through). The budget only clamps *how many* workers each phase may
    /// use — results are byte-identical across budgets because every
    /// parallel phase merges in deterministic task-index order.
    pub fn with_thread_budget(&self, budget: usize) -> (GeneratorConfig, RecommendConfig, usize) {
        let mut gen_cfg = self.gen_cfg;
        let mut rec_cfg = self.rec_cfg;
        let mut dist_threads = self.dist_threads;
        if budget > 0 {
            gen_cfg.threads = crate::parallel::budget_threads(gen_cfg.threads, budget);
            rec_cfg.threads = crate::parallel::budget_threads(rec_cfg.threads, budget);
            dist_threads = crate::parallel::budget_threads(dist_threads, budget);
        }
        (gen_cfg, rec_cfg, dist_threads)
    }

    /// Whether the plan contains a [`PhaseOp::RecommendOps`] node.
    pub fn recommends(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n.op, PhaseOp::RecommendOps { .. }))
    }

    /// The deterministic rating-group shuffle seed for step number `step`.
    pub fn step_seed(&self, step: usize) -> u64 {
        self.base_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(step as u64)
    }

    /// Renders the DAG one node per line (`index: Op <- deps`), for logs
    /// and docs.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = write!(out, "{i}: {}", node.op.name());
            if !node.deps.is_empty() {
                let _ = write!(out, " <- {:?}", node.deps);
            }
            out.push('\n');
        }
        out
    }
}

/// Per-phase wall-clock times of one step. `generate` *contains* `scan`
/// (the gather + count-kernel component of the phase scans); the other
/// fields are disjoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Materializing the stepped query's rating group (cache lookup or
    /// posting-list walk + gather).
    pub scan_groups: Duration,
    /// The phase scans inside generation: block gathers + count kernels.
    /// This is the component the service surfaces as its `scan` metric.
    pub scan: Duration,
    /// The whole generate phase (includes `scan` and the interleaved
    /// pruning work).
    pub generate: Duration,
    /// Diverse `k`-subset selection of the displayed maps.
    pub select: Duration,
    /// The recommendation builder (candidate enumeration, materialization,
    /// evaluation, ranking).
    pub recommend: Duration,
}

impl PhaseTimes {
    /// Accumulates another step's phase times into this one.
    pub fn merge(&mut self, other: &Self) {
        self.scan_groups += other.scan_groups;
        self.scan += other.scan;
        self.generate += other.generate;
        self.select += other.select;
        self.recommend += other.recommend;
    }
}

/// Candidate-map counters from the generate phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeneratorStats {
    /// Candidate maps considered.
    pub candidates_total: usize,
    /// Candidates pruned by the confidence-interval bound.
    pub pruned_ci: usize,
    /// Candidates pruned by the multi-armed-bandit policy.
    pub pruned_mab: usize,
}

/// The single per-step statistics aggregate: every counter and timing one
/// exploration step produces, emitted at one instrumentation point at the
/// end of [`StepExecutor::run`] and threaded whole through
/// [`StepResult::stats`], the service metrics, and session logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Wall-clock time between operation pick and display — the quantity
    /// Figures 10–11 report.
    pub elapsed: Duration,
    /// Per-phase wall-clock breakdown of `elapsed`.
    pub phases: PhaseTimes,
    /// Candidate counters from the generate phase.
    pub generator: GeneratorStats,
    /// How this step's rating groups (the stepped query plus every
    /// recommendation candidate) were materialized: derived from the
    /// parent's columns, fully walked, served from the shared cache, or
    /// skipped outright as provably empty.
    pub materialization: Materialization,
    /// How this step's diverse selections (the displayed maps plus every
    /// recommendation candidate's preview) resolved their distance
    /// evaluations: exact solves, bound-pruned pairs, and cache hits.
    pub selection: SelectionStats,
    /// Append epoch of the database this step executed against. A
    /// persistent service compares it to the store's current epoch to tell
    /// whether the step saw the latest ratings.
    pub db_epoch: u64,
}

/// Session-owned pooled scratch for plan execution: the scan gather
/// buffers, the diverse-selection scratch, and the recommendation pass's
/// candidate vector + per-worker buffers. One `ExecContext` lives as long
/// as its session (the engine owns it; the service registry therefore
/// re-uses it across requests to the same session), so steps 2..n run over
/// grown-to-size buffers.
///
/// Lifetime rules: the context holds *no* results and *no* borrowed data —
/// only recyclable containers. It is safe to drop or replace between steps
/// (costing only the re-warm), and two steps never run over one context
/// concurrently because the executor takes it `&mut`.
#[derive(Debug, Default)]
pub struct ExecContext {
    /// Gather buffers for the stepped query's own phase scans.
    pub(crate) scan: ScanScratch,
    /// Subgroup-distribution buffers for the stepped query's per-phase
    /// score re-estimation.
    pub(crate) estimate: EstimateScratch,
    /// GMM buffers for the displayed-maps selection.
    pub(crate) select: SelectScratch,
    /// Candidate vector + per-worker evaluation buffers for the
    /// recommendation pass.
    pub(crate) recommend: RecommendScratch,
    /// Worker-thread cap for the next step's parallel phases (`0` =
    /// uncapped). The service sets this per step from its oversubscription
    /// budget — `max(1, cores / busy_workers)` — so concurrent sessions
    /// split the machine instead of each claiming every core.
    thread_budget: usize,
    /// Peak per-step scratch demand (len-based bytes) observed in the
    /// current trim window.
    window_peak: usize,
    /// Steps observed in the current trim window.
    window_steps: usize,
}

impl ExecContext {
    /// Resident capacity must exceed the window's peak demand by this
    /// factor before a trim fires — one oversized step should not pin its
    /// buffers forever, but a workload actually using the capacity must
    /// never be made to re-warm.
    const TRIM_FACTOR: usize = 2;
    /// Steps per trim window. A window longer than one step keeps
    /// alternating large/small workloads from thrashing: the large step's
    /// demand stays in `window_peak` until the window closes.
    const TRIM_WINDOW: usize = 4;
    /// Resident capacity below this never triggers a trim; re-warming tiny
    /// buffers costs more than the memory is worth.
    const TRIM_FLOOR_BYTES: usize = 64 * 1024;

    /// A fresh (empty) context; buffers grow to workload size on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the worker threads the next steps' parallel phases may use
    /// (`0` = uncapped). Budgets change only scheduling, never results.
    pub fn set_thread_budget(&mut self, budget: usize) {
        self.thread_budget = budget;
    }

    /// The current per-step worker-thread cap (`0` = uncapped).
    pub fn thread_budget(&self) -> usize {
        self.thread_budget
    }

    /// Heap bytes currently retained by the pooled scratch (capacity, not
    /// length — what the session actually pins between steps).
    pub fn resident_scratch_bytes(&self) -> usize {
        self.scan.resident_bytes()
            + self.estimate.resident_bytes()
            + self.select.resident_bytes()
            + self.recommend.resident_bytes()
    }

    /// Heap bytes the most recent step actually needed across the pooled
    /// scratch (length-based).
    pub fn used_scratch_bytes(&self) -> usize {
        self.scan.used_bytes()
            + self.estimate.used_bytes()
            + self.select.used_bytes()
            + self.recommend.used_bytes()
    }

    /// Releases every pooled buffer's capacity. The next step re-warms from
    /// empty; results are unaffected (the scratch recycles containers,
    /// never values).
    pub fn shrink(&mut self) {
        self.scan.shrink();
        self.estimate.shrink();
        self.select.shrink();
        self.recommend.shrink();
    }

    /// The high-water trim policy, invoked once at the end of every
    /// executed step: record the step's demand, and when a window of
    /// [`TRIM_WINDOW`](Self::TRIM_WINDOW) steps closes with resident
    /// capacity more than [`TRIM_FACTOR`](Self::TRIM_FACTOR)× the window's
    /// peak demand (and above the floor), release everything. A session
    /// that drills down from a huge root group to small refined groups
    /// stops pinning the root-sized buffers after one window; a session
    /// holding steady at any size never trims.
    pub(crate) fn note_step_and_trim(&mut self) {
        self.window_peak = self.window_peak.max(self.used_scratch_bytes());
        self.window_steps += 1;
        if self.window_steps < Self::TRIM_WINDOW {
            return;
        }
        let threshold = (Self::TRIM_FACTOR * self.window_peak).max(Self::TRIM_FLOOR_BYTES);
        if self.resident_scratch_bytes() > threshold {
            self.shrink();
        }
        self.window_peak = 0;
        self.window_steps = 0;
    }
}

/// Interprets a [`StepPlan`] against borrowed session state. Constructed
/// per step by [`crate::engine::SdeEngine::step`] (construction is free —
/// it only borrows); the pooled allocations live in the [`ExecContext`].
pub struct StepExecutor<'a> {
    /// The database to execute against.
    pub db: &'a SubjectiveDb,
    /// Shared rating-group cache, if attached.
    pub group_cache: Option<&'a GroupCache>,
    /// Shared map-distance cache, if attached.
    pub dist_cache: Option<&'a Arc<DistanceCache>>,
    /// The session's seen-context (mutated: displayed maps are recorded).
    pub seen: &'a mut SeenContext,
    /// The session's running criterion normalizers (mutated by generation).
    pub normalizers: &'a mut CriterionNormalizers,
    /// The session's pooled scratch.
    pub ctx: &'a mut ExecContext,
}

impl StepExecutor<'_> {
    /// Runs `plan` for `query` as step number `step`, returning the step's
    /// result with its unified [`StepStats`].
    pub fn run(&mut self, plan: &StepPlan, query: &SelectionQuery, step: usize) -> StepResult {
        let start = Instant::now();
        let seed = plan.step_seed(step);
        // Clamp the compiled per-phase thread counts to the session's
        // oversubscription budget (no-op when the budget is 0/unset).
        let (gen_cfg, rec_cfg, dist_threads) = plan.with_thread_budget(self.ctx.thread_budget());
        let mut stats = StepStats::default();
        // Keep the parent's pre-shuffle columns alive past the group build:
        // every add-predicate recommendation candidate derives its group by
        // filtering them, skipping the posting-list walk entirely.
        let mut parent_cols: Option<Arc<GroupColumns>> = None;
        let mut group_size = 0usize;
        let mut pool: Vec<ScoredRatingMap> = Vec::new();
        let mut maps: Vec<ScoredRatingMap> = Vec::new();
        let mut recommendations: Vec<Recommendation> = Vec::new();
        let mut dist_engine: Option<DistanceEngine> = None;

        for node in plan.nodes() {
            match node.op {
                PhaseOp::ScanGroups { .. } => {
                    let t = Instant::now();
                    let cols = self.materialize_parent(query, &mut stats.materialization);
                    stats.phases.scan_groups = t.elapsed();
                    let group = RatingGroup::from_columns(&cols, seed);
                    group_size = group.len();
                    let t = Instant::now();
                    let out = generator::generate_pooled(
                        self.db,
                        &group,
                        query,
                        self.seen,
                        self.normalizers,
                        &gen_cfg,
                        &mut self.ctx.scan,
                        &mut self.ctx.estimate,
                    );
                    stats.phases.generate = t.elapsed();
                    stats.phases.scan = out.scan_time;
                    stats.generator = GeneratorStats {
                        candidates_total: out.candidates_total,
                        pruned_ci: out.pruned_ci,
                        pruned_mab: out.pruned_mab,
                    };
                    let pool_size = plan.selection.pool_size(plan.k, out.pool.len());
                    pool = out.pool.into_iter().take(pool_size.max(plan.k)).collect();
                    parent_cols = Some(cols);
                }
                // Pruning is fused into the phase-scan loop (a pruned
                // candidate must stop scanning mid-run), and candidate
                // derivation is RecommendOps' materialization strategy;
                // see the module docs.
                PhaseOp::PruneCi { .. } | PhaseOp::PruneMab | PhaseOp::DeriveCandidates { .. } => {}
                PhaseOp::SelectDiverse { strategy, k } => {
                    let engine = DistanceEngine::new()
                        .with_bounds(plan.distance_bounds)
                        .with_cache(self.dist_cache.cloned())
                        .with_threads(dist_threads);
                    // The pool outlives selection only when a recommend op
                    // will anchor candidates on it.
                    let select_pool = if plan.recommends() {
                        pool.clone()
                    } else {
                        std::mem::take(&mut pool)
                    };
                    let (selected, sel) = select_diverse_with(
                        select_pool,
                        k,
                        strategy,
                        &engine,
                        &mut self.ctx.select,
                    );
                    stats.phases.select = sel.select_time;
                    stats.selection.merge(&sel);
                    for m in &selected {
                        self.seen.record_displayed(&m.map);
                    }
                    maps = selected;
                    dist_engine = Some(engine);
                }
                PhaseOp::RecommendOps { .. } => {
                    // Candidate operations are anchored on the *pool* (the
                    // top k·l maps by DW utility), not only the k displayed
                    // ones: the pool is exactly where high-peculiarity
                    // pockets that narrowly missed display live, and the
                    // paper's candidate space ("q may add a new
                    // attribute-value pair") is not limited to displayed
                    // maps either.
                    let t = Instant::now();
                    let (recs, rec_stats, rec_sel) = recommend::recommend_with_stats_in(
                        self.db,
                        query,
                        &pool,
                        self.seen,
                        self.normalizers,
                        &gen_cfg,
                        &rec_cfg,
                        seed,
                        self.group_cache,
                        parent_cols.as_deref(),
                        dist_engine.as_ref(),
                        &mut self.ctx.recommend,
                    );
                    stats.phases.recommend = t.elapsed();
                    stats.materialization.merge(&rec_stats);
                    stats.selection.merge(&rec_sel);
                    recommendations = recs;
                }
            }
        }

        self.ctx.note_step_and_trim();
        stats.db_epoch = self.db.epoch();
        stats.elapsed = start.elapsed();
        StepResult {
            step,
            query: query.clone(),
            group_size,
            maps,
            recommendations,
            stats,
        }
    }

    /// Materializes the stepped query's pre-shuffle columns through the
    /// shared cache when one is attached, counting the path taken (the
    /// planner's walk-vs-probe route decision included).
    fn materialize_parent(
        &mut self,
        query: &SelectionQuery,
        m: &mut Materialization,
    ) -> Arc<GroupColumns> {
        let count_route = |m: &mut Materialization, route| {
            if route == subdex_store::GroupRoute::Probe {
                m.probed += 1;
            } else {
                m.walked += 1;
            }
        };
        match self.group_cache {
            Some(cache) => {
                let mut computed = None;
                let arc = cache.get_or_insert_with(query, self.db.epoch(), || {
                    let (cols, route) = self.db.collect_group_columns_routed(query);
                    computed = Some(route);
                    cols
                });
                match computed {
                    Some(route) => count_route(m, route),
                    None => m.cached += 1,
                }
                arc
            }
            None => {
                let (cols, route) = self.db.collect_group_columns_routed(query);
                count_route(m, route);
                Arc::new(cols)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(plan: &StepPlan) -> Vec<&'static str> {
        plan.nodes().iter().map(|n| n.op.name()).collect()
    }

    #[test]
    fn subdex_plan_has_all_six_ops() {
        let plan = StepPlan::compile(&EngineConfig::subdex(), &SelectionQuery::all());
        assert_eq!(
            ops(&plan),
            vec![
                "ScanGroups",
                "PruneCi",
                "PruneMab",
                "SelectDiverse",
                "DeriveCandidates",
                "RecommendOps"
            ]
        );
        assert!(plan.recommends());
        // Topological: every dep index precedes its node.
        for (i, node) in plan.nodes().iter().enumerate() {
            assert!(node.deps.iter().all(|&d| d < i), "node {i}: {node:?}");
        }
    }

    #[test]
    fn plans_reflect_the_baseline_variants() {
        let q = SelectionQuery::all();
        let no_pruning = StepPlan::compile(&EngineConfig::no_pruning(), &q);
        assert_eq!(
            ops(&no_pruning),
            vec![
                "ScanGroups",
                "SelectDiverse",
                "DeriveCandidates",
                "RecommendOps"
            ]
        );
        let ci = StepPlan::compile(&EngineConfig::ci_pruning(), &q);
        assert!(ops(&ci).contains(&"PruneCi") && !ops(&ci).contains(&"PruneMab"));
        let mab = StepPlan::compile(&EngineConfig::mab_pruning(), &q);
        assert!(!ops(&mab).contains(&"PruneCi") && ops(&mab).contains(&"PruneMab"));
        // No-parallelism changes the executor's thread counts, not the DAG.
        let seq = StepPlan::compile(&EngineConfig::no_parallelism(), &q);
        assert_eq!(
            ops(&seq),
            ops(&StepPlan::compile(&EngineConfig::subdex(), &q))
        );
        assert_eq!(seq.dist_threads, 1);
        assert!(!seq.gen_cfg.parallel);
    }

    #[test]
    fn recommendations_off_drops_the_tail_ops() {
        let cfg = EngineConfig {
            recommendations: false,
            ..EngineConfig::subdex()
        };
        let plan = StepPlan::compile(&cfg, &SelectionQuery::all());
        assert!(!plan.recommends());
        assert_eq!(
            ops(&plan),
            vec!["ScanGroups", "PruneCi", "PruneMab", "SelectDiverse"]
        );
    }

    #[test]
    fn diversity_only_compiles_without_pruning() {
        // The generator override (DiversityOnly needs every candidate) is
        // visible in the plan, not just buried in the generator config.
        let cfg = EngineConfig {
            selection: SelectionStrategy::DiversityOnly,
            ..EngineConfig::subdex()
        };
        let plan = StepPlan::compile(&cfg, &SelectionQuery::all());
        assert!(!ops(&plan).contains(&"PruneCi"));
        assert!(!ops(&plan).contains(&"PruneMab"));
    }

    #[test]
    fn root_query_derives_every_candidate() {
        let root = StepPlan::compile(&EngineConfig::subdex(), &SelectionQuery::all());
        let derive = root
            .nodes()
            .iter()
            .find_map(|n| match n.op {
                PhaseOp::DeriveCandidates { all_candidates } => Some(all_candidates),
                _ => None,
            })
            .unwrap();
        assert!(derive, "root query: every edit is a pure drill-down");
    }

    #[test]
    fn step_seed_matches_documented_derivation() {
        let plan = StepPlan::compile(
            &EngineConfig {
                seed: 7,
                ..EngineConfig::subdex()
            },
            &SelectionQuery::all(),
        );
        assert_eq!(
            plan.step_seed(3),
            7u64.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(3)
        );
    }

    #[test]
    fn describe_renders_one_line_per_node() {
        let plan = StepPlan::compile(&EngineConfig::subdex(), &SelectionQuery::all());
        let text = plan.describe();
        assert_eq!(text.lines().count(), plan.nodes().len());
        assert!(text.contains("0: ScanGroups"));
        assert!(text.contains("RecommendOps <- "));
    }
}
