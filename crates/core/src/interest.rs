//! Interestingness criteria (Sections 3.2.3 and 4.1).
//!
//! The utility of a rating map is the maximum of four criteria, each
//! implemented here as a *raw* (unnormalized) measure over the map's
//! subgroup distributions:
//!
//! * **conciseness** — compaction gain \[15\]: `|g_R| / |rm|`; favors maps
//!   that summarize many records into few subgroups;
//! * **agreement** — inverse average subgroup dispersion \[16\]: subgroups
//!   whose reviewers agree have small standard deviations. We use the
//!   bounded form `1 / (1 + σ̃)` rather than the paper's `1 / σ̃` so
//!   unanimous subgroups (σ̃ = 0) yield a finite score; the two are
//!   order-equivalent, and scores are normalized downstream anyway;
//! * **self peculiarity** — the maximum total-variation distance between a
//!   subgroup's distribution and the whole group's distribution (the max
//!   aggregation follows \[51\]);
//! * **global peculiarity** — the maximum total-variation distance between
//!   the map's overall distribution and the distributions of previously
//!   displayed maps; it rewards maps that show a facet of the data the user
//!   has not seen yet (the multi-step diversity facet).

use serde::{Deserialize, Serialize};
use subdex_stats::distance::{kl_divergence, total_variation};
use subdex_stats::kernels::BatchScratch;
use subdex_stats::{distance, distribution, RatingDistribution};

/// Which distribution-distance backs the two peculiarity criteria.
///
/// The paper's prototype uses the total variation distance and names the
/// KL divergence and the Outlier Function of \[39\] as alternatives
/// (Section 4.1); all three are provided and ablated in the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PeculiarityMeasure {
    /// Total variation distance (the paper's choice).
    #[default]
    TotalVariation,
    /// Smoothed, symmetrized KL divergence squashed to `[0, 1)`.
    KlDivergence,
    /// Outlier function: normalized gap between the distribution means.
    Outlier,
}

impl PeculiarityMeasure {
    /// Distance between two distributions in `[0, 1]`.
    pub fn distance(self, a: &RatingDistribution, b: &RatingDistribution) -> f64 {
        match self {
            PeculiarityMeasure::TotalVariation => total_variation(a, b),
            PeculiarityMeasure::KlDivergence => {
                // Symmetrize and squash: d = 1 − e^(−J/2) where J is
                // Jeffreys' divergence — keeps the [0, 1] scale the
                // normalizers and CI bounds expect.
                let j = kl_divergence(a, b, 1e-4) + kl_divergence(b, a, 1e-4);
                1.0 - (-0.5 * j.max(0.0)).exp()
            }
            PeculiarityMeasure::Outlier => {
                let scale = a.scale().max(2) as f64;
                match (a.mean(), b.mean()) {
                    (Some(ma), Some(mb)) => (ma - mb).abs() / (scale - 1.0),
                    _ => 0.0,
                }
            }
        }
    }

    /// Batched [`Self::distance`] of every lane of a staged batch against
    /// one reference distribution, dispatched through the active SIMD
    /// kernel path: `out[i]` is bit-identical to
    /// `self.distance(lane_i, reference)` (and, since every backing
    /// distance is bit-symmetric in its arguments, to
    /// `self.distance(reference, lane_i)`). Empty lanes yield 0 under
    /// [`PeculiarityMeasure::Outlier`], matching the scalar `None` arm.
    /// `tmp` is kernel scratch.
    pub fn distance_rows(
        self,
        batch: &BatchScratch,
        reference: &RatingDistribution,
        tmp: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        match self {
            PeculiarityMeasure::TotalVariation => {
                distance::total_variation_rows(batch, reference, out);
            }
            PeculiarityMeasure::KlDivergence => {
                distance::jeffreys_rows(batch, reference, 1e-4, out);
                for v in out.iter_mut() {
                    *v = 1.0 - (-0.5 * v.max(0.0)).exp();
                }
            }
            PeculiarityMeasure::Outlier => {
                distribution::mean_sd_rows(batch, out, tmp);
                let diameter = (batch.scale().max(2) as f64) - 1.0;
                match reference.mean() {
                    Some(mb) => {
                        for v in out.iter_mut() {
                            *v = if v.is_nan() {
                                0.0
                            } else {
                                (*v - mb).abs() / diameter
                            };
                        }
                    }
                    None => out.iter_mut().for_each(|v| *v = 0.0),
                }
            }
        }
    }
}

/// [`agreement_raw`] evaluated from batched per-lane standard deviations
/// (as produced by the `mean_sd_rows` kernel; NaN marks an empty lane and
/// is skipped, mirroring the scalar `std_dev() == None` filter). The sum
/// runs in lane order, so the result is bit-identical to the scalar form
/// over the same lanes.
pub fn agreement_from_sds(sds: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &sd in sds {
        if sd.is_nan() {
            continue;
        }
        sum += sd;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let avg_sd = sum / n as f64;
    1.0 / (1.0 + avg_sd)
}

/// The max-aggregation both peculiarity criteria apply to their per-lane
/// distances: a fold from 0 in lane order, bit-identical to the scalar
/// `fold(0.0, f64::max)`.
pub fn max_distance(vals: &[f64]) -> f64 {
    vals.iter().copied().fold(0.0, f64::max)
}

/// The four criteria composing utility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Criterion {
    /// Compaction gain.
    Conciseness,
    /// Inverse average subgroup dispersion.
    Agreement,
    /// Max subgroup-vs-group total variation.
    SelfPeculiarity,
    /// Max map-vs-seen-maps total variation.
    GlobalPeculiarity,
}

/// All criteria, in Algorithm 3's fixed order.
pub const ALL_CRITERIA: [Criterion; 4] = [
    Criterion::Conciseness,
    Criterion::Agreement,
    Criterion::SelfPeculiarity,
    Criterion::GlobalPeculiarity,
];

impl std::fmt::Display for Criterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Criterion::Conciseness => "conciseness",
            Criterion::Agreement => "agreement",
            Criterion::SelfPeculiarity => "self-peculiarity",
            Criterion::GlobalPeculiarity => "global-peculiarity",
        };
        f.write_str(s)
    }
}

/// Raw conciseness (compaction gain): records summarized per subgroup.
/// Zero subgroups ⇒ 0 (an empty map summarizes nothing).
pub fn conciseness_raw(record_weight: u64, subgroup_count: usize) -> f64 {
    if subgroup_count == 0 {
        return 0.0;
    }
    record_weight as f64 / subgroup_count as f64
}

/// Raw agreement: `1 / (1 + σ̃)` where `σ̃` is the mean standard deviation
/// of the non-empty subgroups. Unanimous subgroups everywhere ⇒ 1.
/// No subgroups ⇒ 0.
pub fn agreement_raw(subgroups: &[RatingDistribution]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for sd in subgroups.iter().filter_map(|d| d.std_dev()) {
        sum += sd;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let avg_sd = sum / n as f64;
    1.0 / (1.0 + avg_sd)
}

/// Raw self peculiarity: the maximum TVD between any subgroup's
/// distribution and the whole group's distribution. No subgroups ⇒ 0.
pub fn self_peculiarity_raw(subgroups: &[RatingDistribution], overall: &RatingDistribution) -> f64 {
    self_peculiarity_with(subgroups, overall, PeculiarityMeasure::TotalVariation)
}

/// [`self_peculiarity_raw`] under a configurable distance.
pub fn self_peculiarity_with(
    subgroups: &[RatingDistribution],
    overall: &RatingDistribution,
    measure: PeculiarityMeasure,
) -> f64 {
    subgroups
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| measure.distance(d, overall))
        .fold(0.0, f64::max)
}

/// Raw global peculiarity: the maximum TVD between this map's overall
/// distribution and each previously displayed map's distribution.
/// Nothing seen yet ⇒ 0 (there is no facet to differ from).
pub fn global_peculiarity_raw(overall: &RatingDistribution, seen: &[RatingDistribution]) -> f64 {
    global_peculiarity_with(overall, seen, PeculiarityMeasure::TotalVariation)
}

/// [`global_peculiarity_raw`] under a configurable distance.
pub fn global_peculiarity_with(
    overall: &RatingDistribution,
    seen: &[RatingDistribution],
    measure: PeculiarityMeasure,
) -> f64 {
    seen.iter()
        .map(|d| measure.distance(overall, d))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(counts: &[u64]) -> RatingDistribution {
        RatingDistribution::from_counts(counts.to_vec())
    }

    #[test]
    fn conciseness_compaction_gain() {
        assert_eq!(conciseness_raw(100, 5), 20.0);
        assert_eq!(conciseness_raw(100, 0), 0.0);
        // Figure 3: rm has 100 records over 6 subgroups → 16.6; rm' has 100
        // over 3 → 33.3.
        assert!((conciseness_raw(100, 6) - 16.666).abs() < 1e-2);
        assert!((conciseness_raw(100, 3) - 33.333).abs() < 1e-2);
    }

    #[test]
    fn agreement_unanimous_is_one() {
        let subs = vec![dist(&[0, 0, 10, 0, 0]), dist(&[0, 0, 0, 5, 0])];
        assert_eq!(agreement_raw(&subs), 1.0);
    }

    #[test]
    fn agreement_decreases_with_spread() {
        let tight = vec![dist(&[0, 5, 5, 0, 0])];
        let wide = vec![dist(&[5, 0, 0, 0, 5])];
        assert!(agreement_raw(&tight) > agreement_raw(&wide));
        assert_eq!(agreement_raw(&[]), 0.0);
    }

    #[test]
    fn self_peculiarity_zero_when_homogeneous() {
        let a = dist(&[1, 2, 3, 2, 1]);
        let overall = {
            let mut o = a.clone();
            o.merge(&a);
            o
        };
        let v = self_peculiarity_raw(&[a.clone(), a], &overall);
        assert!(v.abs() < 1e-12);
    }

    #[test]
    fn self_peculiarity_detects_outlier_subgroup() {
        let normal = dist(&[0, 0, 0, 5, 5]);
        let outlier = dist(&[10, 0, 0, 0, 0]);
        let mut overall = normal.clone();
        overall.merge(&outlier);
        let v = self_peculiarity_raw(&[normal, outlier], &overall);
        assert!(v > 0.4, "outlier subgroup should score high, got {v}");
    }

    #[test]
    fn global_peculiarity_empty_seen_is_zero() {
        let d = dist(&[1, 1, 1, 1, 1]);
        assert_eq!(global_peculiarity_raw(&d, &[]), 0.0);
    }

    #[test]
    fn global_peculiarity_max_over_seen() {
        let d = dist(&[10, 0, 0, 0, 0]);
        let near = dist(&[9, 1, 0, 0, 0]);
        let far = dist(&[0, 0, 0, 0, 10]);
        let v = global_peculiarity_raw(&d, &[near, far]);
        assert!((v - 1.0).abs() < 1e-12, "max picks the far distribution");
    }

    #[test]
    fn criterion_display() {
        assert_eq!(Criterion::Conciseness.to_string(), "conciseness");
        assert_eq!(ALL_CRITERIA.len(), 4);
    }

    #[test]
    fn peculiarity_measures_agree_on_identity_and_extremes() {
        let a = dist(&[10, 0, 0, 0, 0]);
        let b = dist(&[0, 0, 0, 0, 10]);
        for m in [
            PeculiarityMeasure::TotalVariation,
            PeculiarityMeasure::KlDivergence,
            PeculiarityMeasure::Outlier,
        ] {
            assert!(m.distance(&a, &a) < 1e-9, "{m:?} identity");
            let d = m.distance(&a, &b);
            assert!(d > 0.8, "{m:?} extremes should be near 1, got {d}");
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn kl_measure_symmetric_and_bounded() {
        let a = dist(&[5, 3, 1, 0, 0]);
        let b = dist(&[0, 1, 3, 5, 2]);
        let m = PeculiarityMeasure::KlDivergence;
        assert!((m.distance(&a, &b) - m.distance(&b, &a)).abs() < 1e-12);
        assert!(m.distance(&a, &b) < 1.0);
    }

    #[test]
    fn outlier_measure_uses_means_only() {
        // Same mean, different shape → 0 under Outlier but > 0 under TVD.
        let a = dist(&[5, 0, 0, 0, 5]); // mean 3
        let b = dist(&[0, 0, 10, 0, 0]); // mean 3
        assert!(PeculiarityMeasure::Outlier.distance(&a, &b) < 1e-12);
        assert!(PeculiarityMeasure::TotalVariation.distance(&a, &b) > 0.5);
    }

    #[test]
    fn configurable_peculiarity_changes_scores() {
        let normal = dist(&[0, 0, 0, 5, 5]);
        let outlier = dist(&[10, 0, 0, 0, 0]);
        let mut overall = normal.clone();
        overall.merge(&outlier);
        let subs = [normal, outlier];
        let tvd = self_peculiarity_with(&subs, &overall, PeculiarityMeasure::TotalVariation);
        let out = self_peculiarity_with(&subs, &overall, PeculiarityMeasure::Outlier);
        assert!(tvd > 0.0 && out > 0.0);
    }
}
