//! Exploration sessions and the three SDE modes (Section 3.3).
//!
//! * **User-Driven** — the system shows the `k` diverse rating maps; the
//!   user supplies every next operation herself (recommendations are not
//!   computed).
//! * **Recommendation-Powered** — maps *and* the top-`o` recommendations
//!   are shown; the user may take a recommendation or act on her own.
//! * **Fully-Automated** — the engine applies the top-1 recommendation for
//!   a fixed number of steps, producing an exploration path without user
//!   input.

use crate::engine::{EngineConfig, SdeEngine, StepResult};
use crate::recommend::Recommendation;
use std::sync::Arc;
use subdex_store::{SelectionQuery, SubjectiveDb};

/// The paper's three exploration modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExplorationMode {
    /// Maps only; the user chooses every operation.
    UserDriven,
    /// Maps plus top-`o` recommendations; the user chooses.
    RecommendationPowered,
    /// The top-1 recommendation is applied automatically each step.
    FullyAutomated,
}

impl std::fmt::Display for ExplorationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExplorationMode::UserDriven => "User-Driven",
            ExplorationMode::RecommendationPowered => "Recommendation-Powered",
            ExplorationMode::FullyAutomated => "Fully-Automated",
        };
        f.write_str(s)
    }
}

/// Errors a session can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// `apply_recommendation` was called with an out-of-range index or in
    /// User-Driven mode (where none are computed).
    NoSuchRecommendation,
    /// The session has not started yet.
    NotStarted,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoSuchRecommendation => write!(f, "no such recommendation"),
            SessionError::NotStarted => write!(f, "session not started"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A multi-step exploration over one engine.
pub struct ExplorationSession {
    engine: SdeEngine,
    mode: ExplorationMode,
    path: Vec<StepResult>,
}

impl ExplorationSession {
    /// Creates a session. In User-Driven mode the engine skips
    /// recommendation computation entirely (the UI would not show them).
    pub fn new(db: Arc<SubjectiveDb>, mut config: EngineConfig, mode: ExplorationMode) -> Self {
        if mode == ExplorationMode::UserDriven {
            config.recommendations = false;
        }
        Self::with_engine(SdeEngine::new(db, config), mode)
    }

    /// Wraps a prebuilt engine — the hook the service layer uses to attach
    /// a shared group cache ([`SdeEngine::with_group_cache`]) before the
    /// session starts. The User-Driven recommendation skip is *not*
    /// re-applied here; the caller owns the final configuration.
    pub fn with_engine(engine: SdeEngine, mode: ExplorationMode) -> Self {
        Self {
            engine,
            mode,
            path: Vec::new(),
        }
    }

    /// The session's mode.
    pub fn mode(&self) -> ExplorationMode {
        self.mode
    }

    /// The steps taken so far, in order.
    pub fn path(&self) -> &[StepResult] {
        &self.path
    }

    /// The most recent step.
    pub fn current(&self) -> Option<&StepResult> {
        self.path.last()
    }

    /// The engine (for inspecting seen-context etc.).
    pub fn engine(&self) -> &SdeEngine {
        &self.engine
    }

    /// Caps the worker threads this session's subsequent steps may use
    /// (`0` = uncapped); see [`SdeEngine::set_thread_budget`].
    pub fn set_thread_budget(&mut self, budget: usize) {
        self.engine.set_thread_budget(budget);
    }

    /// A deterministic digest of everything semantically meaningful the
    /// session has produced: per step, the query, group size, the displayed
    /// maps (key, subgroup values, utility bits), and the recommendations
    /// (query, utility bits, group size). Wall-clock fields are excluded.
    ///
    /// Two sessions over the same database, configuration, and operation
    /// sequence must produce equal signatures — regardless of thread
    /// interleaving or whether a group cache was attached. The service's
    /// stress test holds exactly this line.
    pub fn path_signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        for step in &self.path {
            mix(step.step as u64);
            mix(step.query.fingerprint());
            mix(step.group_size as u64);
            mix(step.maps.len() as u64);
            for m in &step.maps {
                mix(matches!(m.map.key.entity, subdex_store::Entity::Item) as u64);
                mix(u64::from(m.map.key.attr.0));
                mix(u64::from(m.map.key.dim.0));
                mix(m.utility.to_bits());
                mix(m.dw_utility.to_bits());
                for sg in &m.map.subgroups {
                    mix(u64::from(sg.value.0));
                }
            }
            mix(step.recommendations.len() as u64);
            for r in &step.recommendations {
                mix(r.query.fingerprint());
                mix(r.utility.to_bits());
                mix(r.group_size as u64);
            }
        }
        h
    }

    /// Starts (or continues) the session with an explicit operation — the
    /// user-driven edge in every mode.
    pub fn apply_operation(&mut self, query: &SelectionQuery) -> &StepResult {
        let res = self.engine.step(query);
        self.path.push(res);
        self.path.last().expect("just pushed")
    }

    /// Recommendations currently on offer (empty in User-Driven mode or
    /// before the first step).
    pub fn recommendations(&self) -> &[Recommendation] {
        self.current()
            .map(|s| s.recommendations.as_slice())
            .unwrap_or(&[])
    }

    /// Applies the `idx`-th current recommendation
    /// (Recommendation-Powered mode).
    pub fn apply_recommendation(&mut self, idx: usize) -> Result<&StepResult, SessionError> {
        let query = self
            .current()
            .ok_or(SessionError::NotStarted)?
            .recommendations
            .get(idx)
            .ok_or(SessionError::NoSuchRecommendation)?
            .query
            .clone();
        Ok(self.apply_operation(&query))
    }

    /// Fully-Automated exploration: starts from `initial` and applies the
    /// top-1 recommendation for up to `steps − 1` further steps (stopping
    /// early if no recommendation is available). Returns the path length.
    pub fn auto_run(&mut self, initial: &SelectionQuery, steps: usize) -> usize {
        if steps == 0 {
            return 0;
        }
        self.apply_operation(initial);
        for _ in 1..steps {
            let Some(next) = self
                .current()
                .and_then(|s| s.recommendations.first())
                .map(|r| r.query.clone())
            else {
                break;
            };
            self.apply_operation(&next);
        }
        self.path.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema};

    fn db() -> Arc<SubjectiveDb> {
        let mut us = Schema::new();
        us.add("gender", false);
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..8 {
            ub.push_row(vec![
                Cell::from(if i % 2 == 0 { "F" } else { "M" }),
                Cell::from(["young", "old"][(i / 2) % 2]),
            ]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..4 {
            ib.push_row(vec![Cell::from(if i < 2 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        for r in 0..8u32 {
            for i in 0..4u32 {
                rb.push(
                    r,
                    i,
                    &[1 + ((r * 2 + i) % 5) as u8, 1 + ((r + i * 3) % 5) as u8],
                );
            }
        }
        Arc::new(SubjectiveDb::new(ub.build(), ib.build(), rb.build(8, 4)))
    }

    fn quick_cfg() -> EngineConfig {
        EngineConfig {
            parallel: false,
            max_candidates: 12,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn user_driven_has_no_recommendations() {
        let mut s = ExplorationSession::new(db(), quick_cfg(), ExplorationMode::UserDriven);
        s.apply_operation(&SelectionQuery::all());
        assert!(s.recommendations().is_empty());
        assert_eq!(s.path().len(), 1);
        assert_eq!(s.mode(), ExplorationMode::UserDriven);
    }

    #[test]
    fn recommendation_powered_can_take_recommendation() {
        let mut s =
            ExplorationSession::new(db(), quick_cfg(), ExplorationMode::RecommendationPowered);
        s.apply_operation(&SelectionQuery::all());
        assert!(!s.recommendations().is_empty());
        let rec_query = s.recommendations()[0].query.clone();
        let step = s.apply_recommendation(0).unwrap();
        assert_eq!(step.query, rec_query);
        assert_eq!(s.path().len(), 2);
    }

    #[test]
    fn apply_recommendation_errors() {
        let mut s =
            ExplorationSession::new(db(), quick_cfg(), ExplorationMode::RecommendationPowered);
        assert_eq!(
            s.apply_recommendation(0).unwrap_err(),
            SessionError::NotStarted
        );
        s.apply_operation(&SelectionQuery::all());
        assert_eq!(
            s.apply_recommendation(99).unwrap_err(),
            SessionError::NoSuchRecommendation
        );
    }

    #[test]
    fn fully_automated_builds_fixed_path() {
        let mut s = ExplorationSession::new(db(), quick_cfg(), ExplorationMode::FullyAutomated);
        let n = s.auto_run(&SelectionQuery::all(), 4);
        assert_eq!(n, 4);
        assert_eq!(s.path().len(), 4);
        // Each step follows the previous step's top recommendation.
        for w in s.path().windows(2) {
            assert_eq!(w[1].query, w[0].recommendations[0].query);
        }
    }

    #[test]
    fn auto_run_zero_steps() {
        let mut s = ExplorationSession::new(db(), quick_cfg(), ExplorationMode::FullyAutomated);
        assert_eq!(s.auto_run(&SelectionQuery::all(), 0), 0);
        assert!(s.current().is_none());
    }

    #[test]
    fn path_signature_is_deterministic_and_discriminating() {
        let run = |steps: usize| {
            let mut s = ExplorationSession::new(db(), quick_cfg(), ExplorationMode::FullyAutomated);
            s.auto_run(&SelectionQuery::all(), steps);
            s.path_signature()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(2), run(3), "different paths, different signatures");
        assert_eq!(
            ExplorationSession::new(db(), quick_cfg(), ExplorationMode::UserDriven)
                .path_signature(),
            ExplorationSession::new(db(), quick_cfg(), ExplorationMode::UserDriven)
                .path_signature(),
            "empty paths agree"
        );
    }

    #[test]
    fn with_engine_attaches_cache() {
        use crate::engine::SdeEngine;
        use subdex_store::GroupCache;
        let db = db();
        let cache = std::sync::Arc::new(GroupCache::new(1 << 20));
        let engine = SdeEngine::new(db, quick_cfg()).with_group_cache(cache.clone());
        let mut s = ExplorationSession::with_engine(engine, ExplorationMode::UserDriven);
        s.apply_operation(&SelectionQuery::all());
        assert!(cache.stats().misses > 0, "session populated shared cache");
    }

    #[test]
    fn mode_display() {
        assert_eq!(ExplorationMode::UserDriven.to_string(), "User-Driven");
        assert_eq!(
            ExplorationMode::RecommendationPowered.to_string(),
            "Recommendation-Powered"
        );
        assert_eq!(
            ExplorationMode::FullyAutomated.to_string(),
            "Fully-Automated"
        );
    }
}
