//! Thread-count resolution shared by every parallel code path.
//!
//! The generator's phase scan, the recommendation evaluator, the simulation
//! study runner, and the service worker pool all accept a thread count where
//! `0` means "use every available core". This module is the single home of
//! that convention.

/// Resolves a requested thread count: `0` means one thread per available
/// core (falling back to 1 when parallelism cannot be queried), any other
/// value is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_count_is_passed_through() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn zero_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
    }
}
