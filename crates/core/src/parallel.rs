//! Thread-count resolution and the persistent step-worker pool shared by
//! every parallel code path.
//!
//! The generator's phase scan, the recommendation evaluator, the selection
//! distance pass, the simulation study runner, and the service worker pool
//! all accept a thread count where `0` means "use every available core".
//! This module is the single home of that convention, of the
//! oversubscription budget that clamps it, and of the process-wide
//! [`TaskPool`] that executes the per-phase fan-outs without re-spawning OS
//! threads on every step.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Resolves a requested thread count: `0` means one thread per available
/// core (falling back to 1 when parallelism cannot be queried), any other
/// value is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Resolves a requested thread count under an oversubscription budget.
///
/// `budget == 0` means "no cap" and behaves exactly like
/// [`resolve_threads`]. Otherwise the resolved count is clamped to the
/// budget, which the service computes as `max(1, cores / busy_workers)` so
/// concurrent sessions split the machine instead of each claiming every
/// core.
pub fn budget_threads(requested: usize, budget: usize) -> usize {
    let resolved = resolve_threads(requested);
    if budget == 0 {
        resolved
    } else {
        resolved.min(budget.max(1))
    }
}

/// Upper bound on pool threads ever spawned, regardless of how large a
/// fan-out is requested. Requests beyond this are still completed — the
/// caller always executes tasks itself — they just share the existing
/// threads.
const MAX_POOL_THREADS: usize = 64;

/// One fan-out: `total` task indices claimed from a shared counter by
/// whichever threads (pool workers plus the submitting caller) get there
/// first.
struct Batch {
    /// Lifetime-erased pointer to the caller's task closure. Sound because
    /// [`TaskPool::run`] blocks until `done == total`, so the closure (and
    /// everything it borrows) outlives every dereference.
    job: &'static (dyn Fn(usize) + Sync),
    total: usize,
    claim: AtomicUsize,
    done: Mutex<usize>,
    finished: Condvar,
    panicked: AtomicBool,
}

fn execute_claims(batch: &Batch) {
    loop {
        let index = batch.claim.fetch_add(1, Ordering::Relaxed);
        if index >= batch.total {
            break;
        }
        if catch_unwind(AssertUnwindSafe(|| (batch.job)(index))).is_err() {
            batch.panicked.store(true, Ordering::Relaxed);
        }
        let mut done = batch.done.lock().unwrap();
        *done += 1;
        if *done == batch.total {
            batch.finished.notify_all();
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_ready: Condvar,
    spawned: Mutex<usize>,
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(batch) = queue.pop_front() {
                    break batch;
                }
                queue = shared.work_ready.wait(queue).unwrap();
            }
        };
        execute_claims(&batch);
    }
}

/// A persistent work-stealing-ish task pool: threads are spawned lazily on
/// first demand and then live for the life of the process, pulling whole
/// batches off a shared injector queue and racing the submitting caller for
/// task indices within each batch.
///
/// Progress never depends on pool threads being free: the caller always
/// executes its own batch too, so `run` completes even with zero pool
/// threads available (single-core machines, nested fan-outs from inside a
/// pooled task).
pub struct TaskPool {
    shared: Arc<PoolShared>,
}

/// Result slot written exactly once by whichever thread claims its index.
struct TaskSlot<T>(UnsafeCell<Option<T>>);

// Safety: each slot index is claimed exactly once via the batch's atomic
// counter, so writes are exclusive; reads happen only after the `done`
// mutex hand-off in `run`.
unsafe impl<T: Send> Sync for TaskSlot<T> {}

impl TaskPool {
    fn new() -> Self {
        TaskPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
                spawned: Mutex::new(0),
            }),
        }
    }

    /// Number of pool threads spawned so far (grows lazily, never shrinks).
    pub fn threads_spawned(&self) -> usize {
        *self.shared.spawned.lock().unwrap()
    }

    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_THREADS);
        let mut spawned = self.shared.spawned.lock().unwrap();
        while *spawned < wanted {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("subdex-pool-{}", *spawned))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
            *spawned += 1;
        }
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool and the calling
    /// thread, returning the results in index order regardless of which
    /// thread computed what — the deterministic merge every call site
    /// relies on. Panics inside a task are caught, the batch is drained,
    /// and the panic is re-raised on the caller.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        if tasks == 1 {
            return vec![f(0)];
        }
        let slots: Vec<TaskSlot<T>> = (0..tasks)
            .map(|_| TaskSlot(UnsafeCell::new(None)))
            .collect();
        let slots_ref: &[TaskSlot<T>] = &slots;
        let job = move |index: usize| {
            let value = f(index);
            // Safety: `index` is claimed exactly once (see TaskSlot).
            unsafe { *slots_ref[index].0.get() = Some(value) };
        };
        let job_ref: &(dyn Fn(usize) + Sync) = &job;
        // Safety: the batch only escapes to pool threads, which never call
        // `job` after `done == total`; `run` does not return before that
        // point, so the erased borrows stay live for every call.
        let job_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job_ref) };
        let batch = Arc::new(Batch {
            job: job_static,
            total: tasks,
            claim: AtomicUsize::new(0),
            done: Mutex::new(0),
            finished: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        self.ensure_workers(tasks - 1);
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for _ in 0..tasks - 1 {
                queue.push_back(Arc::clone(&batch));
            }
        }
        self.shared.work_ready.notify_all();
        // The caller is always one of the executors, so completion never
        // waits on pool-thread availability.
        execute_claims(&batch);
        let mut done = batch.done.lock().unwrap();
        while *done < batch.total {
            done = batch.finished.wait(done).unwrap();
        }
        drop(done);
        if batch.panicked.load(Ordering::Relaxed) {
            panic!("pooled task panicked");
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.0
                    .into_inner()
                    .expect("pooled task left its slot empty")
            })
            .collect()
    }
}

/// The process-wide pool every parallel phase submits to.
pub fn task_pool() -> &'static TaskPool {
    static POOL: OnceLock<TaskPool> = OnceLock::new();
    POOL.get_or_init(TaskPool::new)
}

/// Shared view over a mutable slice whose elements (or disjoint ranges) are
/// each owned by exactly one pooled task. The closures handed to
/// [`TaskPool::run`] are `Fn + Sync`, so they cannot capture `iter_mut`
/// lanes directly; this wrapper carries the provenance across instead.
pub(crate) struct DisjointSlots<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// Safety: accessors are unsafe and require callers to touch disjoint
// indices; `T: Send` lets the exclusive references move across threads.
unsafe impl<T: Send> Sync for DisjointSlots<'_, T> {}
unsafe impl<T: Send> Send for DisjointSlots<'_, T> {}

impl<'a, T> DisjointSlots<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        DisjointSlots {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    /// At most one live reference per index: each index must be accessed by
    /// exactly one task, and never while `range` overlaps it.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slot(&self, index: usize) -> &mut T {
        assert!(index < self.len, "slot index out of bounds");
        &mut *self.ptr.add(index)
    }

    /// # Safety
    /// Ranges handed to concurrent tasks must not overlap each other or any
    /// live `slot` reference.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn range(&self, start: usize, end: usize) -> &mut [T] {
        assert!(start <= end && end <= self.len, "slot range out of bounds");
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_count_is_passed_through() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn zero_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn budget_clamps_only_when_set() {
        assert_eq!(budget_threads(8, 0), 8);
        assert_eq!(budget_threads(8, 2), 2);
        assert_eq!(budget_threads(1, 4), 1);
        // A budget of 0 passed through max(1, …) still yields >= 1.
        assert!(budget_threads(0, 1) == 1);
    }

    #[test]
    fn run_returns_results_in_index_order() {
        let squares = task_pool().run(17, |i| i * i);
        assert_eq!(squares, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_handles_trivial_sizes() {
        assert_eq!(task_pool().run(0, |i| i), Vec::<usize>::new());
        assert_eq!(task_pool().run(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn nested_runs_complete_without_deadlock() {
        let sums = task_pool().run(4, |outer| {
            task_pool()
                .run(4, |inner| outer * 10 + inner)
                .into_iter()
                .sum::<usize>()
        });
        assert_eq!(sums, vec![6, 46, 86, 126]);
    }

    #[test]
    fn shared_counter_sees_every_task() {
        let hits = AtomicUsize::new(0);
        task_pool().run(32, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn task_panic_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            task_pool().run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
        // The pool stays usable afterwards.
        assert_eq!(task_pool().run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn disjoint_slots_give_every_task_its_own_lane() {
        let mut lanes = vec![0usize; 16];
        let slots = DisjointSlots::new(&mut lanes);
        task_pool().run(16, |i| {
            // Safety: each task touches only its own index.
            unsafe { *slots.slot(i) = i + 1 };
        });
        assert_eq!(lanes, (1..=16).collect::<Vec<_>>());
    }
}
