//! Distance between rating maps (Section 3.2.4) and the bounded, cached
//! map-distance engine behind the selection phase.
//!
//! Diversity `div(RM) = min over pairs of d(rm, rm′)` with `d` the Earth
//! Mover's Distance. A rating map is a *weighted set* of subgroup
//! distributions, so `d` is the exact EMD of the transportation problem
//! whose supplies/demands are the subgroup record fractions and whose
//! ground distance is the (normalized) 1-D EMD between subgroup rating
//! distributions.
//!
//! Two maps over the same group and dimension but different grouping
//! attributes partition the records differently, hence have nonzero
//! distance — this is what lets diversity surface new *attributes*
//! (Table 5's "attributes" row), not just new dimensions.
//!
//! # The distance engine
//!
//! The GMM selector performs `O(k²·l)` exact transportation solves per
//! step, and most of them only need to answer "is this pair *closer* than
//! the current minimum?". [`DistanceEngine`] makes that cheap without
//! changing a single answer:
//!
//! * [`MapSignature`] precomputes, once per map, every subgroup's CDF
//!   prefix vector, the raw subgroup weights, and the mixture (overall)
//!   CDF — the map's weighted centroid in the CDF embedding. Ground-cost
//!   matrices are then one allocation-free pass over a [`DistScratch`]
//!   buffer instead of per-cell `Vec` allocations.
//! * [`lower_bound`] / [`refined_lower_bound`] / [`upper_bound`] sandwich
//!   the exact distance; the GMM update `min_dist[i] = min(min_dist[i],
//!   d(next, i))` skips the exact solve whenever a lower bound (minus
//!   [`BOUND_MARGIN`]) already reaches `min_dist[i]` — provably unable to
//!   change the minimum, hence byte-identical selections.
//! * An optional shared [`DistanceCache`] memoizes exact values across
//!   steps and sessions, keyed by order-normalized content hashes; the
//!   engine computes every distance in canonical hash order so cached and
//!   fresh values agree bitwise in both argument orders.
//!
//! [`SelectionStats`] reports how each pair was resolved (exact solve,
//! bound-pruned, cache hit) so the service can expose the selection-phase
//! breakdown next to scan time and materialization paths.

use std::sync::Arc;
use std::time::Duration;

use crate::ratingmap::RatingMap;
use subdex_stats::distance::emd_1d_normalized_from_cdfs;
use subdex_stats::emd::emd_transport_matrix;
use subdex_stats::kernels::{self, BatchScratch};
use subdex_store::DistanceCache;

/// Safety margin subtracted from a computed lower bound before it is
/// compared against the current minimum in the pruned GMM update.
///
/// The bounds below are *mathematically* ≤ the exact distance, but they are
/// evaluated in floating point: the accumulated rounding error of an O(m)
/// sum over unit-scale values is ~1e-15, far below this margin. Requiring
/// `lb − BOUND_MARGIN ≥ min_dist` before pruning therefore guarantees that
/// every pruned pair truly satisfies `d ≥ min_dist` — the pruned update
/// could never have lowered `min_dist` — while giving up a negligible
/// sliver of pruning power. Distances live in `[0, 1]`, so an absolute
/// margin is meaningful.
pub const BOUND_MARGIN: f64 = 1e-9;

/// Serial fallback threshold: GMM rows shorter than this are evaluated on
/// the calling thread even when the engine is configured parallel (the
/// spawn overhead would dwarf the row).
const PAR_MIN_ITEMS: usize = 16;

/// Precomputed distance state of one [`RatingMap`]: everything the engine
/// needs to build ground-cost matrices, evaluate bounds, and key caches,
/// derived once per map instead of once per pair.
#[derive(Debug, Clone)]
pub struct MapSignature {
    /// 128-bit content hash over the scale and per-subgroup score counts
    /// (dual independent FNV-1a streams). Identity fields (`MapKey`) are
    /// excluded on purpose: the distance depends only on the histograms,
    /// so content-equal maps should share cache entries.
    content_hash: u128,
    /// The rating-scale size `m`.
    scale: usize,
    /// Raw subgroup record totals — the transportation supplies, exactly
    /// as [`map_distance`] has always passed them (the solver normalizes
    /// internally, so raw totals keep the arithmetic byte-identical).
    weights: Vec<f64>,
    /// Score-major `m × s` matrix of subgroup CDF prefix vectors:
    /// `cdfs[k * s + i]` is CDF element `k` of subgroup `i`. The layout
    /// matches the batch kernels' structure-of-arrays convention, so
    /// ground-cost matrices are built by `kernels::cost_matrix` without a
    /// per-pair transpose.
    cdfs: Vec<f64>,
    /// CDF of the map's `overall` distribution — the weighted centroid of
    /// the subgroup CDFs in the `(ℝᵐ, L1)` embedding, used by the
    /// centroid/projection lower bound.
    mixture_cdf: Vec<f64>,
}

impl MapSignature {
    /// Builds the signature of one map (allocating fresh buffers).
    pub fn of(map: &RatingMap) -> Self {
        Self::build(map, &mut BatchScratch::new())
    }

    /// [`Self::of`] with a caller-provided staging batch, so building
    /// signatures for a whole pool reuses one allocation and all subgroup
    /// CDFs come out of a single SIMD kernel call.
    pub fn build(map: &RatingMap, tmp: &mut BatchScratch) -> Self {
        let scale = map.overall.scale();
        let s = map.subgroups.len();
        let mut hasher = ContentHasher::new();
        hasher.write_u64(scale as u64);
        let mut weights = Vec::with_capacity(s);
        for sg in &map.subgroups {
            weights.push(sg.distribution.total() as f64);
            for &c in sg.distribution.counts() {
                hasher.write_u64(c);
            }
        }
        // One lane per subgroup: the batched CDF kernel emits the
        // score-major matrix directly, each lane bit-identical to
        // `cdf_into`.
        tmp.stage(
            scale,
            map.subgroups.iter().map(|sg| sg.distribution.counts()),
        );
        let mut cdfs = Vec::new();
        kernels::cdf_rows(kernels::active(), tmp, &mut cdfs);
        let mut mixture_cdf = Vec::with_capacity(scale);
        map.overall.cdf_into(&mut mixture_cdf);
        Self {
            content_hash: hasher.finish(),
            scale,
            weights,
            cdfs,
            mixture_cdf,
        }
    }

    /// The 128-bit content hash (cache key component).
    #[inline]
    pub fn content_hash(&self) -> u128 {
        self.content_hash
    }

    /// Number of (non-empty) subgroups.
    #[inline]
    pub fn subgroup_count(&self) -> usize {
        self.weights.len()
    }

    /// Whether the underlying map had no non-empty subgroups.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Heap bytes of the signature's own buffers, for pooled-scratch
    /// accounting (a selection scratch retains one signature per pool map).
    pub(crate) fn heap_bytes(&self) -> usize {
        (self.weights.capacity() + self.cdfs.capacity() + self.mixture_cdf.capacity())
            * std::mem::size_of::<f64>()
    }
}

/// Two independent FNV-1a streams combined into a 128-bit digest. FNV-1a
/// alone is weak at 64 bits for a cache shared across millions of pairs;
/// two decorrelated streams push collisions out of practical reach while
/// staying dependency-free and byte-order deterministic.
struct ContentHasher {
    a: u64,
    b: u64,
}

impl ContentHasher {
    fn new() -> Self {
        Self {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            self.b = (self.b ^ u64::from(byte.rotate_left(3))).wrapping_mul(0x100_0000_01b3);
            self.b = self.b.rotate_left(29);
        }
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Reusable buffers for pairwise distance evaluation: the ground-cost
/// matrix, the column-minimum buffer of the matrix lower bound, and the
/// mixture-CDF staging area of the batched row prestage — each grown to
/// the largest shape seen, so steady-state GMM rows allocate nothing.
#[derive(Debug, Default)]
pub struct DistScratch {
    cost: Vec<f64>,
    /// Per-column minima of the demand-side matrix lower bound.
    mins: Vec<f64>,
    /// Score-major staging of candidate mixture CDFs for the batched
    /// row-level mixture bound.
    mix_stage: Vec<f64>,
    /// Per-candidate mixture lower bounds against the row's pivot.
    mix_lb: Vec<f64>,
}

impl DistScratch {
    /// Heap bytes currently held across all pooled buffers.
    pub fn resident_bytes(&self) -> usize {
        (self.cost.capacity()
            + self.mins.capacity()
            + self.mix_stage.capacity()
            + self.mix_lb.capacity())
            * std::mem::size_of::<f64>()
    }

    /// Heap bytes the most recent evaluation actually needed (length, not
    /// capacity) — the demand signal of the executor's high-water trim.
    pub fn used_bytes(&self) -> usize {
        (self.cost.len() + self.mins.len() + self.mix_stage.len() + self.mix_lb.len())
            * std::mem::size_of::<f64>()
    }

    /// Releases all retained capacity (the high-water shrink hook; see
    /// `ExecContext` in the plan module).
    pub fn shrink(&mut self) {
        self.cost = Vec::new();
        self.mins = Vec::new();
        self.mix_stage = Vec::new();
        self.mix_lb = Vec::new();
    }
}

/// How the selection phase resolved its distance evaluations; threaded
/// through `StepResult` into the service metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Exact transportation solves performed.
    pub exact_solves: u64,
    /// Pairs pruned by the O(m) mixture (centroid) lower bound.
    pub pruned_mixture: u64,
    /// Pairs pruned by the cost-matrix (independent-minimization) lower
    /// bound after the mixture bound failed — the matrix was built but the
    /// solver was skipped.
    pub pruned_matrix: u64,
    /// Pairs answered from the shared [`DistanceCache`].
    pub cache_hits: u64,
    /// Wall-clock time spent inside diverse selection.
    pub select_time: Duration,
}

impl SelectionStats {
    /// Accumulates another selection pass's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.exact_solves += other.exact_solves;
        self.pruned_mixture += other.pruned_mixture;
        self.pruned_matrix += other.pruned_matrix;
        self.cache_hits += other.cache_hits;
        self.select_time += other.select_time;
    }

    /// Pairs resolved without running the exact solver, via either bound.
    pub fn pruned(&self) -> u64 {
        self.pruned_mixture + self.pruned_matrix
    }

    /// Total pair evaluations resolved by any path.
    pub fn evaluations(&self) -> u64 {
        self.exact_solves + self.pruned() + self.cache_hits
    }
}

/// Distance value for degenerate (empty-map) pairs, where the
/// transportation problem is undefined: two empty maps are identical (0),
/// an empty map is maximally far (1) from a non-empty one.
#[inline]
fn degenerate(a: &MapSignature, b: &MapSignature) -> Option<f64> {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => Some(0.0),
        (true, false) | (false, true) => Some(1.0),
        (false, false) => None,
    }
}

/// Orders a pair canonically (smaller content hash first) so every
/// computation of a pair — direct, swapped, or cached — runs the identical
/// arithmetic and returns the identical bits.
#[inline]
fn canonical<'s>(a: &'s MapSignature, b: &'s MapSignature) -> (&'s MapSignature, &'s MapSignature) {
    if a.content_hash <= b.content_hash {
        (a, b)
    } else {
        (b, a)
    }
}

/// Fills `cost` with the row-major `s_a × s_b` ground-cost matrix:
/// `cost[i·s_b + j]` is the normalized 1-D EMD between subgroup `i` of `a`
/// and subgroup `j` of `b`, evaluated from the precomputed score-major
/// CDFs in one batched kernel call (each cell bit-identical to
/// `emd_1d_normalized_from_cdfs`).
fn build_cost_matrix(a: &MapSignature, b: &MapSignature, cost: &mut Vec<f64>) {
    kernels::cost_matrix(
        kernels::active(),
        &a.cdfs,
        a.subgroup_count(),
        &b.cdfs,
        b.subgroup_count(),
        a.scale,
        cost,
    );
}

/// Exact distance of a canonically ordered, non-degenerate pair.
fn exact_ordered(a: &MapSignature, b: &MapSignature, scratch: &mut DistScratch) -> f64 {
    build_cost_matrix(a, b, &mut scratch.cost);
    emd_transport_matrix(&a.weights, &b.weights, &scratch.cost)
}

/// O(m) centroid/projection lower bound on [`map_distance`].
///
/// In the CDF embedding the ground distance is `c(x, y) = ‖CDF_x −
/// CDF_y‖₁ / (m−1)` — a metric — and each map's mixture CDF is the
/// supply-weighted centroid of its subgroup CDFs. For any feasible flow
/// `f`, `‖Σᵢⱼ fᵢⱼ (CAᵢ − CBⱼ)‖₁ ≤ Σᵢⱼ fᵢⱼ ‖CAᵢ − CBⱼ‖₁` (triangle
/// inequality of the norm), and the left side telescopes to the distance
/// between the two mixtures. Hence `d(mixture_a, mixture_b) ≤ EMD(a, b)`.
///
/// The bound is exact when both maps have one subgroup, and degenerate
/// (0) for any two maps over the same dimension of the same rating group,
/// whose `overall` distributions coincide — that is what the matrix-level
/// bound inside the engine is for.
pub fn lower_bound(a: &MapSignature, b: &MapSignature) -> f64 {
    if let Some(d) = degenerate(a, b) {
        return d;
    }
    emd_1d_normalized_from_cdfs(&a.mixture_cdf, &b.mixture_cdf)
}

/// Independent-minimization lower bound from an already-built cost matrix:
/// every unit of supply `i` must ship *somewhere*, so the cost is at least
/// `Σᵢ ŵᵢ·minⱼ cᵢⱼ`; symmetrically for demands. The max of the two sides
/// is a valid LP-relaxation bound that skips the augmenting-path solver —
/// the dominant cost — while reusing the matrix the solver would need
/// anyway if the bound fails.
fn matrix_lower_bound(
    a: &MapSignature,
    b: &MapSignature,
    cost: &[f64],
    mins: &mut Vec<f64>,
) -> f64 {
    let (sa, sb) = (a.subgroup_count(), b.subgroup_count());
    let total_a: f64 = a.weights.iter().sum();
    let total_b: f64 = b.weights.iter().sum();
    let mut by_supply = 0.0;
    for (i, &w) in a.weights.iter().enumerate() {
        let row = &cost[i * sb..(i + 1) * sb];
        let min = row.iter().copied().fold(f64::INFINITY, f64::min);
        by_supply += (w / total_a) * min;
    }
    // Demand side: the column minima vectorize across columns (min over
    // finite non-negative costs is exact under SIMD), then the weighted
    // sum runs in the same ascending-`j` order as before.
    kernels::col_mins(kernels::active(), cost, sa, sb, mins);
    let mut by_demand = 0.0;
    for (j, &w) in b.weights.iter().enumerate() {
        by_demand += (w / total_b) * mins[j];
    }
    by_supply.max(by_demand)
}

/// The tighter of the two lower bounds (mixture, then independent
/// minimization over the cost matrix). Costs one matrix build; exposed for
/// the bound-sandwich property tests and for callers that want the best
/// bound outside the GMM loop.
pub fn refined_lower_bound(a: &MapSignature, b: &MapSignature, scratch: &mut DistScratch) -> f64 {
    if let Some(d) = degenerate(a, b) {
        return d;
    }
    let (x, y) = canonical(a, b);
    let mixture = emd_1d_normalized_from_cdfs(&x.mixture_cdf, &y.mixture_cdf);
    build_cost_matrix(x, y, &mut scratch.cost);
    mixture.max(matrix_lower_bound(x, y, &scratch.cost, &mut scratch.mins))
}

/// Cheap upper bound on [`map_distance`]: the cost of the north-west-corner
/// feasible flow — walk supplies and demands in index order, always
/// shipping as much as possible. Any feasible flow's cost is ≥ the optimum,
/// so `exact ≤ upper` always; the flow is built without the solver in
/// O(s_a + s_b) after the matrix.
pub fn upper_bound(a: &MapSignature, b: &MapSignature, scratch: &mut DistScratch) -> f64 {
    if let Some(d) = degenerate(a, b) {
        return d;
    }
    let (x, y) = canonical(a, b);
    build_cost_matrix(x, y, &mut scratch.cost);
    let total_x: f64 = x.weights.iter().sum();
    let total_y: f64 = y.weights.iter().sum();
    let sb = y.subgroup_count();
    let mut cost = 0.0;
    let mut supply = x.weights[0] / total_x;
    let mut demand = y.weights[0] / total_y;
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let shipped = supply.min(demand);
        cost += shipped * scratch.cost[i * sb + j];
        supply -= shipped;
        demand -= shipped;
        // Advance whichever side ran dry; numerical dust on the last
        // cell simply ends the walk.
        if supply <= demand {
            i += 1;
            match x.weights.get(i) {
                Some(&w) => supply = w / total_x,
                None => break,
            }
        } else {
            j += 1;
            match y.weights.get(j) {
                Some(&w) => demand = w / total_y,
                None => break,
            }
        }
    }
    cost
}

/// The bounded, cached map-distance evaluator used by the selection phase.
///
/// Configuration is three orthogonal switches — lower-bound pruning, a
/// shared cross-step [`DistanceCache`], and a thread count for GMM row
/// evaluation — every combination of which produces byte-identical
/// selections (enforced by the selector's equivalence tests).
#[derive(Debug, Clone)]
pub struct DistanceEngine {
    bounds: bool,
    cache: Option<Arc<DistanceCache>>,
    threads: usize,
}

impl Default for DistanceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DistanceEngine {
    /// Bounds on, no cache, serial — the safe default for library callers.
    pub fn new() -> Self {
        Self {
            bounds: true,
            cache: None,
            threads: 1,
        }
    }

    /// Enables or disables lower-bound pruning (selections are identical
    /// either way; off exists for equivalence tests and benchmarks).
    pub fn with_bounds(mut self, bounds: bool) -> Self {
        self.bounds = bounds;
        self
    }

    /// Attaches a shared cross-step distance cache.
    pub fn with_cache(mut self, cache: Option<Arc<DistanceCache>>) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the GMM row-evaluation thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// A copy of this engine that evaluates serially — used inside already
    /// parallel sections (the per-candidate recommendation previews) to
    /// avoid nested thread pools.
    pub fn serial(&self) -> Self {
        Self {
            threads: 1,
            ..self.clone()
        }
    }

    /// The configured thread count (`0` = all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether bound pruning is enabled.
    pub fn bounds_enabled(&self) -> bool {
        self.bounds
    }

    /// The attached distance cache, if any.
    pub fn cache(&self) -> Option<&Arc<DistanceCache>> {
        self.cache.as_ref()
    }

    /// Exact distance of a pair, served from the cache when possible.
    pub fn exact(
        &self,
        a: &MapSignature,
        b: &MapSignature,
        scratch: &mut DistScratch,
        stats: &mut SelectionStats,
    ) -> f64 {
        if let Some(d) = degenerate(a, b) {
            return d;
        }
        let (x, y) = canonical(a, b);
        let key = DistanceCache::pair_key(x.content_hash, y.content_hash);
        if let Some(cache) = &self.cache {
            if let Some(d) = cache.get(key) {
                stats.cache_hits += 1;
                return d;
            }
        }
        let d = exact_ordered(x, y, scratch);
        stats.exact_solves += 1;
        if let Some(cache) = &self.cache {
            cache.insert(key, d);
        }
        d
    }

    /// The filter-and-refine GMM update primitive: resolves `d(a, b)`
    /// against the candidate's current minimum distance.
    ///
    /// Returns `Some(d)` with the exact distance (cached or solved), or
    /// `None` when a lower bound proves `d(a, b) ≥ current_min` — in which
    /// case `min(current_min, d)` equals `current_min` and the caller can
    /// skip the update entirely without changing any future selection.
    pub fn evaluate_against(
        &self,
        a: &MapSignature,
        b: &MapSignature,
        current_min: f64,
        scratch: &mut DistScratch,
        stats: &mut SelectionStats,
    ) -> Option<f64> {
        self.evaluate_with_hint(a, b, current_min, None, scratch, stats)
    }

    /// [`Self::evaluate_against`] with an optional precomputed mixture
    /// lower bound. [`Self::update_row`] evaluates the mixture bound of a
    /// whole row in one batched SIMD pass and passes each value down here;
    /// the bound is bit-identical to the inline computation (the L1 ground
    /// distance is bit-symmetric in its arguments, so canonical ordering
    /// does not change it), hence pruning decisions are unchanged.
    fn evaluate_with_hint(
        &self,
        a: &MapSignature,
        b: &MapSignature,
        current_min: f64,
        mixture_hint: Option<f64>,
        scratch: &mut DistScratch,
        stats: &mut SelectionStats,
    ) -> Option<f64> {
        if let Some(d) = degenerate(a, b) {
            return Some(d);
        }
        let (x, y) = canonical(a, b);
        let key = DistanceCache::pair_key(x.content_hash, y.content_hash);
        if let Some(cache) = &self.cache {
            if let Some(d) = cache.get(key) {
                stats.cache_hits += 1;
                return Some(d);
            }
        }
        if self.bounds && current_min.is_finite() {
            let mixture = mixture_hint
                .unwrap_or_else(|| emd_1d_normalized_from_cdfs(&x.mixture_cdf, &y.mixture_cdf));
            if mixture - BOUND_MARGIN >= current_min {
                stats.pruned_mixture += 1;
                return None;
            }
            build_cost_matrix(x, y, &mut scratch.cost);
            if matrix_lower_bound(x, y, &scratch.cost, &mut scratch.mins) - BOUND_MARGIN
                >= current_min
            {
                stats.pruned_matrix += 1;
                return None;
            }
            // Both bounds failed: solve on the matrix already in scratch —
            // the identical arithmetic `exact_ordered` would run.
            let d = emd_transport_matrix(&x.weights, &y.weights, &scratch.cost);
            stats.exact_solves += 1;
            if let Some(cache) = &self.cache {
                cache.insert(key, d);
            }
            Some(d)
        } else {
            let d = exact_ordered(x, y, scratch);
            stats.exact_solves += 1;
            if let Some(cache) = &self.cache {
                cache.insert(key, d);
            }
            Some(d)
        }
    }

    /// Evaluates one GMM row in place: for every index with `!picked[i]`,
    /// lowers `min_dist[i]` to `d(pivot, i)` when the pair cannot be
    /// pruned. Rows are chunked across the engine's threads (each chunk
    /// owns a disjoint `min_dist` slice plus private scratch and stats, so
    /// the merge is deterministic); short rows stay on the calling thread.
    pub fn update_row(
        &self,
        sigs: &[MapSignature],
        pivot: usize,
        picked: &[bool],
        min_dist: &mut [f64],
        scratch: &mut DistScratch,
        stats: &mut SelectionStats,
    ) {
        let n = min_dist.len();
        // Batched mixture prestage: stage every candidate's mixture CDF
        // score-major and evaluate the whole row's centroid lower bounds in
        // one SIMD kernel pass. Each value is bit-identical to the inline
        // per-pair computation, so the pruning decisions downstream cannot
        // change. (Degenerate/picked lanes get values too; they are simply
        // never read.)
        let mut mix_lb = std::mem::take(&mut scratch.mix_lb);
        let use_hints = self.bounds && n > 0;
        if use_hints {
            let pivot_sig = &sigs[pivot];
            let scale = pivot_sig.scale;
            let mut stage = std::mem::take(&mut scratch.mix_stage);
            stage.clear();
            stage.resize(scale * n, 0.0);
            for (i, sig) in sigs[..n].iter().enumerate() {
                for (j, &c) in sig.mixture_cdf.iter().enumerate() {
                    stage[j * n + i] = c;
                }
            }
            subdex_stats::emd::emd_1d_normalized_rows(
                &stage,
                n,
                &pivot_sig.mixture_cdf,
                &mut mix_lb,
            );
            scratch.mix_stage = stage;
        }
        let hint = |i: usize| if use_hints { Some(mix_lb[i]) } else { None };
        let threads = crate::parallel::resolve_threads(self.threads).min(n.max(1));
        if threads <= 1 || n < PAR_MIN_ITEMS {
            for i in 0..n {
                if picked[i] {
                    continue;
                }
                if let Some(d) = self.evaluate_with_hint(
                    &sigs[pivot],
                    &sigs[i],
                    min_dist[i],
                    hint(i),
                    scratch,
                    stats,
                ) {
                    if d < min_dist[i] {
                        min_dist[i] = d;
                    }
                }
            }
            scratch.mix_lb = mix_lb;
            return;
        }
        let chunk = n.div_ceil(threads);
        let jobs = n.div_ceil(chunk);
        let pivot_sig = &sigs[pivot];
        // Each pooled task owns the disjoint `min_dist[base..end]` range
        // plus private scratch and stats; the pool returns locals in chunk
        // order, so the stats merge below matches the old join order.
        let lanes = crate::parallel::DisjointSlots::new(min_dist);
        let locals: Vec<SelectionStats> = crate::parallel::task_pool().run(jobs, |c| {
            let base = c * chunk;
            let end = (base + chunk).min(n);
            // Safety: chunk `c` is the only task touching `base..end`.
            let slots = unsafe { lanes.range(base, end) };
            let mut scratch = DistScratch::default();
            let mut local = SelectionStats::default();
            for (off, slot) in slots.iter_mut().enumerate() {
                let i = base + off;
                if picked[i] {
                    continue;
                }
                if let Some(d) = self.evaluate_with_hint(
                    pivot_sig,
                    &sigs[i],
                    *slot,
                    hint(i),
                    &mut scratch,
                    &mut local,
                ) {
                    if d < *slot {
                        *slot = d;
                    }
                }
            }
            local
        });
        for local in &locals {
            stats.merge(local);
        }
        scratch.mix_lb = mix_lb;
    }
}

/// Exact EMD between two rating maps, in `[0, 1]`.
///
/// Conventions for degenerate maps: two empty maps are identical (0);
/// an empty map is maximally far (1) from a non-empty one.
pub fn map_distance(a: &RatingMap, b: &RatingMap) -> f64 {
    let sa = MapSignature::of(a);
    let sb = MapSignature::of(b);
    signature_distance(&sa, &sb, &mut DistScratch::default())
}

/// [`map_distance`] over prebuilt signatures and a reusable scratch —
/// the batched form every O(n²) pairwise loop should use.
pub fn signature_distance(a: &MapSignature, b: &MapSignature, scratch: &mut DistScratch) -> f64 {
    if let Some(d) = degenerate(a, b) {
        return d;
    }
    let (x, y) = canonical(a, b);
    exact_ordered(x, y, scratch)
}

/// Builds the signature set of a map collection with one shared staging
/// buffer — the entry point for Table-5 style pairwise reporting.
pub fn signatures_of(maps: &[&RatingMap]) -> Vec<MapSignature> {
    let mut tmp = BatchScratch::new();
    maps.iter()
        .map(|m| MapSignature::build(m, &mut tmp))
        .collect()
}

/// The diversity of a set of maps: the minimum pairwise distance
/// (`div(RM)` in the paper). Sets of fewer than two maps have diversity 0.
///
/// Signatures are built once per map (not once per pair) and every cost
/// matrix reuses one scratch buffer.
pub fn set_diversity(maps: &[&RatingMap]) -> f64 {
    if maps.len() < 2 {
        return 0.0;
    }
    let sigs = signatures_of(maps);
    let mut scratch = DistScratch::default();
    let mut min = f64::INFINITY;
    for i in 0..sigs.len() {
        for j in (i + 1)..sigs.len() {
            min = min.min(signature_distance(&sigs[i], &sigs[j], &mut scratch));
        }
    }
    min
}

/// Average pairwise distance — the "diversity" column reported in Table 5.
/// Shares the one-signature-per-map evaluation path with [`set_diversity`].
pub fn avg_pairwise_distance(maps: &[&RatingMap]) -> f64 {
    let n = maps.len();
    if n < 2 {
        return 0.0;
    }
    let sigs = signatures_of(maps);
    let mut scratch = DistScratch::default();
    let mut sum = 0.0;
    let mut pairs = 0u32;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += signature_distance(&sigs[i], &sigs[j], &mut scratch);
            pairs += 1;
        }
    }
    sum / f64::from(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratingmap::{MapKey, Subgroup};
    use subdex_stats::RatingDistribution;
    use subdex_store::{AttrId, DimId, Entity, ValueId};

    fn map(attr: u16, dim: u16, groups: &[&[u64]]) -> RatingMap {
        let subs = groups
            .iter()
            .enumerate()
            .map(|(i, counts)| Subgroup {
                value: ValueId(i as u32),
                distribution: RatingDistribution::from_counts(counts.to_vec()),
                avg_score: None,
            })
            .collect();
        RatingMap::from_subgroups(MapKey::new(Entity::Item, AttrId(attr), DimId(dim)), subs, 5)
    }

    #[test]
    fn identical_maps_distance_zero() {
        let a = map(0, 0, &[&[1, 2, 3, 4, 5], &[5, 4, 3, 2, 1]]);
        let b = a.clone();
        assert!(map_distance(&a, &b) < 1e-9);
    }

    #[test]
    fn opposite_maps_distance_one() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(0, 0, &[&[0, 0, 0, 0, 10]]);
        assert!((map_distance(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_symmetric() {
        let a = map(0, 0, &[&[3, 1, 0, 0, 6], &[0, 5, 5, 0, 0]]);
        let b = map(1, 0, &[&[1, 1, 1, 1, 1]]);
        assert!((map_distance(&a, &b) - map_distance(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn distance_symmetric_bitwise() {
        // Canonical ordering makes the two argument orders run the same
        // arithmetic, so symmetry holds to the bit, not just to tolerance.
        let a = map(
            0,
            0,
            &[&[3, 1, 0, 0, 6], &[0, 5, 5, 0, 0], &[1, 0, 2, 0, 1]],
        );
        let b = map(1, 0, &[&[1, 1, 1, 1, 1], &[0, 2, 0, 2, 0]]);
        assert_eq!(
            map_distance(&a, &b).to_bits(),
            map_distance(&b, &a).to_bits()
        );
    }

    #[test]
    fn different_partitions_same_overall_have_positive_distance() {
        // Same 20 records; one partition separates extremes, the other
        // mixes them evenly.
        let a = map(0, 0, &[&[10, 0, 0, 0, 0], &[0, 0, 0, 0, 10]]);
        let b = map(1, 0, &[&[5, 0, 0, 0, 5], &[5, 0, 0, 0, 5]]);
        assert_eq!(a.overall, b.overall);
        assert!(map_distance(&a, &b) > 0.3, "partition shape matters");
    }

    #[test]
    fn degenerate_maps() {
        let empty = map(0, 0, &[]);
        let full = map(0, 0, &[&[1, 1, 1, 1, 1]]);
        assert_eq!(map_distance(&empty, &empty), 0.0);
        assert_eq!(map_distance(&empty, &full), 1.0);
        assert_eq!(map_distance(&full, &empty), 1.0);
    }

    #[test]
    fn set_diversity_is_min_pairwise() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(1, 0, &[&[0, 0, 0, 0, 10]]);
        let c = map(2, 0, &[&[9, 1, 0, 0, 0]]); // close to a
        let d_ac = map_distance(&a, &c);
        assert!((set_diversity(&[&a, &b, &c]) - d_ac).abs() < 1e-9);
        assert_eq!(set_diversity(&[&a]), 0.0);
        assert_eq!(set_diversity(&[]), 0.0);
    }

    #[test]
    fn avg_pairwise_behaves() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(1, 0, &[&[0, 0, 0, 0, 10]]);
        assert!((avg_pairwise_distance(&[&a, &b]) - 1.0).abs() < 1e-9);
        assert_eq!(avg_pairwise_distance(&[&a]), 0.0);
    }

    #[test]
    fn triangle_inequality_sample() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(1, 0, &[&[0, 0, 10, 0, 0]]);
        let c = map(2, 0, &[&[0, 0, 0, 0, 10]]);
        let ab = map_distance(&a, &b);
        let bc = map_distance(&b, &c);
        let ac = map_distance(&a, &c);
        assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn signature_matches_direct_distance_bitwise() {
        let a = map(0, 0, &[&[3, 1, 0, 0, 6], &[0, 5, 5, 0, 0]]);
        let b = map(1, 0, &[&[1, 1, 1, 1, 1], &[2, 0, 0, 0, 2]]);
        let (sa, sb) = (MapSignature::of(&a), MapSignature::of(&b));
        let mut scratch = DistScratch::default();
        assert_eq!(
            signature_distance(&sa, &sb, &mut scratch).to_bits(),
            map_distance(&a, &b).to_bits()
        );
    }

    #[test]
    fn content_hash_ignores_identity_fields() {
        let a = map(0, 0, &[&[3, 1, 0, 0, 6]]);
        let b = map(7, 3, &[&[3, 1, 0, 0, 6]]);
        assert_eq!(
            MapSignature::of(&a).content_hash(),
            MapSignature::of(&b).content_hash(),
            "identity must not affect the content hash"
        );
        let c = map(0, 0, &[&[3, 1, 0, 0, 7]]);
        assert_ne!(
            MapSignature::of(&a).content_hash(),
            MapSignature::of(&c).content_hash()
        );
    }

    #[test]
    fn bounds_sandwich_exact_distance() {
        let pairs = [
            (
                map(0, 0, &[&[10, 0, 0, 0, 0], &[0, 0, 0, 0, 10]]),
                map(1, 0, &[&[5, 0, 0, 0, 5], &[5, 0, 0, 0, 5]]),
            ),
            (
                map(0, 0, &[&[3, 1, 0, 0, 6], &[0, 5, 5, 0, 0]]),
                map(1, 1, &[&[1, 1, 1, 1, 1]]),
            ),
            (
                map(0, 0, &[&[9, 1, 0, 0, 0]]),
                map(
                    1,
                    0,
                    &[&[0, 0, 0, 1, 9], &[2, 2, 2, 2, 2], &[0, 9, 0, 0, 0]],
                ),
            ),
        ];
        let mut scratch = DistScratch::default();
        for (a, b) in &pairs {
            let (sa, sb) = (MapSignature::of(a), MapSignature::of(b));
            let exact = signature_distance(&sa, &sb, &mut scratch);
            let lo = lower_bound(&sa, &sb);
            let lo_refined = refined_lower_bound(&sa, &sb, &mut scratch);
            let hi = upper_bound(&sa, &sb, &mut scratch);
            assert!(lo <= exact + 1e-9, "mixture {lo} > exact {exact}");
            assert!(lo <= lo_refined + 1e-12, "refined must not be looser");
            assert!(
                lo_refined <= exact + 1e-9,
                "refined {lo_refined} > exact {exact}"
            );
            assert!(exact <= hi + 1e-9, "exact {exact} > upper {hi}");
        }
    }

    #[test]
    fn lower_bound_tight_for_single_subgroup_maps() {
        // One subgroup each: the mixture *is* the lone subgroup, so the
        // centroid bound equals the exact distance.
        let a = map(0, 0, &[&[3, 1, 0, 0, 6]]);
        let b = map(1, 0, &[&[0, 5, 5, 0, 0]]);
        let (sa, sb) = (MapSignature::of(&a), MapSignature::of(&b));
        let exact = map_distance(&a, &b);
        assert!((lower_bound(&sa, &sb) - exact).abs() < 1e-12);
    }

    #[test]
    fn mixture_bound_degenerates_on_shared_overall() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0], &[0, 0, 0, 0, 10]]);
        let b = map(1, 0, &[&[5, 0, 0, 0, 5], &[5, 0, 0, 0, 5]]);
        let (sa, sb) = (MapSignature::of(&a), MapSignature::of(&b));
        assert!(lower_bound(&sa, &sb).abs() < 1e-12);
        // ...but the matrix-level bound still sees structure.
        let mut scratch = DistScratch::default();
        assert!(refined_lower_bound(&sa, &sb, &mut scratch) > 0.1);
    }

    #[test]
    fn engine_prunes_without_changing_the_answer() {
        let pivot = map(0, 0, &[&[10, 0, 0, 0, 0], &[0, 10, 0, 0, 0]]);
        let far = map(1, 0, &[&[0, 0, 0, 0, 10], &[0, 0, 0, 10, 0]]);
        let (sp, sf) = (MapSignature::of(&pivot), MapSignature::of(&far));
        let mut scratch = DistScratch::default();
        let mut stats = SelectionStats::default();
        let engine = DistanceEngine::new();
        // Tiny current minimum: the far pair must be pruned by a bound.
        let pruned = engine.evaluate_against(&sp, &sf, 0.01, &mut scratch, &mut stats);
        assert_eq!(pruned, None);
        assert_eq!(stats.pruned(), 1);
        assert_eq!(stats.exact_solves, 0);
        // Infinite minimum (the seed row): never pruned, exact computed.
        let mut stats2 = SelectionStats::default();
        let d = engine
            .evaluate_against(&sp, &sf, f64::INFINITY, &mut scratch, &mut stats2)
            .expect("seed row is never pruned");
        assert_eq!(stats2.exact_solves, 1);
        assert_eq!(d.to_bits(), map_distance(&pivot, &far).to_bits());
    }

    #[test]
    fn engine_cache_round_trips_bitwise() {
        let a = map(0, 0, &[&[3, 1, 0, 0, 6], &[0, 5, 5, 0, 0]]);
        let b = map(1, 0, &[&[1, 1, 1, 1, 1], &[0, 2, 0, 2, 0]]);
        let (sa, sb) = (MapSignature::of(&a), MapSignature::of(&b));
        let cache = Arc::new(subdex_store::DistanceCache::new(1 << 16));
        let engine = DistanceEngine::new().with_cache(Some(cache.clone()));
        let mut scratch = DistScratch::default();
        let mut stats = SelectionStats::default();
        let cold = engine.exact(&sa, &sb, &mut scratch, &mut stats);
        assert_eq!(stats.exact_solves, 1);
        // Warm lookup, in both argument orders.
        let warm = engine.exact(&sa, &sb, &mut scratch, &mut stats);
        let warm_swapped = engine.exact(&sb, &sa, &mut scratch, &mut stats);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.exact_solves, 1, "no recompute after the first solve");
        assert_eq!(cold.to_bits(), warm.to_bits());
        assert_eq!(cold.to_bits(), warm_swapped.to_bits());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn selection_stats_merge_and_derived_counters() {
        let mut a = SelectionStats {
            exact_solves: 2,
            pruned_mixture: 1,
            pruned_matrix: 3,
            cache_hits: 4,
            select_time: Duration::from_micros(10),
        };
        let b = SelectionStats {
            exact_solves: 1,
            pruned_mixture: 0,
            pruned_matrix: 1,
            cache_hits: 0,
            select_time: Duration::from_micros(5),
        };
        a.merge(&b);
        assert_eq!(a.exact_solves, 3);
        assert_eq!(a.pruned(), 5);
        assert_eq!(a.evaluations(), 12);
        assert_eq!(a.select_time, Duration::from_micros(15));
    }
}
