//! Distance between rating maps (Section 3.2.4).
//!
//! Diversity `div(RM) = min over pairs of d(rm, rm′)` with `d` the Earth
//! Mover's Distance. A rating map is a *weighted set* of subgroup
//! distributions, so `d` is the exact EMD of the transportation problem
//! whose supplies/demands are the subgroup record fractions and whose
//! ground distance is the (normalized) 1-D EMD between subgroup rating
//! distributions.
//!
//! Two maps over the same group and dimension but different grouping
//! attributes partition the records differently, hence have nonzero
//! distance — this is what lets diversity surface new *attributes*
//! (Table 5's "attributes" row), not just new dimensions.

use crate::ratingmap::RatingMap;
use subdex_stats::distance::emd_1d_normalized;
use subdex_stats::emd::emd_transport;

/// Exact EMD between two rating maps, in `[0, 1]`.
///
/// Conventions for degenerate maps: two empty maps are identical (0);
/// an empty map is maximally far (1) from a non-empty one.
pub fn map_distance(a: &RatingMap, b: &RatingMap) -> f64 {
    match (a.subgroups.is_empty(), b.subgroups.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (false, false) => {}
    }
    let supplies: Vec<f64> = a
        .subgroups
        .iter()
        .map(|s| s.distribution.total() as f64)
        .collect();
    let demands: Vec<f64> = b
        .subgroups
        .iter()
        .map(|s| s.distribution.total() as f64)
        .collect();
    emd_transport(&supplies, &demands, |i, j| {
        emd_1d_normalized(&a.subgroups[i].distribution, &b.subgroups[j].distribution)
    })
}

/// The diversity of a set of maps: the minimum pairwise distance
/// (`div(RM)` in the paper). Sets of fewer than two maps have diversity 0.
pub fn set_diversity(maps: &[&RatingMap]) -> f64 {
    if maps.len() < 2 {
        return 0.0;
    }
    let mut min = f64::INFINITY;
    for i in 0..maps.len() {
        for j in (i + 1)..maps.len() {
            min = min.min(map_distance(maps[i], maps[j]));
        }
    }
    min
}

/// Average pairwise distance — the "diversity" column reported in Table 5.
pub fn avg_pairwise_distance(maps: &[&RatingMap]) -> f64 {
    let n = maps.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0u32;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += map_distance(maps[i], maps[j]);
            pairs += 1;
        }
    }
    sum / f64::from(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratingmap::{MapKey, Subgroup};
    use subdex_stats::RatingDistribution;
    use subdex_store::{AttrId, DimId, Entity, ValueId};

    fn map(attr: u16, dim: u16, groups: &[&[u64]]) -> RatingMap {
        let subs = groups
            .iter()
            .enumerate()
            .map(|(i, counts)| Subgroup {
                value: ValueId(i as u32),
                distribution: RatingDistribution::from_counts(counts.to_vec()),
                avg_score: None,
            })
            .collect();
        RatingMap::from_subgroups(MapKey::new(Entity::Item, AttrId(attr), DimId(dim)), subs, 5)
    }

    #[test]
    fn identical_maps_distance_zero() {
        let a = map(0, 0, &[&[1, 2, 3, 4, 5], &[5, 4, 3, 2, 1]]);
        let b = a.clone();
        assert!(map_distance(&a, &b) < 1e-9);
    }

    #[test]
    fn opposite_maps_distance_one() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(0, 0, &[&[0, 0, 0, 0, 10]]);
        assert!((map_distance(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_symmetric() {
        let a = map(0, 0, &[&[3, 1, 0, 0, 6], &[0, 5, 5, 0, 0]]);
        let b = map(1, 0, &[&[1, 1, 1, 1, 1]]);
        assert!((map_distance(&a, &b) - map_distance(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn different_partitions_same_overall_have_positive_distance() {
        // Same 20 records; one partition separates extremes, the other
        // mixes them evenly.
        let a = map(0, 0, &[&[10, 0, 0, 0, 0], &[0, 0, 0, 0, 10]]);
        let b = map(1, 0, &[&[5, 0, 0, 0, 5], &[5, 0, 0, 0, 5]]);
        assert_eq!(a.overall, b.overall);
        assert!(map_distance(&a, &b) > 0.3, "partition shape matters");
    }

    #[test]
    fn degenerate_maps() {
        let empty = map(0, 0, &[]);
        let full = map(0, 0, &[&[1, 1, 1, 1, 1]]);
        assert_eq!(map_distance(&empty, &empty), 0.0);
        assert_eq!(map_distance(&empty, &full), 1.0);
        assert_eq!(map_distance(&full, &empty), 1.0);
    }

    #[test]
    fn set_diversity_is_min_pairwise() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(1, 0, &[&[0, 0, 0, 0, 10]]);
        let c = map(2, 0, &[&[9, 1, 0, 0, 0]]); // close to a
        let d_ac = map_distance(&a, &c);
        assert!((set_diversity(&[&a, &b, &c]) - d_ac).abs() < 1e-9);
        assert_eq!(set_diversity(&[&a]), 0.0);
        assert_eq!(set_diversity(&[]), 0.0);
    }

    #[test]
    fn avg_pairwise_behaves() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(1, 0, &[&[0, 0, 0, 0, 10]]);
        assert!((avg_pairwise_distance(&[&a, &b]) - 1.0).abs() < 1e-9);
        assert_eq!(avg_pairwise_distance(&[&a]), 0.0);
    }

    #[test]
    fn triangle_inequality_sample() {
        let a = map(0, 0, &[&[10, 0, 0, 0, 0]]);
        let b = map(1, 0, &[&[0, 0, 10, 0, 0]]);
        let c = map(2, 0, &[&[0, 0, 0, 0, 10]]);
        let ab = map_distance(&a, &b);
        let bc = map_distance(&b, &c);
        let ac = map_distance(&a, &c);
        assert!(ac <= ab + bc + 1e-9);
    }
}
