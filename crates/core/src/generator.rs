//! RM-Generator: the phase-based execution framework (Algorithm 1).
//!
//! The generator starts from every possible rating map for the current
//! rating group (one candidate per unconstrained grouping attribute ×
//! rating dimension), then consumes the group in `n` equal fractions of a
//! random permutation. After each fraction it
//!
//! * gathers the fraction into a columnar [`ScanBlock`] (entity rows and
//!   score bytes resolved once, shared by every family) and updates the
//!   shared per-attribute accumulators — in parallel over *families ×
//!   record chunks* when enabled, so thread utilization no longer depends
//!   on how many grouping attributes the schema has (the paper's "parallel
//!   query execution", made two-level),
//! * re-estimates each candidate's four normalized criteria and its
//!   dimension-weighted utility,
//! * applies confidence-interval pruning (Algorithm 3) and/or the
//!   Successive-Accepts-and-Rejects bandit strategy to discard low-utility
//!   candidates early.
//!
//! Pruned candidates stop being scanned entirely (their dimension leaves
//! the family accumulator); accepted candidates keep accumulating — they
//! must be displayed, so their final map has to be exact — but are exempt
//! from further pruning decisions.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::accumulator::{candidate_keys, EstimateScratch, FamilyAccumulator, RawScores};
use crate::parallel::resolve_threads;
use crate::pruning::{ci_survivors, utility_envelope, PruningStrategy, SarDecision, SarState};
use crate::ratingmap::{RatingMap, ScoredRatingMap};
use crate::utility::{CriterionScores, DimensionWeights, UtilityCombiner};
use subdex_stats::normalize::{Normalizer, NormalizerKind, ScoreNormalizer};
use subdex_stats::{ConfidenceInterval, HoeffdingSerfling, RatingDistribution};
use subdex_store::{DimId, RatingGroup, ScanBlock, ScanScratch, SelectionQuery, SubjectiveDb};

/// What the user has already seen: the inputs to dimension weighting
/// (Algorithm 2) and global peculiarity.
#[derive(Debug, Clone)]
pub struct SeenContext {
    weights: DimensionWeights,
    /// Bounded FIFO of displayed-map distributions. A `VecDeque` so
    /// eviction at capacity is O(1) — with a `Vec`, `remove(0)` shifted
    /// every retained distribution per displayed map. Kept contiguous
    /// after every mutation (see [`SeenContext::record_displayed`]) so the
    /// accessor can hand out a plain slice.
    seen_distributions: VecDeque<RatingDistribution>,
    max_kept: usize,
}

impl SeenContext {
    /// Default cap on retained reference distributions.
    pub const DEFAULT_MAX_KEPT: usize = 256;

    /// Fresh context for a database with `dim_count` rating dimensions.
    pub fn new(dim_count: usize) -> Self {
        Self {
            weights: DimensionWeights::new(dim_count),
            seen_distributions: VecDeque::new(),
            max_kept: Self::DEFAULT_MAX_KEPT,
        }
    }

    /// The dimension weights (`getWeights` state).
    pub fn weights(&self) -> &DimensionWeights {
        &self.weights
    }

    /// Overall distributions of previously displayed maps (global
    /// peculiarity references), oldest first.
    pub fn seen_distributions(&self) -> &[RatingDistribution] {
        let (head, tail) = self.seen_distributions.as_slices();
        debug_assert!(
            tail.is_empty(),
            "record_displayed keeps the deque contiguous"
        );
        head
    }

    /// Registers a displayed map: bumps its dimension count and retains its
    /// overall distribution (bounded FIFO, O(1) eviction).
    pub fn record_displayed(&mut self, map: &RatingMap) {
        self.weights.record_shown(map.key.dim);
        if self.seen_distributions.len() == self.max_kept {
            // Keep spare ring capacity so the sliding window only wraps —
            // and the make_contiguous below only rotates — once per
            // `max_kept` evictions: amortized O(1), vs. the O(n) shift
            // `Vec::remove(0)` paid on every displayed map.
            if self.seen_distributions.capacity() < self.max_kept * 2 {
                self.seen_distributions.reserve(self.max_kept);
            }
            self.seen_distributions.pop_front();
        }
        self.seen_distributions.push_back(map.overall.clone());
        self.seen_distributions.make_contiguous();
    }

    /// Total maps displayed so far.
    pub fn total_displayed(&self) -> u64 {
        self.weights.total_seen()
    }
}

/// Stateful normalizers, one per criterion (scales persist across steps so
/// criteria stay comparable throughout a session). Cloneable so candidate-
/// operation evaluation can snapshot them into worker threads.
#[derive(Debug, Clone)]
pub struct CriterionNormalizers {
    conciseness: ScoreNormalizer,
    agreement: ScoreNormalizer,
    self_peculiarity: ScoreNormalizer,
    global_peculiarity: ScoreNormalizer,
}

impl CriterionNormalizers {
    /// Builds four fresh normalizers of the given kind.
    pub fn new(kind: NormalizerKind) -> Self {
        Self {
            conciseness: kind.build_enum(),
            agreement: kind.build_enum(),
            self_peculiarity: kind.build_enum(),
            global_peculiarity: kind.build_enum(),
        }
    }

    /// Observes raw scores (updating scales) and returns them normalized.
    pub fn observe_and_normalize(&mut self, raw: &RawScores) -> CriterionScores {
        self.conciseness.observe(raw.conciseness);
        self.agreement.observe(raw.agreement);
        self.self_peculiarity.observe(raw.self_peculiarity);
        self.global_peculiarity.observe(raw.global_peculiarity);
        self.normalize(raw)
    }

    /// Normalizes raw scores with the current scales (no observation).
    pub fn normalize(&self, raw: &RawScores) -> CriterionScores {
        CriterionScores {
            conciseness: self.conciseness.normalize(raw.conciseness),
            agreement: self.agreement.normalize(raw.agreement),
            self_peculiarity: self.self_peculiarity.normalize(raw.self_peculiarity),
            global_peculiarity: self.global_peculiarity.normalize(raw.global_peculiarity),
        }
    }
}

/// Generator tuning knobs (a subset of the engine configuration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Pool size `k′ = k·l` the pruning schemes aim for.
    pub k_prime: usize,
    /// Number of phases `n` (the paper follows SeeDB's `n = 10`).
    pub phases: usize,
    /// Error probability for the Hoeffding–Serfling intervals.
    pub delta: f64,
    /// Which pruning schemes run.
    pub pruning: PruningStrategy,
    /// Scan attribute families on multiple threads.
    pub parallel: bool,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// How criteria combine into utility.
    pub combiner: UtilityCombiner,
    /// Apply dimension weighting (Equation 1). Disabled only by the
    /// Figure 9 ablation.
    pub use_dw: bool,
    /// Distance backing the peculiarity criteria.
    pub peculiarity: crate::interest::PeculiarityMeasure,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            k_prime: 9,
            phases: 10,
            delta: 0.05,
            pruning: PruningStrategy::Both,
            parallel: true,
            threads: 0,
            combiner: UtilityCombiner::Max,
            use_dw: true,
            peculiarity: crate::interest::PeculiarityMeasure::TotalVariation,
        }
    }
}

/// Result of one generator run.
#[derive(Debug, Clone)]
pub struct GeneratorOutput {
    /// Surviving maps, sorted by descending DW utility.
    pub pool: Vec<ScoredRatingMap>,
    /// Total candidates considered (before pruning).
    pub candidates_total: usize,
    /// Candidates discarded by CI pruning.
    pub pruned_ci: usize,
    /// Candidates discarded by MAB rejections.
    pub pruned_mab: usize,
    /// Candidates frozen into the top set by MAB accepts.
    pub accepted_mab: usize,
    /// Wall-clock time spent gathering blocks and running the count
    /// kernels (the phase-scan component of the run).
    pub scan_time: Duration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Active,
    Accepted,
    Pruned,
}

struct Candidate {
    family: usize,
    dim: DimId,
    status: Status,
    scores: CriterionScores,
    dw: f64,
}

/// Runs Algorithm 1 over `group` for the candidates admissible under
/// `query`, returning every surviving map scored and ranked.
///
/// Allocates a throwaway [`ScanScratch`]; steady-state callers (the engine,
/// the recommendation evaluator) should hold one scratch across steps and
/// use [`generate_with_scratch`] so phase gathers reuse its buffers.
pub fn generate(
    db: &SubjectiveDb,
    group: &RatingGroup,
    query: &SelectionQuery,
    seen: &SeenContext,
    normalizers: &mut CriterionNormalizers,
    cfg: &GeneratorConfig,
) -> GeneratorOutput {
    let mut scratch = ScanScratch::new();
    generate_with_scratch(db, group, query, seen, normalizers, cfg, &mut scratch)
}

/// [`generate`] with caller-provided gather buffers.
///
/// Allocates a throwaway [`EstimateScratch`] for the per-phase score
/// re-estimation; steady-state callers should pool one of those too and
/// use [`generate_pooled`].
pub fn generate_with_scratch(
    db: &SubjectiveDb,
    group: &RatingGroup,
    query: &SelectionQuery,
    seen: &SeenContext,
    normalizers: &mut CriterionNormalizers,
    cfg: &GeneratorConfig,
    scratch: &mut ScanScratch,
) -> GeneratorOutput {
    generate_pooled(
        db,
        group,
        query,
        seen,
        normalizers,
        cfg,
        scratch,
        &mut EstimateScratch::new(),
    )
}

/// [`generate_with_scratch`] with every reusable buffer caller-provided:
/// the phase-gather set *and* the re-estimation scratch. This is the
/// fully-pooled entry point the step executor and the recommendation
/// evaluator run on ([`crate::plan::ExecContext`] owns the pools), so
/// steps 2..n re-estimate `candidates × phases` times without allocating.
/// Pooling recycles capacity only — output is byte-identical to
/// [`generate`].
#[allow(clippy::too_many_arguments)]
pub fn generate_pooled(
    db: &SubjectiveDb,
    group: &RatingGroup,
    query: &SelectionQuery,
    seen: &SeenContext,
    normalizers: &mut CriterionNormalizers,
    cfg: &GeneratorConfig,
    scratch: &mut ScanScratch,
    est: &mut EstimateScratch,
) -> GeneratorOutput {
    let keys = candidate_keys(db, query);
    let mut families: Vec<FamilyAccumulator> = keys
        .iter()
        .map(|(entity, attr, dims)| FamilyAccumulator::new(db, *entity, *attr, dims.clone()))
        .collect();

    let mut candidates: Vec<Candidate> = Vec::new();
    for (fi, (_, _, dims)) in keys.iter().enumerate() {
        for &dim in dims {
            candidates.push(Candidate {
                family: fi,
                dim,
                status: Status::Active,
                scores: CriterionScores::default(),
                dw: 0.0,
            });
        }
    }
    let candidates_total = candidates.len();
    let mut out = GeneratorOutput {
        pool: Vec::new(),
        candidates_total,
        pruned_ci: 0,
        pruned_mab: 0,
        accepted_mab: 0,
        scan_time: Duration::ZERO,
    };
    if candidates_total == 0 || group.is_empty() {
        return out;
    }

    let hs = HoeffdingSerfling::new(group.len() as u64, cfg.delta);
    let phase_ranges = group.phase_ranges(cfg.phases.max(1));
    let mut sar = SarState::new(cfg.k_prime.min(candidates_total));
    let seen_dists = seen.seen_distributions();
    let weights = seen.weights();

    let threads = if cfg.parallel {
        resolve_threads(cfg.threads)
    } else {
        1
    };
    let prepare_start = Instant::now();
    scratch.prepare_group(db.ratings(), group);
    out.scan_time += prepare_start.elapsed();

    let mut records_seen: u64 = 0;
    let mut dims_union: Vec<DimId> = Vec::new();
    let mut live: Vec<usize> = Vec::new();
    let mut live_scores: Vec<CriterionScores> = Vec::new();
    let mut utilities: Vec<f64> = Vec::new();
    let n_phases = phase_ranges.len();
    for (phase_idx, range) in phase_ranges.into_iter().enumerate() {
        let phase_len = range.len();
        // Union of every family's still-active dimensions: the score
        // gather covers exactly what this phase's kernels will read.
        dims_union.clear();
        for fam in families.iter() {
            dims_union.extend_from_slice(fam.dims());
        }
        dims_union.sort_unstable();
        dims_union.dedup();
        if phase_len > 0 && !dims_union.is_empty() {
            let scan_start = Instant::now();
            let block = scratch.gather_phase(db.ratings(), group, range, &dims_union);
            scan_block(db, &mut families, &block, threads);
            out.scan_time += scan_start.elapsed();
        }
        records_seen += phase_len as u64;

        // Re-estimate every non-pruned candidate from its partial counts.
        // Normalization is stateful (each observation updates the running
        // normalizers), so that pass stays sequential; the pure utility
        // combine then runs once over the whole live batch.
        live.clear();
        live_scores.clear();
        for (ci, cand) in candidates.iter_mut().enumerate() {
            if cand.status == Status::Pruned {
                continue;
            }
            let fam = &families[cand.family];
            let Some(dim_pos) = fam.dims().iter().position(|&d| d == cand.dim) else {
                continue;
            };
            let raw = fam.raw_scores_pooled(dim_pos, seen_dists, cfg.peculiarity, est);
            cand.scores = normalizers.observe_and_normalize(&raw);
            live.push(ci);
            live_scores.push(cand.scores);
        }
        cfg.combiner.combine_batch(&live_scores, &mut utilities);
        for (&ci, &utility) in live.iter().zip(utilities.iter()) {
            let cand = &mut candidates[ci];
            cand.dw = if cfg.use_dw {
                weights.weighted(cand.dim, utility)
            } else {
                utility
            };
        }

        let last_phase = phase_idx + 1 == n_phases;
        if last_phase {
            break;
        }

        // Confidence-interval pruning (Algorithm 3).
        if cfg.pruning.uses_ci() {
            let active: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| c.status == Status::Active)
                .map(|(i, _)| i)
                .collect();
            let accepted_count = candidates
                .iter()
                .filter(|c| c.status == Status::Accepted)
                .count();
            let slots = cfg.k_prime.saturating_sub(accepted_count);
            if !active.is_empty() && slots > 0 {
                let envelopes: Vec<ConfidenceInterval> = active
                    .iter()
                    .map(|&i| {
                        let c = &candidates[i];
                        let intervals: Vec<ConfidenceInterval> = c
                            .scores
                            .as_array()
                            .into_iter()
                            .map(|s| hs.interval(s, records_seen))
                            .collect();
                        let w = if cfg.use_dw {
                            weights.dw_factor(c.dim)
                        } else {
                            1.0
                        };
                        utility_envelope(&intervals, w)
                    })
                    .collect();
                let keep = ci_survivors(&envelopes, slots);
                for (pos, &i) in active.iter().enumerate() {
                    if !keep[pos] {
                        candidates[i].status = Status::Pruned;
                        let dim = candidates[i].dim;
                        families[candidates[i].family].remove_dim(dim);
                        out.pruned_ci += 1;
                    }
                }
            }
        }

        // MAB pruning (Successive Accepts and Rejects), one decision/phase.
        if cfg.pruning.uses_mab() {
            let means: Vec<(usize, f64)> = candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| c.status == Status::Active)
                .map(|(i, c)| (i, c.dw))
                .collect();
            match sar.decide(&means) {
                SarDecision::Accept(i) => {
                    candidates[i].status = Status::Accepted;
                    out.accepted_mab += 1;
                }
                SarDecision::Reject(i) => {
                    candidates[i].status = Status::Pruned;
                    let dim = candidates[i].dim;
                    families[candidates[i].family].remove_dim(dim);
                    out.pruned_mab += 1;
                }
                SarDecision::Nothing => {}
            }
        }
    }

    // Materialize survivors with their final (full-data) scores.
    let mut pool: Vec<ScoredRatingMap> = candidates
        .iter()
        .filter(|c| c.status != Status::Pruned)
        .filter_map(|c| {
            let fam = &families[c.family];
            let dim_pos = fam.dims().iter().position(|&d| d == c.dim)?;
            let map = fam.to_rating_map(dim_pos);
            if map.subgroup_count() == 0 {
                return None;
            }
            let utility = cfg.combiner.combine(&c.scores);
            Some(ScoredRatingMap {
                map,
                utility,
                dw_utility: c.dw,
                criteria: c.scores,
            })
        })
        .collect();
    pool.sort_by(|a, b| {
        b.dw_utility
            .partial_cmp(&a.dw_utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.map.key.cmp(&b.map.key))
    });
    out.pool = pool;
    out
}

/// Smallest record chunk worth dispatching to a worker; below this the
/// dispatch overhead dominates the kernel.
const MIN_CHUNK: usize = 1024;

/// Scans one gathered block into every non-exhausted family — the paper's
/// "parallel query execution" sharing optimization, made two-level.
///
/// With `threads > 1` the work is split into *families × record chunks*
/// tasks pulled from a shared counter, so thread utilization no longer
/// depends on how many grouping attributes the schema has. Each worker
/// accumulates into private count matrices via
/// [`FamilyAccumulator::accumulate_block`]; the caller merges them in
/// deterministic worker order afterwards — and since chunk counts are exact
/// `u64` partial sums, any merge order would give byte-identical totals
/// anyway.
pub fn scan_block(
    db: &SubjectiveDb,
    families: &mut [FamilyAccumulator],
    block: &ScanBlock<'_>,
    threads: usize,
) {
    if block.is_empty() {
        return;
    }
    let active: Vec<usize> = families
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_exhausted())
        .map(|(i, _)| i)
        .collect();
    if active.is_empty() {
        return;
    }
    let n = block.len();
    let chunk = n.div_ceil(threads.max(1)).max(MIN_CHUNK).min(n);
    let n_chunks = n.div_ceil(chunk);
    let total_tasks = active.len() * n_chunks;
    if threads <= 1 || total_tasks <= 1 {
        for &fi in &active {
            families[fi].update_block(db, block);
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let fams: &[FamilyAccumulator] = families;
    let workers = threads.min(total_tasks);
    // One private count-matrix set per (worker, active family), allocated
    // lazily on the worker's first chunk of that family. Workers run on the
    // persistent task pool; the pool returns their locals in worker-slot
    // order, preserving the deterministic merge.
    let locals: Vec<Vec<Option<Vec<Vec<u64>>>>> = crate::parallel::task_pool().run(workers, |_| {
        let mut local: Vec<Option<Vec<Vec<u64>>>> = (0..active.len()).map(|_| None).collect();
        loop {
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= total_tasks {
                break;
            }
            let (ai, ci) = (t / n_chunks, t % n_chunks);
            let fam = &fams[active[ai]];
            let start = ci * chunk;
            let end = (start + chunk).min(n);
            let counts = local[ai].get_or_insert_with(|| fam.fresh_counts());
            fam.accumulate_block(db, block, start..end, counts);
        }
        local
    });
    for local in locals {
        for (ai, partial) in local.into_iter().enumerate() {
            if let Some(partial) = partial {
                families[active[ai]].merge_counts(&partial);
            }
        }
    }
    for &fi in &active {
        families[fi].note_records_scanned(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema, Value};

    /// 2 reviewer attrs × 2 item attrs × 2 dims on 200 records with one
    /// strongly peculiar pocket.
    fn build_db(seed_scores: bool) -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("gender", false);
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..20 {
            ub.push_row(vec![
                Cell::from(if i % 2 == 0 { "F" } else { "M" }),
                Cell::from(if i % 4 < 2 { "young" } else { "old" }),
            ]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        is.add("kind", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..10 {
            ib.push_row(vec![
                Cell::from(if i < 5 { "NYC" } else { "SF" }),
                Cell::from(["a", "b", "c"][i % 3]),
            ]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        for r in 0..20u32 {
            for i in 0..10u32 {
                // A peculiar pocket: SF items get 1s from old reviewers on
                // food; otherwise scores hover near 4.
                let overall = 3 + ((r + i) % 3) as u8;
                let food = if seed_scores && i >= 5 && (r % 4) >= 2 {
                    1
                } else {
                    4
                };
                rb.push(r, i, &[overall, food]);
            }
        }
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(20, 10))
    }

    fn run(cfg: &GeneratorConfig, db: &SubjectiveDb) -> GeneratorOutput {
        let q = SelectionQuery::all();
        let group = db.rating_group(&q, 42);
        let seen = SeenContext::new(db.ratings().dim_count());
        let mut norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        generate(db, &group, &q, &seen, &mut norms, cfg)
    }

    #[test]
    fn no_pruning_returns_all_candidates() {
        let db = build_db(true);
        let cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let out = run(&cfg, &db);
        // 4 grouping attributes × 2 dims = 8 candidates.
        assert_eq!(out.candidates_total, 8);
        assert_eq!(out.pool.len(), 8);
        assert_eq!(out.pruned_ci + out.pruned_mab, 0);
        // Sorted by descending DW utility.
        for w in out.pool.windows(2) {
            assert!(w[0].dw_utility >= w[1].dw_utility);
        }
    }

    #[test]
    fn pruned_run_preserves_top_maps() {
        let db = build_db(true);
        let base = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            k_prime: 3,
            ..Default::default()
        };
        let full = run(&base, &db);
        let top_full: Vec<_> = full.pool.iter().take(3).map(|m| m.map.key).collect();

        for strategy in [
            PruningStrategy::ConfidenceInterval,
            PruningStrategy::Mab,
            PruningStrategy::Both,
        ] {
            let cfg = GeneratorConfig {
                pruning: strategy,
                parallel: false,
                k_prime: 3,
                ..Default::default()
            };
            let pruned = run(&cfg, &db);
            assert!(
                pruned.pool.len() >= 3,
                "{strategy:?}: pool too small ({})",
                pruned.pool.len()
            );
            let top_pruned: Vec<_> = pruned.pool.iter().take(3).map(|m| m.map.key).collect();
            // The single best map must always survive pruning.
            assert_eq!(top_full[0], top_pruned[0], "{strategy:?} lost the top map");
        }
    }

    #[test]
    fn mab_prunes_some_candidates() {
        let db = build_db(true);
        let cfg = GeneratorConfig {
            pruning: PruningStrategy::Mab,
            parallel: false,
            k_prime: 2,
            ..Default::default()
        };
        let out = run(&cfg, &db);
        assert!(out.pruned_mab > 0, "SAR should reject at least one arm");
        assert!(out.pool.len() < out.candidates_total);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = build_db(true);
        let seq = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let par = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: true,
            threads: 4,
            ..Default::default()
        };
        let a = run(&seq, &db);
        let b = run(&par, &db);
        assert_eq!(a.pool.len(), b.pool.len());
        for (x, y) in a.pool.iter().zip(&b.pool) {
            assert_eq!(x.map.key, y.map.key);
            assert!((x.dw_utility - y.dw_utility).abs() < 1e-12);
        }
    }

    #[test]
    fn two_level_chunking_is_byte_identical() {
        // 3600 records in one whole-group block → several record chunks per
        // family at 4 threads, so the chunk level of the two-level scan is
        // actually exercised (MIN_CHUNK = 1024).
        let mut us = Schema::new();
        us.add("gender", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..60 {
            ub.push_row(vec![Cell::from(if i % 2 == 0 { "F" } else { "M" })]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..60 {
            ib.push_row(vec![Cell::from(["NYC", "SF", "LA"][i % 3])]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        for r in 0..60u32 {
            for i in 0..60u32 {
                rb.push(r, i, &[1 + ((r * 7 + i * 3) % 5) as u8]);
            }
        }
        let db = SubjectiveDb::new(ub.build(), ib.build(), rb.build(60, 60));

        let q = SelectionQuery::all();
        let group = db.scan_group(&q, 11);
        let mut scratch = ScanScratch::new();
        scratch.prepare_group(db.ratings(), &group);
        let dims = vec![DimId(0)];
        let keys = candidate_keys(&db, &q);
        let make = || -> Vec<FamilyAccumulator> {
            keys.iter()
                .map(|(e, a, _)| FamilyAccumulator::new(&db, *e, *a, dims.clone()))
                .collect()
        };
        let block = scratch.gather_phase(db.ratings(), &group, 0..group.len(), &dims);
        let mut seq = make();
        scan_block(&db, &mut seq, &block, 1);
        for threads in [2, 4, 8] {
            let mut par = make();
            scan_block(&db, &mut par, &block, threads);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.distributions(0), b.distributions(0), "{threads} threads");
                assert_eq!(a.records_processed(), b.records_processed());
            }
        }
    }

    #[test]
    fn empty_group_yields_empty_pool() {
        let db = build_db(true);
        let q = SelectionQuery::from_preds(vec![
            db.pred(subdex_store::Entity::Reviewer, "gender", &Value::str("F"))
                .unwrap(),
            db.pred(subdex_store::Entity::Reviewer, "gender", &Value::str("M"))
                .unwrap(),
        ]);
        let group = db.rating_group(&q, 0);
        let seen = SeenContext::new(2);
        let mut norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let out = generate(
            &db,
            &group,
            &q,
            &seen,
            &mut norms,
            &GeneratorConfig::default(),
        );
        assert!(out.pool.is_empty());
    }

    #[test]
    fn dimension_weights_demote_overexposed_dim() {
        let db = build_db(false);
        let q = SelectionQuery::all();
        let group = db.rating_group(&q, 1);
        let mut seen = SeenContext::new(2);
        // Pretend dim 0 was shown many times.
        for _ in 0..5 {
            let fake = RatingMap::from_subgroups(
                crate::ratingmap::MapKey::new(
                    subdex_store::Entity::Item,
                    subdex_store::AttrId(0),
                    DimId(0),
                ),
                vec![],
                5,
            );
            seen.record_displayed(&fake);
        }
        let mut norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let out = generate(&db, &group, &q, &seen, &mut norms, &cfg);
        // Every dim-0 candidate has weight 0 → dw 0; dim-1 candidates rank first.
        let first_dims: Vec<u16> = out.pool.iter().take(4).map(|m| m.map.key.dim.0).collect();
        assert!(
            first_dims.iter().all(|&d| d == 1),
            "dim 1 promoted: {first_dims:?}"
        );
    }

    #[test]
    fn seen_context_caps_retained_distributions() {
        let mut seen = SeenContext::new(1);
        for _ in 0..(SeenContext::DEFAULT_MAX_KEPT + 10) {
            let map = RatingMap::from_subgroups(
                crate::ratingmap::MapKey::new(
                    subdex_store::Entity::Item,
                    subdex_store::AttrId(0),
                    DimId(0),
                ),
                vec![crate::ratingmap::Subgroup {
                    value: subdex_store::ValueId(0),
                    distribution: RatingDistribution::from_counts(vec![1, 0, 0, 0, 0]),
                    avg_score: None,
                }],
                5,
            );
            seen.record_displayed(&map);
        }
        assert_eq!(
            seen.seen_distributions().len(),
            SeenContext::DEFAULT_MAX_KEPT
        );
        assert_eq!(
            seen.total_displayed(),
            (SeenContext::DEFAULT_MAX_KEPT + 10) as u64
        );
    }

    #[test]
    fn seen_context_evicts_oldest_first() {
        // Tag each displayed map's overall distribution with a unique total
        // so retained entries are identifiable, then overflow the FIFO well
        // past one full wrap of the ring buffer.
        let cap = SeenContext::DEFAULT_MAX_KEPT;
        let pushed = 3 * cap + 17;
        let mut seen = SeenContext::new(1);
        for i in 0..pushed {
            let map = RatingMap::from_subgroups(
                crate::ratingmap::MapKey::new(
                    subdex_store::Entity::Item,
                    subdex_store::AttrId(0),
                    DimId(0),
                ),
                vec![crate::ratingmap::Subgroup {
                    value: subdex_store::ValueId(0),
                    distribution: RatingDistribution::from_counts(vec![i as u64 + 1, 0, 0, 0, 0]),
                    avg_score: None,
                }],
                5,
            );
            seen.record_displayed(&map);
            // The accessor must stay a single contiguous, ordered slice at
            // every point, not just after the final push.
            let tags: Vec<u64> = seen
                .seen_distributions()
                .iter()
                .map(|d| d.total())
                .collect();
            let oldest = (i + 1).saturating_sub(cap) as u64;
            let expect: Vec<u64> = (oldest + 1..=i as u64 + 1).collect();
            assert_eq!(tags, expect, "after push {i}");
        }
        assert_eq!(seen.seen_distributions().len(), cap);
    }
}
