//! Natural-language narration of exploration steps.
//!
//! The paper's UI (Figure 5) presents rating maps as annotated histograms;
//! a library has no screen, so this module is the textual equivalent: it
//! turns maps and steps into the sentences an analyst would say out loud
//! ("young female adults gave the lowest ambiance ratings", "programmers
//! among them provided the lowest overall ratings" — the phrasing of the
//! paper's running example).

use crate::engine::StepResult;
use crate::interest::Criterion;
use crate::ratingmap::{RatingMap, ScoredRatingMap};
use subdex_store::SubjectiveDb;

/// One-sentence headline for a rating map: its most extreme subgroup and
/// direction.
pub fn headline(db: &SubjectiveDb, map: &RatingMap) -> String {
    let table = db.table(map.key.entity);
    let attr = &table.schema().attr(map.key.attr).name;
    let dim = db.ratings().dim_name(map.key.dim);
    let entity = map.key.entity;
    match (map.top_subgroup(), map.bottom_subgroup()) {
        (Some(top), Some(bottom)) if map.subgroup_count() >= 2 => {
            let dict = table.dictionary(map.key.attr);
            let spread = top.avg_score.unwrap_or(0.0) - bottom.avg_score.unwrap_or(0.0);
            if spread < 0.3 {
                format!(
                    "{dim} ratings show no significant difference across {entity} {attr} groups"
                )
            } else {
                format!(
                    "{entity}s with {attr} = {} received the highest {dim} ratings ({:.1}), \
                     while {attr} = {} received the lowest ({:.1})",
                    dict.value(top.value),
                    top.avg_score.unwrap_or(f64::NAN),
                    dict.value(bottom.value),
                    bottom.avg_score.unwrap_or(f64::NAN),
                )
            }
        }
        (Some(only), _) => {
            let dict = table.dictionary(map.key.attr);
            format!(
                "all records share {entity} {attr} = {} (avg {dim} {:.1})",
                dict.value(only.value),
                only.avg_score.unwrap_or(f64::NAN)
            )
        }
        _ => format!("no records to aggregate by {entity} {attr}"),
    }
}

/// Names the criterion that made a scored map interesting (the arg-max of
/// its normalized criteria) with a reading of what that criterion means.
pub fn why_interesting(sm: &ScoredRatingMap) -> String {
    let scores = sm.criteria;
    let (best, _) = crate::interest::ALL_CRITERIA
        .into_iter()
        .map(|c| (c, scores.get(c)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("four criteria");
    let reason = match best {
        Criterion::Conciseness => "it summarizes many records in few subgroups",
        Criterion::Agreement => "reviewers within each subgroup strongly agree",
        Criterion::SelfPeculiarity => "one subgroup deviates sharply from the rest",
        Criterion::GlobalPeculiarity => "it shows a facet unlike anything displayed before",
    };
    format!("selected for {best}: {reason}")
}

/// Multi-line narration of a full step: the query, the group, one line per
/// displayed map, and the recommendations.
pub fn narrate_step(db: &SubjectiveDb, step: &StepResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Step {}: exploring {} ({} rating records).",
        step.step + 1,
        db.describe_query(&step.query),
        step.group_size
    );
    for sm in &step.maps {
        let _ = writeln!(
            out,
            "  • {} — {}.",
            headline(db, &sm.map),
            why_interesting(sm)
        );
    }
    if step.recommendations.is_empty() {
        let _ = writeln!(out, "  (no next-step recommendations)");
    } else {
        let _ = writeln!(out, "  Suggested next steps:");
        for (i, rec) in step.recommendations.iter().enumerate() {
            let verb = if rec.query.len() > step.query.len() {
                "drill into"
            } else if rec.query.len() < step.query.len() {
                "roll up to"
            } else {
                "switch to"
            };
            let _ = writeln!(
                out,
                "    {}. {verb} {} ({} records)",
                i + 1,
                db.describe_query(&rec.query),
                rec.group_size
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SdeEngine};
    use crate::ratingmap::{MapKey, Subgroup};
    use crate::utility::CriterionScores;
    use std::sync::Arc;
    use subdex_stats::RatingDistribution;
    use subdex_store::{
        Cell, DimId, Entity, EntityTableBuilder, RatingTableBuilder, Schema, SelectionQuery,
        SubjectiveDb, ValueId,
    };

    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec![Cell::from("young")]);
        ub.push_row(vec![Cell::from("old")]);
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![Cell::from("NYC")]);
        ib.push_row(vec![Cell::from("SF")]);
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        for _ in 0..6 {
            rb.push(0, 0, &[5]);
            rb.push(1, 1, &[1]);
        }
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(2, 2))
    }

    fn map_of(db: &SubjectiveDb) -> RatingMap {
        let city = db.items().schema().attr_by_name("city").unwrap();
        RatingMap::from_subgroups(
            MapKey::new(Entity::Item, city, DimId(0)),
            vec![
                Subgroup {
                    value: ValueId(0),
                    distribution: RatingDistribution::from_counts(vec![0, 0, 0, 0, 6]),
                    avg_score: None,
                },
                Subgroup {
                    value: ValueId(1),
                    distribution: RatingDistribution::from_counts(vec![6, 0, 0, 0, 0]),
                    avg_score: None,
                },
            ],
            5,
        )
    }

    #[test]
    fn headline_names_extremes() {
        let db = db();
        let h = headline(&db, &map_of(&db));
        assert!(h.contains("NYC"), "{h}");
        assert!(h.contains("SF"), "{h}");
        assert!(h.contains("highest"), "{h}");
        assert!(h.contains("overall"), "{h}");
    }

    #[test]
    fn headline_flat_map_reports_no_difference() {
        let db = db();
        let city = db.items().schema().attr_by_name("city").unwrap();
        let flat = RatingMap::from_subgroups(
            MapKey::new(Entity::Item, city, DimId(0)),
            vec![
                Subgroup {
                    value: ValueId(0),
                    distribution: RatingDistribution::from_counts(vec![0, 0, 5, 0, 0]),
                    avg_score: None,
                },
                Subgroup {
                    value: ValueId(1),
                    distribution: RatingDistribution::from_counts(vec![0, 0, 5, 0, 0]),
                    avg_score: None,
                },
            ],
            5,
        );
        assert!(headline(&db, &flat).contains("no significant difference"));
    }

    #[test]
    fn headline_single_subgroup() {
        let db = db();
        let city = db.items().schema().attr_by_name("city").unwrap();
        let single = RatingMap::from_subgroups(
            MapKey::new(Entity::Item, city, DimId(0)),
            vec![Subgroup {
                value: ValueId(0),
                distribution: RatingDistribution::from_counts(vec![0, 0, 0, 0, 6]),
                avg_score: None,
            }],
            5,
        );
        assert!(headline(&db, &single).contains("all records share"));
        let empty = RatingMap::from_subgroups(MapKey::new(Entity::Item, city, DimId(0)), vec![], 5);
        assert!(headline(&db, &empty).contains("no records"));
    }

    #[test]
    fn why_interesting_names_argmax_criterion() {
        let db = db();
        let sm = ScoredRatingMap {
            map: map_of(&db),
            utility: 0.9,
            dw_utility: 0.9,
            criteria: CriterionScores {
                conciseness: 0.1,
                agreement: 0.2,
                self_peculiarity: 0.9,
                global_peculiarity: 0.3,
            },
        };
        let why = why_interesting(&sm);
        assert!(why.contains("self-peculiarity"), "{why}");
        assert!(why.contains("deviates"), "{why}");
    }

    #[test]
    fn narrate_full_step() {
        let db = Arc::new(db());
        let mut engine = SdeEngine::new(db.clone(), EngineConfig::default());
        let res = engine.step(&SelectionQuery::all());
        let text = narrate_step(&db, &res);
        assert!(text.contains("Step 1"), "{text}");
        assert!(text.contains("12 rating records"), "{text}");
        assert!(text.lines().count() >= 2);
        if !res.recommendations.is_empty() {
            assert!(text.contains("Suggested next steps"));
        }
    }
}
