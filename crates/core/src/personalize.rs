//! Personalized recommendation re-ranking — the paper's stated future
//! work ("we are pursuing the extension of our work to support
//! personalized exploration") and the modularity claim of Section 5.2.2
//! ("the Recommendation Builder may be replaced with alternative
//! implementations, yielding personalized recommendations using logs of
//! previous operations").
//!
//! [`OperationHistory`] digests session logs into per-attribute affinities
//! (how often the analyst has constrained each attribute), and
//! [`rerank`] blends those affinities into the utility ranking of the
//! engine's recommendations: an analyst who always slices by neighborhood
//! sees neighborhood operations first, *without* discarding the utility
//! signal.

use crate::recommend::Recommendation;
use crate::sessionlog::SessionLog;
use std::collections::HashMap;
use subdex_store::{AttrId, Entity};

/// Per-analyst usage statistics over (entity, attribute) pairs.
#[derive(Debug, Clone, Default)]
pub struct OperationHistory {
    counts: HashMap<(Entity, AttrId), u64>,
    total: u64,
}

impl OperationHistory {
    /// An empty history (re-ranking becomes the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a history from session logs.
    pub fn from_logs<'a>(logs: impl IntoIterator<Item = &'a SessionLog>) -> Self {
        let mut h = Self::new();
        for log in logs {
            for entry in log.entries() {
                h.record_query(&entry.query);
            }
        }
        h
    }

    /// Counts every predicate of one executed query.
    pub fn record_query(&mut self, query: &subdex_store::SelectionQuery) {
        for p in query.preds() {
            *self.counts.entry((p.entity, p.attr)).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Total predicates observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The analyst's affinity for an attribute: its share of all
    /// predicates they have ever used (`0` for unseen attributes or an
    /// empty history).
    pub fn affinity(&self, entity: Entity, attr: AttrId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&(entity, attr)).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Affinity of a whole query: the mean affinity of its predicates
    /// (`0` for the empty query).
    pub fn query_affinity(&self, query: &subdex_store::SelectionQuery) -> f64 {
        let preds = query.preds();
        if preds.is_empty() {
            return 0.0;
        }
        preds
            .iter()
            .map(|p| self.affinity(p.entity, p.attr))
            .sum::<f64>()
            / preds.len() as f64
    }
}

/// Re-ranks recommendations in place by
/// `utility · (1 + alpha · affinity(query))`.
///
/// `alpha = 0` leaves the utility ranking untouched; larger values weigh
/// the analyst's habits more. Ties keep the original (utility) order.
pub fn rerank(recs: &mut [Recommendation], history: &OperationHistory, alpha: f64) {
    debug_assert!(alpha >= 0.0);
    let mut keyed: Vec<(f64, usize)> = recs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let score = r.utility * (1.0 + alpha * history.query_affinity(&r.query));
            (score, i)
        })
        .collect();
    keyed.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let order: Vec<usize> = keyed.into_iter().map(|(_, i)| i).collect();
    apply_permutation(recs, &order);
}

/// Reorders `items` so that `items[new_i] = old items[order[new_i]]`.
fn apply_permutation<T: Clone>(items: &mut [T], order: &[usize]) {
    let snapshot: Vec<T> = items.to_vec();
    for (dst, &src) in order.iter().enumerate() {
        items[dst] = snapshot[src].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sessionlog::OpSource;
    use subdex_store::{AttrValue, SelectionQuery, ValueId};

    fn rec(utility: f64, preds: Vec<AttrValue>) -> Recommendation {
        Recommendation {
            query: SelectionQuery::from_preds(preds),
            utility,
            group_size: 10,
            maps: Vec::new(),
        }
    }

    fn av(entity: Entity, attr: u16, value: u32) -> AttrValue {
        AttrValue::new(entity, AttrId(attr), ValueId(value))
    }

    #[test]
    fn empty_history_is_identity() {
        let h = OperationHistory::new();
        let mut recs = vec![
            rec(0.9, vec![av(Entity::Item, 0, 0)]),
            rec(0.5, vec![av(Entity::Item, 1, 0)]),
        ];
        rerank(&mut recs, &h, 2.0);
        assert_eq!(recs[0].utility, 0.9);
        assert_eq!(recs[1].utility, 0.5);
    }

    #[test]
    fn history_promotes_habitual_attributes() {
        let mut h = OperationHistory::new();
        // The analyst constantly slices by item attribute 1.
        for _ in 0..10 {
            h.record_query(&SelectionQuery::from_preds(vec![av(Entity::Item, 1, 2)]));
        }
        assert!(h.affinity(Entity::Item, AttrId(1)) > 0.99);
        assert_eq!(h.affinity(Entity::Item, AttrId(0)), 0.0);

        let mut recs = vec![
            rec(0.6, vec![av(Entity::Item, 0, 0)]), // higher utility
            rec(0.5, vec![av(Entity::Item, 1, 0)]), // habitual attribute
        ];
        rerank(&mut recs, &h, 2.0);
        // 0.5 · (1 + 2·1) = 1.5 beats 0.6 · 1 = 0.6.
        assert_eq!(recs[0].utility, 0.5, "habitual attribute promoted");
    }

    #[test]
    fn alpha_zero_keeps_utility_order() {
        let mut h = OperationHistory::new();
        h.record_query(&SelectionQuery::from_preds(vec![av(Entity::Item, 1, 0)]));
        let mut recs = vec![
            rec(0.6, vec![av(Entity::Item, 0, 0)]),
            rec(0.5, vec![av(Entity::Item, 1, 0)]),
        ];
        rerank(&mut recs, &h, 0.0);
        assert_eq!(recs[0].utility, 0.6);
    }

    #[test]
    fn from_logs_aggregates_sessions() {
        let mut a = SessionLog::new();
        a.record(
            OpSource::User,
            SelectionQuery::from_preds(vec![av(Entity::Reviewer, 0, 1)]),
        );
        let mut b = SessionLog::new();
        b.record(
            OpSource::Auto,
            SelectionQuery::from_preds(vec![av(Entity::Reviewer, 0, 2), av(Entity::Item, 3, 0)]),
        );
        let h = OperationHistory::from_logs([&a, &b]);
        assert_eq!(h.total(), 3);
        assert!((h.affinity(Entity::Reviewer, AttrId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.affinity(Entity::Item, AttrId(3)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn query_affinity_averages_predicates() {
        let mut h = OperationHistory::new();
        for _ in 0..3 {
            h.record_query(&SelectionQuery::from_preds(vec![av(Entity::Item, 0, 0)]));
        }
        h.record_query(&SelectionQuery::from_preds(vec![av(Entity::Item, 1, 0)]));
        let q = SelectionQuery::from_preds(vec![av(Entity::Item, 0, 5), av(Entity::Item, 1, 5)]);
        // affinities: 0.75 and 0.25 → mean 0.5.
        assert!((h.query_affinity(&q) - 0.5).abs() < 1e-12);
        assert_eq!(h.query_affinity(&SelectionQuery::all()), 0.0);
    }

    #[test]
    fn rerank_is_stable_on_ties() {
        let h = OperationHistory::new();
        let mut recs = vec![
            rec(0.5, vec![av(Entity::Item, 0, 0)]),
            rec(0.5, vec![av(Entity::Item, 1, 0)]),
        ];
        let first_query = recs[0].query.clone();
        rerank(&mut recs, &h, 1.0);
        assert_eq!(recs[0].query, first_query, "ties keep original order");
    }
}
