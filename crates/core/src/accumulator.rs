//! Shared GroupBy accumulators — the *sharing-based optimization* of
//! Section 4.2.1.
//!
//! All candidate rating maps with the same grouping attribute differ only in
//! which rating dimension they aggregate, so they are computed as *one*
//! query with multiple aggregates ("Combining Multiple Aggregates" in
//! SeeDB's terms): a [`FamilyAccumulator`] scans each phase fraction once,
//! resolving the grouping value per record a single time and updating one
//! count matrix per still-active dimension. Pruned dimensions are removed
//! from the family; an empty family stops scanning entirely.
//!
//! Since the columnar refactor the accumulator consumes gathered
//! [`ScanBlock`]s rather than raw record-id slices: entity rows and score
//! bytes arrive pre-gathered (shared by every family on that entity side),
//! and counting runs through one of two kernels — branch-free for atomic
//! grouping attributes, CSR for multi-valued ones. The chunk-level
//! [`FamilyAccumulator::accumulate_block`] entry point lets the scan
//! parallelize over record chunks as well as families.

use std::ops::Range;

use crate::interest;
use crate::ratingmap::{MapKey, RatingMap, Subgroup};
use subdex_stats::kernels::{self, BatchScratch};
use subdex_stats::RatingDistribution;
use subdex_store::{
    AttrId, Column, DimId, Entity, RatingGroup, RecordId, ScanBlock, ScanScratch, SubjectiveDb,
};

/// Raw (unnormalized) criterion values of one candidate at some point of
/// the phased scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawScores {
    /// Compaction gain.
    pub conciseness: f64,
    /// Inverse mean subgroup SD.
    pub agreement: f64,
    /// Max subgroup-vs-group TVD.
    pub self_peculiarity: f64,
    /// Max map-vs-seen TVD.
    pub global_peculiarity: f64,
}

/// Reusable buffers for the per-phase score re-estimation
/// ([`FamilyAccumulator::raw_scores_pooled`]): the staged subgroup batch
/// and the overall distribution a candidate's criteria are computed from.
///
/// Re-estimation runs `candidates × phases` times per generate call; since
/// the kernel layer it stages the non-empty subgroup rows of the count
/// matrix into a score-major [`BatchScratch`] and evaluates agreement and
/// both peculiarities through the batched SIMD kernels — one lane per
/// subgroup (or per seen map). Holding one of these across calls (the
/// engine pools it inside [`crate::plan::ExecContext`], the recommendation
/// evaluator inside its per-worker scratch) recycles all staging capacity;
/// every value is still recomputed from the count matrix on every call, so
/// pooled and fresh scratch produce byte-identical scores.
#[derive(Debug)]
pub struct EstimateScratch {
    /// The non-empty subgroup rows, staged score-major.
    batch: BatchScratch,
    /// Previously displayed map distributions, staged for global
    /// peculiarity.
    seen_batch: BatchScratch,
    overall: RatingDistribution,
    /// Per-lane kernel outputs (distances / standard deviations).
    vals: Vec<f64>,
    /// Kernel scratch (means under the Outlier measure).
    tmp: Vec<f64>,
}

impl Default for EstimateScratch {
    fn default() -> Self {
        Self {
            batch: BatchScratch::new(),
            seen_batch: BatchScratch::new(),
            overall: RatingDistribution::new(1),
            vals: Vec::new(),
            tmp: Vec::new(),
        }
    }
}

impl EstimateScratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes currently held across all pooled buffers.
    pub fn resident_bytes(&self) -> usize {
        self.batch.resident_bytes()
            + self.seen_batch.resident_bytes()
            + (self.vals.capacity() + self.tmp.capacity()) * std::mem::size_of::<f64>()
    }

    /// Heap bytes the most recent estimation actually needed (length, not
    /// capacity) — the demand signal of the executor's high-water trim.
    pub fn used_bytes(&self) -> usize {
        self.batch.used_bytes()
            + self.seen_batch.used_bytes()
            + (self.vals.len() + self.tmp.len()) * std::mem::size_of::<f64>()
    }

    /// Releases all retained capacity (the high-water shrink hook; see
    /// `ExecContext` in the plan module).
    pub fn shrink(&mut self) {
        self.batch.shrink();
        self.seen_batch.shrink();
        self.vals = Vec::new();
        self.tmp = Vec::new();
    }
}

/// Count-matrix accumulator for one grouping attribute and all of its
/// still-active rating dimensions.
#[derive(Debug, Clone)]
pub struct FamilyAccumulator {
    /// Entity side of the grouping attribute.
    pub entity: Entity,
    /// The grouping attribute.
    pub attr: AttrId,
    /// Still-active dimensions (candidates not yet pruned/accepted).
    dims: Vec<DimId>,
    /// `counts[dim_pos][value.index() * scale + (score − 1)]`.
    counts: Vec<Vec<u64>>,
    value_count: usize,
    scale: usize,
    records_processed: u64,
}

impl FamilyAccumulator {
    /// Creates an accumulator for `(entity, attr)` over `dims`.
    pub fn new(db: &SubjectiveDb, entity: Entity, attr: AttrId, dims: Vec<DimId>) -> Self {
        let value_count = db.table(entity).dictionary(attr).len();
        let scale = db.ratings().scale() as usize;
        let counts = vec![vec![0u64; value_count * scale]; dims.len()];
        Self {
            entity,
            attr,
            dims,
            counts,
            value_count,
            scale,
            records_processed: 0,
        }
    }

    /// The active dimensions.
    pub fn dims(&self) -> &[DimId] {
        &self.dims
    }

    /// Whether every dimension was pruned away.
    pub fn is_exhausted(&self) -> bool {
        self.dims.is_empty()
    }

    /// Records scanned so far (phase fractions are cumulative).
    pub fn records_processed(&self) -> u64 {
        self.records_processed
    }

    /// Map key for one active dimension position.
    pub fn key_at(&self, dim_pos: usize) -> MapKey {
        MapKey::new(self.entity, self.attr, self.dims[dim_pos])
    }

    /// Drops a dimension from the family (its candidate was pruned or
    /// accepted-and-frozen). No-op if absent.
    pub fn remove_dim(&mut self, dim: DimId) {
        if let Some(pos) = self.dims.iter().position(|&d| d == dim) {
            self.dims.remove(pos);
            self.counts.remove(pos);
        }
    }

    /// Scans one phase fraction given as a record-id slice — the shared
    /// multi-aggregate GroupBy.
    ///
    /// Compatibility wrapper over the columnar kernel: it gathers a
    /// throwaway [`ScanBlock`] for `phase` and feeds it to
    /// [`update_block`](Self::update_block). Hot paths should gather once
    /// per phase with a long-lived [`ScanScratch`] and call `update_block`
    /// directly so the gather is shared by every family.
    pub fn update(&mut self, db: &SubjectiveDb, phase: &[RecordId]) {
        if self.dims.is_empty() || phase.is_empty() {
            return;
        }
        let group = RatingGroup::with_order(phase.to_vec());
        let mut scratch = ScanScratch::new();
        scratch.prepare_group(db.ratings(), &group);
        let dims = self.dims.clone();
        let block = scratch.gather_phase(db.ratings(), &group, 0..phase.len(), &dims);
        self.update_block(db, &block);
    }

    /// Scans one gathered block, updating every active dimension. This is
    /// the hot path: entity rows and score buffers come pre-gathered, so
    /// the kernels only stream over contiguous slices.
    pub fn update_block(&mut self, db: &SubjectiveDb, block: &ScanBlock<'_>) {
        if self.dims.is_empty() || block.is_empty() {
            return;
        }
        let mut counts = std::mem::take(&mut self.counts);
        self.accumulate_block(db, block, 0..block.len(), &mut counts);
        self.counts = counts;
        self.records_processed += block.len() as u64;
    }

    /// Runs the count kernels over `range` of `block`, accumulating into
    /// `counts` (same shape as this family's matrices, see
    /// [`fresh_counts`](Self::fresh_counts)). Takes `&self` so parallel
    /// workers can each accumulate a chunk into a private matrix; the
    /// caller merges with [`merge_counts`](Self::merge_counts) and advances
    /// the record counter with
    /// [`note_records_scanned`](Self::note_records_scanned).
    ///
    /// Two kernels, chosen by the grouping column's layout: a branch-free
    /// one-add-per-record fast path for atomic (single-valued) attributes,
    /// and the CSR path for multi-valued ones.
    ///
    /// # Panics
    /// Panics if an active dimension was not gathered into `block`.
    pub fn accumulate_block(
        &self,
        db: &SubjectiveDb,
        block: &ScanBlock<'_>,
        range: Range<usize>,
        counts: &mut [Vec<u64>],
    ) {
        debug_assert_eq!(counts.len(), self.dims.len());
        if self.dims.is_empty() || range.is_empty() {
            return;
        }
        let column = db.table(self.entity).column(self.attr);
        let rows = &block.entity_rows(self.entity)[range.clone()];
        let scale = self.scale;
        for (dim_pos, &dim) in self.dims.iter().enumerate() {
            let scores = &block
                .scores_for(dim)
                .expect("active dimension not gathered into block")[range.clone()];
            let counts = &mut counts[dim_pos];
            match column {
                Column::Single(_) => {
                    let codes = column
                        .single_codes()
                        .expect("single column must expose codes");
                    kernels::hist_single(kernels::active(), rows, scores, codes, scale, counts);
                }
                Column::Multi(csr) => {
                    for (&row, &score) in rows.iter().zip(scores) {
                        let base = score as usize - 1;
                        for &v in csr.values(row) {
                            counts[v.index() * scale + base] += 1;
                        }
                    }
                }
            }
        }
    }

    /// A zeroed count matrix of this family's shape, for parallel workers'
    /// private accumulation.
    pub fn fresh_counts(&self) -> Vec<Vec<u64>> {
        vec![vec![0u64; self.value_count * self.scale]; self.dims.len()]
    }

    /// Adds a worker's private count matrix into the family's. Addition on
    /// `u64` is exact and commutative, so the merge order cannot change the
    /// totals.
    pub fn merge_counts(&mut self, partial: &[Vec<u64>]) {
        assert_eq!(partial.len(), self.counts.len(), "count shape mismatch");
        for (dst, src) in self.counts.iter_mut().zip(partial) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Advances the scanned-record counter after the caller merged all
    /// chunk results of a phase.
    pub fn note_records_scanned(&mut self, n: u64) {
        self.records_processed += n;
    }

    /// The per-subgroup distributions (non-empty only) and the overall
    /// distribution for one active dimension.
    pub fn distributions(
        &self,
        dim_pos: usize,
    ) -> (
        Vec<(subdex_store::ValueId, RatingDistribution)>,
        RatingDistribution,
    ) {
        let counts = &self.counts[dim_pos];
        let mut subs = Vec::new();
        let mut overall = RatingDistribution::new(self.scale);
        for v in 0..self.value_count {
            let slice = &counts[v * self.scale..(v + 1) * self.scale];
            if slice.iter().all(|&c| c == 0) {
                continue;
            }
            let dist = RatingDistribution::from_counts(slice.to_vec());
            overall.merge(&dist);
            subs.push((subdex_store::ValueId(v as u32), dist));
        }
        (subs, overall)
    }

    /// Raw criterion scores for one active dimension, given the
    /// distributions of previously displayed maps (for global peculiarity).
    pub fn raw_scores(&self, dim_pos: usize, seen: &[RatingDistribution]) -> RawScores {
        self.raw_scores_with(dim_pos, seen, interest::PeculiarityMeasure::TotalVariation)
    }

    /// [`Self::raw_scores`] with a configurable peculiarity distance.
    pub fn raw_scores_with(
        &self,
        dim_pos: usize,
        seen: &[RatingDistribution],
        measure: interest::PeculiarityMeasure,
    ) -> RawScores {
        self.raw_scores_pooled(dim_pos, seen, measure, &mut EstimateScratch::new())
    }

    /// [`Self::raw_scores_with`] over caller-pooled buffers: byte-identical
    /// scores, but the subgroup and overall distributions are written into
    /// `scratch` instead of freshly allocated. Only capacity is recycled —
    /// every distribution is refilled from the count matrix on each call.
    pub fn raw_scores_pooled(
        &self,
        dim_pos: usize,
        seen: &[RatingDistribution],
        measure: interest::PeculiarityMeasure,
        scratch: &mut EstimateScratch,
    ) -> RawScores {
        let counts = &self.counts[dim_pos];
        scratch.overall.reset(self.scale);
        // Pass 1: count the live (non-empty) subgroup rows and fold them
        // into the overall distribution (exact u64 adds, order-free).
        let mut live = 0usize;
        for v in 0..self.value_count {
            let slice = &counts[v * self.scale..(v + 1) * self.scale];
            if slice.iter().all(|&c| c == 0) {
                continue;
            }
            scratch.overall.merge_counts(slice);
            live += 1;
        }
        // Pass 2: stage the live rows score-major, one SIMD lane each.
        scratch.batch.begin(live, self.scale);
        let mut lane = 0usize;
        for v in 0..self.value_count {
            let slice = &counts[v * self.scale..(v + 1) * self.scale];
            if slice.iter().all(|&c| c == 0) {
                continue;
            }
            scratch.batch.set_lane(lane, slice);
            lane += 1;
        }

        // Agreement: batched mean/SD, then the scalar fold in lane order.
        subdex_stats::distribution::mean_sd_rows(
            &scratch.batch,
            &mut scratch.tmp,
            &mut scratch.vals,
        );
        let agreement = interest::agreement_from_sds(&scratch.vals);

        // Self peculiarity: every live subgroup against the overall
        // distribution, max-aggregated in lane order.
        measure.distance_rows(
            &scratch.batch,
            &scratch.overall,
            &mut scratch.tmp,
            &mut scratch.vals,
        );
        let self_peculiarity = interest::max_distance(&scratch.vals);

        // Global peculiarity: the overall distribution against every seen
        // map — one lane per seen distribution, same reference.
        scratch
            .seen_batch
            .stage(self.scale, seen.iter().map(|d| d.counts()));
        measure.distance_rows(
            &scratch.seen_batch,
            &scratch.overall,
            &mut scratch.tmp,
            &mut scratch.vals,
        );
        let global_peculiarity = interest::max_distance(&scratch.vals);

        RawScores {
            conciseness: interest::conciseness_raw(self.records_processed, live),
            agreement,
            self_peculiarity,
            global_peculiarity,
        }
    }

    /// Materializes the rating map of one active dimension from the counts
    /// accumulated so far.
    pub fn to_rating_map(&self, dim_pos: usize) -> RatingMap {
        let (subs, _) = self.distributions(dim_pos);
        let subgroups = subs
            .into_iter()
            .map(|(value, distribution)| Subgroup {
                value,
                distribution,
                avg_score: None,
            })
            .collect();
        RatingMap::from_subgroups(self.key_at(dim_pos), subgroups, self.scale)
    }
}

/// Enumerates the candidate map keys for a query: every (entity, attribute)
/// not pinned to a single value by the query, crossed with every rating
/// dimension. Attributes the query constrains are excluded — grouping by a
/// pinned attribute yields a single subgroup, which carries no information
/// yet would dominate conciseness.
pub fn candidate_keys(
    db: &SubjectiveDb,
    query: &subdex_store::SelectionQuery,
) -> Vec<(Entity, AttrId, Vec<DimId>)> {
    let dims: Vec<DimId> = db.ratings().dims().collect();
    let mut out = Vec::new();
    for entity in [Entity::Reviewer, Entity::Item] {
        let table = db.table(entity);
        for attr in table.schema().attr_ids() {
            if query.constrains(entity, attr) {
                continue;
            }
            if table.dictionary(attr).len() < 2 {
                continue; // a single-valued attribute cannot partition
            }
            out.push((entity, attr, dims.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{Cell, SelectionQuery, Value};

    // A tiny deterministic database: 4 reviewers × gender, 4 items × city,
    // 8 rating records on 2 dimensions.
    mod fixture {
        use super::*;
        pub fn build() -> SubjectiveDb {
            let mut us = subdex_store::Schema::new();
            us.add("gender", false);
            let mut ub = subdex_store::table::EntityTableBuilder::new(us);
            ub.push_row(vec![Cell::from("F")]);
            ub.push_row(vec![Cell::from("M")]);
            ub.push_row(vec![Cell::from("F")]);
            ub.push_row(vec![Cell::from("M")]);

            let mut is = subdex_store::Schema::new();
            is.add("city", false);
            is.add("tags", true);
            let mut ib = subdex_store::table::EntityTableBuilder::new(is);
            ib.push_row(vec![
                Cell::from("NYC"),
                Cell::Many(vec![Value::str("a"), Value::str("b")]),
            ]);
            ib.push_row(vec![Cell::from("NYC"), Cell::Many(vec![Value::str("a")])]);
            ib.push_row(vec![Cell::from("SF"), Cell::Many(vec![Value::str("b")])]);
            ib.push_row(vec![Cell::from("SF"), Cell::Many(vec![])]);

            let mut rb = subdex_store::ratings::RatingTableBuilder::new(
                vec!["overall".to_owned(), "food".to_owned()],
                5,
            );
            // reviewer, item, [overall, food]
            rb.push(0, 0, &[5, 4]);
            rb.push(0, 2, &[1, 2]);
            rb.push(1, 1, &[4, 4]);
            rb.push(1, 3, &[2, 1]);
            rb.push(2, 0, &[5, 5]);
            rb.push(2, 3, &[3, 3]);
            rb.push(3, 2, &[1, 1]);
            rb.push(3, 1, &[4, 5]);
            SubjectiveDb::new(ub.build(), ib.build(), rb.build(4, 4))
        }
    }

    #[test]
    fn update_accumulates_counts() {
        let db = fixture::build();
        let city = db.items().schema().attr_by_name("city").unwrap();
        let mut fam = FamilyAccumulator::new(&db, Entity::Item, city, vec![DimId(0), DimId(1)]);
        let recs: Vec<u32> = (0..8).collect();
        fam.update(&db, &recs);
        assert_eq!(fam.records_processed(), 8);
        let (subs, overall) = fam.distributions(0);
        assert_eq!(subs.len(), 2, "NYC and SF");
        assert_eq!(overall.total(), 8);
        // NYC (value 0): records 0,2,4,7 → overall scores 5,4,5,4.
        let nyc = &subs.iter().find(|(v, _)| v.0 == 0).unwrap().1;
        assert_eq!(nyc.counts(), &[0, 0, 0, 2, 2]);
    }

    #[test]
    fn incremental_phases_match_single_scan() {
        let db = fixture::build();
        let city = db.items().schema().attr_by_name("city").unwrap();
        let recs: Vec<u32> = (0..8).collect();

        let mut whole = FamilyAccumulator::new(&db, Entity::Item, city, vec![DimId(0)]);
        whole.update(&db, &recs);

        let mut phased = FamilyAccumulator::new(&db, Entity::Item, city, vec![DimId(0)]);
        phased.update(&db, &recs[..3]);
        phased.update(&db, &recs[3..5]);
        phased.update(&db, &recs[5..]);

        assert_eq!(whole.distributions(0), phased.distributions(0));
        assert_eq!(whole.records_processed(), phased.records_processed());
    }

    #[test]
    fn chunked_accumulation_matches_whole_block() {
        // Chunk + merge (the two-level parallel path) must equal one
        // update_block call, for both the atomic and the CSR kernel.
        let db = fixture::build();
        let group = RatingGroup::with_order((0..8).collect());
        let mut scratch = ScanScratch::new();
        scratch.prepare_group(db.ratings(), &group);
        for attr_name in ["city", "tags"] {
            let attr = db.items().schema().attr_by_name(attr_name).unwrap();
            let dims = vec![DimId(0), DimId(1)];
            let block = scratch.gather_phase(db.ratings(), &group, 0..8, &dims);

            let mut whole = FamilyAccumulator::new(&db, Entity::Item, attr, dims.clone());
            whole.update_block(&db, &block);

            let mut chunked = FamilyAccumulator::new(&db, Entity::Item, attr, dims.clone());
            for range in [0..3, 3..5, 5..8] {
                let mut partial = chunked.fresh_counts();
                chunked.accumulate_block(&db, &block, range, &mut partial);
                chunked.merge_counts(&partial);
            }
            chunked.note_records_scanned(8);

            assert_eq!(whole.distributions(0), chunked.distributions(0));
            assert_eq!(whole.distributions(1), chunked.distributions(1));
            assert_eq!(whole.records_processed(), chunked.records_processed());
        }
    }

    #[test]
    fn multi_valued_grouping_counts_per_value() {
        let db = fixture::build();
        let tags = db.items().schema().attr_by_name("tags").unwrap();
        let mut fam = FamilyAccumulator::new(&db, Entity::Item, tags, vec![DimId(0)]);
        fam.update(&db, &(0..8).collect::<Vec<_>>());
        let (subs, overall) = fam.distributions(0);
        // Item 0 carries {a, b}: its records count under both tags.
        assert_eq!(subs.len(), 2);
        // Records on items with ≥1 tag: items 0 (recs 0,4), 1 (recs 2,7),
        // 2 (recs 1,6). Item 0 double-counts → overall total = 6 + 2 = 8.
        assert_eq!(overall.total(), 8);
    }

    #[test]
    fn remove_dim_stops_tracking() {
        let db = fixture::build();
        let city = db.items().schema().attr_by_name("city").unwrap();
        let mut fam = FamilyAccumulator::new(&db, Entity::Item, city, vec![DimId(0), DimId(1)]);
        fam.remove_dim(DimId(0));
        assert_eq!(fam.dims(), &[DimId(1)]);
        assert!(!fam.is_exhausted());
        fam.remove_dim(DimId(1));
        assert!(fam.is_exhausted());
        fam.remove_dim(DimId(1)); // idempotent
        fam.update(&db, &[0, 1]); // no-op, must not panic
        assert_eq!(fam.records_processed(), 0);
    }

    #[test]
    fn raw_scores_are_finite() {
        let db = fixture::build();
        let gender = db.reviewers().schema().attr_by_name("gender").unwrap();
        let mut fam = FamilyAccumulator::new(&db, Entity::Reviewer, gender, vec![DimId(1)]);
        fam.update(&db, &(0..8).collect::<Vec<_>>());
        let raw = fam.raw_scores(0, &[]);
        assert!(raw.conciseness > 0.0 && raw.conciseness.is_finite());
        assert!(raw.agreement > 0.0 && raw.agreement <= 1.0);
        assert!((0.0..=1.0).contains(&raw.self_peculiarity));
        assert_eq!(raw.global_peculiarity, 0.0, "nothing seen yet");
    }

    #[test]
    fn pooled_estimation_matches_fresh_scratch() {
        // One scratch reused across families, dims, and repeated calls must
        // give the same scores as a throwaway scratch every time — stale
        // distributions beyond the live prefix must never leak in.
        let db = fixture::build();
        let seen = vec![RatingDistribution::from_counts(vec![4, 1, 0, 0, 3])];
        let mut scratch = EstimateScratch::new();
        for attr_name in ["city", "tags"] {
            let attr = db.items().schema().attr_by_name(attr_name).unwrap();
            let mut fam = FamilyAccumulator::new(&db, Entity::Item, attr, vec![DimId(0), DimId(1)]);
            fam.update(&db, &(0..8).collect::<Vec<_>>());
            for dim_pos in 0..2 {
                for measure in [
                    interest::PeculiarityMeasure::TotalVariation,
                    interest::PeculiarityMeasure::KlDivergence,
                ] {
                    let fresh = fam.raw_scores_with(dim_pos, &seen, measure);
                    let pooled = fam.raw_scores_pooled(dim_pos, &seen, measure, &mut scratch);
                    assert_eq!(fresh, pooled, "{attr_name} dim {dim_pos}");
                }
            }
        }
    }

    #[test]
    fn to_rating_map_matches_distributions() {
        let db = fixture::build();
        let city = db.items().schema().attr_by_name("city").unwrap();
        let mut fam = FamilyAccumulator::new(&db, Entity::Item, city, vec![DimId(0)]);
        fam.update(&db, &(0..8).collect::<Vec<_>>());
        let map = fam.to_rating_map(0);
        assert_eq!(map.key, MapKey::new(Entity::Item, city, DimId(0)));
        assert_eq!(map.subgroup_count(), 2);
        assert!(
            map.top_subgroup().unwrap().avg_score.unwrap()
                >= map.bottom_subgroup().unwrap().avg_score.unwrap()
        );
    }

    #[test]
    fn candidate_keys_exclude_constrained_and_unary() {
        let db = fixture::build();
        let q = SelectionQuery::all();
        let keys = candidate_keys(&db, &q);
        // gender, city, tags — all binary+ → 3 families.
        assert_eq!(keys.len(), 3);
        assert!(keys.iter().all(|(_, _, dims)| dims.len() == 2));

        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let q2 = SelectionQuery::from_preds(vec![nyc]);
        let keys2 = candidate_keys(&db, &q2);
        assert_eq!(keys2.len(), 2, "city family excluded when pinned");
        assert!(keys2.iter().all(|(e, a, _)| !(*e == Entity::Item
            && *a == db.items().schema().attr_by_name("city").unwrap())));
    }
}
