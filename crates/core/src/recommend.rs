//! The Recommendation Builder (Section 4.3) and Problem 2.
//!
//! Candidate next-step operations are *small adjustments* to the current
//! query: they differ in at most one added attribute–value pair plus at most
//! one removed-or-changed existing pair (matching the paper's examples).
//! Additions are *anchored* on the displayed rating maps — drilling into a
//! map's extreme subgroups is precisely the adjustment the maps invite —
//! while removals are the roll-up operations the drill-down-only baselines
//! (SDD, QAGView) cannot express.
//!
//! Each candidate's utility (Equation 2) is the sum of DW utilities of the
//! `k` rating maps it would lead to, so ranking operations and
//! recommending visualizations share one computation. Candidates are
//! evaluated concurrently, up to the number of available cores.

use crate::accumulator::EstimateScratch;
use crate::generator::{self, CriterionNormalizers, GeneratorConfig, SeenContext};
use crate::mapdist::{DistanceEngine, SelectionStats};
use crate::ratingmap::ScoredRatingMap;
use crate::selector::{select_diverse_with, SelectScratch, SelectionStrategy};
use std::collections::HashSet;
use subdex_store::{
    AttrValue, Entity, GroupCache, GroupColumns, GroupRoute, RatingGroup, ScanScratch,
    SelectionQuery, SubjectiveDb,
};

/// One recommended next-step operation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The recommended query.
    pub query: SelectionQuery,
    /// Its utility `u(q, RM)` — the summed DW utility of the maps it
    /// yields (Equation 2).
    pub utility: f64,
    /// Size of the rating group the operation selects.
    pub group_size: usize,
    /// The `k` maps the operation would display (reused by the
    /// Fully-Automated mode so the next step needs no recomputation).
    pub maps: Vec<ScoredRatingMap>,
}

/// How candidate rating groups were materialized during one recommendation
/// (or engine-step) pass. `derived + walked + probed + cached +
/// skipped_empty` equals the number of groups the pass needed;
/// `records_filtered` counts ancestor rows the derivation path scanned
/// instead of re-walking the database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Materialization {
    /// Groups built by filtering an ancestor's gathered columns (one linear
    /// pass over ancestor rows; no adjacency walk, no re-gather).
    pub derived: u64,
    /// Groups built by the adjacency walk + column gather
    /// ([`GroupRoute::Walk`] / [`GroupRoute::Full`]).
    pub walked: u64,
    /// Groups built by the index-driven rating-column probe
    /// ([`GroupRoute::Probe`]).
    pub probed: u64,
    /// Groups served straight from the shared [`GroupCache`].
    pub cached: u64,
    /// Candidates skipped *before* any materialization because their index
    /// cardinality upper bound was zero.
    pub skipped_empty: u64,
    /// Ancestor rows examined by the derivation passes.
    pub records_filtered: u64,
}

impl Materialization {
    /// Accumulates another pass's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.derived += other.derived;
        self.walked += other.walked;
        self.probed += other.probed;
        self.cached += other.cached;
        self.skipped_empty += other.skipped_empty;
        self.records_filtered += other.records_filtered;
    }

    /// Total groups materialized (any path) plus skipped candidates.
    pub fn total(&self) -> u64 {
        self.derived + self.walked + self.probed + self.cached + self.skipped_empty
    }
}

/// One evaluation worker's reusable buffers: a phase-scan gather set, the
/// per-phase re-estimation scratch, and a diverse-selection scratch. Each
/// candidate a worker evaluates runs the full generate → select pipeline
/// over these.
#[derive(Debug, Default)]
pub struct EvalScratch {
    scan: ScanScratch,
    est: EstimateScratch,
    select: SelectScratch,
}

impl EvalScratch {
    /// Heap bytes currently held across the worker's pooled buffers.
    pub fn resident_bytes(&self) -> usize {
        self.scan.resident_bytes() + self.est.resident_bytes() + self.select.resident_bytes()
    }

    /// Heap bytes the worker's most recent evaluation actually needed.
    pub fn used_bytes(&self) -> usize {
        self.scan.used_bytes() + self.est.used_bytes() + self.select.used_bytes()
    }

    /// Releases all retained capacity.
    pub fn shrink(&mut self) {
        self.scan.shrink();
        self.est.shrink();
        self.select.shrink();
    }
}

/// Reusable buffers for one recommendation pass: the candidate-query
/// vector plus one [`EvalScratch`] per evaluation worker. Pooled inside
/// [`crate::plan::ExecContext`] so a session's steps 2..n re-use the
/// grown-to-size buffers; the worker vector is sized lazily to the thread
/// count actually used.
#[derive(Debug, Default)]
pub struct RecommendScratch {
    workers: Vec<EvalScratch>,
    candidates: Vec<SelectionQuery>,
}

impl RecommendScratch {
    /// Heap bytes currently held across all workers' pooled buffers (the
    /// candidate-query vector is counted by slot; per-query predicate heap
    /// is negligible next to the evaluation buffers).
    pub fn resident_bytes(&self) -> usize {
        self.workers.capacity() * std::mem::size_of::<EvalScratch>()
            + self
                .workers
                .iter()
                .map(EvalScratch::resident_bytes)
                .sum::<usize>()
            + self.candidates.capacity() * std::mem::size_of::<SelectionQuery>()
    }

    /// Heap bytes the most recent pass actually needed (length, not
    /// capacity) — the demand signal of the executor's high-water trim.
    pub fn used_bytes(&self) -> usize {
        self.workers.len() * std::mem::size_of::<EvalScratch>()
            + self
                .workers
                .iter()
                .map(EvalScratch::used_bytes)
                .sum::<usize>()
            + self.candidates.len() * std::mem::size_of::<SelectionQuery>()
    }

    /// Releases all retained capacity (the high-water shrink hook; see
    /// `ExecContext` in the plan module).
    pub fn shrink(&mut self) {
        self.workers = Vec::new();
        self.candidates = Vec::new();
    }
}

/// Candidate-enumeration and evaluation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecommendConfig {
    /// How many recommendations to return (`o`).
    pub o: usize,
    /// Number of rating maps per step (`k`).
    pub k: usize,
    /// Final-selection strategy (utility-only / GMM hybrid / diversity-only).
    pub selection: SelectionStrategy,
    /// Hard cap on evaluated candidates.
    pub max_candidates: usize,
    /// Alternative values tried per changed predicate.
    pub change_fanout: usize,
    /// Evaluate candidates on multiple threads.
    pub parallel: bool,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
    /// Derive add-predicate candidate groups from the parent's columns
    /// instead of re-walking the database (results are byte-identical
    /// either way; disable only to measure the walk path).
    pub derive_candidates: bool,
}

impl Default for RecommendConfig {
    fn default() -> Self {
        Self {
            o: 3,
            k: 3,
            selection: SelectionStrategy::Hybrid { l: 3 },
            max_candidates: 48,
            change_fanout: 2,
            parallel: true,
            threads: 0,
            derive_candidates: true,
        }
    }
}

/// Enumerates candidate operations for `query` given the displayed maps.
///
/// Edit grammar (diffs vs. `query`): `{add}`, `{remove}`, `{change}`,
/// `{add, remove}`, `{add, change}` — at most one addition and at most one
/// removal-or-change, mirroring Section 4.3. Duplicates and the identity
/// operation are dropped; the list is capped at `max_candidates` with
/// single-edit operations prioritized.
pub fn enumerate_candidates(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    displayed: &[ScoredRatingMap],
    cfg: &RecommendConfig,
) -> Vec<SelectionQuery> {
    let mut out = Vec::new();
    enumerate_candidates_into(db, query, displayed, cfg, &mut out);
    out
}

/// [`enumerate_candidates`] into a caller-pooled vector (cleared first).
pub fn enumerate_candidates_into(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    displayed: &[ScoredRatingMap],
    cfg: &RecommendConfig,
    out: &mut Vec<SelectionQuery>,
) {
    out.clear();
    // Additions: drill into extreme subgroups of each displayed map.
    let mut adds: Vec<AttrValue> = Vec::new();
    for sm in displayed {
        let key = sm.map.key;
        for sg in [sm.map.top_subgroup(), sm.map.bottom_subgroup()]
            .into_iter()
            .flatten()
        {
            let p = AttrValue::new(key.entity, key.attr, sg.value);
            if !query.contains(&p) && !adds.contains(&p) {
                adds.push(p);
            }
        }
    }

    // Removals: any existing predicate (roll-up).
    let removes: Vec<AttrValue> = query.preds().to_vec();

    // Changes: swap a predicate's value for the most selective siblings.
    let mut changes: Vec<(AttrValue, subdex_store::ValueId)> = Vec::new();
    for p in query.preds() {
        let index = db.index(p.entity);
        let mut siblings: Vec<(usize, subdex_store::ValueId)> = db
            .values_of(p.entity, p.attr)
            .into_iter()
            .filter(|&v| v != p.value)
            .map(|v| (index.cardinality(p.attr, v), v))
            .filter(|&(n, _)| n > 0)
            .collect();
        siblings.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
        for (_, v) in siblings.into_iter().take(cfg.change_fanout) {
            changes.push((*p, v));
        }
    }

    // Build per-kind lists, then interleave under the cap so every
    // operation class survives: a budget spent entirely on drill-downs
    // could never recommend the roll-ups SubDEx is distinguished by
    // (Table 4's whole point). Deduplication is hash-based throughout:
    // combo enumeration is quadratic in the edit lists, so linear scans
    // here would make the whole enumeration O(n²) in the candidate count.
    let mut drill: Vec<SelectionQuery> = Vec::new();
    let mut rollup: Vec<SelectionQuery> = Vec::new();
    let mut change_ops: Vec<SelectionQuery> = Vec::new();
    let mut combos: Vec<SelectionQuery> = Vec::new();
    let mut per_kind_seen: [HashSet<SelectionQuery>; 4] = Default::default();
    let push =
        |q: SelectionQuery, out: &mut Vec<SelectionQuery>, seen: &mut HashSet<SelectionQuery>| {
            if &q != query && seen.insert(q.clone()) {
                out.push(q);
            }
        };

    let [seen_drill, seen_rollup, seen_change, seen_combo] = &mut per_kind_seen;
    for &a in &adds {
        push(query.with_added(a), &mut drill, seen_drill);
    }
    for r in &removes {
        push(query.with_removed(r), &mut rollup, seen_rollup);
    }
    for (p, v) in &changes {
        if let Some(q) = query.with_changed(p.entity, p.attr, *v) {
            push(q, &mut change_ops, seen_change);
        }
    }
    'outer: for &a in &adds {
        for r in &removes {
            if r.entity == a.entity && r.attr == a.attr {
                continue; // that combination is a change, handled above
            }
            push(query.with_removed(r).with_added(a), &mut combos, seen_combo);
            if combos.len() >= cfg.max_candidates {
                break 'outer;
            }
        }
        for (p, v) in &changes {
            if p.entity == a.entity && p.attr == a.attr {
                continue;
            }
            if let Some(q) = query.with_changed(p.entity, p.attr, *v) {
                push(q.with_added(a), &mut combos, seen_combo);
            }
            if combos.len() >= cfg.max_candidates {
                break 'outer;
            }
        }
    }

    // Round-robin across kinds until the cap: drill-downs, roll-ups,
    // changes, then combinations.
    let mut emitted: HashSet<SelectionQuery> = HashSet::new();
    let mut lists = [
        drill.into_iter(),
        rollup.into_iter(),
        change_ops.into_iter(),
        combos.into_iter(),
    ];
    let mut exhausted = false;
    while out.len() < cfg.max_candidates && !exhausted {
        exhausted = true;
        for list in &mut lists {
            if out.len() >= cfg.max_candidates {
                break;
            }
            if let Some(q) = list.next() {
                exhausted = false;
                if emitted.insert(q.clone()) {
                    out.push(q);
                }
            }
        }
    }
}

/// Evaluates candidates and returns the top-`o` recommendations
/// (Problem 2). Candidates run concurrently when `cfg.parallel` — the
/// engine-level "recommendation builder in parallel" optimization whose
/// absence is the paper's *No-Parallelism* baseline.
///
/// When `cache` is given, candidate rating groups are looked up in the
/// shared [`GroupCache`] first; candidate queries recur heavily across
/// sessions (everyone exploring the same region is offered the same
/// drill-downs), which is where the cache earns most of its hits.
///
/// Thin wrapper over [`recommend_with_stats`] for callers that have no
/// parent columns at hand and do not need materialization counters.
#[allow(clippy::too_many_arguments)]
pub fn recommend(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    displayed: &[ScoredRatingMap],
    seen: &SeenContext,
    normalizers: &CriterionNormalizers,
    gen_cfg: &GeneratorConfig,
    cfg: &RecommendConfig,
    seed: u64,
    cache: Option<&GroupCache>,
) -> Vec<Recommendation> {
    recommend_with_stats(
        db,
        query,
        displayed,
        seen,
        normalizers,
        gen_cfg,
        cfg,
        seed,
        cache,
        None,
        None,
    )
    .0
}

/// [`recommend`] with the parent query's gathered columns and
/// materialization accounting.
///
/// `parent` must be the pre-shuffle [`GroupColumns`] of `query` itself (the
/// engine has them from the step's own group materialization). When given
/// and `cfg.derive_candidates` is set, every pure add-predicate candidate
/// is *derived* — one linear filter over the parent rows — instead of
/// re-walking the database; derived columns are inserted into `cache` so
/// sibling sessions benefit. Candidates whose index cardinality upper bound
/// (min posting-list size over their predicates) is zero are skipped before
/// any materialization. Output is byte-identical to the walk path for every
/// `(query, seed)` — that contract is what lets derived entries share the
/// cache.
///
/// `dist` configures the [`DistanceEngine`] behind each candidate's
/// diverse-selection preview; candidates already run one per worker thread,
/// so the engine is forced serial per candidate ([`DistanceEngine::serial`])
/// to avoid nested thread pools, while keeping its bounds and shared cache.
/// The returned [`SelectionStats`] aggregate those previews.
#[allow(clippy::too_many_arguments)]
pub fn recommend_with_stats(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    displayed: &[ScoredRatingMap],
    seen: &SeenContext,
    normalizers: &CriterionNormalizers,
    gen_cfg: &GeneratorConfig,
    cfg: &RecommendConfig,
    seed: u64,
    cache: Option<&GroupCache>,
    parent: Option<&GroupColumns>,
    dist: Option<&DistanceEngine>,
) -> (Vec<Recommendation>, Materialization, SelectionStats) {
    recommend_with_stats_in(
        db,
        query,
        displayed,
        seen,
        normalizers,
        gen_cfg,
        cfg,
        seed,
        cache,
        parent,
        dist,
        &mut RecommendScratch::default(),
    )
}

/// [`recommend_with_stats`] over a caller-pooled [`RecommendScratch`]:
/// candidate vectors, per-worker gather buffers, and per-worker selection
/// scratch are re-used across calls instead of reallocated. Output is
/// byte-identical to the allocating path — the scratch recycles
/// containers, never values.
#[allow(clippy::too_many_arguments)]
pub fn recommend_with_stats_in(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    displayed: &[ScoredRatingMap],
    seen: &SeenContext,
    normalizers: &CriterionNormalizers,
    gen_cfg: &GeneratorConfig,
    cfg: &RecommendConfig,
    seed: u64,
    cache: Option<&GroupCache>,
    parent: Option<&GroupColumns>,
    dist: Option<&DistanceEngine>,
    scratch: &mut RecommendScratch,
) -> (Vec<Recommendation>, Materialization, SelectionStats) {
    let RecommendScratch {
        workers,
        candidates,
    } = scratch;
    enumerate_candidates_into(db, query, displayed, cfg, candidates);
    if candidates.is_empty() {
        return (
            Vec::new(),
            Materialization::default(),
            SelectionStats::default(),
        );
    }

    // Each candidate is evaluated inside an (optionally) already-parallel
    // worker, so the per-candidate selection runs the engine serially while
    // keeping its bounds setting and shared cache.
    let dist_engine = match dist {
        Some(engine) => engine.serial(),
        None => DistanceEngine::new(),
    };
    let dist_engine = &dist_engine;

    let evaluate = |q: &SelectionQuery,
                    es: &mut EvalScratch,
                    stats: &mut Materialization,
                    sel_stats: &mut SelectionStats|
     -> Option<Recommendation> {
        // Provably-empty candidates (some predicate has an empty posting
        // list) are dropped from the index alone, before any group is
        // built or the generator runs.
        if db.index_cardinality_bound(q) == 0 {
            stats.skipped_empty += 1;
            return None;
        }
        let group_seed = seed ^ fxhash(q);
        // A pure drill-down selects a strict subset of an ancestor group:
        // filter that ancestor's columns instead of re-walking. Sources, in
        // preference order: the displayed parent's columns against the full
        // added-predicate set (one or many conjuncts), then any cached
        // ancestor one predicate away (a non-inserting `peek` — cheap
        // window-shopping that never evicts to speculate).
        enum Derive<'d> {
            Parent(&'d GroupColumns, Vec<AttrValue>),
            Ancestor(std::sync::Arc<GroupColumns>, AttrValue),
        }
        let derivable = if cfg.derive_candidates {
            parent
                .and_then(|cols| query.added_preds(q).map(|ps| Derive::Parent(cols, ps)))
                .or_else(|| {
                    let c = cache?;
                    for p in q.preds() {
                        let mut anc = q.clone();
                        anc.remove(p);
                        if let Some(cols) = c.peek(&anc, db.epoch()) {
                            return Some(Derive::Ancestor(cols, *p));
                        }
                    }
                    None
                })
        } else {
            None
        };
        let derive = |d: &Derive<'_>, stats: &mut Materialization| -> GroupColumns {
            match d {
                Derive::Parent(cols, ps) => {
                    stats.records_filtered += cols.len() as u64;
                    db.derive_refinement_columns_multi(cols, ps)
                }
                Derive::Ancestor(cols, p) => {
                    stats.records_filtered += cols.len() as u64;
                    db.derive_refinement_columns_multi(cols, std::slice::from_ref(p))
                }
            }
        };
        let group = match (cache, derivable) {
            (Some(c), Some(d)) => {
                let mut computed = false;
                let arc = c.get_or_insert_with(q, db.epoch(), || {
                    computed = true;
                    derive(&d, stats)
                });
                if computed {
                    stats.derived += 1;
                } else {
                    stats.cached += 1;
                }
                RatingGroup::from_columns(&arc, group_seed)
            }
            (Some(c), None) => {
                let mut computed = false;
                let mut route = GroupRoute::Walk;
                let arc = c.get_or_insert_with(q, db.epoch(), || {
                    computed = true;
                    let (cols, r) = db.collect_group_columns_routed(q);
                    route = r;
                    cols
                });
                if !computed {
                    stats.cached += 1;
                } else if route == GroupRoute::Probe {
                    stats.probed += 1;
                } else {
                    stats.walked += 1;
                }
                RatingGroup::from_columns(&arc, group_seed)
            }
            (None, Some(d)) => {
                stats.derived += 1;
                RatingGroup::from_columns(&derive(&d, stats), group_seed)
            }
            (None, None) => {
                let (cols, route) = db.collect_group_columns_routed(q);
                if route == GroupRoute::Probe {
                    stats.probed += 1;
                } else {
                    stats.walked += 1;
                }
                RatingGroup::from_columns(&cols, group_seed)
            }
        };
        let mut norms = normalizers.clone();
        let out = generator::generate_pooled(
            db,
            &group,
            q,
            seen,
            &mut norms,
            gen_cfg,
            &mut es.scan,
            &mut es.est,
        );
        let pool_size = cfg.selection.pool_size(cfg.k, out.pool.len());
        let pool: Vec<ScoredRatingMap> = out.pool.into_iter().take(pool_size.max(cfg.k)).collect();
        let (maps, sel) =
            select_diverse_with(pool, cfg.k, cfg.selection, dist_engine, &mut es.select);
        sel_stats.merge(&sel);
        let utility = maps.iter().map(|m| m.dw_utility).sum();
        Some(Recommendation {
            query: q.clone(),
            utility,
            group_size: group.len(),
            maps,
        })
    };

    let threads = crate::parallel::resolve_threads(cfg.threads);

    let mut stats = Materialization::default();
    let mut sel_stats = SelectionStats::default();
    let mut recs: Vec<Recommendation> = if cfg.parallel && threads > 1 && candidates.len() > 1 {
        let chunk = candidates.len().div_ceil(threads);
        let spawned = candidates.len().div_ceil(chunk);
        if workers.len() < spawned {
            workers.resize_with(spawned, EvalScratch::default);
        }
        let evaluate = &evaluate;
        // One pooled scratch + one stats block per worker slot, produced on
        // the persistent task pool; `run` hands the tuples back in slot
        // order, preserving the deterministic worker-order merge.
        let scratch = crate::parallel::DisjointSlots::new(&mut workers[..spawned]);
        let results: Vec<(Vec<Recommendation>, Materialization, SelectionStats)> =
            crate::parallel::task_pool().run(spawned, |w| {
                // Safety: worker slot `w` owns candidate chunk `w` and
                // scratch lane `w` exclusively.
                let es = unsafe { scratch.slot(w) };
                let slice = &candidates[w * chunk..((w + 1) * chunk).min(candidates.len())];
                let mut local = Materialization::default();
                let mut local_sel = SelectionStats::default();
                let recs = slice
                    .iter()
                    .filter_map(|q| evaluate(q, es, &mut local, &mut local_sel))
                    .collect::<Vec<_>>();
                (recs, local, local_sel)
            });
        results
            .into_iter()
            .flat_map(|(recs, local, local_sel)| {
                stats.merge(&local);
                sel_stats.merge(&local_sel);
                recs
            })
            .collect()
    } else {
        if workers.is_empty() {
            workers.push(EvalScratch::default());
        }
        let es = &mut workers[0];
        candidates
            .iter()
            .filter_map(|q| evaluate(q, es, &mut stats, &mut sel_stats))
            .collect()
    };

    recs.retain(|r| r.group_size > 0);
    recs.sort_by(|a, b| {
        b.utility
            .partial_cmp(&a.utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.query.preds().len().cmp(&b.query.preds().len()))
    });
    recs.truncate(cfg.o);
    (recs, stats, sel_stats)
}

/// Cheap deterministic hash of a query, used to vary rating-group shuffle
/// seeds across candidates without an RNG.
fn fxhash(q: &SelectionQuery) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in q.preds() {
        for v in [
            matches!(p.entity, Entity::Item) as u64,
            u64::from(p.attr.0),
            u64::from(p.value.0),
        ] {
            h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CriterionNormalizers, SeenContext};
    use crate::pruning::PruningStrategy;
    use subdex_stats::normalize::NormalizerKind;
    use subdex_store::{Cell, EntityTableBuilder, RatingTableBuilder, Schema, Value};

    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("gender", false);
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        for i in 0..12 {
            ub.push_row(vec![
                Cell::from(if i % 2 == 0 { "F" } else { "M" }),
                Cell::from(["young", "adult", "old"][i % 3]),
            ]);
        }
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        for i in 0..6 {
            ib.push_row(vec![Cell::from(if i < 3 { "NYC" } else { "SF" })]);
        }
        let mut rb = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        for r in 0..12u32 {
            for i in 0..6u32 {
                let overall = 1 + ((r * 7 + i * 3) % 5) as u8;
                let food = 1 + ((r + i) % 5) as u8;
                rb.push(r, i, &[overall, food]);
            }
        }
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(12, 6))
    }

    fn displayed(db: &SubjectiveDb, q: &SelectionQuery) -> Vec<ScoredRatingMap> {
        let group = db.rating_group(q, 3);
        let seen = SeenContext::new(2);
        let mut norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let out = generator::generate(db, &group, q, &seen, &mut norms, &cfg);
        out.pool.into_iter().take(3).collect()
    }

    #[test]
    fn candidates_respect_edit_budget() {
        let db = db();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let young = db
            .pred(Entity::Reviewer, "age", &Value::str("young"))
            .unwrap();
        let q = SelectionQuery::from_preds(vec![nyc, young]);
        let maps = displayed(&db, &q);
        let cands = enumerate_candidates(&db, &q, &maps, &RecommendConfig::default());
        assert!(!cands.is_empty());
        for c in &cands {
            assert_ne!(&c, &&q, "identity excluded");
            // add=1, remove=1, change=2, add+remove=2, add+change=3 diffs,
            // but "change" is one conceptual edit; the raw symmetric diff is
            // therefore at most 3.
            assert!(
                q.diff_size(c) <= 3,
                "diff too large: {}",
                db.describe_query(c)
            );
        }
        // Dedup holds.
        let unique: std::collections::HashSet<_> = cands.iter().collect();
        assert_eq!(unique.len(), cands.len());
    }

    #[test]
    fn candidates_include_rollups() {
        let db = db();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let q = SelectionQuery::from_preds(vec![nyc]);
        let maps = displayed(&db, &q);
        let cands = enumerate_candidates(&db, &q, &maps, &RecommendConfig::default());
        assert!(
            cands.iter().any(|c| c.is_empty()),
            "removing the only predicate (a roll-up) must be a candidate"
        );
        assert!(
            cands.iter().any(|c| c.len() > q.len()),
            "drill-downs must be candidates too"
        );
    }

    #[test]
    fn empty_query_offers_only_adds() {
        let db = db();
        let q = SelectionQuery::all();
        let maps = displayed(&db, &q);
        let cands = enumerate_candidates(&db, &q, &maps, &RecommendConfig::default());
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn recommend_ranks_by_utility_and_truncates() {
        let db = db();
        let q = SelectionQuery::all();
        let maps = displayed(&db, &q);
        let seen = SeenContext::new(2);
        let norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let gen_cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let cfg = RecommendConfig {
            o: 3,
            parallel: false,
            ..Default::default()
        };
        let recs = recommend(&db, &q, &maps, &seen, &norms, &gen_cfg, &cfg, 11, None);
        assert!(recs.len() <= 3 && !recs.is_empty());
        for w in recs.windows(2) {
            assert!(w[0].utility >= w[1].utility);
        }
        for r in &recs {
            assert!(r.group_size > 0);
            assert!(!r.maps.is_empty());
        }
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let db = db();
        let q = SelectionQuery::all();
        let maps = displayed(&db, &q);
        let seen = SeenContext::new(2);
        let norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let gen_cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let seq_cfg = RecommendConfig {
            parallel: false,
            ..Default::default()
        };
        let par_cfg = RecommendConfig {
            parallel: true,
            threads: 4,
            ..Default::default()
        };
        let a = recommend(&db, &q, &maps, &seen, &norms, &gen_cfg, &seq_cfg, 7, None);
        let b = recommend(&db, &q, &maps, &seen, &norms, &gen_cfg, &par_cfg, 7, None);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query, y.query);
            assert!((x.utility - y.utility).abs() < 1e-12);
        }
    }

    #[test]
    fn unsatisfiable_candidate_skipped_before_materialization() {
        use crate::ratingmap::{MapKey, RatingMap, Subgroup};
        use crate::utility::CriterionScores;
        use subdex_store::{AttrId, DimId, GroupCache, ValueId};

        let db = db();
        let q = SelectionQuery::all();
        // A displayed map whose extreme subgroup carries a value id beyond
        // the city dictionary: the add-candidate it anchors has an empty
        // posting list, so its cardinality bound is zero.
        let ghost = ScoredRatingMap {
            map: RatingMap::from_subgroups(
                MapKey::new(Entity::Item, AttrId(0), DimId(0)),
                vec![Subgroup {
                    value: ValueId(99),
                    distribution: subdex_stats::RatingDistribution::from_counts(vec![
                        3, 0, 0, 0, 0,
                    ]),
                    avg_score: None,
                }],
                5,
            ),
            utility: 1.0,
            dw_utility: 1.0,
            criteria: CriterionScores::default(),
        };
        let bad = q.with_added(AttrValue::new(Entity::Item, AttrId(0), ValueId(99)));
        let cands = enumerate_candidates(
            &db,
            &q,
            std::slice::from_ref(&ghost),
            &RecommendConfig::default(),
        );
        assert!(cands.contains(&bad), "the ghost drill-down is enumerated");

        let seen = SeenContext::new(2);
        let norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let gen_cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let cfg = RecommendConfig {
            parallel: false,
            ..Default::default()
        };
        let cache = GroupCache::new(1 << 20);
        let (recs, stats, _) = recommend_with_stats(
            &db,
            &q,
            &[ghost],
            &seen,
            &norms,
            &gen_cfg,
            &cfg,
            11,
            Some(&cache),
            None,
            None,
        );
        assert!(stats.skipped_empty >= 1, "{stats:?}");
        assert!(recs.iter().all(|r| r.query != bad));
        // Skipped before materialization: the empty group was never built,
        // so it cannot have been inserted into the shared cache.
        assert!(!cache.contains(&bad), "skip must precede materialization");
    }

    #[test]
    fn derived_candidates_match_walked_byte_for_byte() {
        let db = db();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let q = SelectionQuery::from_preds(vec![nyc]);
        let maps = displayed(&db, &q);
        let parent = db.collect_group_columns(&q);
        let seen = SeenContext::new(2);
        let norms = CriterionNormalizers::new(NormalizerKind::ZLogistic);
        let gen_cfg = GeneratorConfig {
            pruning: PruningStrategy::None,
            parallel: false,
            ..Default::default()
        };
        let fingerprint = |recs: &[Recommendation]| {
            recs.iter()
                .map(|r| (r.query.clone(), r.utility.to_bits(), r.group_size))
                .collect::<Vec<_>>()
        };
        let base_cfg = RecommendConfig {
            parallel: false,
            ..Default::default()
        };
        let walk_cfg = RecommendConfig {
            derive_candidates: false,
            ..base_cfg
        };
        let (walked, walked_stats, _) = recommend_with_stats(
            &db, &q, &maps, &seen, &norms, &gen_cfg, &walk_cfg, 7, None, None, None,
        );
        assert_eq!(walked_stats.derived, 0);
        assert!(walked_stats.walked > 0);

        let (derived, derived_stats, _) = recommend_with_stats(
            &db,
            &q,
            &maps,
            &seen,
            &norms,
            &gen_cfg,
            &base_cfg,
            7,
            None,
            Some(&parent),
            None,
        );
        assert!(derived_stats.derived > 0, "{derived_stats:?}");
        assert!(derived_stats.records_filtered > 0);
        assert_eq!(fingerprint(&derived), fingerprint(&walked));

        // With a shared cache the derived columns are inserted, so a second
        // identical pass is served from the cache — still byte-identical.
        use subdex_store::GroupCache;
        let cache = GroupCache::new(1 << 20);
        let (first, first_stats, _) = recommend_with_stats(
            &db,
            &q,
            &maps,
            &seen,
            &norms,
            &gen_cfg,
            &base_cfg,
            7,
            Some(&cache),
            Some(&parent),
            None,
        );
        assert!(first_stats.derived > 0);
        let (second, second_stats, _) = recommend_with_stats(
            &db,
            &q,
            &maps,
            &seen,
            &norms,
            &gen_cfg,
            &base_cfg,
            7,
            Some(&cache),
            Some(&parent),
            None,
        );
        assert_eq!(second_stats.derived, 0, "{second_stats:?}");
        assert!(second_stats.cached > 0);
        assert_eq!(fingerprint(&first), fingerprint(&walked));
        assert_eq!(fingerprint(&second), fingerprint(&walked));
    }

    #[test]
    fn no_displayed_maps_still_offers_edits_of_nonempty_query() {
        let db = db();
        let nyc = db.pred(Entity::Item, "city", &Value::str("NYC")).unwrap();
        let q = SelectionQuery::from_preds(vec![nyc]);
        let cands = enumerate_candidates(&db, &q, &[], &RecommendConfig::default());
        assert!(
            cands.iter().any(|c| c.is_empty()),
            "roll-up still available"
        );
    }
}
