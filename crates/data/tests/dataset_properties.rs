//! Property-based and structural tests of the dataset generators.

use proptest::prelude::*;
use subdex_data::{hotels, movielens, yelp, GenParams};
use subdex_store::Entity;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn generators_respect_requested_cardinalities(
        reviewers in 20usize..300,
        items in 10usize..120,
        ratings in 100usize..2000,
        seed in 0u64..1000,
    ) {
        for build in [movielens::dataset, yelp::dataset, hotels::dataset] {
            let ds = build(GenParams::new(reviewers, items, ratings, seed));
            let s = ds.db.stats();
            prop_assert_eq!(s.reviewer_count, reviewers);
            prop_assert_eq!(s.item_count, items);
            prop_assert_eq!(s.rating_count, ratings);
            // Referential integrity.
            for rec in 0..ds.db.ratings().len() as u32 {
                prop_assert!((ds.db.ratings().reviewer_of(rec) as usize) < reviewers);
                prop_assert!((ds.db.ratings().item_of(rec) as usize) < items);
            }
            // All scores in scale.
            for d in ds.db.ratings().dims() {
                for &s in ds.db.ratings().score_column(d) {
                    prop_assert!((1..=5).contains(&s));
                }
            }
        }
    }

    #[test]
    fn every_row_has_every_single_valued_attribute(seed in 0u64..100) {
        let ds = yelp::dataset(GenParams::new(100, 30, 500, seed));
        for entity in [Entity::Reviewer, Entity::Item] {
            let t = ds.db.table(entity);
            for (attr, def) in t.schema().iter() {
                for row in 0..t.len() as u32 {
                    let vals = t.values(row, attr);
                    if def.multi_valued {
                        // Multi-valued rows may carry several values but
                        // never duplicates.
                        let set: std::collections::HashSet<_> = vals.iter().collect();
                        prop_assert_eq!(set.len(), vals.len());
                    } else {
                        prop_assert_eq!(vals.len(), 1);
                    }
                }
            }
        }
    }

    #[test]
    fn insights_are_structurally_resolvable(seed in 0u64..50) {
        // Every planted insight must reference attributes/values/dims that
        // actually exist in the generated database, at any scale.
        for build in [movielens::dataset, yelp::dataset, hotels::dataset] {
            let ds = build(GenParams::new(150, 40, 800, seed));
            prop_assert_eq!(ds.insights.len(), 5);
            for ins in &ds.insights {
                let table = ds.db.table(ins.entity);
                let attr = table.schema().attr_by_name(&ins.attr_name);
                prop_assert!(attr.is_some(), "missing attr {}", ins.attr_name);
                prop_assert!(
                    ds.db.ratings().dim_by_name(&ins.dim_name).is_some(),
                    "missing dim {}",
                    ins.dim_name
                );
                // The value itself may legitimately be missing at tiny
                // scales (Zipf sampling can skip rare values); when it is
                // present, verification machinery must accept it.
                let _ = table.dictionary(attr.unwrap()).code(&ins.value);
            }
        }
    }
}

#[test]
fn different_seeds_differ_same_seed_agrees() {
    let a = yelp::dataset(GenParams::new(200, 50, 1000, 1));
    let b = yelp::dataset(GenParams::new(200, 50, 1000, 1));
    let c = yelp::dataset(GenParams::new(200, 50, 1000, 2));
    let col = |ds: &subdex_data::Dataset| {
        ds.db
            .ratings()
            .score_column(subdex_store::DimId(0))
            .to_vec()
    };
    assert_eq!(col(&a), col(&b));
    assert_ne!(col(&a), col(&c));
}

#[test]
fn planted_biases_shift_group_means() {
    // The Yelp "Japanese → highest service" bias must move the group mean
    // by a visible margin, not epsilon.
    let ds = yelp::dataset(GenParams::new(3000, 93, 30_000, 7));
    let db = &ds.db;
    let cuisine = db.items().schema().attr_by_name("cuisine").unwrap();
    let japanese = db
        .items()
        .dictionary(cuisine)
        .code(&subdex_store::Value::str("Japanese"))
        .unwrap();
    let service = db.ratings().dim_by_name("service").unwrap();
    let (mut sum_j, mut n_j, mut sum_o, mut n_o) = (0u64, 0u64, 0u64, 0u64);
    for rec in 0..db.ratings().len() as u32 {
        let item = db.ratings().item_of(rec);
        let s = u64::from(db.ratings().score(rec, service));
        if db.items().row_has(item, cuisine, japanese) {
            sum_j += s;
            n_j += 1;
        } else {
            sum_o += s;
            n_o += 1;
        }
    }
    let mean_j = sum_j as f64 / n_j as f64;
    let mean_o = sum_o as f64 / n_o as f64;
    assert!(
        mean_j - mean_o > 0.5,
        "bias should shift the mean: {mean_j:.2} vs {mean_o:.2}"
    );
}
