//! A VADER-style lexicon sentiment scorer.
//!
//! The paper obtained Yelp's food/service/ambiance scores by extracting,
//! for each rating dimension, all phrases containing the dimension's
//! keyword within a fixed window of 5 words, scoring each phrase with the
//! VADER sentiment measure \[34\], and averaging. This module implements
//! the scoring half: a valence lexicon with booster ("very", "extremely")
//! and negation ("not", "never") handling, normalized to `[-1, 1]` the way
//! VADER normalizes (score / sqrt(score² + α)).

/// Valence lexicon entries (word, valence). Magnitudes follow VADER's
/// −4..+4 convention.
const LEXICON: &[(&str, f64)] = &[
    ("amazing", 3.2),
    ("awesome", 3.1),
    ("excellent", 3.2),
    ("fantastic", 3.3),
    ("great", 2.8),
    ("good", 1.9),
    ("nice", 1.8),
    ("lovely", 2.6),
    ("delicious", 3.0),
    ("tasty", 2.4),
    ("fresh", 1.7),
    ("friendly", 2.2),
    ("attentive", 2.1),
    ("fast", 1.5),
    ("cozy", 2.0),
    ("charming", 2.4),
    ("clean", 1.8),
    ("comfortable", 2.1),
    ("perfect", 3.4),
    ("wonderful", 3.0),
    ("superb", 3.2),
    ("decent", 1.2),
    ("okay", 0.6),
    ("fine", 0.9),
    ("average", 0.1),
    ("mediocre", -1.3),
    ("bland", -1.8),
    ("stale", -2.2),
    ("slow", -1.6),
    ("rude", -2.8),
    ("dirty", -2.6),
    ("noisy", -1.9),
    ("bad", -2.5),
    ("poor", -2.3),
    ("terrible", -3.2),
    ("awful", -3.3),
    ("horrible", -3.3),
    ("disgusting", -3.5),
    ("cold", -1.4),
    ("greasy", -1.7),
    ("overpriced", -2.0),
    ("cramped", -1.8),
    ("disappointing", -2.4),
    ("inedible", -3.4),
    ("unfriendly", -2.4),
    ("filthy", -3.1),
];

/// Degree boosters (word, multiplier applied to the following valence word).
const BOOSTERS: &[(&str, f64)] = &[
    ("very", 1.3),
    ("extremely", 1.5),
    ("really", 1.25),
    ("incredibly", 1.45),
    ("somewhat", 0.8),
    ("slightly", 0.7),
    ("barely", 0.6),
];

/// Negations flip the valence of the next sentiment word.
const NEGATIONS: &[&str] = &["not", "never", "no", "hardly", "isnt", "wasnt"];

/// VADER's normalization constant.
const ALPHA: f64 = 15.0;

fn lookup_valence(word: &str) -> Option<f64> {
    LEXICON.iter().find(|(w, _)| *w == word).map(|&(_, v)| v)
}

fn lookup_booster(word: &str) -> Option<f64> {
    BOOSTERS.iter().find(|(w, _)| *w == word).map(|&(_, m)| m)
}

/// Lower-cases and strips non-alphabetic characters from a token.
fn normalize_token(tok: &str) -> String {
    tok.chars()
        .filter(|c| c.is_ascii_alphabetic())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

/// Scores a phrase in `[-1, 1]`; `0.0` for neutral / no sentiment words.
///
/// Handling mirrors VADER's core rules: sum the valences of lexicon words,
/// boosting by a preceding intensifier and flipping (damped ×−0.74, as
/// VADER does) under a preceding negation within two tokens, then squash by
/// `s / sqrt(s² + α)`.
pub fn score_phrase(phrase: &str) -> f64 {
    let tokens: Vec<String> = phrase.split_whitespace().map(normalize_token).collect();
    let mut total = 0.0;
    for (i, tok) in tokens.iter().enumerate() {
        let Some(mut valence) = lookup_valence(tok) else {
            continue;
        };
        if i >= 1 {
            if let Some(m) = lookup_booster(&tokens[i - 1]) {
                valence *= m;
            }
        }
        let negated = tokens[i.saturating_sub(2)..i]
            .iter()
            .any(|t| NEGATIONS.contains(&t.as_str()));
        if negated {
            valence *= -0.74;
        }
        total += valence;
    }
    if total == 0.0 {
        return 0.0;
    }
    total / (total * total + ALPHA).sqrt()
}

/// Maps a `[-1, 1]` sentiment to the discrete rating scale `1..=m`.
pub fn sentiment_to_score(sentiment: f64, scale: u8) -> u8 {
    let m = f64::from(scale);
    let raw = (sentiment + 1.0) / 2.0 * (m - 1.0) + 1.0;
    raw.round().clamp(1.0, m) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_words_score_positive() {
        assert!(score_phrase("the food was delicious") > 0.3);
        assert!(score_phrase("amazing fantastic excellent") > 0.7);
    }

    #[test]
    fn negative_words_score_negative() {
        assert!(score_phrase("the service was terrible") < -0.3);
        assert!(score_phrase("dirty noisy awful") < -0.7);
    }

    #[test]
    fn neutral_phrase_scores_zero() {
        assert_eq!(score_phrase("the table by the window"), 0.0);
        assert_eq!(score_phrase(""), 0.0);
    }

    #[test]
    fn boosters_intensify() {
        let plain = score_phrase("good food");
        let boosted = score_phrase("very good food");
        let extreme = score_phrase("extremely good food");
        assert!(boosted > plain);
        assert!(extreme > boosted);
    }

    #[test]
    fn dampeners_soften() {
        let plain = score_phrase("good food");
        let soft = score_phrase("slightly good food");
        assert!(soft < plain && soft > 0.0);
    }

    #[test]
    fn negation_flips() {
        assert!(score_phrase("not good at all") < 0.0);
        assert!(score_phrase("never bad here") > 0.0);
        // Negation two tokens away still applies.
        assert!(score_phrase("not very good") < 0.0);
    }

    #[test]
    fn punctuation_and_case_ignored() {
        let a = score_phrase("GREAT, food!");
        let b = score_phrase("great food");
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn squash_keeps_scores_in_unit_range() {
        let many_pos = "amazing ".repeat(30);
        let s = score_phrase(&many_pos);
        assert!(s > 0.9 && s <= 1.0);
        let many_neg = "awful ".repeat(30);
        let s = score_phrase(&many_neg);
        assert!((-1.0..-0.9).contains(&s));
    }

    #[test]
    fn sentiment_to_score_maps_extremes() {
        assert_eq!(sentiment_to_score(-1.0, 5), 1);
        assert_eq!(sentiment_to_score(1.0, 5), 5);
        assert_eq!(sentiment_to_score(0.0, 5), 3);
        assert_eq!(sentiment_to_score(0.45, 5), 4);
    }

    #[test]
    fn sentiment_order_preserved_in_scores() {
        let bad = sentiment_to_score(score_phrase("awful disgusting inedible"), 5);
        let meh = sentiment_to_score(score_phrase("average food"), 5);
        let good = sentiment_to_score(score_phrase("extremely delicious amazing"), 5);
        assert!(bad < meh && meh < good, "{bad} {meh} {good}");
    }
}
