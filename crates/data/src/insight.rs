//! Ground-truth insights for Scenario II (Section 5.2).
//!
//! The paper's second user-study task hands subjects five insights mined
//! from Kaggle EDA notebooks and asks them to rediscover them with SubDEx.
//! Our synthetic datasets *plant* their insights: each is a latent score
//! bias injected by the generator, phrased as "⟨group⟩ has the
//! highest/lowest ⟨dimension⟩ ratings". An insight is *revealed* by a
//! displayed rating map when the map aggregates the right dimension,
//! groups by the right attribute, and shows the insight's subgroup at the
//! right extreme — exactly the condition under which a human reading the
//! histogram would write the insight down.

use subdex_core::ratingmap::RatingMap;
use subdex_store::{Entity, SubjectiveDb, Value};

/// Whether the insight's subgroup sits at the top or bottom of its map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// The subgroup has the highest average score.
    Highest,
    /// The subgroup has the lowest average score.
    Lowest,
}

/// A verifiable planted insight.
#[derive(Debug, Clone)]
pub struct Insight {
    /// Stable identifier within its dataset.
    pub id: usize,
    /// Human-readable statement.
    pub description: String,
    /// Entity carrying the grouping attribute.
    pub entity: Entity,
    /// Grouping attribute name.
    pub attr_name: String,
    /// Rating dimension name.
    pub dim_name: String,
    /// The extreme subgroup's value.
    pub value: Value,
    /// Which extreme.
    pub polarity: Polarity,
    /// Minimum records the subgroup must have for a reveal to count.
    pub min_support: u64,
}

impl Insight {
    /// Whether this displayed rating map reveals the insight.
    pub fn revealed_by(&self, db: &SubjectiveDb, map: &RatingMap) -> bool {
        if map.key.entity != self.entity {
            return false;
        }
        let table = db.table(self.entity);
        if table.schema().attr(map.key.attr).name != self.attr_name {
            return false;
        }
        if db.ratings().dim_name(map.key.dim) != self.dim_name {
            return false;
        }
        let Some(code) = table.dictionary(map.key.attr).code(&self.value) else {
            return false;
        };
        // Maps list subgroups by descending average; require the insight's
        // subgroup at the exact extreme with enough support.
        let extreme = match self.polarity {
            Polarity::Highest => map.top_subgroup(),
            Polarity::Lowest => map.bottom_subgroup(),
        };
        extreme.is_some_and(|sg| sg.value == code && sg.distribution.total() >= self.min_support)
            && map.subgroup_count() >= 2
    }

    /// Ground-truth verification: over the *whole* database, the insight's
    /// subgroup must indeed have the extreme average on its dimension.
    /// Generators call this in tests to certify planted insights.
    pub fn verify(&self, db: &SubjectiveDb) -> bool {
        let table = db.table(self.entity);
        let Some(attr) = table.schema().attr_by_name(&self.attr_name) else {
            return false;
        };
        let Some(dim) = db.ratings().dim_by_name(&self.dim_name) else {
            return false;
        };
        let Some(code) = table.dictionary(attr).code(&self.value) else {
            return false;
        };
        let ratings = db.ratings();
        let n_values = table.dictionary(attr).len();
        let mut sums = vec![0u64; n_values];
        let mut counts = vec![0u64; n_values];
        for rec in 0..ratings.len() as u32 {
            let row = match self.entity {
                Entity::Reviewer => ratings.reviewer_of(rec),
                Entity::Item => ratings.item_of(rec),
            };
            let score = u64::from(ratings.score(rec, dim));
            for &v in table.values(row, attr) {
                sums[v.index()] += score;
                counts[v.index()] += 1;
            }
        }
        let avg = |i: usize| -> Option<f64> {
            (counts[i] > 0).then(|| sums[i] as f64 / counts[i] as f64)
        };
        let Some(target) = avg(code.index()) else {
            return false;
        };
        if counts[code.index()] < self.min_support {
            return false;
        }
        (0..n_values)
            .filter(|&i| i != code.index())
            .filter_map(avg)
            .all(|other| match self.polarity {
                Polarity::Highest => target > other,
                Polarity::Lowest => target < other,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_core::ratingmap::{MapKey, Subgroup};
    use subdex_stats::RatingDistribution;
    use subdex_store::{Cell, DimId, EntityTableBuilder, RatingTableBuilder, Schema, ValueId};

    fn db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("age", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec![Cell::from("young")]);
        ub.push_row(vec![Cell::from("old")]);
        let mut is = Schema::new();
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![Cell::from("NYC")]);
        ib.push_row(vec![Cell::from("SF")]);
        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        // NYC scores high (5s), SF low (1s/2s).
        for r in 0..2 {
            for _ in 0..5 {
                rb.push(r, 0, &[5]);
                rb.push(r, 1, &[if r == 0 { 1 } else { 2 }]);
            }
        }
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(2, 2))
    }

    fn nyc_insight() -> Insight {
        Insight {
            id: 0,
            description: "NYC restaurants have the highest overall ratings".into(),
            entity: Entity::Item,
            attr_name: "city".into(),
            dim_name: "overall".into(),
            value: Value::str("NYC"),
            polarity: Polarity::Highest,
            min_support: 5,
        }
    }

    fn map(db: &SubjectiveDb, flip: bool) -> RatingMap {
        let attr = db.items().schema().attr_by_name("city").unwrap();
        let nyc = Subgroup {
            value: ValueId(0),
            distribution: RatingDistribution::from_counts(if flip {
                vec![10, 0, 0, 0, 0]
            } else {
                vec![0, 0, 0, 0, 10]
            }),
            avg_score: None,
        };
        let sf = Subgroup {
            value: ValueId(1),
            distribution: RatingDistribution::from_counts(vec![5, 5, 0, 0, 0]),
            avg_score: None,
        };
        RatingMap::from_subgroups(MapKey::new(Entity::Item, attr, DimId(0)), vec![nyc, sf], 5)
    }

    #[test]
    fn verify_holds_on_planted_data() {
        let db = db();
        assert!(nyc_insight().verify(&db));
        let mut wrong = nyc_insight();
        wrong.polarity = Polarity::Lowest;
        assert!(!wrong.verify(&db));
    }

    #[test]
    fn revealed_by_matching_map() {
        let db = db();
        assert!(nyc_insight().revealed_by(&db, &map(&db, false)));
    }

    #[test]
    fn not_revealed_when_subgroup_at_wrong_extreme() {
        let db = db();
        assert!(!nyc_insight().revealed_by(&db, &map(&db, true)));
    }

    #[test]
    fn not_revealed_by_wrong_attribute_or_dim() {
        let db = db();
        let m = map(&db, false);
        let mut other_attr = nyc_insight();
        other_attr.attr_name = "neighborhood".into();
        assert!(!other_attr.revealed_by(&db, &m));
        let mut other_dim = nyc_insight();
        other_dim.dim_name = "food".into();
        assert!(!other_dim.revealed_by(&db, &m));
        let mut other_entity = nyc_insight();
        other_entity.entity = Entity::Reviewer;
        assert!(!other_entity.revealed_by(&db, &m));
    }

    #[test]
    fn support_threshold_enforced() {
        let db = db();
        let mut needy = nyc_insight();
        needy.min_support = 100;
        assert!(!needy.revealed_by(&db, &map(&db, false)));
        assert!(!needy.verify(&db));
    }

    #[test]
    fn single_subgroup_map_reveals_nothing() {
        let db = db();
        let attr = db.items().schema().attr_by_name("city").unwrap();
        let only = Subgroup {
            value: ValueId(0),
            distribution: RatingDistribution::from_counts(vec![0, 0, 0, 0, 10]),
            avg_score: None,
        };
        let m = RatingMap::from_subgroups(MapKey::new(Entity::Item, attr, DimId(0)), vec![only], 5);
        assert!(!nyc_insight().revealed_by(&db, &m), "no comparison basis");
    }

    #[test]
    fn missing_value_in_dictionary() {
        let db = db();
        let mut ghost = nyc_insight();
        ghost.value = Value::str("Atlantis");
        assert!(!ghost.revealed_by(&db, &map(&db, false)));
        assert!(!ghost.verify(&db));
    }
}
