//! Generator parameters.

/// Size and seed parameters for a dataset generator.
///
/// The defaults of each generator (see [`crate::datasets`]) reproduce the
/// paper's Table 2 cardinalities; [`GenParams::scaled`] shrinks everything
/// proportionally for unit tests and quick experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Number of reviewers `|U|`.
    pub reviewers: usize,
    /// Number of items `|I|`.
    pub items: usize,
    /// Number of rating records `|R|`.
    pub ratings: usize,
    /// RNG seed — all generation is deterministic given the seed.
    pub seed: u64,
}

impl GenParams {
    /// Creates parameters.
    pub fn new(reviewers: usize, items: usize, ratings: usize, seed: u64) -> Self {
        Self {
            reviewers,
            items,
            ratings,
            seed,
        }
    }

    /// Scales all cardinalities by `factor` (at least 1 each), keeping the
    /// seed. `factor` must be in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        Self {
            reviewers: scale(self.reviewers),
            items: scale(self.items),
            ratings: scale(self.ratings),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_shrinks_proportionally() {
        let p = GenParams::new(1000, 100, 10_000, 7).scaled(0.1);
        assert_eq!(p, GenParams::new(100, 10, 1000, 7));
    }

    #[test]
    fn scaled_never_hits_zero() {
        let p = GenParams::new(5, 5, 5, 0).scaled(0.01);
        assert!(p.reviewers >= 1 && p.items >= 1 && p.ratings >= 1);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn bad_factor_panics() {
        let _ = GenParams::new(10, 10, 10, 0).scaled(1.5);
    }
}
