//! Synthetic review text and the dimension-extraction pipeline.
//!
//! The paper turned free-text Yelp reviews into per-dimension rating scores
//! by (1) collecting, per dimension, every phrase containing the
//! dimension's keyword with a window of 5 words around it, (2) scoring
//! each phrase with VADER, and (3) averaging per dimension. To exercise
//! that ingestion path without the proprietary corpus, this module
//! *generates* review text from known latent scores and then runs the same
//! extraction; tests confirm the recovered scores track the latent ones.

use crate::sentiment::{score_phrase, sentiment_to_score};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Window radius (words each side of the keyword), as in the paper.
pub const WINDOW: usize = 5;

/// Phrase fragments by latent score (1..=5), reusable for any dimension.
const FRAGMENTS: [&[&str]; 5] = [
    &[
        "was absolutely awful",
        "was disgusting and terrible",
        "was horrible",
        "was inedible honestly",
    ],
    &[
        "was pretty bad",
        "was disappointing",
        "felt poor overall",
        "was stale and cold",
    ],
    &[
        "was okay i guess",
        "was average nothing special",
        "was fine",
        "was decent but forgettable",
    ],
    &[
        "was really good",
        "was tasty and fresh",
        "was nice overall",
        "was very good",
    ],
    &[
        "was extremely delicious",
        "was absolutely amazing",
        "was fantastic",
        "was perfect truly",
    ],
];

const FILLER: &[&str] = &[
    "we came here on a tuesday evening with friends",
    "the location is easy to reach by subway",
    "i had read about this place online before visiting",
    "portions were standard for the neighborhood",
    "we will see about coming back some day",
];

/// Generates one review mentioning each `(keyword, latent_score)` pair,
/// embedding sentiment words that encode the latent score, padded with
/// neutral filler sentences.
pub fn generate_review(rng: &mut StdRng, dims: &[(&str, u8)]) -> String {
    let mut sentences: Vec<String> = Vec::new();
    sentences.push(FILLER[rng.random_range(0..FILLER.len())].to_owned());
    for &(keyword, score) in dims {
        assert!((1..=5).contains(&score), "latent score on 1..=5");
        let pool = FRAGMENTS[usize::from(score) - 1];
        let fragment = pool[rng.random_range(0..pool.len())];
        sentences.push(format!("the {keyword} {fragment}"));
        if rng.random_bool(0.4) {
            sentences.push(FILLER[rng.random_range(0..FILLER.len())].to_owned());
        }
    }
    sentences.join(". ")
}

/// Extracts every phrase containing `keyword` with [`WINDOW`] words of
/// context on each side (the paper's extraction step).
pub fn extract_phrases<'a>(text: &'a str, keyword: &str) -> Vec<String> {
    let tokens: Vec<&'a str> = text.split_whitespace().collect();
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let clean: String = tok
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .flat_map(|c| c.to_lowercase())
            .collect();
        if clean == keyword {
            let start = i.saturating_sub(WINDOW);
            let end = (i + WINDOW + 1).min(tokens.len());
            out.push(tokens[start..end].join(" "));
        }
    }
    out
}

/// The full pipeline for one review and one dimension: extract phrases,
/// score each, average, and map onto the rating scale. `None` when the
/// keyword never occurs.
pub fn extract_score(text: &str, keyword: &str, scale: u8) -> Option<u8> {
    let phrases = extract_phrases(text, keyword);
    if phrases.is_empty() {
        return None;
    }
    let avg: f64 = phrases.iter().map(|p| score_phrase(p)).sum::<f64>() / phrases.len() as f64;
    Some(sentiment_to_score(avg, scale))
}

/// Convenience: generate a corpus of `n` reviews for the given dimension
/// keywords with random latent scores, returning
/// `(text, latent_scores)` pairs.
pub fn generate_corpus(n: usize, keywords: &[&str], seed: u64) -> Vec<(String, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let latents: Vec<u8> = keywords.iter().map(|_| rng.random_range(1..=5)).collect();
            let dims: Vec<(&str, u8)> = keywords
                .iter()
                .copied()
                .zip(latents.iter().copied())
                .collect();
            (generate_review(&mut rng, &dims), latents)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_review_mentions_all_keywords() {
        let mut rng = StdRng::seed_from_u64(1);
        let text = generate_review(&mut rng, &[("food", 5), ("service", 1), ("ambiance", 3)]);
        for kw in ["food", "service", "ambiance"] {
            assert!(text.contains(kw), "missing {kw} in: {text}");
        }
    }

    #[test]
    fn extract_phrases_window_bounds() {
        let text = "a b c d e f food g h i j k l";
        let phrases = extract_phrases(text, "food");
        assert_eq!(phrases.len(), 1);
        let words: Vec<&str> = phrases[0].split_whitespace().collect();
        assert_eq!(words.len(), 11, "5 + keyword + 5");
        assert_eq!(words[5], "food");
    }

    #[test]
    fn extract_phrases_at_text_edges() {
        let phrases = extract_phrases("food was great", "food");
        assert_eq!(phrases.len(), 1);
        assert_eq!(phrases[0], "food was great");
        assert!(extract_phrases("nothing relevant here", "food").is_empty());
    }

    #[test]
    fn extract_handles_punctuation_on_keyword() {
        let phrases = extract_phrases("the Food, was great", "food");
        assert_eq!(phrases.len(), 1);
    }

    #[test]
    fn multiple_mentions_all_extracted() {
        let text = "food was great . later the food was cold";
        assert_eq!(extract_phrases(text, "food").len(), 2);
    }

    #[test]
    fn extreme_latents_recovered_exactly_in_direction() {
        let mut rng = StdRng::seed_from_u64(2);
        let hi = generate_review(&mut rng, &[("food", 5)]);
        let lo = generate_review(&mut rng, &[("food", 1)]);
        let s_hi = extract_score(&hi, "food", 5).unwrap();
        let s_lo = extract_score(&lo, "food", 5).unwrap();
        assert!(s_hi >= 4, "high latent recovered high: {s_hi}");
        assert!(s_lo <= 2, "low latent recovered low: {s_lo}");
    }

    #[test]
    fn pipeline_correlates_with_latent_scores() {
        let corpus = generate_corpus(300, &["food", "service"], 3);
        let mut n = 0.0;
        let mut sum_xy = 0.0;
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        let mut sum_x2 = 0.0;
        let mut sum_y2 = 0.0;
        for (text, latents) in &corpus {
            for (kw, &latent) in ["food", "service"].iter().zip(latents) {
                let Some(got) = extract_score(text, kw, 5) else {
                    continue;
                };
                let (x, y) = (f64::from(latent), f64::from(got));
                n += 1.0;
                sum_xy += x * y;
                sum_x += x;
                sum_y += y;
                sum_x2 += x * x;
                sum_y2 += y * y;
            }
        }
        assert!(n > 500.0);
        let cov = sum_xy / n - (sum_x / n) * (sum_y / n);
        let sx = (sum_x2 / n - (sum_x / n).powi(2)).sqrt();
        let sy = (sum_y2 / n - (sum_y / n).powi(2)).sqrt();
        let r = cov / (sx * sy);
        assert!(r > 0.75, "extraction should track latent scores, r = {r}");
    }

    #[test]
    fn extract_score_none_when_absent() {
        assert_eq!(extract_score("we loved the patio", "food", 5), None);
    }
}
