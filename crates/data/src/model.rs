//! Latent score model and sampling utilities shared by the generators.
//!
//! Rating scores are drawn from a clipped, rounded Gaussian around a latent
//! mean that combines a per-dataset base with reviewer-trait and item-trait
//! biases. The biases are what give rating maps structure to discover —
//! and the planted ones double as Scenario II's ground-truth insights.

use rand::Rng;

/// Samples an index in `0..n` from a Zipf-like distribution with exponent
/// `s` (rank 0 is the most popular). Used for item popularity and skewed
/// categorical attributes.
///
/// # Panics
/// Panics if `n == 0`.
pub fn zipf_index<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    assert!(n > 0, "zipf over an empty domain");
    // Cumulative weights are cheap at generator scales (n ≤ a few thousand);
    // recomputing per call would not be, so callers holding a hot loop
    // should prefer `ZipfSampler`.
    ZipfSampler::new(n, s).sample(rng)
}

/// Precomputed Zipf sampler (cumulative weights + binary search).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.random::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Draws a standard-normal variate (Box–Muller; two uniforms per call).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a rating score on `1..=scale`: a Gaussian around `mean` with
/// standard deviation `sd`, rounded and clipped.
pub fn sample_score<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, scale: u8) -> u8 {
    let raw = mean + sd * standard_normal(rng);
    (raw.round()).clamp(1.0, f64::from(scale)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = ZipfSampler::new(50, 1.0);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
        assert!(counts[0] > 2_000, "rank 0 dominates: {}", counts[0]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(2);
        let sampler = ZipfSampler::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_500..=2_500).contains(&c), "roughly uniform: {c}");
        }
    }

    #[test]
    fn zipf_all_indices_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(zipf_index(&mut rng, 7, 1.2) < 7);
        }
    }

    #[test]
    fn normal_has_right_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn scores_respect_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let s = sample_score(&mut rng, 3.5, 2.0, 5);
            assert!((1..=5).contains(&s));
        }
        // Extreme mean pins the score.
        for _ in 0..100 {
            assert_eq!(sample_score(&mut rng, 10.0, 0.1, 5), 5);
            assert_eq!(sample_score(&mut rng, -5.0, 0.1, 5), 1);
        }
    }

    #[test]
    fn score_mean_tracks_latent_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| f64::from(sample_score(&mut rng, 4.0, 0.8, 5)))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_empty_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
