//! Dataset transforms for the scalability sweeps (Figure 10).
//!
//! * [`sample_reviewers`] — Figure 10(a): vary database size by sampling a
//!   fraction of reviewers and keeping their rating records;
//! * [`drop_attributes`] — Figure 10(b): vary the number of attributes
//!   (akin to the number of GroupBys / candidate rating maps);
//! * [`restrict_values`] — Figure 10(c): vary the number of attribute
//!   values (akin to the number of next-step operations).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subdex_store::{
    AttrId, Cell, Entity, EntityTable, EntityTableBuilder, RatingTableBuilder, Schema,
    SubjectiveDb, Value,
};

/// Rebuilds an entity table keeping only `keep` attribute ids.
fn project_entity(table: &EntityTable, keep: &[AttrId]) -> EntityTable {
    let mut schema = Schema::new();
    for &a in keep {
        let def = table.schema().attr(a);
        schema.add(def.name.clone(), def.multi_valued);
    }
    let mut b = EntityTableBuilder::new(schema);
    for row in 0..table.len() as u32 {
        let cells: Vec<Cell> = keep
            .iter()
            .map(|&a| {
                let vals = table.decoded_values(row, a);
                if table.schema().attr(a).multi_valued {
                    Cell::Many(vals)
                } else {
                    Cell::One(vals.into_iter().next().expect("single-valued"))
                }
            })
            .collect();
        b.push_row(cells);
    }
    b.build()
}

/// Figure 10(a): keeps a random `fraction` of reviewers (at least one) and
/// only their rating records; reviewer ids are compacted.
///
/// # Panics
/// Panics if `fraction` is not in `(0, 1]`.
pub fn sample_reviewers(db: &SubjectiveDb, fraction: f64, seed: u64) -> SubjectiveDb {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = db.reviewers().len();
    let target = ((n as f64 * fraction).round() as usize).clamp(1, n);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    // Partial Fisher–Yates.
    for i in 0..target {
        let j = rng.random_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(target);
    ids.sort_unstable();
    let mut remap = vec![u32::MAX; n];
    for (new, &old) in ids.iter().enumerate() {
        remap[old as usize] = new as u32;
    }

    let all_attrs: Vec<AttrId> = db.reviewers().schema().attr_ids().collect();
    let mut schema = Schema::new();
    for &a in &all_attrs {
        let def = db.reviewers().schema().attr(a);
        schema.add(def.name.clone(), def.multi_valued);
    }
    let mut rb = EntityTableBuilder::new(schema);
    for &old in &ids {
        let cells: Vec<Cell> = all_attrs
            .iter()
            .map(|&a| {
                let vals = db.reviewers().decoded_values(old, a);
                if db.reviewers().schema().attr(a).multi_valued {
                    Cell::Many(vals)
                } else {
                    Cell::One(vals.into_iter().next().expect("single-valued"))
                }
            })
            .collect();
        rb.push_row(cells);
    }
    let reviewers = rb.build();

    let r = db.ratings();
    let mut ratings = RatingTableBuilder::new(r.dim_names().to_vec(), r.scale());
    let mut scores = vec![0u8; r.dim_count()];
    for rec in 0..r.len() as u32 {
        let new_rev = remap[r.reviewer_of(rec) as usize];
        if new_rev == u32::MAX {
            continue;
        }
        for (i, d) in r.dims().enumerate() {
            scores[i] = r.score(rec, d);
        }
        ratings.push(new_rev, r.item_of(rec), &scores);
    }
    let items = project_entity(
        db.items(),
        &db.items().schema().attr_ids().collect::<Vec<_>>(),
    );
    let item_count = items.len();
    let reviewer_count = reviewers.len();
    SubjectiveDb::new(reviewers, items, ratings.build(reviewer_count, item_count))
}

/// Figure 10(b): keeps `keep_total` randomly chosen attributes across both
/// tables (at least one per side).
///
/// # Panics
/// Panics if `keep_total < 2` or exceeds the available attribute count.
pub fn drop_attributes(db: &SubjectiveDb, keep_total: usize, seed: u64) -> SubjectiveDb {
    let r_attrs: Vec<AttrId> = db.reviewers().schema().attr_ids().collect();
    let i_attrs: Vec<AttrId> = db.items().schema().attr_ids().collect();
    let total = r_attrs.len() + i_attrs.len();
    assert!(
        (2..=total).contains(&keep_total),
        "keep_total must be in 2..={total}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Tag attrs by side, shuffle, force one of each side into the front.
    let mut tagged: Vec<(Entity, AttrId)> = r_attrs
        .iter()
        .map(|&a| (Entity::Reviewer, a))
        .chain(i_attrs.iter().map(|&a| (Entity::Item, a)))
        .collect();
    for i in (1..tagged.len()).rev() {
        let j = rng.random_range(0..=i);
        tagged.swap(i, j);
    }
    let mut kept: Vec<(Entity, AttrId)> = Vec::with_capacity(keep_total);
    // Guarantee one per side first.
    for side in [Entity::Reviewer, Entity::Item] {
        let pos = tagged
            .iter()
            .position(|&(e, _)| e == side)
            .expect("side present");
        kept.push(tagged.remove(pos));
    }
    for t in tagged {
        if kept.len() >= keep_total {
            break;
        }
        kept.push(t);
    }
    let mut keep_r: Vec<AttrId> = kept
        .iter()
        .filter(|(e, _)| *e == Entity::Reviewer)
        .map(|&(_, a)| a)
        .collect();
    let mut keep_i: Vec<AttrId> = kept
        .iter()
        .filter(|(e, _)| *e == Entity::Item)
        .map(|&(_, a)| a)
        .collect();
    keep_r.sort_unstable();
    keep_i.sort_unstable();

    let reviewers = project_entity(db.reviewers(), &keep_r);
    let items = project_entity(db.items(), &keep_i);

    let r = db.ratings();
    let mut ratings = RatingTableBuilder::new(r.dim_names().to_vec(), r.scale());
    let mut scores = vec![0u8; r.dim_count()];
    for rec in 0..r.len() as u32 {
        for (i, d) in r.dims().enumerate() {
            scores[i] = r.score(rec, d);
        }
        ratings.push(r.reviewer_of(rec), r.item_of(rec), &scores);
    }
    let (rc, ic) = (reviewers.len(), items.len());
    SubjectiveDb::new(reviewers, items, ratings.build(rc, ic))
}

/// Figure 10(c): caps every attribute's dictionary at `max_values` by
/// keeping its most frequent values. Rows holding a dropped value are
/// remapped to the attribute's most frequent value (single-valued) or have
/// the value removed from their set (multi-valued).
///
/// # Panics
/// Panics if `max_values == 0`.
pub fn restrict_values(db: &SubjectiveDb, max_values: usize, _seed: u64) -> SubjectiveDb {
    assert!(max_values > 0, "at least one value per attribute");

    let shrink = |table: &EntityTable, entity: Entity| -> EntityTable {
        let index = db.index(entity);
        let mut schema = Schema::new();
        for (_, def) in table.schema().iter() {
            schema.add(def.name.clone(), def.multi_valued);
        }
        // For each attribute: the retained values (by frequency) and the
        // fallback (most frequent).
        let per_attr: Vec<(Vec<bool>, Value)> = table
            .schema()
            .attr_ids()
            .map(|a| {
                let dict = table.dictionary(a);
                let mut freq: Vec<(usize, u32)> = (0..dict.len() as u32)
                    .map(|v| (index.cardinality(a, subdex_store::ValueId(v)), v))
                    .collect();
                freq.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
                let mut keep = vec![false; dict.len()];
                for &(_, v) in freq.iter().take(max_values) {
                    keep[v as usize] = true;
                }
                let fallback = dict.value(subdex_store::ValueId(freq[0].1)).clone();
                (keep, fallback)
            })
            .collect();
        let mut b = EntityTableBuilder::new(schema);
        for row in 0..table.len() as u32 {
            let cells: Vec<Cell> = table
                .schema()
                .attr_ids()
                .map(|a| {
                    let (keep, fallback) = &per_attr[a.index()];
                    let multi = table.schema().attr(a).multi_valued;
                    let kept: Vec<Value> = table
                        .values(row, a)
                        .iter()
                        .filter(|v| keep[v.index()])
                        .map(|&v| table.dictionary(a).value(v).clone())
                        .collect();
                    if multi {
                        Cell::Many(kept)
                    } else if let Some(v) = kept.into_iter().next() {
                        Cell::One(v)
                    } else {
                        Cell::One(fallback.clone())
                    }
                })
                .collect();
            b.push_row(cells);
        }
        b.build()
    };

    let reviewers = shrink(db.reviewers(), Entity::Reviewer);
    let items = shrink(db.items(), Entity::Item);
    let r = db.ratings();
    let mut ratings = RatingTableBuilder::new(r.dim_names().to_vec(), r.scale());
    let mut scores = vec![0u8; r.dim_count()];
    for rec in 0..r.len() as u32 {
        for (i, d) in r.dims().enumerate() {
            scores[i] = r.score(rec, d);
        }
        ratings.push(r.reviewer_of(rec), r.item_of(rec), &scores);
    }
    let (rc, ic) = (reviewers.len(), items.len());
    SubjectiveDb::new(reviewers, items, ratings.build(rc, ic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::yelp;
    use crate::params::GenParams;

    fn db() -> SubjectiveDb {
        yelp::dataset(GenParams::new(400, 40, 3000, 21)).db
    }

    #[test]
    fn sample_reviewers_shrinks_proportionally() {
        let db = db();
        let half = sample_reviewers(&db, 0.5, 1);
        assert_eq!(half.reviewers().len(), 200);
        assert_eq!(half.items().len(), 40);
        // Roughly half the ratings survive (reviewer activity varies).
        let frac = half.ratings().len() as f64 / db.ratings().len() as f64;
        assert!((0.3..=0.7).contains(&frac), "kept fraction {frac}");
        // Referential integrity: every record's reviewer is in range.
        for rec in 0..half.ratings().len() as u32 {
            assert!((half.ratings().reviewer_of(rec) as usize) < 200);
        }
    }

    #[test]
    fn sample_reviewers_full_keeps_everything() {
        let db = db();
        let all = sample_reviewers(&db, 1.0, 1);
        assert_eq!(all.ratings().len(), db.ratings().len());
        assert_eq!(all.reviewers().len(), db.reviewers().len());
    }

    #[test]
    fn drop_attributes_keeps_requested_count() {
        let db = db();
        for keep in [2, 6, 12, 20] {
            let small = drop_attributes(&db, keep, 5);
            let s = small.stats();
            assert_eq!(s.attr_count, keep);
            assert!(!small.reviewers().schema().is_empty());
            assert!(!small.items().schema().is_empty());
            assert_eq!(s.rating_count, db.ratings().len());
        }
    }

    #[test]
    #[should_panic(expected = "keep_total")]
    fn drop_attributes_rejects_too_many() {
        let db = db();
        let _ = drop_attributes(&db, 99, 0);
    }

    #[test]
    fn restrict_values_caps_dictionaries() {
        let db = db();
        let capped = restrict_values(&db, 3, 0);
        for entity in [Entity::Reviewer, Entity::Item] {
            let t = capped.table(entity);
            for a in t.schema().attr_ids() {
                assert!(
                    t.dictionary(a).len() <= 3,
                    "{entity} attr {a:?} has {} values",
                    t.dictionary(a).len()
                );
            }
        }
        assert_eq!(capped.ratings().len(), db.ratings().len());
    }

    #[test]
    fn restrict_values_keeps_most_frequent() {
        let db = db();
        let capped = restrict_values(&db, 2, 0);
        // The original most frequent gender value must survive.
        let orig_attr = db.reviewers().schema().attr_by_name("gender").unwrap();
        let idx = db.index(Entity::Reviewer);
        let best = (0..db.reviewers().dictionary(orig_attr).len() as u32)
            .max_by_key(|&v| idx.cardinality(orig_attr, subdex_store::ValueId(v)))
            .unwrap();
        let best_val = db
            .reviewers()
            .dictionary(orig_attr)
            .value(subdex_store::ValueId(best));
        let new_attr = capped.reviewers().schema().attr_by_name("gender").unwrap();
        assert!(capped
            .reviewers()
            .dictionary(new_attr)
            .code(best_val)
            .is_some());
    }

    #[test]
    fn transforms_preserve_queryability() {
        let db = db();
        let t = restrict_values(&drop_attributes(&sample_reviewers(&db, 0.5, 3), 8, 3), 4, 3);
        let q = subdex_store::SelectionQuery::all();
        assert!(!t.rating_group(&q, 0).is_empty());
        let s = t.stats();
        assert_eq!(s.attr_count, 8);
        assert!(s.max_values <= 4);
    }
}
