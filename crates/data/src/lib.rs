//! # subdex-data
//!
//! Datasets and workloads for the SubDEx evaluation (Section 5.1).
//!
//! The paper evaluates on MovieLens-100K, a restaurant subset of Yelp, and
//! a hotel-review dump. Those dumps are not redistributable, so this crate
//! generates synthetic equivalents that match Table 2 exactly — attribute
//! counts, maximum dictionary sizes, rating-dimension counts, and the
//! |R| / |U| / |I| cardinalities — with realistic skews (Zipfian item
//! popularity, demographically biased latent scores). Every engine
//! algorithm consumes only attributes, values and rating records, so these
//! synthetic twins exercise the same code paths at the same scales (the
//! substitution is documented in `DESIGN.md`).
//!
//! Also provided:
//!
//! * the review-text pipeline the paper used to obtain Yelp's food /
//!   service / ambiance scores: a synthetic review generator plus a
//!   VADER-style lexicon scorer with window-of-5 phrase extraction
//!   ([`sentiment`], [`reviews`]);
//! * Scenario I workloads — injected *irregular groups* ([`irregular`]);
//! * Scenario II workloads — planted, verifiable *insights*
//!   ([`insight`]);
//! * dataset transforms for the scalability sweeps of Figure 10
//!   ([`transform`]).

pub mod datasets;
pub mod insight;
pub mod irregular;
pub mod model;
pub mod params;
pub mod reviews;
pub mod sentiment;
pub mod transform;

pub use datasets::{hotels, movielens, yelp, Dataset, RawTables};
pub use insight::Insight;
pub use irregular::{inject_irregular_groups, IrregularGroup, IrregularSpec};
pub use params::GenParams;
