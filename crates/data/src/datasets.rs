//! Synthetic twins of the paper's three datasets (Table 2).
//!
//! | dataset | #atts | max #vals | #dims | \|R\| | \|U\| | \|I\| |
//! |---|---|---|---|---|---|---|
//! | MovieLens-like | 12 | 29 | 1 | 100 000 | 943 | 1 682 |
//! | Yelp-like | 24 | 13 | 4 | 200 500 | 150 318 | 93 |
//! | Hotel-Reviews-like | 8 | 62 | 4 | 35 912 | 15 493 | 879 |
//!
//! Attribute values follow Zipfian popularity; rating scores come from a
//! clipped Gaussian whose mean combines a per-dimension base with planted
//! reviewer-/item-trait biases. The planted biases double as the five
//! ground-truth insights per dataset that Scenario II asks subjects to
//! rediscover.

use crate::insight::{Insight, Polarity};
use crate::model::{sample_score, ZipfSampler};
use crate::params::GenParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subdex_store::{
    Cell, Entity, EntityTable, EntityTableBuilder, RatingTableBuilder, Schema, SubjectiveDb, Value,
};

/// A generated dataset: the database plus its Scenario II ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The finished database.
    pub db: SubjectiveDb,
    /// The five planted insights.
    pub insights: Vec<Insight>,
}

/// Un-finalized tables — the stage at which Scenario I irregular groups
/// can still be injected (scores are overwritten pre-index).
pub struct RawTables {
    /// Finished reviewer table.
    pub reviewers: EntityTable,
    /// Finished item table.
    pub items: EntityTable,
    /// Mutable rating records.
    pub ratings: RatingTableBuilder,
    /// Rating-dimension names.
    pub dim_names: Vec<String>,
    /// Planted insights.
    pub insights: Vec<Insight>,
}

impl RawTables {
    /// Builds indexes and produces the final [`Dataset`].
    pub fn finish(self) -> Dataset {
        let reviewer_count = self.reviewers.len();
        let item_count = self.items.len();
        Dataset {
            db: SubjectiveDb::new(
                self.reviewers,
                self.items,
                self.ratings.build(reviewer_count, item_count),
            ),
            insights: self.insights,
        }
    }
}

/// One categorical attribute blueprint.
struct AttrSpec {
    name: &'static str,
    values: Vec<String>,
    multi: bool,
    /// Zipf exponent for value popularity (0 = uniform).
    zipf: f64,
    /// For multi-valued attributes: max values per row (min 1).
    max_per_row: usize,
}

impl AttrSpec {
    fn single(name: &'static str, values: &[&str], zipf: f64) -> Self {
        Self {
            name,
            values: values.iter().map(|s| (*s).to_owned()).collect(),
            multi: false,
            zipf,
            max_per_row: 1,
        }
    }

    fn single_gen(name: &'static str, prefix: &str, n: usize, zipf: f64) -> Self {
        Self {
            name,
            values: (1..=n).map(|i| format!("{prefix}{i}")).collect(),
            multi: false,
            zipf,
            max_per_row: 1,
        }
    }

    fn multi(name: &'static str, values: &[&str], zipf: f64, max_per_row: usize) -> Self {
        Self {
            name,
            values: values.iter().map(|s| (*s).to_owned()).collect(),
            multi: true,
            zipf,
            max_per_row,
        }
    }
}

/// Raw (pre-interning) value indexes of one generated column.
enum RawCol {
    Single(Vec<u16>),
    Multi(Vec<Vec<u16>>),
}

impl RawCol {
    fn row_has(&self, row: usize, v: u16) -> bool {
        match self {
            RawCol::Single(c) => c[row] == v,
            RawCol::Multi(c) => c[row].contains(&v),
        }
    }
}

/// Generates an entity table from attribute blueprints; returns both the
/// finished table and the raw per-row codes (for bias lookups during
/// rating generation).
fn build_entity(rng: &mut StdRng, rows: usize, specs: &[AttrSpec]) -> (EntityTable, Vec<RawCol>) {
    let mut raw: Vec<RawCol> = specs
        .iter()
        .map(|s| {
            if s.multi {
                RawCol::Multi(Vec::with_capacity(rows))
            } else {
                RawCol::Single(Vec::with_capacity(rows))
            }
        })
        .collect();
    let samplers: Vec<ZipfSampler> = specs
        .iter()
        .map(|s| ZipfSampler::new(s.values.len(), s.zipf))
        .collect();

    let mut schema = Schema::new();
    for s in specs {
        schema.add(s.name, s.multi);
    }
    let mut builder = EntityTableBuilder::new(schema);

    for _ in 0..rows {
        let mut cells = Vec::with_capacity(specs.len());
        for (ai, spec) in specs.iter().enumerate() {
            if spec.multi {
                let n = rng.random_range(1..=spec.max_per_row.max(1));
                let mut vs: Vec<u16> = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = samplers[ai].sample(rng) as u16;
                    if !vs.contains(&v) {
                        vs.push(v);
                    }
                }
                vs.sort_unstable();
                let values: Vec<Value> = vs
                    .iter()
                    .map(|&v| Value::str(spec.values[v as usize].clone()))
                    .collect();
                if let RawCol::Multi(c) = &mut raw[ai] {
                    c.push(vs);
                }
                cells.push(Cell::Many(values));
            } else {
                let v = samplers[ai].sample(rng) as u16;
                if let RawCol::Single(c) = &mut raw[ai] {
                    c.push(v);
                }
                cells.push(Cell::One(Value::str(spec.values[v as usize].clone())));
            }
        }
        builder.push_row(cells);
    }
    (builder.build(), raw)
}

/// A planted latent-score bias — the generative side of an insight.
struct Bias {
    entity: Entity,
    attr: usize,
    value: u16,
    dim: usize,
    delta: f64,
}

/// Shared rating-generation loop.
#[allow(clippy::too_many_arguments)]
fn generate_ratings(
    rng: &mut StdRng,
    params: &GenParams,
    dims: &[&str],
    base_mean: f64,
    noise_sd: f64,
    reviewer_raw: &[RawCol],
    item_raw: &[RawCol],
    biases: &[Bias],
) -> RatingTableBuilder {
    let mut rb = RatingTableBuilder::new(dims.iter().map(|s| (*s).to_owned()).collect(), 5);
    let item_pop = ZipfSampler::new(params.items, 0.8);
    let reviewer_extra = ZipfSampler::new(params.reviewers, 0.7);
    let mut scores = vec![0u8; dims.len()];
    for rec in 0..params.ratings {
        // First half round-robin (guarantees per-reviewer coverage, like
        // MovieLens's ≥20-ratings floor), second half Zipf-skewed activity.
        let reviewer = if rec % 2 == 0 {
            (rec / 2) % params.reviewers
        } else {
            reviewer_extra.sample(rng)
        };
        let item = item_pop.sample(rng);
        for (d, score) in scores.iter_mut().enumerate() {
            let mut mean = base_mean;
            for b in biases {
                if b.dim != d {
                    continue;
                }
                let raw = match b.entity {
                    Entity::Reviewer => reviewer_raw,
                    Entity::Item => item_raw,
                };
                let row = match b.entity {
                    Entity::Reviewer => reviewer,
                    Entity::Item => item,
                };
                if raw[b.attr].row_has(row, b.value) {
                    mean += b.delta;
                }
            }
            *score = sample_score(rng, mean, noise_sd, 5);
        }
        rb.push(reviewer as u32, item as u32, &scores);
    }
    rb
}

fn insight(
    id: usize,
    entity: Entity,
    attr_name: &str,
    value: &str,
    dim_name: &str,
    polarity: Polarity,
    subject: &str,
) -> Insight {
    let direction = match polarity {
        Polarity::Highest => "highest",
        Polarity::Lowest => "lowest",
    };
    Insight {
        id,
        description: format!("{subject} have the {direction} {dim_name} ratings"),
        entity,
        attr_name: attr_name.to_owned(),
        dim_name: dim_name.to_owned(),
        value: Value::str(value),
        polarity,
        min_support: 5,
    }
}

/// The MovieLens-100K-like dataset (12 attributes, 1 rating dimension).
///
/// ```
/// use subdex_data::{movielens, GenParams};
/// let ds = movielens::dataset(GenParams::new(100, 50, 500, 7));
/// assert_eq!(ds.db.stats().attr_count, 12);
/// assert_eq!(ds.insights.len(), 5);
/// ```
pub mod movielens {
    use super::*;

    /// Table 2 cardinalities: 943 reviewers, 1 682 movies, 100K ratings.
    pub fn default_params() -> GenParams {
        GenParams::new(943, 1682, 100_000, 0x4d4c)
    }

    const OCCUPATIONS: [&str; 21] = [
        "administrator",
        "artist",
        "doctor",
        "educator",
        "engineer",
        "entertainment",
        "executive",
        "healthcare",
        "homemaker",
        "lawyer",
        "librarian",
        "marketing",
        "none",
        "other",
        "programmer",
        "retired",
        "salesman",
        "scientist",
        "student",
        "technician",
        "writer",
    ];
    const GENRES: [&str; 19] = [
        "Action",
        "Adventure",
        "Animation",
        "Children",
        "Comedy",
        "Crime",
        "Documentary",
        "Drama",
        "Fantasy",
        "FilmNoir",
        "Horror",
        "Musical",
        "Mystery",
        "Romance",
        "SciFi",
        "Thriller",
        "War",
        "Western",
        "Unknown",
    ];

    fn reviewer_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::single("gender", &["M", "F"], 0.3),
            AttrSpec::single(
                "age_group",
                &[
                    "under18", "18-24", "25-34", "35-44", "45-49", "50-55", "56+",
                ],
                0.5,
            ),
            AttrSpec::single("occupation", &OCCUPATIONS, 0.6),
            AttrSpec::single_gen("state", "state_", 29, 0.8),
            AttrSpec::single("region", &["Northeast", "Midwest", "South", "West"], 0.2),
            AttrSpec::single("city_size", &["urban", "suburban", "rural"], 0.4),
        ]
    }

    fn item_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::multi("genre", &GENRES, 0.7, 3),
            AttrSpec::single(
                "decade",
                &[
                    "1920s", "1930s", "1940s", "1950s", "1960s", "1970s", "1980s", "1990s",
                ],
                1.2,
            ),
            AttrSpec::single("era", &["classic", "golden", "modern"], 0.6),
            AttrSpec::single(
                "popularity",
                &["blockbuster", "popular", "niche", "obscure"],
                0.3,
            ),
            AttrSpec::single("length", &["short", "medium", "long"], 0.3),
            AttrSpec::single_gen("country", "country_", 10, 1.0),
        ]
    }

    /// Generates the un-finalized tables.
    pub fn generate(params: GenParams) -> RawTables {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let r_specs = reviewer_specs();
        let i_specs = item_specs();
        let (reviewers, r_raw) = build_entity(&mut rng, params.reviewers, &r_specs);
        let (items, i_raw) = build_entity(&mut rng, params.items, &i_specs);

        // Planted biases ↔ insights (genre indexes: Documentary 6,
        // Horror 10; occupation: retired 15; age under18 0; era classic 0).
        let biases = vec![
            Bias {
                entity: Entity::Item,
                attr: 0,
                value: 6,
                dim: 0,
                delta: 1.0,
            },
            Bias {
                entity: Entity::Item,
                attr: 0,
                value: 10,
                dim: 0,
                delta: -1.0,
            },
            Bias {
                entity: Entity::Item,
                attr: 2,
                value: 0,
                dim: 0,
                delta: 0.55,
            },
            Bias {
                entity: Entity::Reviewer,
                attr: 2,
                value: 15,
                dim: 0,
                delta: 0.65,
            },
            Bias {
                entity: Entity::Reviewer,
                attr: 1,
                value: 0,
                dim: 0,
                delta: -0.65,
            },
        ];
        let dims = ["overall"];
        let ratings = generate_ratings(&mut rng, &params, &dims, 3.5, 0.9, &r_raw, &i_raw, &biases);
        let insights = vec![
            insight(
                0,
                Entity::Item,
                "genre",
                "Documentary",
                "overall",
                Polarity::Highest,
                "Documentaries",
            ),
            insight(
                1,
                Entity::Item,
                "genre",
                "Horror",
                "overall",
                Polarity::Lowest,
                "Horror movies",
            ),
            insight(
                2,
                Entity::Item,
                "era",
                "classic",
                "overall",
                Polarity::Highest,
                "Classic-era movies",
            ),
            insight(
                3,
                Entity::Reviewer,
                "occupation",
                "retired",
                "overall",
                Polarity::Highest,
                "Retired reviewers",
            ),
            insight(
                4,
                Entity::Reviewer,
                "age_group",
                "under18",
                "overall",
                Polarity::Lowest,
                "Under-18 reviewers",
            ),
        ];
        RawTables {
            reviewers,
            items,
            ratings,
            dim_names: dims.iter().map(|s| (*s).to_owned()).collect(),
            insights,
        }
    }

    /// Generates and finalizes.
    pub fn dataset(params: GenParams) -> Dataset {
        generate(params).finish()
    }
}

/// The Yelp-restaurants-like dataset (24 attributes, 4 rating dimensions).
pub mod yelp {
    use super::*;

    /// Table 2 cardinalities: 150 318 reviewers, 93 restaurants, 200 500
    /// rating records.
    pub fn default_params() -> GenParams {
        GenParams::new(150_318, 93, 200_500, 0x59454c)
    }

    const CUISINES: [&str; 13] = [
        "American", "Barbeque", "Burgers", "Chinese", "FastFood", "French", "Indian", "Italian",
        "Japanese", "Mexican", "Pizza", "Sushi", "Thai",
    ];
    const NEIGHBORHOODS: [&str; 10] = [
        "Williamsburg",
        "SoHo",
        "KipsBay",
        "Tribeca",
        "Chelsea",
        "Midtown",
        "Harlem",
        "Astoria",
        "Bushwick",
        "GreenwichVillage",
    ];
    const OCCUPATIONS: [&str; 13] = [
        "student",
        "programmer",
        "teacher",
        "nurse",
        "chef",
        "driver",
        "artist",
        "lawyer",
        "manager",
        "clerk",
        "scientist",
        "retired",
        "other",
    ];

    fn reviewer_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::single("gender", &["male", "female", "unspecified"], 0.3),
            AttrSpec::single(
                "age_group",
                &["young", "adult", "middle_aged", "senior", "unknown"],
                0.4,
            ),
            AttrSpec::single("occupation", &OCCUPATIONS, 0.6),
            AttrSpec::single_gen("home_state", "st_", 10, 0.9),
            AttrSpec::single_gen("yelping_since", "y", 8, 0.5),
            AttrSpec::single("elite", &["yes", "no"], 0.8),
            AttrSpec::single("fans", &["none", "few", "some", "many"], 0.9),
            AttrSpec::single(
                "review_count",
                &["1-10", "11-50", "51-200", "201-500", "500+"],
                0.8,
            ),
            AttrSpec::single("avg_stars", &["1-2", "2-3", "3-4", "4-4.5", "4.5-5"], 0.4),
            AttrSpec::single("friends", &["none", "few", "some", "many"], 0.6),
            AttrSpec::single("compliments", &["none", "few", "some", "many"], 0.7),
            AttrSpec::single("device", &["mobile", "desktop", "tablet"], 0.5),
        ]
    }

    fn item_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::multi("cuisine", &CUISINES, 0.5, 2),
            AttrSpec::single("neighborhood", &NEIGHBORHOODS, 0.4),
            AttrSpec::single("price_range", &["$", "$$", "$$$", "$$$$"], 0.4),
            AttrSpec::single("noise", &["quiet", "average", "loud", "very_loud"], 0.4),
            AttrSpec::single("delivery", &["yes", "no"], 0.2),
            AttrSpec::single("outdoor", &["yes", "no"], 0.3),
            AttrSpec::single("groups", &["yes", "no"], 0.2),
            AttrSpec::single("alcohol", &["none", "beer_wine", "full_bar"], 0.3),
            AttrSpec::single("attire", &["casual", "dressy", "formal"], 0.7),
            AttrSpec::single("wifi", &["free", "paid", "no"], 0.5),
            AttrSpec::single("parking", &["street", "lot", "valet", "none"], 0.4),
            AttrSpec::single("reservations", &["yes", "no"], 0.2),
        ]
    }

    /// Generates the un-finalized tables.
    pub fn generate(params: GenParams) -> RawTables {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let r_specs = reviewer_specs();
        let i_specs = item_specs();
        let (reviewers, r_raw) = build_entity(&mut rng, params.reviewers, &r_specs);
        let (items, i_raw) = build_entity(&mut rng, params.items, &i_specs);

        // Dimensions: 0 overall, 1 food, 2 service, 3 ambiance.
        // Insight biases: Japanese(8) service+, FastFood(4) food−,
        // Williamsburg(0) food+, young(0) ambiance−, $$$$ (3) overall+.
        let biases = vec![
            Bias {
                entity: Entity::Item,
                attr: 0,
                value: 8,
                dim: 2,
                delta: 1.0,
            },
            Bias {
                entity: Entity::Item,
                attr: 0,
                value: 4,
                dim: 1,
                delta: -1.0,
            },
            Bias {
                entity: Entity::Item,
                attr: 1,
                value: 0,
                dim: 1,
                delta: 0.8,
            },
            Bias {
                entity: Entity::Reviewer,
                attr: 1,
                value: 0,
                dim: 3,
                delta: -0.7,
            },
            Bias {
                entity: Entity::Item,
                attr: 2,
                value: 3,
                dim: 0,
                delta: 0.8,
            },
        ];
        let dims = ["overall", "food", "service", "ambiance"];
        let ratings = generate_ratings(&mut rng, &params, &dims, 3.4, 0.9, &r_raw, &i_raw, &biases);
        let insights = vec![
            insight(
                0,
                Entity::Item,
                "cuisine",
                "Japanese",
                "service",
                Polarity::Highest,
                "Japanese restaurants",
            ),
            insight(
                1,
                Entity::Item,
                "cuisine",
                "FastFood",
                "food",
                Polarity::Lowest,
                "Fast-food restaurants",
            ),
            insight(
                2,
                Entity::Item,
                "neighborhood",
                "Williamsburg",
                "food",
                Polarity::Highest,
                "Williamsburg restaurants",
            ),
            insight(
                3,
                Entity::Reviewer,
                "age_group",
                "young",
                "ambiance",
                Polarity::Lowest,
                "Young reviewers",
            ),
            insight(
                4,
                Entity::Item,
                "price_range",
                "$$$$",
                "overall",
                Polarity::Highest,
                "Top-price restaurants",
            ),
        ];
        RawTables {
            reviewers,
            items,
            ratings,
            dim_names: dims.iter().map(|s| (*s).to_owned()).collect(),
            insights,
        }
    }

    /// Generates and finalizes.
    pub fn dataset(params: GenParams) -> Dataset {
        generate(params).finish()
    }
}

/// The Hotel-Reviews-like dataset (8 attributes, 4 rating dimensions).
pub mod hotels {
    use super::*;

    /// Table 2 cardinalities: 15 493 reviewers, 879 hotels, 35 912 records.
    pub fn default_params() -> GenParams {
        GenParams::new(15_493, 879, 35_912, 0x484f54)
    }

    fn reviewer_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::single_gen("country", "country_", 62, 1.1),
            AttrSpec::single(
                "traveler_type",
                &["business", "couple", "family", "solo", "group"],
                0.4,
            ),
            AttrSpec::single(
                "age_group",
                &["young", "adult", "middle_aged", "senior", "unknown"],
                0.4,
            ),
            AttrSpec::single("membership", &["none", "silver", "gold", "platinum"], 0.8),
        ]
    }

    fn item_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::single_gen("city", "city_", 40, 0.9),
            AttrSpec::single("stars", &["1", "2", "3", "4", "5"], 0.3),
            AttrSpec::single_gen("chain", "chain_", 12, 0.7),
            AttrSpec::multi(
                "amenities",
                &[
                    "pool",
                    "spa",
                    "gym",
                    "wifi",
                    "parking",
                    "bar",
                    "restaurant",
                    "shuttle",
                    "pets",
                    "laundry",
                ],
                0.4,
                4,
            ),
        ]
    }

    /// Generates the un-finalized tables.
    pub fn generate(params: GenParams) -> RawTables {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let r_specs = reviewer_specs();
        let i_specs = item_specs();
        let (reviewers, r_raw) = build_entity(&mut rng, params.reviewers, &r_specs);
        let (items, i_raw) = build_entity(&mut rng, params.items, &i_specs);

        // Dimensions: 0 overall, 1 cleanliness, 2 food, 3 comfort.
        // Biases: 5-star hotels cleanliness+, 1-star comfort−, spa (amenity
        // 1) comfort+, business travelers food−, platinum members overall+.
        let biases = vec![
            Bias {
                entity: Entity::Item,
                attr: 1,
                value: 4,
                dim: 1,
                delta: 0.9,
            },
            Bias {
                entity: Entity::Item,
                attr: 1,
                value: 0,
                dim: 3,
                delta: -0.9,
            },
            Bias {
                entity: Entity::Item,
                attr: 3,
                value: 1,
                dim: 3,
                delta: 0.7,
            },
            Bias {
                entity: Entity::Reviewer,
                attr: 1,
                value: 0,
                dim: 2,
                delta: -0.7,
            },
            Bias {
                entity: Entity::Reviewer,
                attr: 3,
                value: 3,
                dim: 0,
                delta: 0.8,
            },
        ];
        let dims = ["overall", "cleanliness", "food", "comfort"];
        let ratings = generate_ratings(&mut rng, &params, &dims, 3.6, 0.9, &r_raw, &i_raw, &biases);
        let insights = vec![
            insight(
                0,
                Entity::Item,
                "stars",
                "5",
                "cleanliness",
                Polarity::Highest,
                "Five-star hotels",
            ),
            insight(
                1,
                Entity::Item,
                "stars",
                "1",
                "comfort",
                Polarity::Lowest,
                "One-star hotels",
            ),
            insight(
                2,
                Entity::Item,
                "amenities",
                "spa",
                "comfort",
                Polarity::Highest,
                "Spa hotels",
            ),
            insight(
                3,
                Entity::Reviewer,
                "traveler_type",
                "business",
                "food",
                Polarity::Lowest,
                "Business travelers",
            ),
            insight(
                4,
                Entity::Reviewer,
                "membership",
                "platinum",
                "overall",
                Polarity::Highest,
                "Platinum members",
            ),
        ];
        RawTables {
            reviewers,
            items,
            ratings,
            dim_names: dims.iter().map(|s| (*s).to_owned()).collect(),
            insights,
        }
    }

    /// Generates and finalizes.
    pub fn dataset(params: GenParams) -> Dataset {
        generate(params).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movielens_matches_table2_shape() {
        let ds = movielens::dataset(GenParams::new(943, 1682, 10_000, 1));
        let s = ds.db.stats();
        assert_eq!(s.attr_count, 12);
        assert_eq!(s.dim_count, 1);
        assert_eq!(s.reviewer_count, 943);
        assert_eq!(s.item_count, 1682);
        assert_eq!(s.rating_count, 10_000);
        assert_eq!(s.max_values, 29, "state has 29 values");
    }

    #[test]
    fn yelp_matches_table2_shape() {
        let ds = yelp::dataset(GenParams::new(2000, 93, 8000, 2));
        let s = ds.db.stats();
        assert_eq!(s.attr_count, 24);
        assert_eq!(s.dim_count, 4);
        assert_eq!(s.item_count, 93);
        assert!(s.max_values <= 13, "max values {}", s.max_values);
    }

    #[test]
    fn hotels_matches_table2_shape() {
        let ds = hotels::dataset(GenParams::new(3000, 879, 7000, 3));
        let s = ds.db.stats();
        assert_eq!(s.attr_count, 8);
        assert_eq!(s.dim_count, 4);
        assert_eq!(s.item_count, 879);
        assert_eq!(s.max_values, 62, "country has 62 values");
    }

    #[test]
    fn default_params_match_table2_cardinalities() {
        let m = movielens::default_params();
        assert_eq!((m.reviewers, m.items, m.ratings), (943, 1682, 100_000));
        let y = yelp::default_params();
        assert_eq!((y.reviewers, y.items, y.ratings), (150_318, 93, 200_500));
        let h = hotels::default_params();
        assert_eq!((h.reviewers, h.items, h.ratings), (15_493, 879, 35_912));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = yelp::dataset(GenParams::new(500, 93, 2000, 42));
        let b = yelp::dataset(GenParams::new(500, 93, 2000, 42));
        for rec in [0u32, 100, 1999] {
            assert_eq!(
                a.db.ratings().reviewer_of(rec),
                b.db.ratings().reviewer_of(rec)
            );
            for d in a.db.ratings().dims() {
                assert_eq!(a.db.ratings().score(rec, d), b.db.ratings().score(rec, d));
            }
        }
    }

    #[test]
    fn movielens_insights_verify_on_generated_data() {
        let ds = movielens::dataset(GenParams::new(943, 600, 40_000, 7));
        for ins in &ds.insights {
            assert!(
                ins.verify(&ds.db),
                "insight {} fails: {}",
                ins.id,
                ins.description
            );
        }
    }

    #[test]
    fn yelp_insights_verify_on_generated_data() {
        let ds = yelp::dataset(GenParams::new(3000, 93, 30_000, 7));
        for ins in &ds.insights {
            assert!(
                ins.verify(&ds.db),
                "insight {} fails: {}",
                ins.id,
                ins.description
            );
        }
    }

    #[test]
    fn hotels_insights_verify_on_generated_data() {
        let ds = hotels::dataset(GenParams::new(4000, 300, 30_000, 7));
        for ins in &ds.insights {
            assert!(
                ins.verify(&ds.db),
                "insight {} fails: {}",
                ins.id,
                ins.description
            );
        }
    }

    #[test]
    fn every_reviewer_gets_ratings_under_round_robin() {
        let ds = movielens::dataset(GenParams::new(100, 50, 4000, 9));
        for r in 0..100 {
            assert!(
                !ds.db.ratings().records_of_reviewer(r).is_empty(),
                "reviewer {r} has no ratings"
            );
        }
    }

    #[test]
    fn item_popularity_is_skewed() {
        let ds = movielens::dataset(GenParams::new(200, 200, 20_000, 11));
        let counts: Vec<usize> = (0..200)
            .map(|i| ds.db.ratings().records_of_item(i).len())
            .collect();
        let head: usize = counts[..20].iter().sum();
        let tail: usize = counts[180..].iter().sum();
        assert!(head > tail * 3, "Zipf head {head} vs tail {tail}");
    }
}
