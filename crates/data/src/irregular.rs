//! Irregular-group injection for Scenario I (Section 5.2).
//!
//! The paper plants "irregular" reviewer/item groups: a group described by
//! two or three attribute–value pairs, with at least five members, whose
//! rating scores on one dimension are all forced to the minimal value 1.
//! Descriptions are drawn uniformly at random (as in the paper); the
//! injector retries until the sampled description actually has enough
//! members *and* rating records.

use crate::datasets::RawTables;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subdex_store::{AttrId, DimId, Entity, RecordId, Value};

/// Injection parameters.
#[derive(Debug, Clone, Copy)]
pub struct IrregularSpec {
    /// How many reviewer-side groups to inject.
    pub reviewer_groups: usize,
    /// How many item-side groups to inject.
    pub item_groups: usize,
    /// Minimum members in a reviewer group (the paper uses 5).
    pub min_members: usize,
    /// Minimum members in an item group (item tables are often far
    /// smaller than reviewer tables — Yelp has 93 restaurants — so the
    /// floors are independent).
    pub min_item_members: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IrregularSpec {
    fn default() -> Self {
        Self {
            reviewer_groups: 1,
            item_groups: 1,
            min_members: 5,
            min_item_members: 5,
            seed: 0,
        }
    }
}

/// A planted irregular group (Scenario I ground truth).
#[derive(Debug, Clone)]
pub struct IrregularGroup {
    /// Which entity table the description selects.
    pub entity: Entity,
    /// The 2–3 describing attribute–value pairs (names + decoded values).
    pub description: Vec<(String, Value)>,
    /// The dimension whose scores were forced to 1.
    pub dim: DimId,
    /// The dimension's name.
    pub dim_name: String,
    /// Number of entity rows in the group.
    pub member_count: usize,
    /// Number of rating records forced to 1.
    pub record_count: usize,
    /// The affected record ids (ground truth for detection checks).
    pub records: Vec<RecordId>,
}

/// Injects irregular groups into un-finalized tables, overwriting the
/// affected records' scores with 1. Returns the ground truth. Groups that
/// cannot be placed after many retries are skipped (the returned list may
/// be shorter than requested on tiny datasets).
pub fn inject_irregular_groups(raw: &mut RawTables, spec: &IrregularSpec) -> Vec<IrregularGroup> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::new();
    for (entity, n) in [
        (Entity::Reviewer, spec.reviewer_groups),
        (Entity::Item, spec.item_groups),
    ] {
        for _ in 0..n {
            if let Some(g) = inject_one(raw, entity, spec, &mut rng) {
                out.push(g);
            }
        }
    }
    out
}

fn inject_one(
    raw: &mut RawTables,
    entity: Entity,
    spec: &IrregularSpec,
    rng: &mut StdRng,
) -> Option<IrregularGroup> {
    let table = match entity {
        Entity::Reviewer => &raw.reviewers,
        Entity::Item => &raw.items,
    };
    let schema = table.schema();
    let attr_ids: Vec<AttrId> = schema
        .attr_ids()
        .filter(|&a| table.dictionary(a).len() >= 2)
        .collect();
    if attr_ids.len() < 2 {
        return None;
    }

    const MAX_TRIES: usize = 400;
    for _ in 0..MAX_TRIES {
        // Sample a description of 2 or 3 distinct attributes with uniform
        // values, per the paper.
        let arity = if attr_ids.len() >= 3 && rng.random_bool(0.5) {
            3
        } else {
            2
        };
        let mut attrs: Vec<AttrId> = attr_ids.clone();
        // Partial Fisher–Yates for a distinct sample.
        for i in 0..arity {
            let j = rng.random_range(i..attrs.len());
            attrs.swap(i, j);
        }
        attrs.truncate(arity);
        let desc: Vec<(AttrId, subdex_store::ValueId)> = attrs
            .iter()
            .map(|&a| {
                let n = table.dictionary(a).len() as u32;
                (a, subdex_store::ValueId(rng.random_range(0..n)))
            })
            .collect();

        // Member rows: every description pair must hold.
        let floor = match entity {
            Entity::Reviewer => spec.min_members,
            Entity::Item => spec.min_item_members,
        };
        let members: Vec<u32> = (0..table.len() as u32)
            .filter(|&row| desc.iter().all(|&(a, v)| table.row_has(row, a, v)))
            .collect();
        if members.len() < floor {
            continue;
        }

        // Affected rating records.
        let member_set: std::collections::HashSet<u32> = members.iter().copied().collect();
        let keys = match entity {
            Entity::Reviewer => raw.ratings.reviewer_column(),
            Entity::Item => raw.ratings.item_column(),
        };
        let records: Vec<RecordId> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| member_set.contains(k))
            .map(|(i, _)| i as RecordId)
            .collect();
        if records.is_empty() {
            continue;
        }

        let dim = DimId(rng.random_range(0..raw.dim_names.len() as u16));
        for &rec in &records {
            raw.ratings.set_score(rec, dim, 1);
        }
        let description = desc
            .iter()
            .map(|&(a, v)| {
                (
                    schema.attr(a).name.clone(),
                    table.dictionary(a).value(v).clone(),
                )
            })
            .collect();
        return Some(IrregularGroup {
            entity,
            description,
            dim,
            dim_name: raw.dim_names[dim.index()].clone(),
            member_count: members.len(),
            record_count: records.len(),
            records,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{movielens, yelp};
    use crate::params::GenParams;

    fn small_yelp() -> RawTables {
        yelp::generate(GenParams::new(300, 40, 3000, 9))
    }

    #[test]
    fn injects_requested_groups() {
        let mut raw = small_yelp();
        let spec = IrregularSpec {
            reviewer_groups: 1,
            item_groups: 1,
            min_members: 5,
            min_item_members: 5,
            seed: 4,
        };
        let groups = inject_irregular_groups(&mut raw, &spec);
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().any(|g| g.entity == Entity::Reviewer));
        assert!(groups.iter().any(|g| g.entity == Entity::Item));
        for g in &groups {
            assert!(g.description.len() == 2 || g.description.len() == 3);
            assert!(g.member_count >= 5);
            assert!(g.record_count > 0);
        }
    }

    #[test]
    fn affected_records_are_all_ones() {
        let mut raw = small_yelp();
        let spec = IrregularSpec {
            reviewer_groups: 1,
            item_groups: 0,
            min_members: 5,
            min_item_members: 5,
            seed: 11,
        };
        let groups = inject_irregular_groups(&mut raw, &spec);
        let g = &groups[0];
        let dim = g.dim;
        let ds = raw.finish();
        let db = &ds.db;
        // Re-derive the member set from the description and check every one
        // of their records scores 1 on the dimension.
        let table = db.table(g.entity);
        let preds: Vec<_> = g
            .description
            .iter()
            .map(|(name, value)| db.pred(g.entity, name, value).unwrap())
            .collect();
        let q = subdex_store::SelectionQuery::from_preds(preds);
        let members = db.select_group(g.entity, &q);
        assert_eq!(members.len(), g.member_count);
        let mut affected = 0;
        for rec in 0..db.ratings().len() as u32 {
            let row = db.ratings().reviewer_of(rec);
            if members.contains(row) {
                assert_eq!(db.ratings().score(rec, dim), 1);
                affected += 1;
            }
        }
        assert_eq!(affected, g.record_count);
        let _ = table;
    }

    #[test]
    fn injection_is_deterministic() {
        let describe = |seed: u64| {
            let mut raw = small_yelp();
            let spec = IrregularSpec {
                seed,
                ..Default::default()
            };
            inject_irregular_groups(&mut raw, &spec)
                .into_iter()
                .map(|g| format!("{:?}{:?}{:?}", g.entity, g.description, g.dim))
                .collect::<Vec<_>>()
        };
        assert_eq!(describe(3), describe(3));
        assert_ne!(describe(3), describe(4));
    }

    #[test]
    fn works_on_movielens_too() {
        let mut raw = movielens::generate(GenParams::new(200, 100, 4000, 5));
        let groups = inject_irregular_groups(&mut raw, &IrregularSpec::default());
        assert!(!groups.is_empty());
        for g in &groups {
            assert_eq!(g.dim, DimId(0), "MovieLens has a single dimension");
        }
    }

    #[test]
    fn impossible_spec_skips_gracefully() {
        let mut raw = yelp::generate(GenParams::new(20, 5, 50, 1));
        let spec = IrregularSpec {
            reviewer_groups: 2,
            item_groups: 2,
            min_members: 1000, // cannot be satisfied
            min_item_members: 1000,
            seed: 0,
        };
        let groups = inject_irregular_groups(&mut raw, &spec);
        assert!(groups.is_empty());
    }
}
