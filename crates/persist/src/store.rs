//! The durable store: snapshot + WAL + an epoch-published in-memory
//! database.
//!
//! [`PersistentStore`] owns a directory holding one snapshot file and one
//! rating WAL, plus the current [`SubjectiveDb`] behind an `Arc`. Reads are
//! epoch-consistent by construction: sessions clone the `Arc` once and see
//! that database version for as long as they hold it, while appends publish
//! a *new* `Arc` (clone, mutate, swap) rather than mutating shared state —
//! an engine mid-step never observes a half-applied batch.
//!
//! Durability protocol for [`append_ratings`](PersistentStore::append_ratings):
//!
//! 1. validate the drafts against the current database (nothing invalid is
//!    ever made durable),
//! 2. frame + fsync them into the WAL ([`wal::WalWriter::append_batch`]),
//! 3. apply in memory and publish the new `Arc` with a bumped epoch.
//!
//! A crash after step 2 is recovered by [`open`](PersistentStore::open),
//! which replays the WAL on top of the last snapshot.
//! [`compact`](PersistentStore::compact) folds the log into a fresh snapshot
//! (temp-file + rename) and resets the log; batch sequence numbers make the
//! crash window between those two steps idempotent.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use subdex_store::{RatingDraft, StoreError, SubjectiveDb};

use crate::snapshot;
use crate::wal;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.sdx";
/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "ratings.wal";

/// Counters describing a store's persistence activity; rendered into the
/// service metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStats {
    /// Size of the most recent snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Wall time the snapshot load took at open (zero for `create`).
    pub load_micros: u64,
    /// WAL batches replayed at open.
    pub wal_replayed_batches: u64,
    /// Rating records replayed at open.
    pub wal_replayed_records: u64,
    /// Records appended through this store since open.
    pub appended_records: u64,
    /// Records appended since the last checkpoint (the dirty set).
    pub dirty_records: u64,
    /// Checkpoints (`compact`) completed since open.
    pub checkpoints: u64,
    /// Current database epoch.
    pub epoch: u64,
}

/// Serialized mutable state: the WAL writer and the dirty-record counter
/// move together under one lock so appends and checkpoints interleave
/// atomically.
struct State {
    wal: wal::WalWriter,
    dirty: u64,
}

/// A durable [`SubjectiveDb`] home directory. All methods take `&self`;
/// share the store behind an `Arc`.
pub struct PersistentStore {
    dir: PathBuf,
    state: Mutex<State>,
    /// The published database. Lock order: `state` before `published`.
    published: Mutex<Arc<SubjectiveDb>>,
    snapshot_bytes: AtomicU64,
    appended: AtomicU64,
    checkpoints: AtomicU64,
    load_micros: u64,
    wal_replayed_batches: u64,
    wal_replayed_records: u64,
}

impl std::fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PersistentStore {
    /// Initializes a store directory from an in-memory database: writes an
    /// initial snapshot and an empty WAL. Fails if the directory already
    /// holds a snapshot (use [`open`](Self::open) for that).
    pub fn create(dir: &Path, db: SubjectiveDb) -> Result<Self, StoreError> {
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            return Err(StoreError::io(format!(
                "{} already exists; open it instead of re-creating",
                snap_path.display()
            )));
        }
        std::fs::create_dir_all(dir).map_err(|e| StoreError::from_io("create store dir", e))?;
        let bytes = snapshot::write_snapshot(&db, 0, &snap_path)?;
        let wal = wal::WalWriter::create(
            &dir.join(WAL_FILE),
            db.ratings().dim_count(),
            db.ratings().scale(),
        )?;
        Ok(Self {
            dir: dir.to_owned(),
            state: Mutex::new(State { wal, dirty: 0 }),
            published: Mutex::new(Arc::new(db)),
            snapshot_bytes: AtomicU64::new(bytes),
            appended: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            load_micros: 0,
            wal_replayed_batches: 0,
            wal_replayed_records: 0,
        })
    }

    /// Opens an existing store directory: loads the snapshot, replays any
    /// WAL batches newer than it (each bumping the epoch exactly as the
    /// original append did), and truncates a torn WAL tail. This is the
    /// warm-start path — no CSV parsing, no index building.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let started = Instant::now();
        let (db, meta) = snapshot::read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let load_micros = started.elapsed().as_micros() as u64;
        let dims = db.ratings().dim_count();
        let scale = db.ratings().scale();
        let wal_path = dir.join(WAL_FILE);

        let (db, wal, replayed_batches, replayed_records) = if wal_path.exists() {
            let replay = wal::replay(&wal_path, dims, scale, meta.last_seq)?;
            let mut db = db;
            for batch in &replay.batches {
                db.append_ratings(&batch.drafts)?;
            }
            let start_seq = replay.info.last_seq.max(meta.last_seq);
            let info = wal::ReplayInfo {
                last_seq: start_seq,
                ..replay.info
            };
            let wal = wal::WalWriter::open(&wal_path, dims, scale, &info, replay.intact_len)?;
            (
                db,
                wal,
                replay.batches.len() as u64,
                replay.info.replayed_records,
            )
        } else {
            // Snapshot without a log (e.g. copied from a backup): start a
            // fresh log continuing the snapshot's sequence.
            let wal = wal::WalWriter::create_seeded(&wal_path, dims, scale, meta.last_seq)?;
            (db, wal, 0, 0)
        };

        Ok(Self {
            dir: dir.to_owned(),
            state: Mutex::new(State { wal, dirty: 0 }),
            published: Mutex::new(Arc::new(db)),
            snapshot_bytes: AtomicU64::new(meta.bytes),
            appended: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            load_micros,
            wal_replayed_batches: replayed_batches,
            wal_replayed_records: replayed_records,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The currently published database. Cheap (`Arc` clone); the returned
    /// handle is an epoch-consistent view that later appends never mutate.
    pub fn db(&self) -> Arc<SubjectiveDb> {
        Arc::clone(&self.published.lock())
    }

    /// Records appended since the last checkpoint.
    pub fn dirty_records(&self) -> u64 {
        self.state.lock().dirty
    }

    /// Durably appends a batch of ratings (WAL fsync, then in-memory apply
    /// and publish). Returns the new database epoch; callers use it to
    /// invalidate `GroupCache` / `DistanceCache` entries built against
    /// older epochs.
    pub fn append_ratings(&self, drafts: &[RatingDraft]) -> Result<u64, StoreError> {
        if drafts.is_empty() {
            return Ok(self.db().epoch());
        }
        let mut state = self.state.lock();
        let current = self.db();
        // Validate first: a draft the in-memory apply would reject must
        // never be made durable, or replay would fail on it.
        current.check_ratings(drafts)?;
        state.wal.append_batch(drafts)?;
        // Clone-mutate-publish: holders of the old Arc keep their epoch.
        let mut next = SubjectiveDb::clone(&current);
        next.append_ratings(drafts).expect("drafts validated above");
        let epoch = next.epoch();
        *self.published.lock() = Arc::new(next);
        state.dirty += drafts.len() as u64;
        self.appended
            .fetch_add(drafts.len() as u64, Ordering::Relaxed);
        Ok(epoch)
    }

    /// Folds every logged batch into a fresh snapshot and resets the WAL.
    /// Appends block for the duration; readers keep their `Arc`s and
    /// [`db`](Self::db) stays responsive. Returns the new snapshot size.
    ///
    /// Crash safety: the snapshot lands via temp-file + rename, and the log
    /// reset also lands via rename. Dying between the two leaves the old
    /// log in place — its batch sequences are all `<= last_seq` of the new
    /// snapshot, so the next open replays none of them.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let mut state = self.state.lock();
        let db = self.db();
        let seq = state.wal.seq();
        let bytes = snapshot::write_snapshot(&db, seq, &self.dir.join(SNAPSHOT_FILE))?;
        state.wal = wal::WalWriter::create_seeded(
            &self.dir.join(WAL_FILE),
            db.ratings().dim_count(),
            db.ratings().scale(),
            seq,
        )?;
        state.dirty = 0;
        self.snapshot_bytes.store(bytes, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(bytes)
    }

    /// A consistent snapshot of the persistence counters.
    pub fn stats(&self) -> PersistStats {
        let dirty = self.state.lock().dirty;
        PersistStats {
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            load_micros: self.load_micros,
            wal_replayed_batches: self.wal_replayed_batches,
            wal_replayed_records: self.wal_replayed_records,
            appended_records: self.appended.load(Ordering::Relaxed),
            dirty_records: dirty,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            epoch: self.db().epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{
        Cell, Entity, EntityTableBuilder, RatingTableBuilder, Schema, SelectionQuery, Value,
    };

    fn small_db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("gender", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec!["F".into()]);
        ub.push_row(vec!["M".into()]);

        let mut is = Schema::new();
        is.add("cuisine", true);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![Cell::Many(vec![Value::str("Pizza")])]);
        ib.push_row(vec![Cell::Many(vec![Value::str("Sushi")])]);

        let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
        rb.push(0, 0, &[4]);
        rb.push(1, 1, &[2]);
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(2, 2))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("subdex-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn create_append_reopen_recovers_appends() {
        let dir = temp_dir("recover");
        let store = PersistentStore::create(&dir, small_db()).unwrap();
        let epoch = store
            .append_ratings(&[
                RatingDraft::new(0, 1, vec![5]),
                RatingDraft::new(1, 0, vec![1]),
            ])
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(store.db().ratings().len(), 4);
        assert_eq!(store.dirty_records(), 2);
        // Simulated crash: drop without compact. The WAL holds the batch.
        drop(store);
        let store = PersistentStore::open(&dir).unwrap();
        assert_eq!(store.db().ratings().len(), 4);
        assert_eq!(store.db().epoch(), 1);
        assert_eq!(store.stats().wal_replayed_batches, 1);
        assert_eq!(store.stats().wal_replayed_records, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_folds_wal_and_later_open_replays_nothing() {
        let dir = temp_dir("compact");
        let store = PersistentStore::create(&dir, small_db()).unwrap();
        store
            .append_ratings(&[RatingDraft::new(0, 1, vec![3])])
            .unwrap();
        store.compact().unwrap();
        assert_eq!(store.dirty_records(), 0);
        assert_eq!(store.stats().checkpoints, 1);
        // Append after the checkpoint: only this batch should replay.
        store
            .append_ratings(&[RatingDraft::new(1, 1, vec![4])])
            .unwrap();
        drop(store);
        let store = PersistentStore::open(&dir).unwrap();
        assert_eq!(store.db().ratings().len(), 4);
        let stats = store.stats();
        assert_eq!(stats.wal_replayed_batches, 1);
        assert_eq!(stats.wal_replayed_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_wal_after_snapshot_is_not_replayed_twice() {
        // Simulates dying between "snapshot renamed" and "wal reset":
        // write a newer snapshot by hand while the old WAL still holds the
        // already-folded batch.
        let dir = temp_dir("stale");
        let store = PersistentStore::create(&dir, small_db()).unwrap();
        store
            .append_ratings(&[RatingDraft::new(0, 1, vec![3])])
            .unwrap();
        let db = store.db();
        let seq = 1; // the batch above
        snapshot::write_snapshot(&db, seq, &dir.join(SNAPSHOT_FILE)).unwrap();
        drop(store); // old WAL (holding seq 1) still on disk
        let store = PersistentStore::open(&dir).unwrap();
        assert_eq!(store.db().ratings().len(), 3, "batch must not re-apply");
        assert_eq!(store.stats().wal_replayed_batches, 0);
        // And the sequence continues, so new appends replay correctly.
        store
            .append_ratings(&[RatingDraft::new(1, 0, vec![2])])
            .unwrap();
        drop(store);
        let store = PersistentStore::open(&dir).unwrap();
        assert_eq!(store.db().ratings().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn readers_keep_epoch_consistent_views() {
        let dir = temp_dir("epoch");
        let store = PersistentStore::create(&dir, small_db()).unwrap();
        let before = store.db();
        store
            .append_ratings(&[RatingDraft::new(0, 1, vec![5])])
            .unwrap();
        let after = store.db();
        assert_eq!(before.ratings().len(), 2, "old view untouched");
        assert_eq!(after.ratings().len(), 3);
        assert_eq!(before.epoch(), 0);
        assert_eq!(after.epoch(), 1);
        // Group materialization on the old view ignores the append.
        let q = SelectionQuery::all();
        assert_eq!(before.collect_group_records(&q).len(), 2);
        assert_eq!(after.collect_group_records(&q).len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_drafts_are_rejected_and_leave_no_trace() {
        let dir = temp_dir("invalid");
        let store = PersistentStore::create(&dir, small_db()).unwrap();
        let err = store
            .append_ratings(&[RatingDraft::new(99, 0, vec![3])])
            .unwrap_err();
        assert_eq!(err.kind, subdex_store::StoreErrorKind::Invalid);
        assert_eq!(store.db().ratings().len(), 2);
        drop(store);
        let store = PersistentStore::open(&dir).unwrap();
        assert_eq!(store.stats().wal_replayed_batches, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = temp_dir("clobber");
        let _store = PersistentStore::create(&dir, small_db()).unwrap();
        assert!(PersistentStore::create(&dir, small_db()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_identical_across_save_load() {
        let dir = temp_dir("queries");
        let db = small_db();
        let q = SelectionQuery::from_preds(vec![db
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap()]);
        let expect = db.collect_group_records(&q);
        let store = PersistentStore::create(&dir, db).unwrap();
        drop(store);
        let store = PersistentStore::open(&dir).unwrap();
        assert_eq!(store.db().collect_group_records(&q), expect);
        assert!(store.stats().load_micros > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
