//! Little-endian binary encoding primitives shared by the snapshot and WAL
//! formats.
//!
//! The write side appends to a `Vec<u8>`; the read side is a bounds-checked
//! [`Cursor`] whose every method returns a [`StoreError`] instead of
//! panicking, which is what lets the crash-consistency proptests assert
//! that *no* byte mutation of a persisted file can panic the reader.
//! Length prefixes are sanity-checked against the bytes actually remaining,
//! so a corrupted length can never trigger a multi-gigabyte allocation.

use subdex_store::{StoreError, Value};

/// Appends a `u16` (little-endian).
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` (little-endian).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32_slice(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u32(out, x);
    }
}

/// Appends a length-prefixed `u64` slice.
pub fn put_u64_slice(out: &mut Vec<u8>, v: &[u64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u64(out, x);
    }
}

/// Appends a length-prefixed byte slice.
pub fn put_u8_slice(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

/// Appends a length-prefixed attribute value.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Str(s) => {
            out.push(0);
            put_str(out, s);
        }
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
}

/// A bounds-checked reader over a byte slice.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Label used in error contexts, e.g. `"snapshot section meta"`.
    what: &'a str,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor over `bytes`; `what` labels errors.
    pub fn new(bytes: &'a [u8], what: &'a str) -> Self {
        Self {
            bytes,
            pos: 0,
            what,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn truncated(&self) -> StoreError {
        StoreError::corrupt(format!("{}: truncated at byte {}", self.what, self.pos))
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(self.truncated());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length prefix that counts items of `item_bytes` each,
    /// verifying the advertised length fits in the remaining bytes (so a
    /// corrupt length cannot drive an absurd allocation).
    pub fn len_prefix(&mut self, item_bytes: usize) -> Result<usize, StoreError> {
        let n = self.u64()?;
        let need = (n as usize).checked_mul(item_bytes.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(n as usize),
            _ => Err(StoreError::corrupt(format!(
                "{}: length {n} exceeds remaining {} bytes",
                self.what,
                self.remaining()
            ))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self.truncated());
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{}: invalid UTF-8 string", self.what)))
    }

    /// Reads a length-prefixed `u32` vector in one bulk take — the hot
    /// path of snapshot load (rating columns, CSR arrays, posting lists).
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.len_prefix(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a length-prefixed `u64` vector in one bulk take (compressed
    /// index bitmap containers).
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, StoreError> {
        let n = self.len_prefix(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a length-prefixed byte vector.
    pub fn u8_vec(&mut self) -> Result<Vec<u8>, StoreError> {
        let n = self.len_prefix(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed attribute value.
    pub fn value(&mut self) -> Result<Value, StoreError> {
        match self.u8()? {
            0 => Ok(Value::Str(self.str()?)),
            1 => Ok(Value::Int(self.i64()?)),
            tag => Err(StoreError::corrupt(format!(
                "{}: unknown value tag {tag}",
                self.what
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "caffè");
        put_u32_slice(&mut buf, &[1, 2, 3]);
        put_u64_slice(&mut buf, &[u64::MAX, 0]);
        put_u8_slice(&mut buf, &[9, 8]);
        put_value(&mut buf, &Value::str("NYC"));
        put_value(&mut buf, &Value::int(-5));

        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.u16().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.str().unwrap(), "caffè");
        assert_eq!(c.u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(c.u64_vec().unwrap(), vec![u64::MAX, 0]);
        assert_eq!(c.u8_vec().unwrap(), vec![9, 8]);
        assert_eq!(c.value().unwrap(), Value::str("NYC"));
        assert_eq!(c.value().unwrap(), Value::int(-5));
        assert!(c.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut c = Cursor::new(&buf[..5], "test");
        assert!(c.u64().is_err());
    }

    #[test]
    fn absurd_length_is_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // claims u64::MAX u32 items follow
        let mut c = Cursor::new(&buf, "test");
        let err = c.u32_vec().unwrap_err();
        assert!(err.context.contains("exceeds remaining"), "{err}");
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut c = Cursor::new(&buf, "test");
        assert!(c.str().is_err());
    }
}
