//! The rating write-ahead log.
//!
//! Appends become durable *before* they are applied in memory: each batch
//! of [`RatingDraft`]s is framed, CRC'd, written and fsync'd; only then
//! does the store mutate its in-memory database. On open the log is
//! replayed on top of the last snapshot, so a crash after the fsync loses
//! nothing.
//!
//! File layout:
//!
//! ```text
//! header  magic "SDXWAL01" (8) · version u32 · dim_count u16 · scale u8 ·
//!         reserved u8
//! frame   len u32 · crc32 u32 · payload [len]
//! payload seq u64 · count u32 · {reviewer u32, item u32, scores [dims]}…
//! ```
//!
//! Crash semantics (what the recovery tests pin down):
//!
//! * A frame whose bytes run past EOF, or whose *final*-frame CRC fails, is
//!   a **torn tail** — the process died mid-write before the fsync
//!   returned, so the frame was never acknowledged. Replay drops it and
//!   every loaded record is an exact prefix of what was written.
//! * A CRC mismatch on any frame *followed by more data* cannot be a torn
//!   write (later frames made it to disk, so this one was acknowledged):
//!   that is real corruption and replay returns
//!   [`StoreErrorKind::Corrupt`](subdex_store::StoreErrorKind) rather than
//!   resynchronize past damaged acknowledged data.
//! * Frames carry monotonically increasing batch sequence numbers; replay
//!   skips frames already folded into the snapshot (`seq <= last_seq`),
//!   which makes the crash window between "snapshot renamed" and "log
//!   reset" idempotent.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use subdex_store::{RatingDraft, StoreError};

use crate::codec::{put_u32, put_u64, Cursor};
use crate::crc::crc32;

/// Leading magic of a WAL file, format generation 1.
pub const MAGIC: &[u8; 8] = b"SDXWAL01";
/// Current WAL format version.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 16;
const FRAME_HEADER_LEN: usize = 8;

/// One replayed batch: its sequence number and records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Monotone batch sequence (1-based; 0 means "nothing logged yet").
    pub seq: u64,
    /// The records of the batch, in append order.
    pub drafts: Vec<RatingDraft>,
}

/// What a replay observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayInfo {
    /// Frames decoded (including ones skipped as already snapshotted).
    pub frames: u64,
    /// Records inside replayed (non-skipped) frames.
    pub replayed_records: u64,
    /// Whether a torn tail frame was dropped.
    pub dropped_tail: bool,
    /// Highest sequence number seen (0 when the log is empty).
    pub last_seq: u64,
}

/// An open, appendable WAL file.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    dim_count: usize,
    scale: u8,
    /// Sequence of the last appended (or replayed) batch.
    seq: u64,
}

fn header_bytes(dim_count: usize, scale: u8) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(MAGIC);
    put_u32(&mut h, FORMAT_VERSION);
    h.extend_from_slice(&(dim_count as u16).to_le_bytes());
    h.push(scale);
    h.push(0); // reserved
    h
}

impl WalWriter {
    /// Creates a fresh WAL at `path` whose records carry `dim_count` scores
    /// on the scale `1..=scale`. The sequence counter starts at 0.
    pub fn create(path: &Path, dim_count: usize, scale: u8) -> Result<Self, StoreError> {
        Self::create_seeded(path, dim_count, scale, 0)
    }

    /// Like [`create`](Self::create), but the first appended batch gets
    /// sequence `start_seq + 1`. Used by `compact()`, which resets the log
    /// while the global batch sequence keeps counting — replay decides what
    /// to skip by comparing against the snapshot's `last_seq`, so a reset
    /// log must not restart at 1.
    ///
    /// The header is written to a temp file and atomically renamed over
    /// `path`, so a crash mid-reset leaves either the complete old log
    /// (whose frames the next replay skips) or the complete new one —
    /// never a half-written header.
    pub fn create_seeded(
        path: &Path,
        dim_count: usize,
        scale: u8,
        start_seq: u64,
    ) -> Result<Self, StoreError> {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let tmp = dir.join(format!(
            ".{}.tmp-{}",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "wal".to_owned()),
            std::process::id()
        ));
        let mut file = File::create(&tmp).map_err(|e| StoreError::from_io("create wal", e))?;
        file.write_all(&header_bytes(dim_count, scale))
            .map_err(|e| StoreError::from_io("write wal header", e))?;
        file.sync_all()
            .map_err(|e| StoreError::from_io("fsync wal header", e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| StoreError::from_io("rename wal", e))?;
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::from_io("reopen wal", e))?;
        file.seek_to_end()
            .map_err(|e| StoreError::from_io("seek wal", e))?;
        Ok(Self {
            file,
            path: path.to_owned(),
            dim_count,
            scale,
            seq: start_seq,
        })
    }

    /// Opens an existing WAL for appending, continuing after `last_seq`
    /// (the highest sequence [`replay`] returned). If the replay dropped a
    /// torn tail, the file is truncated back to the last intact frame so
    /// new appends cannot follow damaged bytes.
    pub fn open(
        path: &Path,
        dim_count: usize,
        scale: u8,
        replay: &ReplayInfo,
        intact_len: u64,
    ) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::from_io("open wal", e))?;
        file.set_len(intact_len)
            .map_err(|e| StoreError::from_io("truncate torn wal tail", e))?;
        let mut w = Self {
            file,
            path: path.to_owned(),
            dim_count,
            scale,
            seq: replay.last_seq,
        };
        w.file
            .seek_to_end()
            .map_err(|e| StoreError::from_io("seek wal", e))?;
        Ok(w)
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number of the last durable batch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Frames, writes, and fsyncs one batch. When this returns `Ok`, the
    /// batch is durable: replay after any crash will surface it. Returns
    /// the batch's sequence number.
    pub fn append_batch(&mut self, drafts: &[RatingDraft]) -> Result<u64, StoreError> {
        for (i, d) in drafts.iter().enumerate() {
            if d.scores.len() != self.dim_count {
                return Err(StoreError::invalid(format!(
                    "wal append draft {i}: {} scores, log records {}",
                    d.scores.len(),
                    self.dim_count
                )));
            }
            if d.scores.iter().any(|&s| s == 0 || s > self.scale) {
                return Err(StoreError::invalid(format!(
                    "wal append draft {i}: score outside 1..={}",
                    self.scale
                )));
            }
        }
        let seq = self.seq + 1;
        let mut payload = Vec::with_capacity(12 + drafts.len() * (8 + self.dim_count));
        put_u64(&mut payload, seq);
        put_u32(&mut payload, drafts.len() as u32);
        for d in drafts {
            put_u32(&mut payload, d.reviewer);
            put_u32(&mut payload, d.item);
            payload.extend_from_slice(&d.scores);
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::from_io("write wal frame", e))?;
        self.file
            .sync_data()
            .map_err(|e| StoreError::from_io("fsync wal frame", e))?;
        self.seq = seq;
        Ok(seq)
    }
}

/// Tiny seek helper so `WalWriter::open` appends rather than overwrites.
trait SeekToEnd {
    fn seek_to_end(&mut self) -> std::io::Result<u64>;
}

impl SeekToEnd for File {
    fn seek_to_end(&mut self) -> std::io::Result<u64> {
        use std::io::Seek;
        self.seek(std::io::SeekFrom::End(0))
    }
}

/// Outcome of [`replay`]: the decodable batches, what happened, and the
/// byte length of the intact prefix (pass to [`WalWriter::open`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Batches with `seq > last_seq` of the snapshot, in order.
    pub batches: Vec<WalBatch>,
    /// Replay statistics.
    pub info: ReplayInfo,
    /// Byte offset of the end of the last intact frame.
    pub intact_len: u64,
}

/// Reads and validates a WAL, returning every batch newer than
/// `snapshot_seq`. See the module docs for the torn-tail-vs-corruption
/// decision rule.
pub fn replay(
    path: &Path,
    dim_count: usize,
    scale: u8,
    snapshot_seq: u64,
) -> Result<Replay, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| StoreError::from_io("read wal", e))?;
    replay_bytes(&bytes, dim_count, scale, snapshot_seq)
}

/// In-memory core of [`replay`] (what the crash proptests drive).
pub fn replay_bytes(
    bytes: &[u8],
    dim_count: usize,
    scale: u8,
    snapshot_seq: u64,
) -> Result<Replay, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::format("wal header too short"));
    }
    if &bytes[..8] != MAGIC {
        return Err(StoreError::format("not a SubDEx wal (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::format(format!(
            "wal format version {version} not supported (reader speaks {FORMAT_VERSION})"
        )));
    }
    let wal_dims = u16::from_le_bytes(bytes[12..14].try_into().unwrap()) as usize;
    let wal_scale = bytes[14];
    if wal_dims != dim_count || wal_scale != scale {
        return Err(StoreError::format(format!(
            "wal shape ({wal_dims} dims, scale {wal_scale}) does not match the database \
             ({dim_count} dims, scale {scale})"
        )));
    }

    let mut info = ReplayInfo::default();
    let mut batches = Vec::new();
    let mut pos = HEADER_LEN;
    let mut intact_len = HEADER_LEN as u64;
    let mut prev_seq = 0u64;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER_LEN {
            info.dropped_tail = true; // frame header torn mid-write
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let frame_end = pos + FRAME_HEADER_LEN + len;
        if frame_end > bytes.len() {
            info.dropped_tail = true; // payload torn mid-write
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER_LEN..frame_end];
        if crc32(payload) != crc {
            if frame_end == bytes.len() {
                // Damaged final frame: indistinguishable from a torn write
                // of the payload bytes, so treat as unacknowledged.
                info.dropped_tail = true;
                break;
            }
            return Err(StoreError::corrupt(format!(
                "wal frame at byte {pos}: crc mismatch on acknowledged data"
            )));
        }
        let batch = decode_payload(payload, dim_count, scale, pos)?;
        if batch.seq <= prev_seq {
            return Err(StoreError::corrupt(format!(
                "wal frame at byte {pos}: sequence {} not increasing (after {prev_seq})",
                batch.seq
            )));
        }
        prev_seq = batch.seq;
        info.frames += 1;
        info.last_seq = batch.seq;
        if batch.seq > snapshot_seq {
            info.replayed_records += batch.drafts.len() as u64;
            batches.push(batch);
        }
        pos = frame_end;
        intact_len = frame_end as u64;
    }
    Ok(Replay {
        batches,
        info,
        intact_len,
    })
}

fn decode_payload(
    payload: &[u8],
    dim_count: usize,
    scale: u8,
    at: usize,
) -> Result<WalBatch, StoreError> {
    let mut c = Cursor::new(payload, "wal frame");
    let seq = c.u64()?;
    let count = c.u32()? as usize;
    let per_record = 8 + dim_count;
    if count.checked_mul(per_record) != Some(c.remaining()) {
        return Err(StoreError::corrupt(format!(
            "wal frame at byte {at}: record count disagrees with frame length"
        )));
    }
    let mut drafts = Vec::with_capacity(count);
    for _ in 0..count {
        let reviewer = c.u32()?;
        let item = c.u32()?;
        let scores = c.take(dim_count)?.to_vec();
        if scores.iter().any(|&s| s == 0 || s > scale) {
            return Err(StoreError::corrupt(format!(
                "wal frame at byte {at}: score outside 1..={scale}"
            )));
        }
        drafts.push(RatingDraft::new(reviewer, item, scores));
    }
    Ok(WalBatch { seq, drafts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("subdex-wal-{tag}-{}.wal", std::process::id()))
    }

    fn drafts(n: usize, base: u32) -> Vec<RatingDraft> {
        (0..n as u32)
            .map(|i| RatingDraft::new(base + i, i, vec![1 + (i % 5) as u8, 5 - (i % 5) as u8]))
            .collect()
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("rt");
        let mut w = WalWriter::create(&path, 2, 5).unwrap();
        let a = drafts(3, 0);
        let b = drafts(2, 100);
        assert_eq!(w.append_batch(&a).unwrap(), 1);
        assert_eq!(w.append_batch(&b).unwrap(), 2);
        let r = replay(&path, 2, 5, 0).unwrap();
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.batches[0].drafts, a);
        assert_eq!(r.batches[1].drafts, b);
        assert_eq!(r.info.last_seq, 2);
        assert!(!r.info.dropped_tail);
        // A snapshot at seq 1 skips the first batch but keeps the count.
        let r = replay(&path, 2, 5, 1).unwrap();
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].seq, 2);
        assert_eq!(r.info.frames, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_prefix_survives() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path, 2, 5).unwrap();
        w.append_batch(&drafts(3, 0)).unwrap();
        w.append_batch(&drafts(4, 50)).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop the file anywhere inside the second frame: replay must keep
        // exactly the first batch.
        let r = replay_bytes(&full, 2, 5, 0).unwrap();
        assert_eq!(r.batches.len(), 2);
        let first_end = HEADER_LEN + FRAME_HEADER_LEN + 12 + 3 * 10;
        for cut in [first_end + 1, first_end + 5, full.len() - 1] {
            let r = replay_bytes(&full[..cut], 2, 5, 0).unwrap();
            assert_eq!(r.batches.len(), 1, "cut at {cut}");
            assert!(r.info.dropped_tail);
            assert_eq!(r.intact_len as usize, first_end);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_frame_is_an_error_not_a_resync() {
        let path = temp_path("mid");
        let mut w = WalWriter::create(&path, 2, 5).unwrap();
        w.append_batch(&drafts(3, 0)).unwrap();
        w.append_batch(&drafts(3, 50)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Damage a payload byte of the FIRST frame (scores start after
        // header + frame header + seq + count).
        bytes[HEADER_LEN + FRAME_HEADER_LEN + 12 + 2] ^= 0xFF;
        let err = replay_bytes(&bytes, 2, 5, 0).unwrap_err();
        assert_eq!(err.kind, subdex_store::StoreErrorKind::Corrupt);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_final_frame_is_treated_as_torn() {
        let path = temp_path("fin");
        let mut w = WalWriter::create(&path, 2, 5).unwrap();
        w.append_batch(&drafts(3, 0)).unwrap();
        w.append_batch(&drafts(3, 50)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        let r = replay_bytes(&bytes, 2, 5, 0).unwrap();
        assert_eq!(r.batches.len(), 1);
        assert!(r.info.dropped_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_continues_the_sequence() {
        let path = temp_path("reopen");
        let mut w = WalWriter::create(&path, 2, 5).unwrap();
        w.append_batch(&drafts(2, 0)).unwrap();
        drop(w);
        let r = replay(&path, 2, 5, 0).unwrap();
        let mut w = WalWriter::open(&path, 2, 5, &r.info, r.intact_len).unwrap();
        assert_eq!(w.append_batch(&drafts(1, 9)).unwrap(), 2);
        let r = replay(&path, 2, 5, 0).unwrap();
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.info.last_seq, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_mismatch_is_a_format_error() {
        let path = temp_path("shape");
        let w = WalWriter::create(&path, 2, 5).unwrap();
        drop(w);
        let err = replay(&path, 3, 5, 0).unwrap_err();
        assert_eq!(err.kind, subdex_store::StoreErrorKind::Format);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_drafts_are_rejected_before_logging() {
        let path = temp_path("inv");
        let mut w = WalWriter::create(&path, 2, 5).unwrap();
        let err = w
            .append_batch(&[RatingDraft::new(0, 0, vec![6, 1])])
            .unwrap_err();
        assert_eq!(err.kind, subdex_store::StoreErrorKind::Invalid);
        // Nothing was written.
        let r = replay(&path, 2, 5, 0).unwrap();
        assert!(r.batches.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
