//! CRC-32 (IEEE 802.3 polynomial, the `zlib`/`gzip` checksum).
//!
//! Both persisted formats — snapshot sections and WAL frames — carry a
//! CRC-32 over their payload so damaged bytes are detected before any
//! decoding happens. The build environment vendors no checksum crate, so
//! the implementation lives here. It uses *slicing-by-eight*: eight
//! derived lookup tables let the hot loop fold eight input bytes per
//! iteration instead of one, which matters because warm start checksums
//! the entire multi-megabyte snapshot — at one byte per step the CRC, not
//! the decode, would dominate load time.

/// Eight reflected tables for polynomial `0xEDB88320`. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[j]` advances a byte `j` extra
/// positions through the shift register, so one XOR tree consumes eight
/// bytes at once.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation the sliced loop must match.
    fn crc32_simple(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"subdex"), crc32(b"subdex"));
    }

    #[test]
    fn sliced_matches_byte_at_a_time_at_every_length() {
        // Cover every remainder length and multi-block inputs.
        let data: Vec<u8> = (0u16..1024).map(|i| (i * 31 % 251) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_simple(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x40;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
