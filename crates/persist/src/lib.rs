//! # subdex-persist
//!
//! Durability layer for SubDEx databases: versioned binary snapshots, a
//! rating write-ahead log, and [`PersistentStore`] tying both to the
//! epoch-published in-memory [`SubjectiveDb`](subdex_store::SubjectiveDb).
//!
//! Why it exists: every process start used to rebuild the database from
//! CSV text — re-parsing, re-interning dictionaries, re-building inverted
//! indexes — before the first exploration session could run. A snapshot
//! stores the columnar in-memory layout directly (see [`snapshot`] for the
//! format), so warm start is a checksummed bulk read; the WAL (see [`wal`])
//! makes rating appends durable between checkpoints.
//!
//! Guarantees (pinned by the crash-consistency and round-trip test
//! suites):
//!
//! * **byte-identity** — a snapshot round-trip yields a database whose
//!   stats, scans and rating-group materializations are bit-for-bit equal
//!   to the original;
//! * **no torn reads** — any truncation or byte flip of a persisted file
//!   surfaces as a clean [`StoreError`](subdex_store::StoreError), never a
//!   panic or a silently-wrong database;
//! * **durable appends** — once `append_ratings` returns, the batch
//!   survives any crash; replay applies exactly the acknowledged prefix.

pub mod codec;
pub mod crc;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use snapshot::{read_snapshot, write_snapshot, write_snapshot_v1, SnapshotMeta};
pub use store::{PersistStats, PersistentStore, SNAPSHOT_FILE, WAL_FILE};
pub use wal::{Replay, ReplayInfo, WalBatch, WalWriter};

/// The store is shared service-wide behind an `Arc`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PersistentStore>();
};
