//! The versioned binary snapshot format for a [`SubjectiveDb`].
//!
//! A snapshot is a single file holding the entire database in its columnar
//! in-memory layout, so loading is a handful of bulk vector reads instead
//! of re-parsing CSV text, re-interning dictionaries and re-building
//! inverted indexes. Layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   magic "SDXSNAP1" (8) · version u32 · reserved u32   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section  id u16 · len u64 · crc32 u32 · payload [len]        │
//! │ …        (meta, reviewer table, item table, ratings,         │
//! │           reviewer containers, item containers)              │
//! ├──────────────────────────────────────────────────────────────┤
//! │ table    count u32 · {id u16, offset u64, len u64, crc u32}… │
//! ├──────────────────────────────────────────────────────────────┤
//! │ footer   table_offset u64 · table_crc u32 · "SDXSNEND" (8)   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every payload and the section table itself carry a CRC-32; the reader
//! verifies checksums and structural invariants before any decoded data is
//! used, and returns a [`StoreError`] (never panics, never yields a
//! silently-wrong database) on any mismatch. Writing streams through a
//! `BufWriter` into a temp file in the target directory, fsyncs, and
//! atomically renames over the destination, so a crashed writer leaves the
//! previous snapshot intact.
//!
//! Format history:
//!
//! * **v1** persisted flat posting lists (sections 5/6).
//! * **v2** persists the compressed hybrid containers directly
//!   (sections 7/8), preserving each container's class so load reproduces
//!   the in-memory index bit-for-bit. The reader accepts both: a v1 file's
//!   flat lists are promoted to containers on load, and a file missing
//!   index sections entirely falls back to rebuilding from the entity
//!   tables — any snapshot with intact tables yields a queryable database.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use subdex_store::{
    Column, CompressedIndex, Container, CsrColumn, Dictionary, Entity, EntityTable, InvertedIndex,
    RatingTable, Schema, StoreError, SubjectiveDb, ValueId,
};

use crate::codec::{
    put_str, put_u16, put_u32, put_u32_slice, put_u64, put_u64_slice, put_u8_slice, put_value,
    Cursor,
};
use crate::crc::crc32;

/// Leading magic: identifies a SubDEx snapshot, format generation 1.
pub const MAGIC: &[u8; 8] = b"SDXSNAP1";
/// Trailing magic: proves the footer (and thus the whole file) is complete.
pub const TAIL_MAGIC: &[u8; 8] = b"SDXSNEND";
/// Current format version; readers accept `1..=FORMAT_VERSION` and reject
/// anything newer.
pub const FORMAT_VERSION: u32 = 2;

const SEC_META: u16 = 1;
const SEC_REVIEWERS: u16 = 2;
const SEC_ITEMS: u16 = 3;
const SEC_RATINGS: u16 = 4;
/// Flat posting lists (format v1; still decoded, no longer written).
const SEC_REVIEWER_INDEX: u16 = 5;
const SEC_ITEM_INDEX: u16 = 6;
/// Compressed hybrid containers (format v2).
const SEC_REVIEWER_CINDEX: u16 = 7;
const SEC_ITEM_CINDEX: u16 = 8;

const HEADER_LEN: usize = 16;
const FOOTER_LEN: usize = 20;

/// What a loaded snapshot reports about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Database append epoch at snapshot time.
    pub epoch: u64,
    /// Highest WAL batch sequence folded into this snapshot; replay skips
    /// WAL frames at or below it.
    pub last_seq: u64,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
}

// ---------------------------------------------------------------- encoding

fn encode_meta(db: &SubjectiveDb, last_seq: u64) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, db.epoch());
    put_u64(&mut out, last_seq);
    let r = db.ratings();
    out.push(r.scale());
    put_u16(&mut out, r.dim_count() as u16);
    for name in r.dim_names() {
        put_str(&mut out, name);
    }
    put_u64(&mut out, db.reviewers().len() as u64);
    put_u64(&mut out, db.items().len() as u64);
    put_u64(&mut out, r.len() as u64);
    out
}

fn encode_entity_table(table: &EntityTable) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, table.len() as u64);
    put_u16(&mut out, table.schema().len() as u16);
    for (_, def) in table.schema().iter() {
        put_str(&mut out, &def.name);
        out.push(def.multi_valued as u8);
    }
    for attr in table.schema().attr_ids() {
        let dict = table.dictionary(attr);
        put_u64(&mut out, dict.len() as u64);
        for (_, v) in dict.iter() {
            put_value(&mut out, v);
        }
        match table.column(attr) {
            Column::Single(codes) => {
                out.push(0);
                put_u64(&mut out, codes.len() as u64);
                for id in codes {
                    put_u32(&mut out, id.0);
                }
            }
            Column::Multi(csr) => {
                out.push(1);
                put_u32_slice(&mut out, csr.offsets());
                put_u64(&mut out, csr.flat_values().len() as u64);
                for id in csr.flat_values() {
                    put_u32(&mut out, id.0);
                }
            }
        }
    }
    out
}

fn encode_ratings(r: &RatingTable) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32_slice(&mut out, r.reviewer_column());
    put_u32_slice(&mut out, r.item_column());
    for dim in r.dims() {
        put_u8_slice(&mut out, r.score_column(dim));
    }
    out
}

fn encode_index(index: &InvertedIndex) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, index.rows() as u64);
    put_u16(&mut out, index.posting_lists().len() as u16);
    for lists in index.posting_lists() {
        put_u64(&mut out, lists.len() as u64);
        for list in lists {
            put_u32_slice(&mut out, list);
        }
    }
    out
}

/// Container payload tags; part of the on-disk format, never renumber.
const TAG_ARRAY: u8 = 0;
const TAG_BITMAP: u8 = 1;
const TAG_RUNS: u8 = 2;

/// Encodes a compressed index container-by-container, preserving each
/// container's class so the loaded index is bit-for-bit the one that was
/// written (promotion is deterministic, but persisting the class means the
/// reader never has to re-derive it).
fn encode_cindex(index: &CompressedIndex) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, index.rows() as u64);
    put_u16(&mut out, index.containers().len() as u16);
    for per_attr in index.containers() {
        put_u64(&mut out, per_attr.len() as u64);
        for container in per_attr {
            match container {
                Container::Array(ids) => {
                    out.push(TAG_ARRAY);
                    put_u32_slice(&mut out, ids);
                }
                Container::Bitmap { words, card } => {
                    out.push(TAG_BITMAP);
                    put_u32(&mut out, *card);
                    put_u64_slice(&mut out, words);
                }
                Container::Runs { runs, card } => {
                    out.push(TAG_RUNS);
                    put_u32(&mut out, *card);
                    let flat: Vec<u32> =
                        runs.iter().flat_map(|&(start, len)| [start, len]).collect();
                    put_u32_slice(&mut out, &flat);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------- decoding

struct MetaFields {
    epoch: u64,
    last_seq: u64,
    scale: u8,
    dim_names: Vec<String>,
    reviewer_count: usize,
    item_count: usize,
    rating_count: usize,
}

fn decode_meta(bytes: &[u8]) -> Result<MetaFields, StoreError> {
    let mut c = Cursor::new(bytes, "snapshot meta");
    let epoch = c.u64()?;
    let last_seq = c.u64()?;
    let scale = c.u8()?;
    let dim_count = c.u16()? as usize;
    let mut dim_names = Vec::with_capacity(dim_count);
    for _ in 0..dim_count {
        dim_names.push(c.str()?);
    }
    Ok(MetaFields {
        epoch,
        last_seq,
        scale,
        dim_names,
        reviewer_count: c.u64()? as usize,
        item_count: c.u64()? as usize,
        rating_count: c.u64()? as usize,
    })
}

fn decode_value_ids(c: &mut Cursor<'_>) -> Result<Vec<ValueId>, StoreError> {
    Ok(c.u32_vec()?.into_iter().map(ValueId).collect())
}

fn decode_entity_table(bytes: &[u8], what: &str) -> Result<EntityTable, StoreError> {
    let mut c = Cursor::new(bytes, what);
    let rows = c.u64()? as usize;
    let attr_count = c.u16()? as usize;
    let mut schema = Schema::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..attr_count {
        let name = c.str()?;
        let multi = c.u8()? != 0;
        // `Schema::add` panics on duplicates; a damaged file must error.
        if !seen.insert(name.clone()) {
            return Err(StoreError::corrupt(format!(
                "{what}: duplicate attribute name {name:?}"
            )));
        }
        schema.add(name, multi);
    }
    let mut dicts = Vec::with_capacity(attr_count);
    let mut columns = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let value_count = c.len_prefix(2)?;
        let mut values = Vec::with_capacity(value_count);
        for _ in 0..value_count {
            values.push(c.value()?);
        }
        dicts.push(Dictionary::from_values(values)?);
        columns.push(match c.u8()? {
            0 => Column::Single(decode_value_ids(&mut c)?),
            1 => {
                let offsets = c.u32_vec()?;
                let values = decode_value_ids(&mut c)?;
                if offsets.is_empty() {
                    return Err(StoreError::corrupt(format!("{what}: empty CSR offsets")));
                }
                Column::Multi(CsrColumn::from_raw_parts(offsets, values)?)
            }
            tag => {
                return Err(StoreError::corrupt(format!(
                    "{what}: unknown column tag {tag}"
                )))
            }
        });
    }
    if !c.is_exhausted() {
        return Err(StoreError::corrupt(format!("{what}: trailing bytes")));
    }
    EntityTable::from_parts(schema, dicts, columns, rows)
}

fn decode_ratings(bytes: &[u8], meta: &MetaFields) -> Result<RatingTable, StoreError> {
    let mut c = Cursor::new(bytes, "snapshot ratings");
    let reviewers = c.u32_vec()?;
    let items = c.u32_vec()?;
    let mut scores = Vec::with_capacity(meta.dim_names.len());
    for _ in 0..meta.dim_names.len() {
        scores.push(c.u8_vec()?);
    }
    if !c.is_exhausted() {
        return Err(StoreError::corrupt("snapshot ratings: trailing bytes"));
    }
    if reviewers.len() != meta.rating_count {
        return Err(StoreError::corrupt(format!(
            "snapshot ratings: {} records, meta says {}",
            reviewers.len(),
            meta.rating_count
        )));
    }
    RatingTable::from_parts(
        meta.dim_names.clone(),
        meta.scale,
        reviewers,
        items,
        scores,
        meta.reviewer_count,
        meta.item_count,
    )
}

fn decode_index(bytes: &[u8], what: &str) -> Result<InvertedIndex, StoreError> {
    let mut c = Cursor::new(bytes, what);
    let rows = c.u64()? as usize;
    let attr_count = c.u16()? as usize;
    let mut postings = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let value_count = c.len_prefix(8)?;
        let mut lists = Vec::with_capacity(value_count);
        for _ in 0..value_count {
            lists.push(c.u32_vec()?);
        }
        postings.push(lists);
    }
    if !c.is_exhausted() {
        return Err(StoreError::corrupt(format!("{what}: trailing bytes")));
    }
    InvertedIndex::from_parts(postings, rows)
}

fn decode_cindex(bytes: &[u8], what: &str) -> Result<CompressedIndex, StoreError> {
    let mut c = Cursor::new(bytes, what);
    let rows = c.u64()? as usize;
    let attr_count = c.u16()? as usize;
    let mut containers = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let value_count = c.len_prefix(8)?;
        let mut per_attr = Vec::with_capacity(value_count);
        for _ in 0..value_count {
            per_attr.push(match c.u8()? {
                TAG_ARRAY => Container::Array(c.u32_vec()?),
                TAG_BITMAP => {
                    let card = c.u32()?;
                    Container::Bitmap {
                        words: c.u64_vec()?,
                        card,
                    }
                }
                TAG_RUNS => {
                    let card = c.u32()?;
                    let flat = c.u32_vec()?;
                    if flat.len() % 2 != 0 {
                        return Err(StoreError::corrupt(format!(
                            "{what}: run list has odd length {}",
                            flat.len()
                        )));
                    }
                    let runs = flat.chunks_exact(2).map(|p| (p[0], p[1])).collect();
                    Container::Runs { runs, card }
                }
                tag => {
                    return Err(StoreError::corrupt(format!(
                        "{what}: unknown container tag {tag}"
                    )))
                }
            });
        }
        containers.push(per_attr);
    }
    if !c.is_exhausted() {
        return Err(StoreError::corrupt(format!("{what}: trailing bytes")));
    }
    // `from_containers` re-validates every structural invariant (sorted
    // arrays, clear bitmap tails, disjoint runs, exact cardinalities), so a
    // damaged-but-CRC-colliding payload still cannot produce a wrong index.
    CompressedIndex::from_containers(containers, rows)
}

// ------------------------------------------------------------------- write

/// Writes `db` as a snapshot at `path` (temp file + atomic rename).
/// `last_seq` records the highest WAL batch sequence already applied to
/// `db`, so replay after reload can skip those frames. Returns the file
/// size in bytes.
pub fn write_snapshot(db: &SubjectiveDb, last_seq: u64, path: &Path) -> Result<u64, StoreError> {
    let sections: [(u16, Vec<u8>); 6] = [
        (SEC_META, encode_meta(db, last_seq)),
        (SEC_REVIEWERS, encode_entity_table(db.reviewers())),
        (SEC_ITEMS, encode_entity_table(db.items())),
        (SEC_RATINGS, encode_ratings(db.ratings())),
        (
            SEC_REVIEWER_CINDEX,
            encode_cindex(db.index(Entity::Reviewer)),
        ),
        (SEC_ITEM_CINDEX, encode_cindex(db.index(Entity::Item))),
    ];
    write_sections(FORMAT_VERSION, &sections, path)
}

/// Writes a format-**1** snapshot: flat posting-list sections instead of
/// compressed containers. The in-memory index no longer keeps flat lists,
/// so they are rebuilt from the entity tables here. Kept (and exercised in
/// tests) to prove that snapshots written before the container format still
/// load through the promotion path.
pub fn write_snapshot_v1(db: &SubjectiveDb, last_seq: u64, path: &Path) -> Result<u64, StoreError> {
    let sections: [(u16, Vec<u8>); 6] = [
        (SEC_META, encode_meta(db, last_seq)),
        (SEC_REVIEWERS, encode_entity_table(db.reviewers())),
        (SEC_ITEMS, encode_entity_table(db.items())),
        (SEC_RATINGS, encode_ratings(db.ratings())),
        (
            SEC_REVIEWER_INDEX,
            encode_index(&InvertedIndex::build(db.reviewers())),
        ),
        (
            SEC_ITEM_INDEX,
            encode_index(&InvertedIndex::build(db.items())),
        ),
    ];
    write_sections(1, &sections, path)
}

/// Streams `sections` to `path` under the framed-and-tabled layout
/// described in the module docs (temp file + fsync + atomic rename).
fn write_sections(
    version: u32,
    sections: &[(u16, Vec<u8>)],
    path: &Path,
) -> Result<u64, StoreError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir).map_err(|e| StoreError::from_io("create snapshot dir", e))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "snapshot".to_owned()),
        std::process::id()
    ));
    let file = File::create(&tmp).map_err(|e| StoreError::from_io("create snapshot temp", e))?;
    let mut w = BufWriter::new(file);

    let mut write = |bytes: &[u8]| -> Result<(), StoreError> {
        w.write_all(bytes)
            .map_err(|e| StoreError::from_io("write snapshot", e))
    };

    write(MAGIC)?;
    write(&version.to_le_bytes())?;
    write(&0u32.to_le_bytes())?; // reserved

    let mut offset = HEADER_LEN as u64;
    let mut table = Vec::new();
    put_u32(&mut table, sections.len() as u32);
    for (id, payload) in sections {
        let crc = crc32(payload);
        let mut frame = Vec::with_capacity(14);
        put_u16(&mut frame, *id);
        put_u64(&mut frame, payload.len() as u64);
        put_u32(&mut frame, crc);
        write(&frame)?;
        write(payload)?;
        put_u16(&mut table, *id);
        put_u64(&mut table, offset + 14); // payload offset
        put_u64(&mut table, payload.len() as u64);
        put_u32(&mut table, crc);
        offset += 14 + payload.len() as u64;
    }

    let table_offset = offset;
    let table_crc = crc32(&table);
    write(&table)?;
    write(&table_offset.to_le_bytes())?;
    write(&table_crc.to_le_bytes())?;
    write(TAIL_MAGIC)?;

    let total = table_offset + table.len() as u64 + FOOTER_LEN as u64;
    let file = w
        .into_inner()
        .map_err(|e| StoreError::io(format!("flush snapshot: {e}")))?;
    file.sync_all()
        .map_err(|e| StoreError::from_io("fsync snapshot", e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| StoreError::from_io("rename snapshot", e))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all(); // best-effort directory fsync for the rename
    }
    Ok(total)
}

// -------------------------------------------------------------------- read

/// Loads a snapshot written by [`write_snapshot`], verifying magic,
/// version, both CRC layers, and the structural invariants of every
/// decoded part.
pub fn read_snapshot(path: &Path) -> Result<(SubjectiveDb, SnapshotMeta), StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::from_io("read snapshot", e))?;
    let db = decode_snapshot(&bytes)?;
    Ok(db)
}

/// Decodes an in-memory snapshot image (the testable core of
/// [`read_snapshot`]).
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SubjectiveDb, SnapshotMeta), StoreError> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(StoreError::format("snapshot file too short"));
    }
    if &bytes[..8] != MAGIC {
        return Err(StoreError::format("not a SubDEx snapshot (bad magic)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if !(1..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::format(format!(
            "snapshot format version {version} not supported (reader speaks 1..={FORMAT_VERSION})"
        )));
    }
    let footer = &bytes[bytes.len() - FOOTER_LEN..];
    if &footer[12..] != TAIL_MAGIC {
        return Err(StoreError::corrupt(
            "snapshot footer incomplete (torn write?)",
        ));
    }
    let table_offset = u64::from_le_bytes(footer[..8].try_into().unwrap()) as usize;
    let table_crc = u32::from_le_bytes(footer[8..12].try_into().unwrap());
    if table_offset < HEADER_LEN || table_offset > bytes.len() - FOOTER_LEN {
        return Err(StoreError::corrupt("snapshot section table out of bounds"));
    }
    let table_bytes = &bytes[table_offset..bytes.len() - FOOTER_LEN];
    if crc32(table_bytes) != table_crc {
        return Err(StoreError::corrupt("snapshot section table crc mismatch"));
    }

    let mut c = Cursor::new(table_bytes, "snapshot section table");
    let count = c.u32()? as usize;
    let try_section = |want: u16| -> Result<Option<&[u8]>, StoreError> {
        find_section(bytes, table_bytes, count, want)
    };
    let section = |want: u16| -> Result<&[u8], StoreError> {
        try_section(want)?
            .ok_or_else(|| StoreError::corrupt(format!("snapshot section {want} missing")))
    };

    let meta = decode_meta(section(SEC_META)?)?;
    let reviewers = decode_entity_table(section(SEC_REVIEWERS)?, "snapshot reviewer table")?;
    let items = decode_entity_table(section(SEC_ITEMS)?, "snapshot item table")?;
    if reviewers.len() != meta.reviewer_count || items.len() != meta.item_count {
        return Err(StoreError::corrupt(
            "snapshot entity tables disagree with meta counts",
        ));
    }
    let ratings = decode_ratings(section(SEC_RATINGS)?, &meta)?;
    let reviewer_index = load_cindex(
        try_section(SEC_REVIEWER_CINDEX)?,
        try_section(SEC_REVIEWER_INDEX)?,
        &reviewers,
        "reviewer",
    )?;
    let item_index = load_cindex(
        try_section(SEC_ITEM_CINDEX)?,
        try_section(SEC_ITEM_INDEX)?,
        &items,
        "item",
    )?;

    let db = SubjectiveDb::from_parts(
        reviewers,
        items,
        ratings,
        reviewer_index,
        item_index,
        meta.epoch,
    )?;
    Ok((
        db,
        SnapshotMeta {
            epoch: meta.epoch,
            last_seq: meta.last_seq,
            bytes: bytes.len() as u64,
        },
    ))
}

/// Loads one entity side's compressed index with a three-step fallback
/// chain: the native container section (format v2), the flat posting
/// section (format v1, promoted to containers on load), and finally a
/// rebuild from the already-verified entity table itself.
fn load_cindex(
    cindex_bytes: Option<&[u8]>,
    flat_bytes: Option<&[u8]>,
    table: &EntityTable,
    what: &str,
) -> Result<CompressedIndex, StoreError> {
    if let Some(payload) = cindex_bytes {
        let index = decode_cindex(payload, &format!("snapshot {what} containers"))?;
        verify_cindex_matches(&index, table, what)?;
        return Ok(index);
    }
    if let Some(payload) = flat_bytes {
        let flat = decode_index(payload, &format!("snapshot {what} postings"))?;
        verify_index_matches(&flat, table, what)?;
        return Ok(CompressedIndex::from_inverted(&flat));
    }
    Ok(CompressedIndex::from_inverted(&InvertedIndex::build(table)))
}

/// Locates section `want` via the table, verifying bounds and payload CRC;
/// `Ok(None)` means the section simply is not present (expected when
/// reading across format versions — callers decide whether that is fatal).
fn find_section<'a>(
    bytes: &'a [u8],
    table_bytes: &[u8],
    count: usize,
    want: u16,
) -> Result<Option<&'a [u8]>, StoreError> {
    let mut c = Cursor::new(table_bytes, "snapshot section table");
    let _ = c.u32()?;
    for _ in 0..count {
        let id = c.u16()?;
        let offset = c.u64()? as usize;
        let len = c.u64()? as usize;
        let crc = c.u32()?;
        if id != want {
            continue;
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| StoreError::corrupt("snapshot section offset overflow"))?;
        if offset < HEADER_LEN + 14 || end > bytes.len() - FOOTER_LEN {
            return Err(StoreError::corrupt(format!(
                "snapshot section {want} out of bounds"
            )));
        }
        // The streaming writer frames each payload inline as
        // `id · len · crc`; cross-check it against the table entry so the
        // two framings cannot silently disagree.
        let mut frame = Vec::with_capacity(14);
        crate::codec::put_u16(&mut frame, id);
        crate::codec::put_u64(&mut frame, len as u64);
        crate::codec::put_u32(&mut frame, crc);
        if &bytes[offset - 14..offset] != frame.as_slice() {
            return Err(StoreError::corrupt(format!(
                "snapshot section {want}: inline frame disagrees with table"
            )));
        }
        let payload = &bytes[offset..end];
        if crc32(payload) != crc {
            return Err(StoreError::corrupt(format!(
                "snapshot section {want}: crc mismatch"
            )));
        }
        return Ok(Some(payload));
    }
    Ok(None)
}

/// The persisted posting lists must cover exactly the attributes and
/// dictionary sizes of their table — a sneaky mismatch would let stale
/// postings answer selections for the wrong values.
fn verify_index_matches(
    index: &InvertedIndex,
    table: &EntityTable,
    what: &str,
) -> Result<(), StoreError> {
    if index.posting_lists().len() != table.schema().len() {
        return Err(StoreError::corrupt(format!(
            "snapshot {what} postings cover {} attributes, table has {}",
            index.posting_lists().len(),
            table.schema().len()
        )));
    }
    for (attr, lists) in table.schema().attr_ids().zip(index.posting_lists()) {
        if lists.len() != table.dictionary(attr).len() {
            return Err(StoreError::corrupt(format!(
                "snapshot {what} postings for attribute {} cover {} values, dictionary has {}",
                attr.index(),
                lists.len(),
                table.dictionary(attr).len()
            )));
        }
    }
    Ok(())
}

/// The container analog of [`verify_index_matches`]: the persisted
/// compressed index must cover exactly the rows, attributes and dictionary
/// sizes of its table.
fn verify_cindex_matches(
    index: &CompressedIndex,
    table: &EntityTable,
    what: &str,
) -> Result<(), StoreError> {
    if index.rows() != table.len() {
        return Err(StoreError::corrupt(format!(
            "snapshot {what} containers cover {} rows, table has {}",
            index.rows(),
            table.len()
        )));
    }
    if index.containers().len() != table.schema().len() {
        return Err(StoreError::corrupt(format!(
            "snapshot {what} containers cover {} attributes, table has {}",
            index.containers().len(),
            table.schema().len()
        )));
    }
    for attr in table.schema().attr_ids() {
        if index.value_count(attr) != table.dictionary(attr).len() {
            return Err(StoreError::corrupt(format!(
                "snapshot {what} containers for attribute {} cover {} values, dictionary has {}",
                attr.index(),
                index.value_count(attr),
                table.dictionary(attr).len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_store::{
        Cell, Entity, EntityTableBuilder, RatingTableBuilder, SelectionQuery, Value,
    };

    fn small_db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("gender", false);
        us.add("age_group", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec!["F".into(), "Young".into()]);
        ub.push_row(vec!["M".into(), "Young".into()]);
        ub.push_row(vec!["F".into(), "Middle Aged".into()]);

        let mut is = Schema::new();
        is.add("cuisine", true);
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![
            Cell::Many(vec![Value::str("Pizza"), Value::str("Italian")]),
            "NYC".into(),
        ]);
        ib.push_row(vec![Cell::Many(vec![Value::str("Sushi")]), "Austin".into()]);

        let mut rb = RatingTableBuilder::new(vec!["overall".into(), "food".into()], 5);
        rb.push(0, 0, &[4, 5]);
        rb.push(1, 0, &[3, 3]);
        rb.push(1, 1, &[5, 4]);
        rb.push(2, 1, &[2, 1]);
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(3, 2))
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("subdex-snap-{tag}-{}.sdx", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = small_db();
        let path = temp_path("rt");
        let bytes = write_snapshot(&db, 7, &path).unwrap();
        let (loaded, meta) = read_snapshot(&path).unwrap();
        assert_eq!(meta.bytes, bytes);
        assert_eq!(meta.last_seq, 7);
        assert_eq!(meta.epoch, 0);
        assert_eq!(loaded.stats(), db.stats());
        // Queries answer identically (postings were persisted, not rebuilt).
        let q = SelectionQuery::from_preds(vec![db
            .pred(Entity::Reviewer, "age_group", &Value::str("Young"))
            .unwrap()]);
        assert_eq!(
            loaded.collect_group_records(&q),
            db.collect_group_records(&q)
        );
        // Container classes survive the round trip exactly: the persisted
        // index is the in-memory one, not a re-derived approximation.
        let (ls, ds) = (loaded.index_stats(), db.index_stats());
        assert_eq!(
            (ls.array_containers, ls.bitmap_containers, ls.run_containers),
            (ds.array_containers, ds.bitmap_containers, ds.run_containers)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_snapshot_loads_via_flat_posting_promotion() {
        let db = small_db();
        let path = temp_path("v1");
        write_snapshot_v1(&db, 3, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        let (loaded, meta) = read_snapshot(&path).unwrap();
        assert_eq!(meta.last_seq, 3);
        assert_eq!(loaded.stats(), db.stats());
        for (entity, attr, value) in [
            (Entity::Reviewer, "age_group", Value::str("Young")),
            (Entity::Item, "cuisine", Value::str("Pizza")),
        ] {
            let q = SelectionQuery::from_preds(vec![db.pred(entity, attr, &value).unwrap()]);
            assert_eq!(
                loaded.collect_group_records(&q),
                db.collect_group_records(&q),
                "query on {attr} must answer identically after v1 load"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_index_sections_rebuild_from_tables() {
        let db = small_db();
        let path = temp_path("rebuild");
        // A table-only snapshot: no index section of either format.
        let sections = [
            (SEC_META, encode_meta(&db, 0)),
            (SEC_REVIEWERS, encode_entity_table(db.reviewers())),
            (SEC_ITEMS, encode_entity_table(db.items())),
            (SEC_RATINGS, encode_ratings(db.ratings())),
        ];
        write_sections(FORMAT_VERSION, &sections, &path).unwrap();
        let (loaded, _) = read_snapshot(&path).unwrap();
        let q = SelectionQuery::from_preds(vec![db
            .pred(Entity::Item, "city", &Value::str("NYC"))
            .unwrap()]);
        assert_eq!(
            loaded.collect_group_records(&q),
            db.collect_group_records(&q)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_is_a_format_error() {
        let db = small_db();
        let path = temp_path("magic");
        write_snapshot(&db, 0, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        let err = decode_snapshot(&bytes).unwrap_err();
        assert_eq!(err.kind, subdex_store::StoreErrorKind::Format);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_version_is_rejected() {
        let db = small_db();
        let path = temp_path("ver");
        write_snapshot(&db, 0, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 0xEE;
        let err = decode_snapshot(&bytes).unwrap_err();
        assert!(err.context.contains("version"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_is_detected() {
        let db = small_db();
        let path = temp_path("trunc");
        write_snapshot(&db, 0, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, HEADER_LEN + 3, 5] {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} must not load"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn payload_corruption_is_detected() {
        let db = small_db();
        let path = temp_path("crc");
        write_snapshot(&db, 0, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Flip one byte somewhere in the middle of the payload region.
        let mut damaged = bytes.clone();
        let target = bytes.len() / 2;
        damaged[target] ^= 0x01;
        assert!(decode_snapshot(&damaged).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
