//! Crash-consistency tests: no byte-level damage to a persisted file may
//! panic the readers or yield silently-wrong data.
//!
//! Property tests flip and truncate bytes of real snapshot and WAL files:
//!
//! * snapshot: [`read_snapshot`] must either fail with a clean
//!   [`StoreError`] or return a database byte-identical to the original
//!   (the only unchecked bytes are the four reserved header bytes);
//! * WAL: [`wal::replay`] must either fail cleanly or return a *prefix* of
//!   the appended batches — and when the prefix is proper, it must say so
//!   via `dropped_tail` (a torn final write), never inventing or
//!   reordering records.
//!
//! Deterministic integration tests then walk the crash windows of the
//! store protocol itself: kill after WAL fsync but before any checkpoint,
//! kill between the snapshot rename and the WAL reset inside `compact`,
//! and a torn final WAL write.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use subdex_persist::{
    read_snapshot, wal, write_snapshot, PersistentStore, SNAPSHOT_FILE, WAL_FILE,
};
use subdex_store::{
    table::EntityTableBuilder, Cell, RatingDraft, Schema, StoreError, SubjectiveDb, Value,
};

const DIMS: usize = 2;
const SCALE: u8 = 5;

fn small_db() -> SubjectiveDb {
    let mut us = Schema::new();
    us.add("group", false);
    let mut ub = EntityTableBuilder::new(us);
    for i in 0..6 {
        ub.push_row(vec![Cell::from(["a", "b", "c"][i % 3])]);
    }
    let mut is = Schema::new();
    is.add("city", false);
    is.add("tags", true);
    let mut ib = EntityTableBuilder::new(is);
    for i in 0..4 {
        ib.push_row(vec![
            Cell::from(["NYC", "SF"][i % 2]),
            Cell::Many(vec![Value::str(["t0", "t1"][i % 2])]),
        ]);
    }
    let mut rb = subdex_store::ratings::RatingTableBuilder::new(
        vec!["overall".into(), "food".into()],
        SCALE,
    );
    for r in 0..6u32 {
        for i in 0..4u32 {
            rb.push(
                r,
                i,
                &[1 + ((r + i) % 5) as u8, 1 + ((r * 2 + i) % 5) as u8],
            );
        }
    }
    SubjectiveDb::new(ub.build(), ib.build(), rb.build(6, 4))
}

fn batch(tag: u32) -> Vec<RatingDraft> {
    (0..3)
        .map(|i| {
            RatingDraft::new(
                (tag + i) % 6,
                i % 4,
                vec![1 + (tag % 5) as u8, 1 + (i % 5) as u8],
            )
        })
        .collect()
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("subdex-crash-{tag}-{}-{n}", std::process::id()))
}

/// Reference snapshot bytes plus the original database they encode.
fn snapshot_bytes() -> (SubjectiveDb, Vec<u8>) {
    let db = small_db();
    let path = temp_path("snapbytes");
    write_snapshot(&db, 3, &path).expect("write");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    (db, bytes)
}

/// A WAL holding `n` appended batches, as raw bytes.
fn wal_bytes(n: u32) -> Vec<u8> {
    let path = temp_path("walbytes");
    let mut w = wal::WalWriter::create(&path, DIMS, SCALE).expect("create wal");
    for tag in 0..n {
        w.append_batch(&batch(tag)).expect("append");
    }
    drop(w);
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

fn assert_same_db(a: &SubjectiveDb, b: &SubjectiveDb) {
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.ratings().reviewer_column(), b.ratings().reviewer_column());
    assert_eq!(a.ratings().item_column(), b.ratings().item_column());
    for dim in a.ratings().dims() {
        assert_eq!(a.ratings().score_column(dim), b.ratings().score_column(dim));
    }
}

fn write_temp(tag: &str, bytes: &[u8]) -> PathBuf {
    let path = temp_path(tag);
    std::fs::write(&path, bytes).expect("write mutated file");
    path
}

/// Reserved (and deliberately ignored) snapshot header bytes: offsets
/// 12..16 after the 8-byte magic and the 4-byte version.
fn is_reserved_snapshot_byte(offset: usize) -> bool {
    (12..16).contains(&offset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mutated_snapshot_never_panics_or_lies(
        offset_seed in 0usize..100_000,
        flip in 1u8..=255,
    ) {
        let (db, mut bytes) = snapshot_bytes();
        let offset = offset_seed % bytes.len();
        bytes[offset] ^= flip;
        let path = write_temp("snapmut", &bytes);
        match read_snapshot(&path) {
            Ok((loaded, _)) => {
                // Only damage to the reserved header bytes may go
                // unnoticed — and then the data must still be exact.
                prop_assert!(
                    is_reserved_snapshot_byte(offset),
                    "undetected flip at offset {offset}"
                );
                assert_same_db(&db, &loaded);
            }
            Err(e) => {
                // A clean, typed error — reaching here without a panic is
                // the property; the error must carry context.
                prop_assert!(!e.context.is_empty());
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_snapshot_is_always_a_clean_error(cut_seed in 0usize..100_000) {
        let (_db, bytes) = snapshot_bytes();
        let cut = cut_seed % bytes.len(); // strictly shorter than the file
        let path = write_temp("snaptrunc", &bytes[..cut]);
        let err = read_snapshot(&path).expect_err("truncated snapshot must fail");
        prop_assert!(!err.context.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mutated_wal_replays_a_prefix_or_fails_cleanly(
        n_batches in 1u32..5,
        offset_seed in 0usize..100_000,
        flip in 1u8..=255,
    ) {
        let mut bytes = wal_bytes(n_batches);
        let offset = offset_seed % bytes.len();
        bytes[offset] ^= flip;
        let path = write_temp("walmut", &bytes);
        match wal::replay(&path, DIMS, SCALE, 0) {
            Ok(replay) => {
                // Whatever survives must be an exact prefix of what was
                // appended, in order, with correct sequence numbers.
                prop_assert!(replay.batches.len() <= n_batches as usize);
                for (i, b) in replay.batches.iter().enumerate() {
                    prop_assert_eq!(b.seq, i as u64 + 1);
                    prop_assert_eq!(&b.drafts, &batch(i as u32));
                }
                // A shortened replay must be flagged as a torn tail, not
                // passed off as complete.
                if replay.batches.len() < n_batches as usize {
                    prop_assert!(replay.info.dropped_tail);
                }
            }
            Err(e) => prop_assert!(!e.context.is_empty()),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_wal_recovers_the_intact_prefix(
        n_batches in 1u32..5,
        cut_seed in 0usize..100_000,
    ) {
        let bytes = wal_bytes(n_batches);
        let cut = cut_seed % bytes.len();
        let path = write_temp("waltrunc", &bytes[..cut]);
        match wal::replay(&path, DIMS, SCALE, 0) {
            Ok(replay) => {
                for (i, b) in replay.batches.iter().enumerate() {
                    prop_assert_eq!(b.seq, i as u64 + 1);
                    prop_assert_eq!(&b.drafts, &batch(i as u32));
                }
                if replay.batches.len() < n_batches as usize {
                    // A mid-frame cut must be flagged as a torn tail. A cut
                    // landing exactly on a frame boundary is invisible by
                    // construction (the file IS a complete shorter log) —
                    // `intact_len` spanning the whole file identifies it.
                    prop_assert!(
                        replay.info.dropped_tail || replay.intact_len == cut as u64
                    );
                }
            }
            // Cutting into the 16-byte file header is a format error.
            Err(e) => prop_assert!(!e.context.is_empty()),
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ------------------------------------------------- crash-window integration

/// Kill after WAL fsync, before any checkpoint ran: reopening recovers
/// every acknowledged append.
#[test]
fn kill_between_wal_and_checkpoint_recovers_all_appends() {
    let dir = temp_path("kill-wal");
    let expected = {
        let store = PersistentStore::create(&dir, small_db()).expect("create");
        store.append_ratings(&batch(0)).expect("append 0");
        store.append_ratings(&batch(1)).expect("append 1");
        store.append_ratings(&batch(2)).expect("append 2");
        // Simulated kill: the store is dropped with a dirty WAL and no
        // compaction; only what reached disk survives.
        let db = store.db();
        assert_eq!(store.dirty_records(), 9);
        db
    };
    let store = PersistentStore::open(&dir).expect("recover");
    assert_eq!(store.stats().wal_replayed_batches, 3);
    assert_eq!(store.stats().wal_replayed_records, 9);
    assert_same_db(&expected, &store.db());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill inside `compact`, after the new snapshot was renamed into place
/// but before the WAL was reset: the stale WAL's batches carry sequence
/// numbers at or below the snapshot's, so replay must skip every one.
#[test]
fn kill_between_snapshot_rename_and_wal_reset_is_idempotent() {
    let dir = temp_path("kill-compact");
    let expected = {
        let store = PersistentStore::create(&dir, small_db()).expect("create");
        store.append_ratings(&batch(0)).expect("append 0");
        store.append_ratings(&batch(1)).expect("append 1");
        let db = store.db();
        // Reproduce compact's first half only: fold the current database
        // into the snapshot at the WAL's sequence, then "crash" with the
        // old WAL still on disk.
        write_snapshot(&db, 2, &dir.join(SNAPSHOT_FILE)).expect("snapshot");
        db
    };
    let store = PersistentStore::open(&dir).expect("recover");
    assert_eq!(
        store.stats().wal_replayed_records,
        0,
        "stale WAL batches must not re-apply"
    );
    assert_same_db(&expected, &store.db());
    // The store is fully functional after the repair: appends continue.
    store
        .append_ratings(&batch(7))
        .expect("append post-recovery");
    assert_eq!(store.db().ratings().len(), expected.ratings().len() + 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn final write (machine died mid-`write`): the intact prefix is
/// recovered, the torn frame is dropped, and the log keeps accepting
/// appends afterwards.
#[test]
fn torn_wal_tail_is_dropped_and_log_stays_usable() {
    let dir = temp_path("torn-tail");
    {
        let store = PersistentStore::create(&dir, small_db()).expect("create");
        store.append_ratings(&batch(0)).expect("append 0");
        store.append_ratings(&batch(1)).expect("append 1");
    }
    // Tear the last frame: chop a few bytes off the file.
    let wal_path = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal_path).expect("meta").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .expect("open wal");
    f.set_len(len - 5).expect("truncate");
    drop(f);

    let store = PersistentStore::open(&dir).expect("recover");
    assert_eq!(store.stats().wal_replayed_batches, 1, "torn batch dropped");
    let base = small_db().ratings().len();
    assert_eq!(store.db().ratings().len(), base + 3);
    // The log continues from the recovered sequence.
    store.append_ratings(&batch(9)).expect("append after tear");
    drop(store);
    let store = PersistentStore::open(&dir).expect("reopen");
    assert_eq!(store.db().ratings().len(), base + 6);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `StoreError` equality is part of the API contract tests rely on.
#[test]
fn snapshot_errors_are_typed() {
    let path = temp_path("not-a-snapshot");
    std::fs::write(&path, b"definitely not a snapshot file").expect("write");
    let err = read_snapshot(&path).expect_err("must fail");
    assert_eq!(err, StoreError::new(err.kind, err.context.clone()));
    let _ = std::fs::remove_file(&path);
}
