//! Round-trip property tests: a snapshot must reconstruct the database
//! *exactly*.
//!
//! Over randomized databases (atomic and multi-valued attributes, 1–3
//! rating dimensions, arbitrary rating sets), writing a snapshot and
//! loading it back must reproduce byte-identical observable state:
//! [`DbStats`], canonical record sets and seeded [`rating_group`]
//! shuffles for every single-predicate query, per-dimension score
//! columns, and the append epoch. The same holds after appends flow
//! through a [`PersistentStore`] WAL and a compaction cycle.
//!
//! [`DbStats`]: subdex_store::DbStats
//! [`rating_group`]: subdex_store::SubjectiveDb::rating_group
//! [`PersistentStore`]: subdex_persist::PersistentStore

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use proptest::strategy::Just;

use subdex_persist::{read_snapshot, write_snapshot, PersistentStore};
use subdex_store::{
    table::EntityTableBuilder, AttrValue, Cell, Entity, RatingDraft, Schema, SelectionQuery,
    SubjectiveDb, Value,
};

const SCALE: u8 = 5;

/// Blueprint for one randomized database (mirrors the scan-equivalence
/// harness so persistence is pinned to the same database shapes the scan
/// layer is).
#[derive(Debug, Clone)]
struct DbSpec {
    reviewer_attr: Vec<usize>,
    item_city: Vec<usize>,
    item_tags: Vec<Vec<bool>>,
    dims: usize,
    ratings: Vec<(u32, u32, Vec<u8>)>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (2usize..8, 2usize..6, 1usize..=3)
        .prop_flat_map(|(n_reviewers, n_items, dims)| {
            (
                prop::collection::vec(0usize..3, n_reviewers),
                prop::collection::vec(0usize..3, n_items),
                prop::collection::vec(prop::collection::vec(prop::bool::ANY, 3usize), n_items),
                Just(dims),
                prop::collection::vec(
                    (
                        0..n_reviewers as u32,
                        0..n_items as u32,
                        prop::collection::vec(1u8..=SCALE, dims),
                    ),
                    1..40,
                ),
            )
        })
        .prop_map(|(reviewer_attr, item_city, item_tags, dims, mut ratings)| {
            let mut seen = std::collections::HashSet::new();
            ratings.retain(|&(r, i, _)| seen.insert((r, i)));
            DbSpec {
                reviewer_attr,
                item_city,
                item_tags,
                dims,
                ratings,
            }
        })
}

fn build_db(spec: &DbSpec) -> SubjectiveDb {
    let mut us = Schema::new();
    us.add("group", false);
    let mut ub = EntityTableBuilder::new(us);
    for &v in &spec.reviewer_attr {
        ub.push_row(vec![Cell::from(["a", "b", "c"][v])]);
    }
    let mut is = Schema::new();
    is.add("city", false);
    is.add("tags", true);
    let mut ib = EntityTableBuilder::new(is);
    for (&city, tags) in spec.item_city.iter().zip(&spec.item_tags) {
        let tag_values = ["t0", "t1", "t2"]
            .iter()
            .zip(tags)
            .filter(|(_, &on)| on)
            .map(|(t, _)| Value::str(*t))
            .collect();
        ib.push_row(vec![
            Cell::from(["NYC", "SF", "LA"][city]),
            Cell::Many(tag_values),
        ]);
    }
    let dim_names = (0..spec.dims).map(|d| format!("d{d}")).collect();
    let mut rb = subdex_store::ratings::RatingTableBuilder::new(dim_names, SCALE);
    for (r, i, scores) in &spec.ratings {
        rb.push(*r, *i, scores);
    }
    SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(spec.reviewer_attr.len(), spec.item_city.len()),
    )
}

/// Every single-predicate query over every attribute value, plus the root.
fn all_single_pred_queries(db: &SubjectiveDb) -> Vec<SelectionQuery> {
    let mut queries = vec![SelectionQuery::all()];
    for entity in [Entity::Reviewer, Entity::Item] {
        let table = db.table(entity);
        for attr in table.schema().attr_ids() {
            for (vid, _) in table.dictionary(attr).iter() {
                queries.push(SelectionQuery::from_preds([AttrValue::new(
                    entity, attr, vid,
                )]));
            }
        }
    }
    queries
}

/// The full observable-equality contract between two databases.
fn assert_identical(original: &SubjectiveDb, loaded: &SubjectiveDb) {
    assert_eq!(original.stats(), loaded.stats());
    assert_eq!(original.epoch(), loaded.epoch());
    let r = original.ratings();
    let l = loaded.ratings();
    assert_eq!(r.scale(), l.scale());
    assert_eq!(r.dim_names(), l.dim_names());
    assert_eq!(r.reviewer_column(), l.reviewer_column());
    assert_eq!(r.item_column(), l.item_column());
    for dim in r.dims() {
        assert_eq!(r.score_column(dim), l.score_column(dim));
    }
    for (i, q) in all_single_pred_queries(original).iter().enumerate() {
        assert_eq!(
            original.collect_group_records(q),
            loaded.collect_group_records(q),
            "query {i}: canonical record set"
        );
        let seed = 0x5EED ^ (i as u64).wrapping_mul(0x9E37_79B9);
        assert_eq!(
            original.rating_group(q, seed).records(),
            loaded.rating_group(q, seed).records(),
            "query {i}: seeded shuffle"
        );
    }
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("subdex-roundtrip-{tag}-{}-{n}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_round_trip_is_byte_identical(spec in db_spec()) {
        let db = build_db(&spec);
        let path = temp_path("snap");
        write_snapshot(&db, 7, &path).expect("write");
        let (loaded, meta) = read_snapshot(&path).expect("read");
        prop_assert_eq!(meta.last_seq, 7);
        assert_identical(&db, &loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wal_appends_then_compact_round_trip(
        spec in db_spec(),
        extra in prop::collection::vec(
            (0u32..8, 0u32..6, prop::collection::vec(1u8..=SCALE, 3)),
            1..12,
        ),
    ) {
        let db = build_db(&spec);
        let reviewer_count = spec.reviewer_attr.len() as u32;
        let item_count = spec.item_city.len() as u32;
        let drafts: Vec<RatingDraft> = extra
            .iter()
            .map(|(r, i, scores)| {
                RatingDraft::new(
                    r % reviewer_count,
                    i % item_count,
                    scores[..spec.dims].to_vec(),
                )
            })
            .collect();

        let dir = temp_path("walrt");
        let store = PersistentStore::create(&dir, db).expect("create");
        store.append_ratings(&drafts).expect("append");
        let via_wal = store.db();
        drop(store);

        // Reopen replays the WAL: identical to the in-memory result.
        let reopened = PersistentStore::open(&dir).expect("reopen");
        assert_identical(&via_wal, &reopened.db());

        // Compacting folds the WAL into the snapshot: still identical.
        reopened.compact().expect("compact");
        drop(reopened);
        let compacted = PersistentStore::open(&dir).expect("open after compact");
        prop_assert_eq!(compacted.stats().wal_replayed_records, 0);
        assert_identical(&via_wal, &compacted.db());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
