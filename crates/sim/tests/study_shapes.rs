//! Shape checks of the simulated study at small scale: the mechanisms that
//! produce the paper's Figure 7 orderings.

use std::collections::HashSet;
use subdex_core::{EngineConfig, ExplorationMode};
use subdex_data::{yelp, GenParams, IrregularSpec};
use subdex_sim::study::{run_study_pair, run_subject, StudyConfig, UD_INTERPRETATION_FACTOR};
use subdex_sim::subject::{CsExpertise, DomainKnowledge, SubjectProfile};
use subdex_sim::workload::Workload;

fn workload(seed: u64) -> Workload {
    let raw = yelp::generate(GenParams::new(600, 93, 6000, 55));
    Workload::scenario1(
        raw,
        &IrregularSpec {
            reviewer_groups: 1,
            item_groups: 1,
            min_members: 12,
            min_item_members: 5,
            seed,
        },
    )
}

fn cfg(n: usize) -> StudyConfig {
    StudyConfig {
        subjects_per_cell: n,
        steps: Some(6),
        engine: EngineConfig {
            parallel: false,
            max_candidates: 12,
            ..EngineConfig::default()
        },
        base_seed: 99,
        parallel: true,
    }
}

#[test]
fn paired_study_uses_both_instances() {
    let wa = workload(1);
    let wb = workload(2);
    let res = run_study_pair(&wa, &wb, &cfg(6));
    assert_eq!(res.cells.len(), 4);
    for cell in &res.cells {
        for m in &cell.modes {
            assert_eq!(m.scores.len(), 6);
        }
    }
}

#[test]
fn fully_automated_is_one_shared_path() {
    // Two FA subjects with different seeds watch the same system path:
    // their *reveal opportunities* coincide (differences come only from
    // noticing noise).
    let w = workload(3);
    let engine = cfg(1).engine;
    let a = run_subject(
        &w,
        ExplorationMode::FullyAutomated,
        &SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 1),
        6,
        &engine,
        &HashSet::new(),
    );
    let b = run_subject(
        &w,
        ExplorationMode::FullyAutomated,
        &SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 2),
        6,
        &engine,
        &HashSet::new(),
    );
    // Same path ⇒ the sets of findable targets agree; per-subject noise can
    // only drop finds, never add different ones. With high notice (0.85)
    // both usually see the same targets.
    let ta: HashSet<usize> = a.found.iter().map(|&(t, _)| t).collect();
    let tb: HashSet<usize> = b.found.iter().map(|&(t, _)| t).collect();
    assert!(
        ta.is_subset(&tb) || tb.is_subset(&ta),
        "FA finds must come from one shared path: {ta:?} vs {tb:?}"
    );
}

#[test]
fn interactive_subjects_have_personal_paths() {
    // RP subjects with different seeds may diverge (their engines are
    // seeded personally); the run must still be deterministic per seed.
    let w = workload(3);
    let engine = cfg(1).engine;
    let p = SubjectProfile::new(CsExpertise::Low, DomainKnowledge::Low, 77);
    let once = run_subject(
        &w,
        ExplorationMode::RecommendationPowered,
        &p,
        6,
        &engine,
        &HashSet::new(),
    );
    let twice = run_subject(
        &w,
        ExplorationMode::RecommendationPowered,
        &p,
        6,
        &engine,
        &HashSet::new(),
    );
    assert_eq!(once.found, twice.found);
}

#[test]
fn ud_interpretation_factor_is_a_handicap() {
    let f = UD_INTERPRETATION_FACTOR;
    assert!(
        (0.0..1.0).contains(&f),
        "handicap must be a proper fraction"
    );
}

#[test]
fn chase_memory_prevents_oscillation() {
    // A subject must terminate (not loop forever between two queries) even
    // on a workload with one dominant anomaly.
    let w = workload(4);
    let engine = cfg(1).engine;
    let out = run_subject(
        &w,
        ExplorationMode::RecommendationPowered,
        &SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 5),
        12,
        &engine,
        &HashSet::new(),
    );
    // All finds have valid step indexes within budget.
    for &(_, step) in &out.found {
        assert!((1..=12).contains(&step));
    }
}
