//! Fixed exploration paths with swappable next-action sources.
//!
//! Behind three of the paper's experiments:
//!
//! * **Table 4** (quality of recommendations): Fully-Automated paths where
//!   the next operation comes from SubDEx's Recommendation Builder, Smart
//!   Drill-Down, or QAGView — with the displayed rating maps computed
//!   identically in every case — scored by how many planted irregular
//!   groups the path surfaces.
//! * **Table 5** (utility vs. diversity): paths under different selection
//!   strategies, reporting distinct attributes shown, total utility, and
//!   average EMD diversity per step.
//! * **Table 6** / Figure 9 inputs come from the same path statistics.

use crate::workload::{Scenario, Workload};
use std::collections::HashSet;
use subdex_baselines::qagview::QagConfig;
use subdex_baselines::sdd::SddConfig;
use subdex_core::{EngineConfig, SdeEngine};
use subdex_store::SelectionQuery;

/// Where a path's next operation comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSource {
    /// SubDEx's own top-1 recommendation.
    Subdex,
    /// Smart Drill-Down's top rule.
    Sdd,
    /// QAGView's first cluster.
    Qagview,
}

impl std::fmt::Display for OpSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpSource::Subdex => f.write_str("SubDEx"),
            OpSource::Sdd => f.write_str("SDD"),
            OpSource::Qagview => f.write_str("Qagview"),
        }
    }
}

/// Statistics of one automated path.
#[derive(Debug, Clone)]
pub struct PathStats {
    /// Irregular-group indexes the path surfaced (deterministic reveal,
    /// no subject noise — the displayed map showed the group).
    pub irregulars_shown: HashSet<usize>,
    /// Insight indexes the path revealed.
    pub insights_shown: HashSet<usize>,
    /// Distinct grouping attributes displayed across all steps.
    pub distinct_attributes: usize,
    /// Sum of displayed-map *dimension-weighted* utilities over the whole
    /// path (the quantity the selection optimizes; Table 5's "utility").
    pub total_utility: f64,
    /// Mean per-step average pairwise EMD between the displayed maps.
    pub avg_diversity: f64,
    /// Maps displayed per rating dimension (Figure 9's histogram).
    pub maps_per_dimension: Vec<usize>,
    /// Steps actually executed.
    pub steps: usize,
    /// Total step wall-clock over the path.
    pub total_time: std::time::Duration,
    /// Per-phase wall-clock totals over the path, accumulated from each
    /// step's [`subdex_core::StepStats`].
    pub phase_times: subdex_core::PhaseTimes,
}

/// Records the query sequence of a Fully-Automated path (top-1 SubDEx
/// recommendations) without collecting statistics — used to *fix* the
/// next-action operations, as Section 5.2.3 does, so map-selection
/// variants can be compared on identical paths.
pub fn record_query_path(w: &Workload, steps: usize, cfg: &EngineConfig) -> Vec<SelectionQuery> {
    let mut engine = SdeEngine::new(w.db.clone(), *cfg);
    let mut query = SelectionQuery::all();
    let mut out = Vec::with_capacity(steps);
    for step in 0..steps {
        out.push(query.clone());
        if step + 1 == steps {
            break;
        }
        let res = engine.step(&query);
        match res.recommendations.first() {
            Some(r) if r.query != query => query = r.query.clone(),
            _ => break,
        }
    }
    out
}

/// Replays a fixed query sequence under `cfg` (recommendations disabled —
/// the operations are given) and collects [`PathStats`] of the displayed
/// maps. This is the Section 5.2.3 protocol behind Table 5 and Figure 9.
pub fn run_fixed_path(w: &Workload, queries: &[SelectionQuery], cfg: &EngineConfig) -> PathStats {
    let mut cfg = *cfg;
    cfg.recommendations = false;
    let mut engine = SdeEngine::new(w.db.clone(), cfg);
    let dim_count = w.db.ratings().dim_count();
    let mut stats = PathStats {
        irregulars_shown: HashSet::new(),
        insights_shown: HashSet::new(),
        distinct_attributes: 0,
        total_utility: 0.0,
        avg_diversity: 0.0,
        maps_per_dimension: vec![0; dim_count],
        steps: 0,
        total_time: std::time::Duration::ZERO,
        phase_times: subdex_core::PhaseTimes::default(),
    };
    let mut attrs: HashSet<(subdex_store::Entity, subdex_store::AttrId)> = HashSet::new();
    let mut diversity_sum = 0.0;
    for query in queries {
        let res = engine.step(query);
        stats.steps += 1;
        collect_step(w, query, &res, &mut stats, &mut attrs, &mut diversity_sum);
    }
    stats.distinct_attributes = attrs.len();
    stats.avg_diversity = diversity_sum / stats.steps.max(1) as f64;
    stats
}

fn collect_step(
    w: &Workload,
    query: &SelectionQuery,
    res: &subdex_core::StepResult,
    stats: &mut PathStats,
    attrs: &mut HashSet<(subdex_store::Entity, subdex_store::AttrId)>,
    diversity_sum: &mut f64,
) {
    stats.total_time += res.stats.elapsed;
    stats.phase_times.merge(&res.stats.phases);
    for sm in &res.maps {
        attrs.insert((sm.map.key.entity, sm.map.key.attr));
        stats.maps_per_dimension[sm.map.key.dim.index()] += 1;
        stats.total_utility += sm.dw_utility;
        match w.scenario {
            Scenario::IrregularGroups => {
                for t in w.irregular_shown(query, &sm.map) {
                    stats.irregulars_shown.insert(t);
                }
            }
            Scenario::InsightExtraction => {
                for t in w.insights_shown(&sm.map) {
                    stats.insights_shown.insert(t);
                }
            }
        }
    }
    let maps: Vec<&subdex_core::RatingMap> = res.maps.iter().map(|m| &m.map).collect();
    *diversity_sum += subdex_core::mapdist::avg_pairwise_distance(&maps);
}

/// Runs a Fully-Automated path of `steps` steps over `w`, with next
/// operations drawn from `source`, and collects [`PathStats`].
pub fn run_auto_path(
    w: &Workload,
    source: OpSource,
    steps: usize,
    cfg: &EngineConfig,
) -> PathStats {
    let mut engine = SdeEngine::new(w.db.clone(), *cfg);
    let mut query = SelectionQuery::all();
    let dim_count = w.db.ratings().dim_count();
    let mut stats = PathStats {
        irregulars_shown: HashSet::new(),
        insights_shown: HashSet::new(),
        distinct_attributes: 0,
        total_utility: 0.0,
        avg_diversity: 0.0,
        maps_per_dimension: vec![0; dim_count],
        steps: 0,
        total_time: std::time::Duration::ZERO,
        phase_times: subdex_core::PhaseTimes::default(),
    };
    let mut attrs: HashSet<(subdex_store::Entity, subdex_store::AttrId)> = HashSet::new();
    let mut diversity_sum = 0.0;

    for step in 0..steps {
        let res = engine.step(&query);
        stats.steps = step + 1;
        collect_step(w, &query, &res, &mut stats, &mut attrs, &mut diversity_sum);

        if step + 1 == steps {
            break;
        }
        let next = match source {
            OpSource::Subdex => res.recommendations.first().map(|r| r.query.clone()),
            OpSource::Sdd => {
                subdex_baselines::smart_drill_down(&w.db, &query, 1, &SddConfig::default())
                    .into_iter()
                    .next()
            }
            OpSource::Qagview => subdex_baselines::qagview(&w.db, &query, 1, &QagConfig::default())
                .into_iter()
                .next(),
        };
        match next {
            Some(q) if q != query => query = q,
            _ => break,
        }
    }
    stats.distinct_attributes = attrs.len();
    stats.avg_diversity = diversity_sum / stats.steps.max(1) as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_data::{yelp, GenParams, IrregularSpec};

    fn workload() -> Workload {
        let raw = yelp::generate(GenParams::new(300, 40, 2500, 23));
        Workload::scenario1(
            raw,
            &IrregularSpec {
                reviewer_groups: 1,
                item_groups: 1,
                min_members: 5,
                min_item_members: 5,
                seed: 5,
            },
        )
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            parallel: false,
            max_candidates: 16,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn auto_path_collects_stats() {
        let w = workload();
        let stats = run_auto_path(&w, OpSource::Subdex, 4, &cfg());
        assert_eq!(stats.steps, 4);
        assert!(stats.distinct_attributes >= 1);
        assert!(stats.total_utility >= 0.0);
        let total_maps: usize = stats.maps_per_dimension.iter().sum();
        assert_eq!(total_maps, 4 * 3, "k = 3 maps per step");
        assert!(stats.avg_diversity >= 0.0 && stats.avg_diversity <= 1.0);
        assert!(stats.total_time > std::time::Duration::ZERO);
        assert!(stats.total_time >= stats.phase_times.select + stats.phase_times.scan_groups);
        assert!(stats.phase_times.generate >= stats.phase_times.scan);
    }

    #[test]
    fn baselines_only_drill_down() {
        // SDD and QAGView paths monotonically grow the query; SubDEx paths
        // may roll up. At minimum the baseline paths never shrink it.
        let w = workload();
        for source in [OpSource::Sdd, OpSource::Qagview] {
            let stats = run_auto_path(&w, source, 4, &cfg());
            assert!(stats.steps >= 1, "{source} produced an empty path");
        }
    }

    #[test]
    fn utility_only_beats_diversity_only_on_utility() {
        // Single step: both strategies rank the *same* candidate pool, so
        // utility-only must win on utility and diversity-only on the
        // number of attributes surfaced. (Across whole paths the queries
        // diverge and totals are not strictly comparable.)
        let w = workload();
        // Disable pruning so both strategies rank the identical full pool
        // (pruning is probabilistic and would perturb the comparison).
        let mut u_cfg = cfg().with_l(1);
        u_cfg.pruning = subdex_core::PruningStrategy::None;
        let mut d_cfg = cfg();
        d_cfg.pruning = subdex_core::PruningStrategy::None;
        d_cfg.selection = subdex_core::selector::SelectionStrategy::DiversityOnly;
        let u = run_auto_path(&w, OpSource::Subdex, 1, &u_cfg);
        let d = run_auto_path(&w, OpSource::Subdex, 1, &d_cfg);
        assert!(
            u.total_utility >= d.total_utility,
            "utility-only {} vs diversity-only {}",
            u.total_utility,
            d.total_utility
        );
        assert!(
            d.distinct_attributes >= u.distinct_attributes,
            "diversity-only shows at least as many attributes ({} vs {})",
            d.distinct_attributes,
            u.distinct_attributes
        );
    }

    #[test]
    fn op_source_display() {
        assert_eq!(OpSource::Subdex.to_string(), "SubDEx");
        assert_eq!(OpSource::Sdd.to_string(), "SDD");
        assert_eq!(OpSource::Qagview.to_string(), "Qagview");
    }
}
