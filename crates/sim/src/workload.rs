//! Study workloads: scenario setup and detection logic.
//!
//! A [`Workload`] bundles a generated database with its Scenario I ground
//! truth (injected irregular groups) and Scenario II ground truth (planted
//! insights), plus the two detection predicates shared by every simulated
//! subject:
//!
//! * [`Workload::irregular_shown`] — does a displayed rating map exhibit a
//!   subgroup that *is* one of the planted irregular groups (suspiciously
//!   low average, sufficient support, matching dimension, and a display
//!   dominated by — and covering most of — the planted records)?
//! * [`Workload::insights_shown`] — which catalogued insights does a
//!   displayed map reveal (see [`subdex_data::Insight::revealed_by`])?

use std::sync::Arc;
use subdex_core::ratingmap::RatingMap;
use subdex_data::datasets::Dataset;
use subdex_data::{inject_irregular_groups, Insight, IrregularGroup, IrregularSpec};
use subdex_store::{Entity, SelectionQuery, SubjectiveDb};

/// The two study tasks of Section 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Identify planted irregular groups (0–2 per run).
    IrregularGroups,
    /// Extract catalogued insights (0–5 per run).
    InsightExtraction,
}

impl Scenario {
    /// Default exploration-path length (Table 3).
    pub fn default_steps(self) -> usize {
        match self {
            Scenario::IrregularGroups => 7,
            Scenario::InsightExtraction => 10,
        }
    }
}

/// A fully prepared study workload.
pub struct Workload {
    /// The database (with irregular groups injected when Scenario I).
    pub db: Arc<SubjectiveDb>,
    /// Scenario I ground truth.
    pub irregulars: Vec<IrregularGroup>,
    /// Scenario II ground truth.
    pub insights: Vec<Insight>,
    /// Which task this workload serves.
    pub scenario: Scenario,
}

/// A suspicious subgroup's support and average must clear these bars for a
/// subject to even look twice. The planted groups average exactly 1.0;
/// a display mixing them with outside records is still an obvious anomaly
/// as long as the planted records dominate (an analyst seeing a subgroup
/// at 2.0 among siblings at 3.5 inspects it).
pub const SUSPICIOUS_AVG: f64 = 2.0;
/// Minimum records in a suspicious subgroup.
pub const SUSPICIOUS_SUPPORT: u64 = 5;
/// Fraction of a suspicious subgroup's records that must come from the
/// planted group (display purity).
const PURITY_THRESHOLD: f64 = 0.6;
/// Fraction of the planted group's records the display must contain
/// (coverage — seeing a sliver is not an identification).
const COVERAGE_THRESHOLD: f64 = 0.5;

impl Workload {
    /// Prepares a Scenario I workload: injects irregular groups into raw
    /// tables and finalizes.
    pub fn scenario1(mut raw: subdex_data::RawTables, spec: &IrregularSpec) -> Self {
        let irregulars = inject_irregular_groups(&mut raw, spec);
        let ds = raw.finish();
        Self {
            db: Arc::new(ds.db),
            irregulars,
            insights: ds.insights,
            scenario: Scenario::IrregularGroups,
        }
    }

    /// Prepares a Scenario II workload from a finished dataset.
    pub fn scenario2(ds: Dataset) -> Self {
        Self {
            db: Arc::new(ds.db),
            irregulars: Vec::new(),
            insights: ds.insights,
            scenario: Scenario::InsightExtraction,
        }
    }

    /// Ground-truth target count for the scenario.
    pub fn target_count(&self) -> usize {
        match self.scenario {
            Scenario::IrregularGroups => self.irregulars.len(),
            Scenario::InsightExtraction => self.insights.len(),
        }
    }

    /// Indexes of irregular groups that `map` (displayed under `query`)
    /// exhibits. A planted group is *shown* when some subgroup of the map
    /// has a suspiciously low average with enough support, the map
    /// aggregates the group's forced dimension, and the subgroup's records
    /// are predominantly the group's forced records.
    pub fn irregular_shown(&self, query: &SelectionQuery, map: &RatingMap) -> Vec<usize> {
        let mut shown = Vec::new();
        if self.irregulars.is_empty() {
            return shown;
        }
        let suspicious: Vec<&subdex_core::ratingmap::Subgroup> = map
            .subgroups
            .iter()
            .filter(|sg| {
                sg.distribution.total() >= SUSPICIOUS_SUPPORT
                    && sg.avg_score.unwrap_or(5.0) <= SUSPICIOUS_AVG
            })
            .collect();
        if suspicious.is_empty() {
            return shown;
        }
        // Materialize the subgroup record sets only when needed.
        let group = self.db.rating_group(query, 0);
        for (gi, irr) in self.irregulars.iter().enumerate() {
            if irr.dim != map.key.dim {
                continue;
            }
            let irr_set: std::collections::HashSet<u32> = irr.records.iter().copied().collect();
            // Planted records still inside the current selection: scoping
            // the *other* entity (e.g. to young reviewers while hunting an
            // item group) does not change the group's identity.
            let in_scope = group
                .records()
                .iter()
                .filter(|r| irr_set.contains(r))
                .count();
            if (in_scope as u64) < SUSPICIOUS_SUPPORT {
                continue;
            }
            // Standing *on* the pocket: the whole selection is (almost)
            // the planted group and the map's overall average is at the
            // forced floor — unmistakable regardless of subgrouping.
            if in_scope as f64 / group.len().max(1) as f64 >= PURITY_THRESHOLD
                && map.overall.mean().unwrap_or(5.0) <= SUSPICIOUS_AVG
            {
                shown.push(gi);
                continue;
            }
            for sg in &suspicious {
                let table = self.db.table(map.key.entity);
                let mut total = 0usize;
                let mut inside = 0usize;
                for &rec in group.records() {
                    let row = match map.key.entity {
                        Entity::Reviewer => self.db.ratings().reviewer_of(rec),
                        Entity::Item => self.db.ratings().item_of(rec),
                    };
                    if table.row_has(row, map.key.attr, sg.value) {
                        total += 1;
                        if irr_set.contains(&rec) {
                            inside += 1;
                        }
                    }
                }
                let purity = inside as f64 / total.max(1) as f64;
                let coverage = inside as f64 / in_scope.max(1) as f64;
                if total > 0 && purity >= PURITY_THRESHOLD && coverage >= COVERAGE_THRESHOLD {
                    shown.push(gi);
                    break;
                }
            }
        }
        shown
    }

    /// Indexes of catalogue insights revealed by `map`.
    pub fn insights_shown(&self, map: &RatingMap) -> Vec<usize> {
        self.insights
            .iter()
            .enumerate()
            .filter(|(_, ins)| ins.revealed_by(&self.db, map))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_data::{yelp, GenParams};

    fn workload() -> Workload {
        let raw = yelp::generate(GenParams::new(400, 50, 4000, 13));
        Workload::scenario1(
            raw,
            &IrregularSpec {
                reviewer_groups: 1,
                item_groups: 1,
                min_members: 5,
                min_item_members: 5,
                seed: 3,
            },
        )
    }

    #[test]
    fn scenario1_setup() {
        let w = workload();
        assert_eq!(w.scenario, Scenario::IrregularGroups);
        assert_eq!(w.target_count(), w.irregulars.len());
        assert!(w.target_count() >= 1);
        assert_eq!(Scenario::IrregularGroups.default_steps(), 7);
        assert_eq!(Scenario::InsightExtraction.default_steps(), 10);
    }

    #[test]
    fn irregular_shown_when_query_matches_description() {
        let w = workload();
        // Pin all but one description pair, group by the remaining one:
        // the planted subgroup must surface.
        let irr = &w.irregulars[0];
        let preds: Vec<_> = irr.description[1..]
            .iter()
            .map(|(name, value)| w.db.pred(irr.entity, name, value).unwrap())
            .collect();
        let query = SelectionQuery::from_preds(preds);
        // Build the map grouped by the first description attribute over the
        // forced dimension, from actual data.
        let attr =
            w.db.table(irr.entity)
                .schema()
                .attr_by_name(&irr.description[0].0)
                .unwrap();
        let group = w.db.rating_group(&query, 0);
        let mut fam = subdex_core::accumulator::FamilyAccumulator::new(
            &w.db,
            irr.entity,
            attr,
            vec![irr.dim],
        );
        fam.update(&w.db, group.records());
        let map = fam.to_rating_map(0);
        let shown = w.irregular_shown(&query, &map);
        assert!(
            shown.contains(&0),
            "planted group should be shown: {shown:?}"
        );
    }

    #[test]
    fn irregular_not_shown_on_wrong_dimension() {
        let w = workload();
        let irr = &w.irregulars[0];
        let other_dim =
            w.db.ratings()
                .dims()
                .find(|&d| d != irr.dim)
                .expect("yelp has 4 dims");
        let preds: Vec<_> = irr.description[1..]
            .iter()
            .map(|(name, value)| w.db.pred(irr.entity, name, value).unwrap())
            .collect();
        let query = SelectionQuery::from_preds(preds);
        let attr =
            w.db.table(irr.entity)
                .schema()
                .attr_by_name(&irr.description[0].0)
                .unwrap();
        let group = w.db.rating_group(&query, 0);
        let mut fam = subdex_core::accumulator::FamilyAccumulator::new(
            &w.db,
            irr.entity,
            attr,
            vec![other_dim],
        );
        fam.update(&w.db, group.records());
        let map = fam.to_rating_map(0);
        assert!(!w.irregular_shown(&query, &map).contains(&0));
    }

    #[test]
    fn scenario2_setup_carries_insights() {
        let ds = subdex_data::yelp::dataset(GenParams::new(400, 50, 4000, 13));
        let w = Workload::scenario2(ds);
        assert_eq!(w.scenario, Scenario::InsightExtraction);
        assert_eq!(w.target_count(), 5);
        assert!(w.irregulars.is_empty());
    }
}
