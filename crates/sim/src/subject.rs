//! Simulated study subjects.
//!
//! A subject is parameterized by CS expertise and domain knowledge (the
//! pre-qualification axes of Section 5.2.1) plus an RNG seed. Behavior:
//!
//! * **Noticing.** When a displayed map exhibits a planted irregular group
//!   or reveals an insight, the subject notices it with a probability that
//!   grows with CS expertise (reading grouped histograms is a skill).
//!   Domain knowledge has *no* effect — matching the paper's finding that
//!   results do not depend on it.
//! * **Acting.** Where the mode allows her to choose the next operation,
//!   a high-CS subject drills into the most extreme visible subgroup more
//!   often; otherwise she takes a random small edit. In
//!   Recommendation-Powered mode she follows a recommendation with high
//!   probability but overrides it to chase a suspicious subgroup she has
//!   noticed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subdex_core::ratingmap::ScoredRatingMap;
use subdex_store::{AttrValue, SelectionQuery, SubjectiveDb};

/// CS expertise level (pre-qualification, 10-question questionnaire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsExpertise {
    /// Scored ≤ 5 of 10.
    Low,
    /// Scored > 5 of 10.
    High,
}

/// Domain knowledge level (movies questionnaire / restaurant frequency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKnowledge {
    /// Low familiarity with the domain.
    Low,
    /// High familiarity with the domain.
    High,
}

/// One simulated subject.
#[derive(Debug, Clone)]
pub struct SubjectProfile {
    /// CS expertise.
    pub cs: CsExpertise,
    /// Domain knowledge (mechanically inert; see module docs).
    pub domain: DomainKnowledge,
    /// Per-subject RNG seed.
    pub seed: u64,
}

impl SubjectProfile {
    /// Creates a profile.
    pub fn new(cs: CsExpertise, domain: DomainKnowledge, seed: u64) -> Self {
        Self { cs, domain, seed }
    }

    /// Probability of noticing a shown irregular group / revealed insight.
    pub fn notice_probability(&self) -> f64 {
        match self.cs {
            CsExpertise::High => 0.85,
            CsExpertise::Low => 0.65,
        }
    }

    /// Probability of taking a recommendation (vs acting on her own) in
    /// Recommendation-Powered mode.
    pub fn follow_probability(&self) -> f64 {
        match self.cs {
            // Experts second-guess the system a bit more; the paper finds
            // non-experts lean on the recommendations almost entirely.
            CsExpertise::High => 0.75,
            CsExpertise::Low => 0.92,
        }
    }

    /// Probability that, when choosing on her own, she drills into the most
    /// extreme visible subgroup rather than editing at random.
    pub fn greedy_probability(&self) -> f64 {
        match self.cs {
            CsExpertise::High => 0.6,
            CsExpertise::Low => 0.25,
        }
    }

    /// Probability of overriding the mode's default action to drill into a
    /// *suspicious* subgroup she spotted (possible in User-Driven and
    /// Recommendation-Powered modes; Fully-Automated cannot intervene —
    /// the mechanical reason FA trails RP in the study).
    pub fn chase_probability(&self) -> f64 {
        match self.cs {
            CsExpertise::High => 0.85,
            CsExpertise::Low => 0.65,
        }
    }

    /// The subject's RNG.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Chooses the subject's *own* next operation given the displayed maps:
/// either a greedy drill-down into the lowest-average subgroup on display,
/// or a random small edit (drill into a random subgroup / remove a random
/// predicate). Returns `None` when no edit is possible.
pub fn choose_own_operation(
    rng: &mut StdRng,
    profile: &SubjectProfile,
    db: &SubjectiveDb,
    query: &SelectionQuery,
    maps: &[ScoredRatingMap],
) -> Option<SelectionQuery> {
    let greedy = rng.random_bool(profile.greedy_probability());
    if greedy {
        // Lowest-average subgroup across all displayed maps.
        let mut best: Option<(f64, AttrValue)> = None;
        for sm in maps {
            if let Some(sg) = sm.map.bottom_subgroup() {
                let avg = sg.avg_score.unwrap_or(5.0);
                let p = AttrValue::new(sm.map.key.entity, sm.map.key.attr, sg.value);
                if !query.contains(&p) && best.is_none_or(|(a, _)| avg < a) {
                    best = Some((avg, p));
                }
            }
        }
        if let Some((_, p)) = best {
            return Some(query.with_added(p));
        }
    }
    // Random small edit: 70% drill into a random displayed subgroup,
    // 30% roll up a random predicate (when any exists).
    let rollup = !query.is_empty() && rng.random_bool(0.3);
    if rollup {
        let preds = query.preds();
        let victim = preds[rng.random_range(0..preds.len())];
        return Some(query.with_removed(&victim));
    }
    let candidates: Vec<AttrValue> = maps
        .iter()
        .flat_map(|sm| {
            sm.map
                .subgroups
                .iter()
                .map(move |sg| AttrValue::new(sm.map.key.entity, sm.map.key.attr, sg.value))
        })
        .filter(|p| !query.contains(p))
        .collect();
    if candidates.is_empty() {
        let _ = db;
        return None;
    }
    let pick = candidates[rng.random_range(0..candidates.len())];
    Some(query.with_added(pick))
}

/// Finds a drill-down into the most suspicious visible subgroup: lowest
/// average at or below `max_avg` with enough support, not already pinned.
pub fn suspicious_drill(
    query: &SelectionQuery,
    maps: &[ScoredRatingMap],
    max_avg: f64,
    min_support: u64,
) -> Option<SelectionQuery> {
    suspicious_drill_on(query, maps, max_avg, min_support, None)
}

/// [`suspicious_drill`] restricted to maps grouping one entity side —
/// the paper's Scenario I tells subjects there is one reviewer-side and
/// one item-side group, so after finding one they hunt the other side.
pub fn suspicious_drill_on(
    query: &SelectionQuery,
    maps: &[ScoredRatingMap],
    max_avg: f64,
    min_support: u64,
    side: Option<subdex_store::Entity>,
) -> Option<SelectionQuery> {
    let mut best: Option<(f64, AttrValue)> = None;
    for sm in maps {
        if side.is_some_and(|e| sm.map.key.entity != e) {
            continue;
        }
        for sg in &sm.map.subgroups {
            let avg = sg.avg_score.unwrap_or(f64::MAX);
            if avg > max_avg || sg.distribution.total() < min_support {
                continue;
            }
            let p = AttrValue::new(sm.map.key.entity, sm.map.key.attr, sg.value);
            if !query.contains(&p) && best.is_none_or(|(a, _)| avg < a) {
                best = Some((avg, p));
            }
        }
    }
    best.map(|(_, p)| query.with_added(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expertise_orders_probabilities() {
        let hi = SubjectProfile::new(CsExpertise::High, DomainKnowledge::Low, 0);
        let lo = SubjectProfile::new(CsExpertise::Low, DomainKnowledge::Low, 0);
        assert!(hi.notice_probability() > lo.notice_probability());
        assert!(hi.greedy_probability() > lo.greedy_probability());
        assert!(hi.chase_probability() > lo.chase_probability());
        assert!(hi.follow_probability() < lo.follow_probability());
    }

    #[test]
    fn domain_knowledge_is_mechanically_inert() {
        let a = SubjectProfile::new(CsExpertise::High, DomainKnowledge::Low, 0);
        let b = SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 0);
        assert_eq!(a.notice_probability(), b.notice_probability());
        assert_eq!(a.follow_probability(), b.follow_probability());
        assert_eq!(a.greedy_probability(), b.greedy_probability());
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let p = SubjectProfile::new(CsExpertise::High, DomainKnowledge::Low, 99);
        let a: u64 = p.rng().random();
        let b: u64 = p.rng().random();
        assert_eq!(a, b);
    }
}
