//! # subdex-sim
//!
//! Simulated user-study harness for the SubDEx evaluation (Section 5.2).
//!
//! The paper ran 120 Amazon Mechanical Turk subjects per dataset/scenario
//! through a three-stage protocol (pre-qualification → exploration →
//! post-test). MTurk subjects are not available to a reproduction, so this
//! crate substitutes *stochastic subject models* whose mechanisms mirror
//! what each exploration mode affords a human:
//!
//! * in **User-Driven** mode a subject sees only the rating maps — she has
//!   no interestingness signal, so her next operation is a guess (biased
//!   toward extreme subgroups when her CS expertise is high);
//! * in **Recommendation-Powered** mode she usually follows a
//!   recommendation but *can* intervene — e.g. drill straight into a
//!   suspicious subgroup she spotted;
//! * in **Fully-Automated** mode she cannot intervene at all; the path is
//!   whatever the top-1 recommendation chain gives.
//!
//! Finding irregular groups / insights requires both *being shown* the
//! right map (mode-dependent) and *noticing* it (expertise-dependent), so
//! the paper's qualitative ordering — RP > FA ≈ UD — emerges from the
//! mechanism rather than being hard-coded. Domain knowledge deliberately
//! has no mechanical effect; the harness's ANOVA then reproduces the
//! paper's "no significant difference" footnotes.
//!
//! Modules: [`subject`] (profiles & behavior), [`workload`] (scenario
//! setup & detection logic), [`study`] (treatment groups, Figure 7/8),
//! [`autopath`] (fixed-path runs behind Tables 4 and 6).

pub mod autopath;
pub mod study;
pub mod subject;
pub mod workload;

pub use study::{run_study, StudyConfig, StudyResults};
pub use subject::{CsExpertise, DomainKnowledge, SubjectProfile};
pub use workload::{Scenario, Workload};
