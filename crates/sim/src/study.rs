//! The user-study harness (Section 5.2.1, Figures 7 and 8).
//!
//! Reproduces the paper's protocol with simulated subjects:
//!
//! * four treatment cells — high/low CS expertise × high/low domain
//!   knowledge;
//! * high-CS subjects compare **User-Driven** against
//!   **Recommendation-Powered**; low-CS subjects compare
//!   **Recommendation-Powered** against **Fully-Automated** (as in the
//!   paper, where only CS experts used the unguided mode);
//! * every subject performs the task *twice*, once per mode, in
//!   counterbalanced order, and must find *different* targets the second
//!   time (the first run's finds are excluded);
//! * outcomes are the number of correctly identified irregular groups
//!   (Scenario I, 0–2) or extracted insights (Scenario II, 0–5);
//! * ANOVA checks reproduce the paper's footnotes: mode order within a
//!   cell and domain knowledge within an expertise level should *not* be
//!   significant.

use crate::subject::{
    choose_own_operation, suspicious_drill_on, CsExpertise, DomainKnowledge, SubjectProfile,
};
use crate::workload::{Scenario, Workload};
use rand::Rng;
use std::collections::HashSet;
use subdex_core::{EngineConfig, ExplorationMode, SdeEngine};
use subdex_stats::anova::{one_way_anova, AnovaResult};
use subdex_stats::moments::{summarize, Summary};
use subdex_store::SelectionQuery;

/// Study-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Subjects per treatment cell (paper: 30; two counterbalanced halves).
    pub subjects_per_cell: usize,
    /// Exploration-path length (None ⇒ the scenario default from Table 3).
    pub steps: Option<usize>,
    /// Engine configuration used by every session.
    pub engine: EngineConfig,
    /// Base seed; subject seeds derive from it.
    pub base_seed: u64,
    /// Run subjects on worker threads.
    pub parallel: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        let engine = EngineConfig {
            // Subjects are parallelized across threads; keep each engine
            // sequential so the study scales with cores.
            parallel: false,
            max_candidates: 16,
            ..EngineConfig::default()
        };
        Self {
            subjects_per_cell: 30,
            steps: None,
            engine,
            base_seed: 7,
            parallel: true,
        }
    }
}

/// Interpretation handicap of unguided (User-Driven) subjects in the
/// insight-extraction task — see the note inside [`run_subject`].
pub const UD_INTERPRETATION_FACTOR: f64 = 0.65;

/// Outcome of one subject run: which target indexes were found, and at
/// which (1-based) step each was first found.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// `(target index, step)` pairs in discovery order.
    pub found: Vec<(usize, usize)>,
}

impl RunOutcome {
    /// Number of targets found.
    pub fn count(&self) -> usize {
        self.found.len()
    }

    /// Number found within the first `steps` steps.
    pub fn count_by_step(&self, steps: usize) -> usize {
        self.found.iter().filter(|&&(_, s)| s <= steps).count()
    }
}

/// Runs one subject through one exploration session.
///
/// `exclude` holds target indexes found in the subject's *previous* run
/// (the paper requires different finds per mode); they can no longer be
/// counted.
pub fn run_subject(
    w: &Workload,
    mode: ExplorationMode,
    profile: &SubjectProfile,
    steps: usize,
    engine_cfg: &EngineConfig,
    exclude: &HashSet<usize>,
) -> RunOutcome {
    let mut cfg = *engine_cfg;
    // Fully-Automated is *the system's* path — it takes no user input, so
    // every subject watches the same deterministic top-1 chain (as in the
    // paper, where FA "generates a fixed-size exploration path"). The
    // interactive modes are personal: their engines inherit the subject's
    // seed.
    cfg.seed = if mode == ExplorationMode::FullyAutomated {
        0xFA
    } else {
        profile.seed
    };
    if mode == ExplorationMode::UserDriven {
        cfg.recommendations = false;
    }
    // "Only showing rating maps does not provide enough information to
    // guide users effectively, even when they are CS experts" (paper,
    // finding 1): in the open-ended insight task, an unguided subject
    // recognizes a revealed insight less reliably — the recommendations
    // are also what contextualize "this histogram is saying something".
    // Scenario I's forced-to-1 anomalies are unmissable in any mode.
    let notice_factor =
        if mode == ExplorationMode::UserDriven && w.scenario == Scenario::InsightExtraction {
            UD_INTERPRETATION_FACTOR
        } else {
            1.0
        };
    let mut engine = SdeEngine::new(w.db.clone(), cfg);
    let mut rng = profile.rng();
    let mut outcome = RunOutcome::default();
    let mut found_set: HashSet<usize> = HashSet::new();
    let mut query = SelectionQuery::all();
    // Subgroups already chased: an analyst does not re-investigate the
    // anomaly she has just identified.
    let mut chased: HashSet<SelectionQuery> = HashSet::new();
    // Selections already explored this run: interactive analysts do not
    // walk the same path twice (FA has no such memory — it cannot).
    let mut visited: HashSet<SelectionQuery> = HashSet::new();

    for step in 1..=steps {
        visited.insert(query.clone());
        let res = engine.step(&query);

        // Noticing pass over the displayed maps.
        let mut found_this_step = false;
        for sm in &res.maps {
            let shown: Vec<usize> = match w.scenario {
                Scenario::IrregularGroups => w.irregular_shown(&query, &sm.map),
                Scenario::InsightExtraction => w.insights_shown(&sm.map),
            };
            for t in shown {
                if exclude.contains(&t) || found_set.contains(&t) {
                    continue;
                }
                if rng.random_bool(profile.notice_probability() * notice_factor) {
                    found_set.insert(t);
                    outcome.found.push((t, step));
                    found_this_step = true;
                }
            }
        }
        if found_set.len() + exclude.len() >= w.target_count() {
            break; // everything findable has been found
        }
        if step == steps {
            break;
        }

        let can_intervene = mode != ExplorationMode::FullyAutomated;

        // Scenario I instructs subjects to find one reviewer-side and one
        // item-side group; once a side is done, interactive subjects hunt
        // the other side specifically.
        let missing_side: Option<subdex_store::Entity> = if w.scenario == Scenario::IrregularGroups
        {
            let found_sides: HashSet<subdex_store::Entity> = found_set
                .iter()
                .chain(exclude.iter())
                .filter_map(|&t| w.irregulars.get(t).map(|g| g.entity))
                .collect();
            match (
                found_sides.contains(&subdex_store::Entity::Reviewer),
                found_sides.contains(&subdex_store::Entity::Item),
            ) {
                (true, false) => Some(subdex_store::Entity::Item),
                (false, true) => Some(subdex_store::Entity::Reviewer),
                _ => None,
            }
        } else {
            None
        };

        // After identifying a target, an interactive analyst restarts the
        // hunt from the top: the remaining targets live elsewhere.
        // Fully-Automated subjects cannot (they ride the fixed path).
        if found_this_step && can_intervene && !query.is_empty() {
            query = SelectionQuery::all();
            continue;
        }

        // A visible suspicious subgroup invites intervention — possible in
        // every mode except Fully-Automated (the study's central mechanism).
        let chase = if can_intervene && w.scenario == Scenario::IrregularGroups {
            suspicious_drill_on(
                &query,
                &res.maps,
                crate::workload::SUSPICIOUS_AVG + 0.5,
                crate::workload::SUSPICIOUS_SUPPORT,
                missing_side,
            )
            .filter(|q| !chased.contains(q) && !visited.contains(q))
            .filter(|_| rng.random_bool(profile.chase_probability()))
        } else {
            None
        };

        // Next operation, per mode.
        let next = if let Some(q) = chase {
            chased.insert(q.clone());
            Some(q)
        } else {
            match mode {
                ExplorationMode::FullyAutomated => {
                    res.recommendations.first().map(|r| r.query.clone())
                }
                ExplorationMode::RecommendationPowered => {
                    // Ignore recommendations that lead back into an
                    // already-investigated pocket — including ones whose
                    // preview maps visibly show an anomaly the subject has
                    // already identified (she recognizes it on sight).
                    let leads_back = |r: &subdex_core::Recommendation| {
                        w.scenario == Scenario::IrregularGroups
                            && r.maps.iter().any(|sm| {
                                w.irregular_shown(&r.query, &sm.map)
                                    .iter()
                                    .any(|t| found_set.contains(t) || exclude.contains(t))
                            })
                    };
                    let mut fresh: Vec<&subdex_core::Recommendation> = res
                        .recommendations
                        .iter()
                        .filter(|r| !chased.contains(&r.query) && !visited.contains(&r.query))
                        .filter(|r| !leads_back(r))
                        .collect();
                    // Prefer recommendations that touch the side still to
                    // be found (stable: utility order kept within groups).
                    if let Some(side) = missing_side {
                        fresh.sort_by_key(|r| {
                            let touches = r
                                .query
                                .preds()
                                .iter()
                                .any(|p| p.entity == side && !query.contains(p));
                            !touches // false (= touches) sorts first
                        });
                    }
                    if !fresh.is_empty() && rng.random_bool(profile.follow_probability()) {
                        // Trust the ranking: take the best not-yet-visited
                        // recommendation.
                        Some(fresh[0].query.clone())
                    } else {
                        choose_own_operation(&mut rng, profile, &w.db, &query, &res.maps)
                    }
                }
                ExplorationMode::UserDriven => {
                    choose_own_operation(&mut rng, profile, &w.db, &query, &res.maps)
                }
            }
        };
        match next {
            Some(q) if q != query => query = q,
            _ => break, // stuck: no operation available
        }
    }
    outcome
}

/// A `(mode, per-subject scores)` column of one treatment cell.
#[derive(Debug, Clone)]
pub struct ModeScores {
    /// The exploration mode.
    pub mode: ExplorationMode,
    /// One score (found count) per subject, ordered by subject index.
    /// The first half performed this mode first, the second half second.
    pub scores: Vec<f64>,
}

impl ModeScores {
    /// Mean/SD summary.
    pub fn summary(&self) -> Summary {
        summarize(&self.scores).expect("non-empty cell")
    }

    /// ANOVA of first-half vs second-half subjects — the paper's
    /// mode-order check (footnote 4). Should not be significant.
    pub fn order_effect(&self) -> Option<AnovaResult> {
        let half = self.scores.len() / 2;
        if half == 0 {
            return None;
        }
        one_way_anova(&[&self.scores[..half], &self.scores[half..]])
    }
}

/// One treatment cell's results.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// CS expertise of the cell.
    pub cs: CsExpertise,
    /// Domain knowledge of the cell.
    pub domain: DomainKnowledge,
    /// The two modes this cell compares, with per-subject scores.
    pub modes: Vec<ModeScores>,
}

/// Full study output for one workload.
#[derive(Debug, Clone)]
pub struct StudyResults {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// All four treatment cells.
    pub cells: Vec<CellResult>,
}

impl StudyResults {
    /// The cell for a given expertise/domain pair.
    pub fn cell(&self, cs: CsExpertise, domain: DomainKnowledge) -> &CellResult {
        self.cells
            .iter()
            .find(|c| c.cs == cs && c.domain == domain)
            .expect("all four cells present")
    }

    /// Mean score of a mode within a cell.
    pub fn mean(&self, cs: CsExpertise, domain: DomainKnowledge, mode: ExplorationMode) -> f64 {
        self.cell(cs, domain)
            .modes
            .iter()
            .find(|m| m.mode == mode)
            .map(|m| m.summary().mean)
            .unwrap_or(f64::NAN)
    }

    /// ANOVA of high- vs low-domain-knowledge scores for one expertise
    /// level and mode — the paper's footnote-6 check.
    pub fn domain_effect(&self, cs: CsExpertise, mode: ExplorationMode) -> Option<AnovaResult> {
        let get = |domain| {
            self.cell(cs, domain)
                .modes
                .iter()
                .find(|m| m.mode == mode)
                .map(|m| m.scores.clone())
        };
        let hi = get(DomainKnowledge::High)?;
        let lo = get(DomainKnowledge::Low)?;
        one_way_anova(&[&hi, &lo])
    }
}

/// The two modes a cell compares, per the paper's assignment.
pub fn modes_for(cs: CsExpertise) -> [ExplorationMode; 2] {
    match cs {
        CsExpertise::High => [
            ExplorationMode::UserDriven,
            ExplorationMode::RecommendationPowered,
        ],
        CsExpertise::Low => [
            ExplorationMode::RecommendationPowered,
            ExplorationMode::FullyAutomated,
        ],
    }
}

/// Runs the full four-cell study with one workload *instance per task
/// run*: a subject's first run explores `w1`, the second `w2`. Separate
/// instances are how "identify different irregular groups/insights" is
/// realized (per-mode means can then exceed half the instance's target
/// count, as the paper's do), and they remove any first-vs-second run
/// capacity asymmetry, so the mode-order ANOVA stays insignificant.
pub fn run_study_pair(w1: &Workload, w2: &Workload, cfg: &StudyConfig) -> StudyResults {
    run_study_impl(w1, Some(w2), cfg)
}

/// Runs the full four-cell study on one workload. Both task runs use the
/// same instance; the second run may only count targets the first missed
/// (the stricter reading of the protocol — useful for testing exclusion).
pub fn run_study(w: &Workload, cfg: &StudyConfig) -> StudyResults {
    run_study_impl(w, None, cfg)
}

fn run_study_impl(w: &Workload, w2: Option<&Workload>, cfg: &StudyConfig) -> StudyResults {
    let steps = cfg.steps.unwrap_or_else(|| w.scenario.default_steps());
    let mut cells = Vec::new();
    for (cell_idx, (cs, domain)) in [
        (CsExpertise::High, DomainKnowledge::High),
        (CsExpertise::High, DomainKnowledge::Low),
        (CsExpertise::Low, DomainKnowledge::High),
        (CsExpertise::Low, DomainKnowledge::Low),
    ]
    .into_iter()
    .enumerate()
    {
        let modes = modes_for(cs);
        let n = cfg.subjects_per_cell;
        // Subject i < n/2 runs modes in order [0, 1]; the rest reversed.
        let subject_runs: Vec<(usize, [ExplorationMode; 2])> = (0..n)
            .map(|i| {
                let order = if i < n / 2 {
                    modes
                } else {
                    [modes[1], modes[0]]
                };
                (i, order)
            })
            .collect();

        let run_one = |&(i, order): &(usize, [ExplorationMode; 2])| {
            let seed = cfg
                .base_seed
                .wrapping_mul(1_000_003)
                .wrapping_add((cell_idx * 1000 + i) as u64);
            let profile = SubjectProfile::new(cs, domain, seed);
            // Counterbalance workload instances alongside mode order:
            // alternate which instance is explored first, so neither mode
            // nor order is confounded with instance difficulty.
            let (first_w, second_source) = match w2 {
                Some(other) if i % 2 == 1 => (other, Ok(w)),
                Some(other) => (w, Ok(other)),
                None => (w, Err(())),
            };
            let first = run_subject(
                first_w,
                order[0],
                &profile,
                steps,
                &cfg.engine,
                &HashSet::new(),
            );
            // Second run: the other instance when provided, otherwise the
            // same instance with the first run's finds excluded.
            let (second_w, exclude) = match second_source {
                Ok(other) => (other, HashSet::new()),
                Err(()) => (w, first.found.iter().map(|&(t, _)| t).collect()),
            };
            let mut profile2 = profile.clone();
            profile2.seed = seed.wrapping_add(0x5eed);
            let second = run_subject(second_w, order[1], &profile2, steps, &cfg.engine, &exclude);
            (i, order, first.count(), second.count())
        };

        let results: Vec<(usize, [ExplorationMode; 2], usize, usize)> = if cfg.parallel {
            let threads = subdex_core::resolve_threads(0);
            let chunk = subject_runs.len().div_ceil(threads);
            let mut collected = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = subject_runs
                    .chunks(chunk)
                    .map(|slice| s.spawn(move || slice.iter().map(run_one).collect::<Vec<_>>()))
                    .collect();
                for h in handles {
                    collected.extend(h.join().expect("subject worker panicked"));
                }
            });
            collected
        } else {
            subject_runs.iter().map(run_one).collect()
        };

        // Column-major: scores per mode, subjects ordered so the first half
        // performed that mode first.
        let mut mode_scores: Vec<ModeScores> = modes
            .iter()
            .map(|&m| ModeScores {
                mode: m,
                scores: vec![0.0; n],
            })
            .collect();
        for (i, order, c1, c2) in results {
            for (pos, &m) in order.iter().enumerate() {
                let count = if pos == 0 { c1 } else { c2 };
                let col = mode_scores
                    .iter_mut()
                    .find(|ms| ms.mode == m)
                    .expect("mode present");
                // First-half slots hold first-performed runs of modes[0];
                // place by subject index (halves encode the order).
                col.scores[i] = count as f64;
            }
        }
        cells.push(CellResult {
            cs,
            domain,
            modes: mode_scores,
        });
    }
    StudyResults {
        scenario: w.scenario,
        cells,
    }
}

/// Figure 8: recall as a function of exploration steps. Runs
/// `subjects` fresh subjects per mode for `max_steps` steps and returns,
/// for each step `s` in `1..=max_steps`, the mean fraction of targets
/// found within `s` steps.
pub fn recall_curve(
    w: &Workload,
    mode: ExplorationMode,
    subjects: usize,
    max_steps: usize,
    cfg: &StudyConfig,
) -> Vec<f64> {
    let total = w.target_count().max(1) as f64;
    let outcomes: Vec<RunOutcome> = (0..subjects)
        .map(|i| {
            let profile = SubjectProfile::new(
                if i % 2 == 0 {
                    CsExpertise::High
                } else {
                    CsExpertise::Low
                },
                DomainKnowledge::Low,
                cfg.base_seed.wrapping_add(i as u64 * 977),
            );
            run_subject(w, mode, &profile, max_steps, &cfg.engine, &HashSet::new())
        })
        .collect();
    (1..=max_steps)
        .map(|s| {
            outcomes
                .iter()
                .map(|o| o.count_by_step(s) as f64 / total)
                .sum::<f64>()
                / subjects.max(1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subdex_data::{yelp, GenParams, IrregularSpec};

    fn workload() -> Workload {
        let raw = yelp::generate(GenParams::new(300, 40, 2500, 17));
        Workload::scenario1(
            raw,
            &IrregularSpec {
                reviewer_groups: 1,
                item_groups: 1,
                min_members: 5,
                min_item_members: 5,
                seed: 2,
            },
        )
    }

    fn quick_cfg() -> StudyConfig {
        StudyConfig {
            subjects_per_cell: 6,
            steps: Some(5),
            parallel: true,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn run_subject_produces_bounded_outcome() {
        let w = workload();
        let p = SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 3);
        let out = run_subject(
            &w,
            ExplorationMode::RecommendationPowered,
            &p,
            5,
            &quick_cfg().engine,
            &HashSet::new(),
        );
        assert!(out.count() <= w.target_count());
        for &(t, s) in &out.found {
            assert!(t < w.target_count());
            assert!((1..=5).contains(&s));
        }
    }

    #[test]
    fn excluded_targets_are_never_counted() {
        let w = workload();
        let p = SubjectProfile::new(CsExpertise::High, DomainKnowledge::High, 3);
        let all: HashSet<usize> = (0..w.target_count()).collect();
        let out = run_subject(
            &w,
            ExplorationMode::RecommendationPowered,
            &p,
            5,
            &quick_cfg().engine,
            &all,
        );
        assert_eq!(out.count(), 0);
    }

    #[test]
    fn run_subject_is_deterministic() {
        let w = workload();
        let p = SubjectProfile::new(CsExpertise::Low, DomainKnowledge::Low, 8);
        let run = || {
            run_subject(
                &w,
                ExplorationMode::FullyAutomated,
                &p,
                4,
                &quick_cfg().engine,
                &HashSet::new(),
            )
            .found
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn study_fills_all_cells() {
        let w = workload();
        let results = run_study(&w, &quick_cfg());
        assert_eq!(results.cells.len(), 4);
        for cell in &results.cells {
            assert_eq!(cell.modes.len(), 2);
            for ms in &cell.modes {
                assert_eq!(ms.scores.len(), 6);
                assert!(ms.scores.iter().all(|&s| (0.0..=2.0).contains(&s)));
            }
        }
        // Cell lookup and mean accessor work.
        let m = results.mean(
            CsExpertise::High,
            DomainKnowledge::High,
            ExplorationMode::RecommendationPowered,
        );
        assert!((0.0..=2.0).contains(&m));
    }

    #[test]
    fn high_cs_cells_compare_ud_vs_rp() {
        let w = workload();
        let results = run_study(&w, &quick_cfg());
        let cell = results.cell(CsExpertise::High, DomainKnowledge::Low);
        let modes: Vec<_> = cell.modes.iter().map(|m| m.mode).collect();
        assert!(modes.contains(&ExplorationMode::UserDriven));
        assert!(modes.contains(&ExplorationMode::RecommendationPowered));
        let cell = results.cell(CsExpertise::Low, DomainKnowledge::Low);
        let modes: Vec<_> = cell.modes.iter().map(|m| m.mode).collect();
        assert!(modes.contains(&ExplorationMode::FullyAutomated));
    }

    #[test]
    fn recall_curve_is_monotone() {
        let w = workload();
        let curve = recall_curve(
            &w,
            ExplorationMode::RecommendationPowered,
            4,
            6,
            &quick_cfg(),
        );
        assert_eq!(curve.len(), 6);
        for win in curve.windows(2) {
            assert!(win[0] <= win[1] + 1e-12, "recall never decreases");
        }
        assert!(curve.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }
}
