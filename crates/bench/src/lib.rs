//! Bench-harness crate: see `src/bin/experiments.rs` and `benches/`.
//!
//! The library target exists so Criterion benches and the experiment
//! binary can share helpers.

pub mod harness;
