//! Kernel-path microbenchmark: every batch kernel of the SIMD layer timed
//! on every path the host supports, against the forced-scalar reference.
//!
//! ```text
//! kernel_path [--quick] [--out BENCH_kernels.json]
//! ```
//!
//! Batches are synthetic but engine-shaped: thousands of small rating
//! distributions over the paper's 5-point scale for the row kernels
//! (candidate subgroups during re-estimation), selection-pool-sized CDF
//! sets for the EMD cost matrix and its column-minimum bound, and
//! scan-sized row/score streams for the histogram and gather kernels.
//! Before timing, every path's output is checked `to_bits`-equal to the
//! scalar reference on the same inputs — the byte-identity contract the
//! proptests pin, re-asserted on the actual bench data.
//!
//! Each (kernel, path) cell reports the best-of-`passes` mean ns/call
//! (min over timed blocks rides out scheduler noise) and its speedup over
//! the scalar path. Results go to a machine-readable JSON file (default
//! `BENCH_kernels.json`); `--quick` shrinks batches and reps for CI smoke.

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subdex_stats::kernels::{self, BatchScratch, KernelPath};
use subdex_store::bitset::BitSet;

/// Smoothing epsilon matching the KL peculiarity measure's call sites.
const EPS: f64 = 1e-6;

struct Shape {
    /// Lanes of the row-kernel batches (candidate subgroups per step).
    lanes: usize,
    /// Rating scale.
    scale: usize,
    /// Signatures per side of the EMD cost matrix (selection pool size).
    pool: usize,
    /// Records in the scan-stream kernels (group records per phase).
    records: usize,
    /// Timed calls per block.
    reps: u32,
    /// Timed blocks; the minimum mean is reported.
    passes: u32,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let shape = if quick {
        Shape {
            lanes: 512,
            scale: 5,
            pool: 32,
            records: 16_384,
            reps: 30,
            passes: 3,
        }
    } else {
        Shape {
            lanes: 4096,
            scale: 5,
            pool: 48,
            records: 262_144,
            reps: 200,
            passes: 5,
        }
    };

    let paths = KernelPath::available();
    println!(
        "# Kernel path — active {}, available [{}]",
        kernels::active(),
        paths
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "# batches: {} lanes x scale {}, pool {}x{}, {} records; best-of-{} mean over {} calls\n",
        shape.lanes, shape.scale, shape.pool, shape.pool, shape.records, shape.passes, shape.reps
    );

    let mut rng = StdRng::seed_from_u64(0x5eed);
    let data = Inputs::generate(&mut rng, &shape);
    let cells = run_all(&data, &shape, &paths);

    println!(
        "| {:<12} | {:>8} | {:>12} | {:>8} |",
        "kernel", "path", "ns/call", "speedup"
    );
    println!("|--------------|----------|--------------|----------|");
    let mut json_rows: Vec<String> = Vec::new();
    for kc in &cells {
        let scalar_ns = kc.ns[0];
        let mut path_json: Vec<String> = Vec::new();
        for (path, &ns) in paths.iter().zip(&kc.ns) {
            let speedup = scalar_ns / ns;
            println!(
                "| {:<12} | {:>8} | {:>12.1} | {:>7.2}x |",
                kc.name,
                path.name(),
                ns,
                speedup
            );
            path_json.push(format!(
                "{{\"path\": \"{}\", \"ns_per_call\": {:.1}, \"speedup_vs_scalar\": {:.3}}}",
                path.name(),
                ns,
                speedup
            ));
        }
        json_rows.push(format!(
            "    {{\"kernel\": \"{}\", \"results\": [{}]}}",
            kc.name,
            path_json.join(", ")
        ));
    }

    // Before/after for `BitSet::intersect_with_ids`: the pre-kernel version
    // probed every candidate bit and binary-searched the posting list; the
    // current one scatters the list into words and runs the `and_words` set
    // kernel. Same inputs, outputs asserted identical before timing.
    let capacity = shape.records;
    let base = BitSet::from_ids(
        capacity,
        &(0..capacity as u32).step_by(3).collect::<Vec<u32>>(),
    );
    let mut post_ids: Vec<u32> = (0..shape.records)
        .map(|_| rng.random_range(0..capacity as u32))
        .collect();
    post_ids.sort_unstable();
    post_ids.dedup();
    let legacy = |set: &BitSet| -> Vec<u32> {
        // Old shape: per-bit probe over the whole domain, membership by
        // binary search — no word-level work at all.
        (0..capacity as u32)
            .filter(|id| set.contains(*id) && post_ids.binary_search(id).is_ok())
            .collect()
    };
    let reference_ids = legacy(&base);
    {
        let mut s = base.clone();
        s.intersect_with_ids(&post_ids);
        assert_eq!(
            s.to_vec(),
            reference_ids,
            "intersect_with_ids: kernel route differs from legacy probe"
        );
    }
    let before_ns = time_ns(&shape, || {
        black_box(legacy(black_box(&base)));
    });
    let after_ns = time_ns(&shape, || {
        let mut s = black_box(&base).clone();
        s.intersect_with_ids(black_box(&post_ids));
        black_box(&s);
    });
    let ids_speedup = before_ns / after_ns;
    println!(
        "\nintersect_with_ids ({} bits ∩ {} ids): {:.0} ns legacy probe vs {:.0} ns kernel route ({:.2}x)",
        capacity,
        post_ids.len(),
        before_ns,
        after_ns,
        ids_speedup
    );

    let best = |kc: &KernelCells| kc.ns[0] / kc.ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let over_1_5 = cells.iter().filter(|kc| best(kc) >= 1.5).count();
    println!(
        "\nkernels with >= 1.5x best-path speedup over forced scalar: {}/{}",
        over_1_5,
        cells.len()
    );

    // Hand-rolled JSON (no serde_json in the vendored set); every value is
    // a number or a plain ASCII string, so no escaping is needed.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernel_path\",\n");
    json.push_str(&format!("  \"active_path\": \"{}\",\n", kernels::active()));
    json.push_str(&format!(
        "  \"available_paths\": [{}],\n",
        paths
            .iter()
            .map(|p| format!("\"{}\"", p.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"lanes\": {},\n", shape.lanes));
    json.push_str(&format!("  \"scale\": {},\n", shape.scale));
    json.push_str(&format!("  \"pool\": {},\n", shape.pool));
    json.push_str(&format!("  \"records\": {},\n", shape.records));
    json.push_str(&format!("  \"reps\": {},\n", shape.reps));
    json.push_str(&format!("  \"passes\": {},\n", shape.passes));
    json.push_str(&format!("  \"kernels_at_or_above_1p5x\": {over_1_5},\n"));
    json.push_str(&format!(
        "  \"intersect_with_ids_legacy_ns\": {before_ns:.1},\n"
    ));
    json.push_str(&format!(
        "  \"intersect_with_ids_kernel_ns\": {after_ns:.1},\n"
    ));
    json.push_str(&format!(
        "  \"intersect_with_ids_speedup\": {ids_speedup:.3},\n"
    ));
    json.push_str("  \"kernels\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_kernels.json");
    eprintln!("wrote {out_path}");
}

/// Engine-shaped synthetic inputs shared by every path of a kernel.
struct Inputs {
    batch: BatchScratch,
    ref_counts: Vec<u64>,
    ref_total: u64,
    /// Score-major CDFs of the whole batch (`scale × lanes`).
    batch_cdfs: Vec<f64>,
    /// Score-major CDFs of two selection pools (`scale × pool`).
    pool_a: Vec<f64>,
    pool_b: Vec<f64>,
    /// Reference CDF vector (`scale`).
    ref_cdf: Vec<f64>,
    /// Cost matrix for `col_mins` (`pool × pool`).
    cost: Vec<f64>,
    /// Scan stream: record entity rows, their scores, and the grouping
    /// column's value codes.
    rows: Vec<u32>,
    scores: Vec<u8>,
    codes: Vec<u32>,
    groups: usize,
    /// Gather source column and indices — random (adversarial) and sorted
    /// (the scan layer's actual pattern: ascending filtered record ids).
    src: Vec<u32>,
    idx: Vec<u32>,
    idx_sorted: Vec<u32>,
}

impl Inputs {
    fn generate(rng: &mut StdRng, shape: &Shape) -> Inputs {
        let (lanes, scale, pool) = (shape.lanes, shape.scale, shape.pool);
        let mut batch = BatchScratch::new();
        batch.begin(lanes, scale);
        let mut row = vec![0u64; scale];
        for lane in 0..lanes {
            // Mostly small subgroups, a few empty (the uniform fallback
            // lanes), a few large — the skew a real candidate batch has.
            let magnitude = match lane % 17 {
                0 => 0,
                1..=3 => 10_000,
                _ => 100,
            };
            for c in row.iter_mut() {
                *c = if magnitude == 0 {
                    0
                } else {
                    rng.random_range(0..magnitude)
                };
            }
            batch.set_lane(lane, &row);
        }
        let ref_counts: Vec<u64> = (0..scale).map(|_| rng.random_range(1..5_000)).collect();
        let ref_total = ref_counts.iter().sum();

        let mut batch_cdfs = Vec::new();
        kernels::cdf_rows(KernelPath::Scalar, &batch, &mut batch_cdfs);
        let random_cdfs = |rng: &mut StdRng, n: usize| -> Vec<f64> {
            let mut out = vec![0.0f64; scale * n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..scale {
                    acc += rng.random_range(0.0..1.0);
                    out[j * n + i] = acc;
                }
                for j in 0..scale {
                    out[j * n + i] /= acc;
                }
            }
            out
        };
        let pool_a = random_cdfs(rng, pool);
        let pool_b = random_cdfs(rng, pool);
        let mut ref_cdf = vec![0.0f64; scale];
        let mut acc = 0.0;
        for v in ref_cdf.iter_mut() {
            acc += rng.random_range(0.0..1.0);
            *v = acc;
        }
        for v in ref_cdf.iter_mut() {
            *v /= acc;
        }
        let mut cost = Vec::new();
        kernels::cost_matrix(
            KernelPath::Scalar,
            &pool_a,
            pool,
            &pool_b,
            pool,
            scale,
            &mut cost,
        );

        let groups = 1024;
        let entities = 16_384u32;
        let rows: Vec<u32> = (0..shape.records)
            .map(|_| rng.random_range(0..entities))
            .collect();
        let scores: Vec<u8> = (0..shape.records)
            .map(|_| rng.random_range(1..=scale as u8))
            .collect();
        let codes: Vec<u32> = (0..entities)
            .map(|_| rng.random_range(0..groups as u32))
            .collect();
        let src: Vec<u32> = (0..entities)
            .map(|_| rng.random_range(0..1 << 20))
            .collect();
        let idx = rows.clone();
        let mut idx_sorted = idx.clone();
        idx_sorted.sort_unstable();

        Inputs {
            batch,
            ref_counts,
            ref_total,
            batch_cdfs,
            pool_a,
            pool_b,
            ref_cdf,
            cost,
            rows,
            scores,
            codes,
            groups,
            src,
            idx,
            idx_sorted,
        }
    }
}

struct KernelCells {
    name: &'static str,
    /// Mean ns/call per path, in `paths` order (scalar first).
    ns: Vec<f64>,
}

/// Best-of-`passes` mean ns per call of `f`, after one warm-up block.
fn time_ns(shape: &Shape, mut f: impl FnMut()) -> f64 {
    let warmup = (shape.reps / 4).max(1);
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..shape.passes {
        let t = Instant::now();
        for _ in 0..shape.reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9 / f64::from(shape.reps));
    }
    best
}

/// Asserts `got` is bit-for-bit the scalar `want` — the byte-identity
/// contract checked on the bench's own inputs before any timing.
fn assert_bits(kernel: &str, path: KernelPath, want: &[f64], got: &[f64]) {
    assert_eq!(want.len(), got.len(), "{kernel}/{path}: length mismatch");
    for (k, (w, g)) in want.iter().zip(got).enumerate() {
        assert!(
            w.to_bits() == g.to_bits() || (w.is_nan() && g.is_nan()),
            "{kernel}/{path}: lane {k} differs from scalar ({w:?} vs {g:?})"
        );
    }
}

fn run_all(data: &Inputs, shape: &Shape, paths: &[KernelPath]) -> Vec<KernelCells> {
    let (scale, pool) = (shape.scale, shape.pool);
    let mut cells = Vec::new();
    let mut out = Vec::new();
    let mut out2 = Vec::new();

    // Each block: compute the scalar reference once, then per path check
    // byte-identity and time the call on the shared output buffer.
    let mut reference = Vec::new();

    kernels::cdf_rows(KernelPath::Scalar, &data.batch, &mut reference);
    cells.push(KernelCells {
        name: "cdf_rows",
        ns: paths
            .iter()
            .map(|&p| {
                kernels::cdf_rows(p, &data.batch, &mut out);
                assert_bits("cdf_rows", p, &reference, &out);
                time_ns(shape, || {
                    kernels::cdf_rows(p, black_box(&data.batch), &mut out);
                    black_box(&out);
                })
            })
            .collect(),
    });

    kernels::tvd_rows(
        KernelPath::Scalar,
        &data.batch,
        &data.ref_counts,
        data.ref_total,
        &mut reference,
    );
    cells.push(KernelCells {
        name: "tvd_rows",
        ns: paths
            .iter()
            .map(|&p| {
                kernels::tvd_rows(p, &data.batch, &data.ref_counts, data.ref_total, &mut out);
                assert_bits("tvd_rows", p, &reference, &out);
                time_ns(shape, || {
                    kernels::tvd_rows(
                        p,
                        black_box(&data.batch),
                        &data.ref_counts,
                        data.ref_total,
                        &mut out,
                    );
                    black_box(&out);
                })
            })
            .collect(),
    });

    kernels::jeffreys_rows(
        KernelPath::Scalar,
        &data.batch,
        &data.ref_counts,
        data.ref_total,
        EPS,
        &mut reference,
    );
    cells.push(KernelCells {
        name: "jeffreys_rows",
        ns: paths
            .iter()
            .map(|&p| {
                kernels::jeffreys_rows(
                    p,
                    &data.batch,
                    &data.ref_counts,
                    data.ref_total,
                    EPS,
                    &mut out,
                );
                assert_bits("jeffreys_rows", p, &reference, &out);
                time_ns(shape, || {
                    kernels::jeffreys_rows(
                        p,
                        black_box(&data.batch),
                        &data.ref_counts,
                        data.ref_total,
                        EPS,
                        &mut out,
                    );
                    black_box(&out);
                })
            })
            .collect(),
    });

    let mut ref_sd = Vec::new();
    kernels::mean_sd_rows(KernelPath::Scalar, &data.batch, &mut reference, &mut ref_sd);
    cells.push(KernelCells {
        name: "mean_sd_rows",
        ns: paths
            .iter()
            .map(|&p| {
                kernels::mean_sd_rows(p, &data.batch, &mut out, &mut out2);
                assert_bits("mean_sd_rows/mean", p, &reference, &out);
                assert_bits("mean_sd_rows/sd", p, &ref_sd, &out2);
                time_ns(shape, || {
                    kernels::mean_sd_rows(p, black_box(&data.batch), &mut out, &mut out2);
                    black_box(&out);
                })
            })
            .collect(),
    });

    kernels::l1_norm_rows(
        KernelPath::Scalar,
        &data.batch_cdfs,
        data.batch.lanes(),
        scale,
        &data.ref_cdf,
        &mut reference,
    );
    cells.push(KernelCells {
        name: "l1_norm_rows",
        ns: paths
            .iter()
            .map(|&p| {
                kernels::l1_norm_rows(
                    p,
                    &data.batch_cdfs,
                    data.batch.lanes(),
                    scale,
                    &data.ref_cdf,
                    &mut out,
                );
                assert_bits("l1_norm_rows", p, &reference, &out);
                time_ns(shape, || {
                    kernels::l1_norm_rows(
                        p,
                        black_box(&data.batch_cdfs),
                        data.batch.lanes(),
                        scale,
                        &data.ref_cdf,
                        &mut out,
                    );
                    black_box(&out);
                })
            })
            .collect(),
    });

    kernels::cost_matrix(
        KernelPath::Scalar,
        &data.pool_a,
        pool,
        &data.pool_b,
        pool,
        scale,
        &mut reference,
    );
    cells.push(KernelCells {
        name: "cost_matrix",
        ns: paths
            .iter()
            .map(|&p| {
                kernels::cost_matrix(p, &data.pool_a, pool, &data.pool_b, pool, scale, &mut out);
                assert_bits("cost_matrix", p, &reference, &out);
                time_ns(shape, || {
                    kernels::cost_matrix(
                        p,
                        black_box(&data.pool_a),
                        pool,
                        &data.pool_b,
                        pool,
                        scale,
                        &mut out,
                    );
                    black_box(&out);
                })
            })
            .collect(),
    });

    kernels::col_mins(KernelPath::Scalar, &data.cost, pool, pool, &mut reference);
    cells.push(KernelCells {
        name: "col_mins",
        ns: paths
            .iter()
            .map(|&p| {
                kernels::col_mins(p, &data.cost, pool, pool, &mut out);
                assert_bits("col_mins", p, &reference, &out);
                time_ns(shape, || {
                    kernels::col_mins(p, black_box(&data.cost), pool, pool, &mut out);
                    black_box(&out);
                })
            })
            .collect(),
    });

    let mut hist_ref = vec![0u64; data.groups * scale];
    kernels::hist_single(
        KernelPath::Scalar,
        &data.rows,
        &data.scores,
        &data.codes,
        scale,
        &mut hist_ref,
    );
    let mut hist = vec![0u64; data.groups * scale];
    cells.push(KernelCells {
        name: "hist_single",
        ns: paths
            .iter()
            .map(|&p| {
                hist.iter_mut().for_each(|c| *c = 0);
                kernels::hist_single(p, &data.rows, &data.scores, &data.codes, scale, &mut hist);
                assert_eq!(hist, hist_ref, "hist_single/{p}: differs from scalar");
                time_ns(shape, || {
                    hist.iter_mut().for_each(|c| *c = 0);
                    kernels::hist_single(
                        p,
                        black_box(&data.rows),
                        &data.scores,
                        &data.codes,
                        scale,
                        &mut hist,
                    );
                    black_box(&hist);
                })
            })
            .collect(),
    });

    let mut gather_ref = Vec::new();
    let mut gathered = Vec::new();
    for (name, idx) in [("gather_rand", &data.idx), ("gather_seq", &data.idx_sorted)] {
        kernels::gather_u32(KernelPath::Scalar, &data.src, idx, &mut gather_ref);
        cells.push(KernelCells {
            name,
            ns: paths
                .iter()
                .map(|&p| {
                    kernels::gather_u32(p, &data.src, idx, &mut gathered);
                    assert_eq!(gathered, gather_ref, "{name}/{p}: differs from scalar");
                    time_ns(shape, || {
                        kernels::gather_u32(p, black_box(&data.src), idx, &mut gathered);
                        black_box(&gathered);
                    })
                })
                .collect(),
        });
    }

    cells
}
