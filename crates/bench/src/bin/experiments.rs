//! Regenerates every table and figure of the paper's evaluation
//! (Section 5). Usage:
//!
//! ```text
//! experiments [--quick] <table2|fig7|fig8|table4|table5|table6|fig9|
//!               ablation|fig10a|fig10b|fig10c|fig11a|fig11b|fig11c|all>
//! ```
//!
//! `--quick` shrinks dataset scales and subject counts for smoke runs.
//! Output is Markdown-ish text; EXPERIMENTS.md records paper-vs-measured.

use std::collections::HashSet;
use std::sync::Arc;
use subdex_bench::harness::{
    engine_variants, fmt_ms, hotels_at, mean_step_time, movielens_at, scenario1_workload,
    scenario2_workload, yelp_at, Scale,
};
use subdex_core::interest::Criterion;
use subdex_core::selector::SelectionStrategy;
use subdex_core::{EngineConfig, ExplorationMode, UtilityCombiner};
use subdex_sim::autopath::{record_query_path, run_auto_path, run_fixed_path, OpSource};
use subdex_sim::study::{recall_curve, run_subject, StudyConfig};
use subdex_sim::subject::{CsExpertise, DomainKnowledge, SubjectProfile};
use subdex_sim::workload::Workload;
use subdex_stats::moments::summarize;

/// Experiment-wide settings derived from the CLI.
#[derive(Clone, Copy)]
struct Ctx {
    study_scale: Scale,
    perf_scale: Scale,
    subjects_per_cell: usize,
    injection_seeds: u64,
    path_steps: usize,
}

impl Ctx {
    fn standard() -> Self {
        Self {
            study_scale: Scale::Study,
            perf_scale: Scale::Full,
            subjects_per_cell: 30,
            injection_seeds: 8,
            path_steps: 7,
        }
    }

    fn quick() -> Self {
        Self {
            study_scale: Scale::Smoke,
            perf_scale: Scale::Smoke,
            subjects_per_cell: 6,
            injection_seeds: 3,
            path_steps: 4,
        }
    }

    fn study_engine(&self) -> EngineConfig {
        EngineConfig {
            parallel: false, // subjects are the parallel axis
            max_candidates: 12,
            ..EngineConfig::default()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ctx = if quick { Ctx::quick() } else { Ctx::standard() };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let what = which.first().copied().unwrap_or("all");

    let t0 = std::time::Instant::now();
    let run = |name: &str| what == "all" || what == name;
    if run("table2") {
        table2(&ctx);
    }
    if run("fig7") {
        fig7(&ctx);
    }
    if run("fig8") {
        fig8(&ctx);
    }
    if run("table4") {
        table4(&ctx);
    }
    if run("table5") {
        table5(&ctx);
    }
    if run("table6") {
        table6(&ctx);
    }
    if run("fig9") {
        fig9(&ctx);
    }
    if run("ablation") {
        ablation(&ctx);
    }
    if run("ablation-pec") {
        ablation_peculiarity(&ctx);
    }
    if run("ablation-norm") {
        ablation_normalizer(&ctx);
    }
    if run("hotels") {
        hotels_trends(&ctx);
    }
    if run("fig10a") {
        fig10a(&ctx);
    }
    if run("fig10b") {
        fig10b(&ctx);
    }
    if run("fig10c") {
        fig10c(&ctx);
    }
    if run("fig11a") {
        fig11(&ctx, 'a');
    }
    if run("fig11b") {
        fig11(&ctx, 'b');
    }
    if run("fig11c") {
        fig11(&ctx, 'c');
    }
    eprintln!(
        "\n[experiments finished in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}

fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

// ---------------------------------------------------------------- Table 2

fn table2(_ctx: &Ctx) {
    header("Table 2: Examined datasets (generated at paper-scale)");
    println!(
        "{:<14} {:>7} {:>14} {:>8} {:>9} {:>9} {:>6}",
        "Dataset", "#Atts", "Max #vals", "#Dims", "|R|", "|U|", "|I|"
    );
    for (name, ds) in [
        ("Movielens", movielens_at(Scale::Full)),
        ("Yelp", yelp_at(Scale::Full)),
        ("Hotel Reviews", hotels_at(Scale::Full)),
    ] {
        let s = ds.db.stats();
        println!(
            "{:<14} {:>7} {:>14} {:>8} {:>9} {:>9} {:>6}",
            name,
            s.attr_count,
            s.max_values,
            s.dim_count,
            s.rating_count,
            s.reviewer_count,
            s.item_count
        );
    }
}

// ---------------------------------------------------------------- Figure 7

fn fig7(ctx: &Ctx) {
    header("Figure 7: Exploration guidance (avg #found per mode/cell)");
    let cfg = StudyConfig {
        subjects_per_cell: ctx.subjects_per_cell,
        steps: None,
        engine: ctx.study_engine(),
        base_seed: 77,
        parallel: true,
    };
    for dataset in ["movielens", "yelp"] {
        // Each subject performs the task twice (once per mode) on two
        // different workload instances, so the second run has fresh targets
        // ("identify different irregular groups/insights").
        let s1a = scenario1_workload(dataset, ctx.study_scale, 40);
        let s1b = scenario1_workload(dataset, ctx.study_scale, 41);
        let s2a = scenario2_workload(dataset, ctx.study_scale);
        let s2b = subdex_bench::harness::scenario2_workload_seeded(dataset, ctx.study_scale, 1);
        for (scen_name, wa, wb) in [("Scenario I", &s1a, &s1b), ("Scenario II", &s2a, &s2b)] {
            let res = subdex_sim::study::run_study_pair(wa, wb, &cfg);
            let workload = wa;
            println!(
                "\n--- {dataset} / {scen_name} (targets: {}) ---",
                workload.target_count()
            );
            println!(
                "{:<22} {:>24} {:>24}",
                "", "High Domain Knowledge", "Low Domain Knowledge"
            );
            for cs in [CsExpertise::High, CsExpertise::Low] {
                let fmt_cell = |domain| {
                    let cell = res.cell(cs, domain);
                    cell.modes
                        .iter()
                        .map(|m| {
                            let tag = match m.mode {
                                ExplorationMode::UserDriven => "UD",
                                ExplorationMode::RecommendationPowered => "RP",
                                ExplorationMode::FullyAutomated => "FA",
                            };
                            format!("{tag}: {:.1}", m.summary().mean)
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                println!(
                    "{:<22} {:>24} {:>24}",
                    format!("{:?} CS Expertise", cs),
                    fmt_cell(DomainKnowledge::High),
                    fmt_cell(DomainKnowledge::Low)
                );
            }
            // ANOVA footnote checks.
            let mut order_sig = 0;
            let mut order_total = 0;
            for cell in &res.cells {
                for m in &cell.modes {
                    if let Some(a) = m.order_effect() {
                        order_total += 1;
                        if a.significant_at(0.05) {
                            order_sig += 1;
                        }
                    }
                }
            }
            println!("ANOVA: mode-order effects significant in {order_sig}/{order_total} cells (paper: 0)");
            for cs in [CsExpertise::High, CsExpertise::Low] {
                for mode in subdex_sim::study::modes_for(cs) {
                    if let Some(a) = res.domain_effect(cs, mode) {
                        println!(
                            "ANOVA: domain-knowledge effect ({cs:?} CS, {mode}): F={:.2}, p={:.3}{}",
                            a.f,
                            a.p_value,
                            if a.significant_at(0.05) { "  [SIGNIFICANT]" } else { "" }
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- Figure 8

fn fig8(ctx: &Ctx) {
    header("Figure 8: Recall as a function of exploration steps (Movielens)");
    let cfg = StudyConfig {
        subjects_per_cell: ctx.subjects_per_cell,
        steps: None,
        engine: ctx.study_engine(),
        base_seed: 88,
        parallel: true,
    };
    let max_steps = if ctx.subjects_per_cell <= 6 { 6 } else { 12 };
    let subjects = ctx.subjects_per_cell;
    for (scen_name, w) in [
        (
            "Scenario I",
            scenario1_workload("movielens", ctx.study_scale, 41),
        ),
        (
            "Scenario II",
            scenario2_workload("movielens", ctx.study_scale),
        ),
    ] {
        println!("\n--- {scen_name} ---");
        print!("{:<26}", "steps:");
        for s in 1..=max_steps {
            print!("{s:>6}");
        }
        println!();
        for mode in [
            ExplorationMode::UserDriven,
            ExplorationMode::RecommendationPowered,
            ExplorationMode::FullyAutomated,
        ] {
            let curve = recall_curve(&w, mode, subjects, max_steps, &cfg);
            print!("{:<26}", mode.to_string());
            for r in curve {
                print!("{:>6.2}", r);
            }
            println!();
        }
    }
}

// ---------------------------------------------------------------- Table 4

fn table4(ctx: &Ctx) {
    header("Table 4: Quality of recommendations (avg #irregular groups surfaced)");
    println!("{:<10} {:>10} {:>10}", "Baseline", "Movielens", "Yelp");
    let cfg = ctx.study_engine();
    for source in [OpSource::Subdex, OpSource::Sdd, OpSource::Qagview] {
        let mut cols = Vec::new();
        for dataset in ["movielens", "yelp"] {
            let mut scores = Vec::new();
            for seed in 0..ctx.injection_seeds {
                let w = scenario1_workload(dataset, ctx.study_scale, 100 + seed);
                let stats = run_auto_path(&w, source, ctx.path_steps, &cfg);
                scores.push(stats.irregulars_shown.len() as f64);
            }
            let s = summarize(&scores).expect("non-empty");
            cols.push(format!("{:.1}", s.mean));
        }
        println!("{:<10} {:>10} {:>10}", source.to_string(), cols[0], cols[1]);
    }
}

// ---------------------------------------------------------------- Table 5

fn table5(ctx: &Ctx) {
    header("Table 5: Utility vs diversity as l varies (Fully-Automated paths)");
    println!("{:<16} {:>22} {:>22}", "Variant", "Movielens", "Yelp");
    let variants: Vec<(&str, EngineConfig)> = vec![
        ("Utility-Only", ctx.study_engine().with_l(1)),
        ("l = 2", ctx.study_engine().with_l(2)),
        ("l = 3", ctx.study_engine().with_l(3)),
        ("Diversity-Only", {
            let mut c = ctx.study_engine();
            c.selection = SelectionStrategy::DiversityOnly;
            c
        }),
    ];
    // Section 5.2.3: the Fully-Automated path *fixes* the next-action
    // operations; only the map-selection strategy varies across rows.
    let mut paths = std::collections::HashMap::new();
    for dataset in ["movielens", "yelp"] {
        let w = scenario1_workload(dataset, ctx.study_scale, 42);
        let queries = record_query_path(&w, ctx.path_steps, &ctx.study_engine());
        paths.insert(dataset, (w, queries));
    }
    for (name, cfg) in variants {
        let mut cols = Vec::new();
        for dataset in ["movielens", "yelp"] {
            let (w, queries) = &paths[dataset];
            let stats = run_fixed_path(w, queries, &cfg);
            cols.push(format!(
                "a={} u={:.1} d={:.3}",
                stats.distinct_attributes, stats.total_utility, stats.avg_diversity
            ));
        }
        println!("{:<16} {:>22} {:>22}", name, cols[0], cols[1]);
    }
    println!("(a = distinct attributes shown, u = total utility, d = avg EMD diversity)");
}

// ---------------------------------------------------------------- Table 6

fn table6(ctx: &Ctx) {
    header("Table 6: Avg #identified irregular groups, utility-only vs diversity-only");
    println!(
        "{:<10} {:>14} {:>16}",
        "Dataset", "Utility-only", "Diversity-only"
    );
    for dataset in ["movielens", "yelp"] {
        let mut cols = Vec::new();
        for diversity_only in [false, true] {
            let mut cfg = ctx.study_engine();
            if diversity_only {
                cfg.selection = SelectionStrategy::DiversityOnly;
            } else {
                cfg = cfg.with_l(1);
            }
            let mut scores = Vec::new();
            for i in 0..ctx.subjects_per_cell as u64 {
                let w = scenario1_workload(dataset, ctx.study_scale, 200 + i % ctx.injection_seeds);
                let profile = SubjectProfile::new(
                    if i % 2 == 0 {
                        CsExpertise::High
                    } else {
                        CsExpertise::Low
                    },
                    DomainKnowledge::Low,
                    900 + i,
                );
                let out = run_subject(
                    &w,
                    ExplorationMode::FullyAutomated,
                    &profile,
                    ctx.path_steps,
                    &cfg,
                    &HashSet::new(),
                );
                scores.push(out.count() as f64);
            }
            cols.push(format!("{:.1}", summarize(&scores).expect("scores").mean));
        }
        println!("{:<10} {:>14} {:>16}", dataset, cols[0], cols[1]);
    }
}

// ---------------------------------------------------------------- Figure 9

fn fig9(ctx: &Ctx) {
    header("Figure 9: Rating maps per dimension, with vs without DW weights (Yelp)");
    let w_fig9 = scenario1_workload("yelp", ctx.study_scale, 43);
    let fig9_queries = record_query_path(&w_fig9, ctx.path_steps, &ctx.study_engine());
    for (label, dw) in [("with DW", true), ("without DW", false)] {
        let mut cfg = ctx.study_engine();
        cfg.dimension_weighting = dw;
        let w = &w_fig9;
        let stats = run_fixed_path(w, &fig9_queries, &cfg);
        let names = w.db.ratings().dim_names().to_vec();
        print!("{label:<12}");
        for (n, c) in names.iter().zip(&stats.maps_per_dimension) {
            print!("  {n}: {c}");
        }
        let max = *stats.maps_per_dimension.iter().max().unwrap_or(&0);
        let min = *stats.maps_per_dimension.iter().min().unwrap_or(&0);
        println!("   (spread {})", max - min);
    }
    println!("(DW weights should balance the per-dimension counts — smaller spread)");
}

// --------------------------------------------------------------- Ablation

fn ablation(ctx: &Ctx) {
    header("Utility-criteria ablation (Sec 5.2.3): avg #irregular groups surfaced");
    let variants: Vec<(&str, UtilityCombiner)> = vec![
        ("max (paper)", UtilityCombiner::Max),
        ("average", UtilityCombiner::Average),
        (
            "conciseness only",
            UtilityCombiner::Single(Criterion::Conciseness),
        ),
        (
            "agreement only",
            UtilityCombiner::Single(Criterion::Agreement),
        ),
        (
            "self-pec only",
            UtilityCombiner::Single(Criterion::SelfPeculiarity),
        ),
        (
            "global-pec only",
            UtilityCombiner::Single(Criterion::GlobalPeculiarity),
        ),
    ];
    println!(
        "{:<18} {:>10} {:>10}",
        "Utility variant", "Movielens", "Yelp"
    );
    for (name, combiner) in variants {
        let mut cols = Vec::new();
        for dataset in ["movielens", "yelp"] {
            let mut scores = Vec::new();
            for seed in 0..ctx.injection_seeds {
                let mut cfg = ctx.study_engine();
                cfg.combiner = combiner;
                let w = scenario1_workload(dataset, ctx.study_scale, 300 + seed);
                let stats = run_auto_path(&w, OpSource::Subdex, ctx.path_steps, &cfg);
                scores.push(stats.irregulars_shown.len() as f64);
            }
            cols.push(format!("{:.2}", summarize(&scores).expect("scores").mean));
        }
        println!("{:<18} {:>10} {:>10}", name, cols[0], cols[1]);
    }
}

// ------------------------------------------- Design-choice ablations

/// DESIGN.md ablation: the peculiarity distance (TVD vs KL vs Outlier).
fn ablation_peculiarity(ctx: &Ctx) {
    header("Ablation: peculiarity measure (avg #irregular groups surfaced)");
    use subdex_core::interest::PeculiarityMeasure;
    println!("{:<18} {:>10} {:>10}", "Measure", "Movielens", "Yelp");
    for (name, measure) in [
        ("TVD (paper)", PeculiarityMeasure::TotalVariation),
        ("KL divergence", PeculiarityMeasure::KlDivergence),
        ("Outlier fn", PeculiarityMeasure::Outlier),
    ] {
        let mut cols = Vec::new();
        for dataset in ["movielens", "yelp"] {
            let mut scores = Vec::new();
            for seed in 0..ctx.injection_seeds {
                let mut cfg = ctx.study_engine();
                cfg.peculiarity = measure;
                let w = scenario1_workload(dataset, ctx.study_scale, 500 + seed);
                let stats = run_auto_path(&w, OpSource::Subdex, ctx.path_steps, &cfg);
                scores.push(stats.irregulars_shown.len() as f64);
            }
            cols.push(format!("{:.2}", summarize(&scores).expect("scores").mean));
        }
        println!("{:<18} {:>10} {:>10}", name, cols[0], cols[1]);
    }
}

/// DESIGN.md ablation: criterion normalization (z-logistic per \[51\] vs
/// running min-max).
fn ablation_normalizer(ctx: &Ctx) {
    header("Ablation: criterion normalizer (avg #irregular groups surfaced)");
    use subdex_stats::normalize::NormalizerKind;
    println!("{:<22} {:>10} {:>10}", "Normalizer", "Movielens", "Yelp");
    for (name, kind) in [
        ("z-logistic (paper)", NormalizerKind::ZLogistic),
        ("min-max", NormalizerKind::MinMax),
    ] {
        let mut cols = Vec::new();
        for dataset in ["movielens", "yelp"] {
            let mut scores = Vec::new();
            for seed in 0..ctx.injection_seeds {
                let mut cfg = ctx.study_engine();
                cfg.normalizer = kind;
                let w = scenario1_workload(dataset, ctx.study_scale, 600 + seed);
                let stats = run_auto_path(&w, OpSource::Subdex, ctx.path_steps, &cfg);
                scores.push(stats.irregulars_shown.len() as f64);
            }
            cols.push(format!("{:.2}", summarize(&scores).expect("scores").mean));
        }
        println!("{:<22} {:>10} {:>10}", name, cols[0], cols[1]);
    }
}

// -------------------------------------------------- Hotels similar-trends

/// The paper omits Hotel-Reviews results "as the Hotel Review dataset
/// demonstrated similar trends to Yelp"; this section verifies that claim
/// on the synthetic twin: recommendation quality (Table 4 shape) and the
/// DW-balance effect (Figure 9 shape) on hotels.
fn hotels_trends(ctx: &Ctx) {
    header("Hotels: similar-trends check (paper omits these 'to save space')");
    println!("Recommendation quality (avg #irregular groups surfaced):");
    // Shipped engine defaults (sequential), not the trimmed study engine:
    // hotels' 62-value attributes need the full candidate budget.
    let cfg = EngineConfig {
        parallel: false,
        ..EngineConfig::default()
    };
    for source in [OpSource::Subdex, OpSource::Sdd, OpSource::Qagview] {
        let mut scores = Vec::new();
        for seed in 0..ctx.injection_seeds {
            let w = scenario1_workload("hotels", ctx.study_scale, 700 + seed);
            let stats = run_auto_path(&w, source, ctx.path_steps, &cfg);
            scores.push(stats.irregulars_shown.len() as f64);
        }
        println!(
            "  {:<10} {:.1}",
            source.to_string(),
            summarize(&scores).expect("scores").mean
        );
    }
    println!("Dimension balance with vs without DW:");
    let w = scenario1_workload("hotels", ctx.study_scale, 701);
    let queries = record_query_path(&w, ctx.path_steps, &cfg);
    for (label, dw) in [("with DW", true), ("without DW", false)] {
        let mut c = cfg;
        c.dimension_weighting = dw;
        let stats = run_fixed_path(&w, &queries, &c);
        let max = *stats.maps_per_dimension.iter().max().unwrap_or(&0);
        let min = *stats.maps_per_dimension.iter().min().unwrap_or(&0);
        println!(
            "  {label:<12} per-dim counts {:?} (spread {})",
            stats.maps_per_dimension,
            max - min
        );
    }
}

// ------------------------------------------------------------- Figure 10

fn perf_workload(ctx: &Ctx) -> Workload {
    scenario1_workload("yelp", ctx.perf_scale, 44)
}

fn fig10a(ctx: &Ctx) {
    header("Figure 10(a): Runtime vs database size (reviewer sampling, Yelp)");
    let w = perf_workload(ctx);
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    print!("{:<16}", "variant \\ size");
    for f in fractions {
        print!("{:>12}", format!("{:.0}%", f * 100.0));
    }
    println!();
    for (name, cfg) in engine_variants() {
        print!("{name:<16}");
        for f in fractions {
            let db = Arc::new(subdex_data::transform::sample_reviewers(&w.db, f, 9));
            let t = mean_step_time(&db, &cfg, 3);
            print!("{:>12}", fmt_ms(t));
        }
        println!();
    }
}

fn fig10b(ctx: &Ctx) {
    header("Figure 10(b): Runtime vs #attributes (Yelp)");
    let w = perf_workload(ctx);
    let keeps = [6usize, 12, 18, 24];
    print!("{:<16}", "variant \\ atts");
    for k in keeps {
        print!("{k:>12}");
    }
    println!();
    for (name, cfg) in engine_variants() {
        print!("{name:<16}");
        for k in keeps {
            let db = Arc::new(subdex_data::transform::drop_attributes(&w.db, k, 9));
            let t = mean_step_time(&db, &cfg, 3);
            print!("{:>12}", fmt_ms(t));
        }
        println!();
    }
}

fn fig10c(ctx: &Ctx) {
    header("Figure 10(c): Runtime vs #attribute-values (Yelp)");
    let w = perf_workload(ctx);
    let caps = [4usize, 7, 10, 13];
    print!("{:<16}", "variant \\ vals");
    for c in caps {
        print!("{c:>12}");
    }
    println!();
    for (name, cfg) in engine_variants() {
        print!("{name:<16}");
        for c in caps {
            let db = Arc::new(subdex_data::transform::restrict_values(&w.db, c, 9));
            let t = mean_step_time(&db, &cfg, 3);
            print!("{:>12}", fmt_ms(t));
        }
        println!();
    }
}

// ------------------------------------------------------------- Figure 11

fn fig11(ctx: &Ctx, which: char) {
    let (title, values): (&str, Vec<usize>) = match which {
        'a' => (
            "Figure 11(a): Runtime vs k (#rating maps)",
            vec![1, 2, 3, 4, 5],
        ),
        'b' => (
            "Figure 11(b): Runtime vs o (#recommendations)",
            vec![1, 2, 3, 4, 5],
        ),
        _ => (
            "Figure 11(c): Runtime vs l (pruning-diversity factor)",
            vec![1, 2, 3, 4, 5],
        ),
    };
    header(title);
    let w = perf_workload(ctx);
    let db = w.db.clone();
    print!("{:<16}", "variant \\ value");
    for v in &values {
        print!("{v:>12}");
    }
    println!();
    for (name, base) in engine_variants() {
        print!("{name:<16}");
        for &v in &values {
            let cfg = match which {
                'a' => EngineConfig { k: v, ..base },
                // Candidate-evaluation budget scales with the number of
                // recommendations requested (more recommendations must be
                // ranked confidently from more candidates).
                'b' => EngineConfig {
                    o: v,
                    max_candidates: v * 12,
                    ..base
                },
                _ => base.with_l(v),
            };
            let t = mean_step_time(&db, &cfg, 3);
            print!("{:>12}", fmt_ms(t));
        }
        println!();
    }
    if which == 'b' {
        println!("(note: on a single-core host the parallel variants cannot be flat; see EXPERIMENTS.md)");
    }
}
