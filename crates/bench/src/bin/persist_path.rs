//! Persist-path benchmark: snapshot warm start versus CSV cold start.
//!
//! Times, for the MovieLens- and Yelp-like datasets, the two ways a
//! process can obtain a ready-to-query [`SubjectiveDb`]:
//!
//! 1. **CSV ingest** ([`subdex_store::csv::load_dir`]): parse three CSV
//!    files, re-intern every dictionary, rebuild both inverted indexes —
//!    what every start used to cost.
//! 2. **Snapshot load** ([`subdex_persist::read_snapshot`]): one
//!    checksummed bulk read of the columnar layout.
//!
//! Before timing, the run asserts the two paths agree with the original
//! database — identical [`DbStats`](subdex_store::DbStats), identical
//! canonical record sets for a spread of selection queries, identical
//! seeded [`rating_group`](subdex_store::SubjectiveDb::rating_group)
//! shuffles — so the speedup is between *equivalent* results, not a fast
//! path that dropped work. Results print as a table and land in a JSON
//! file (default `BENCH_persist.json`); `--quick` switches to smoke scale
//! for CI.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use subdex_bench::harness::{movielens_at, yelp_at, Scale};
use subdex_persist::{read_snapshot, write_snapshot};
use subdex_store::{csv, AttrValue, Entity, SelectionQuery, SubjectiveDb};

/// One dataset's measurements.
struct Row {
    name: &'static str,
    ratings: usize,
    csv_bytes: u64,
    snapshot_bytes: u64,
    csv_load_ms: f64,
    snapshot_load_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.csv_load_ms / self.snapshot_load_ms.max(1e-9)
    }
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok().and_then(|e| e.metadata().ok()))
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Queries exercising both entity sides and a multi-valued attribute when
/// one exists: the identity check compares canonical record sets under
/// each of these. Predicates carry `ValueId`s, so matching record sets
/// also prove both loaders preserved dictionary code assignment.
fn probe_queries(db: &SubjectiveDb) -> Vec<SelectionQuery> {
    let mut queries = vec![SelectionQuery::all()];
    for entity in [Entity::Reviewer, Entity::Item] {
        let table = db.table(entity);
        for attr in table.schema().attr_ids().take(2) {
            if let Some((vid, _)) = table.dictionary(attr).iter().next() {
                queries.push(SelectionQuery::from_preds([AttrValue::new(
                    entity, attr, vid,
                )]));
            }
        }
    }
    queries
}

/// Panics unless `loaded` answers every probe exactly like `original`.
fn assert_equivalent(original: &SubjectiveDb, loaded: &SubjectiveDb, what: &str) {
    assert_eq!(original.stats(), loaded.stats(), "{what}: DbStats differ");
    for (i, q) in probe_queries(original).iter().enumerate() {
        assert_eq!(
            original.collect_group_records(q),
            loaded.collect_group_records(q),
            "{what}: probe query {i} record set differs"
        );
        let seed = 0xD1CE + i as u64;
        assert_eq!(
            original.rating_group(q, seed).records(),
            loaded.rating_group(q, seed).records(),
            "{what}: probe query {i} seeded shuffle differs"
        );
    }
}

fn bench_dataset(name: &'static str, db: &SubjectiveDb, reps: u32, work: &Path) -> Row {
    let csv_dir = work.join(format!("{name}-csv"));
    let snap_path = work.join(format!("{name}.sdx"));
    let _ = std::fs::remove_dir_all(&csv_dir);
    std::fs::create_dir_all(&csv_dir).expect("create csv dir");

    csv::save_dir(db, &csv_dir).expect("save csv");
    let snapshot_bytes = write_snapshot(db, 0, &snap_path).expect("write snapshot");

    // Identity first: both paths must reconstruct the same database.
    let from_csv = csv::load_dir(&csv_dir).expect("load csv");
    assert_equivalent(db, &from_csv, "csv round trip");
    let (from_snap, meta) = read_snapshot(&snap_path).expect("read snapshot");
    assert_equivalent(db, &from_snap, "snapshot round trip");
    assert_eq!(meta.bytes, snapshot_bytes);
    drop((from_csv, from_snap));

    // Rep 0 warms the page cache for both paths alike; the mean is over
    // the remaining reps.
    let mut csv_total = 0.0;
    let mut snap_total = 0.0;
    for rep in 0..=reps {
        let t = Instant::now();
        let loaded = csv::load_dir(&csv_dir).expect("load csv");
        let csv_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(loaded.ratings().len(), db.ratings().len());

        let t = Instant::now();
        let (loaded, _) = read_snapshot(&snap_path).expect("read snapshot");
        let snap_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(loaded.ratings().len(), db.ratings().len());

        if rep > 0 {
            csv_total += csv_ms;
            snap_total += snap_ms;
        }
    }

    Row {
        name,
        ratings: db.ratings().len(),
        csv_bytes: dir_bytes(&csv_dir),
        snapshot_bytes,
        csv_load_ms: csv_total / f64::from(reps),
        snapshot_load_ms: snap_total / f64::from(reps),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_persist.json".to_string());

    let (scale, scale_name, reps) = if quick {
        (Scale::Smoke, "smoke", 3u32)
    } else {
        (Scale::Study, "study", 10u32)
    };
    let work = std::env::temp_dir().join(format!("subdex-persist-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create work dir");

    let mut rows = Vec::new();
    for (name, db) in [
        ("movielens", Arc::new(movielens_at(scale).db)),
        ("yelp", Arc::new(yelp_at(scale).db)),
    ] {
        eprintln!("benchmarking {name} at {scale_name} scale...");
        rows.push(bench_dataset(name, &db, reps, &work));
    }

    println!("warm start vs CSV cold start ({scale_name} scale, mean over {reps} reps)");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "dataset", "ratings", "csv bytes", "snap bytes", "csv ms", "snap ms", "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>12.2} {:>12.2} {:>8.1}x",
            r.name,
            r.ratings,
            r.csv_bytes,
            r.snapshot_bytes,
            r.csv_load_ms,
            r.snapshot_load_ms,
            r.speedup()
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"datasets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ratings\": {}, \"csv_bytes\": {}, \
             \"snapshot_bytes\": {}, \"csv_load_ms\": {:.3}, \"snapshot_load_ms\": {:.3}, \
             \"speedup\": {:.2}}}{}\n",
            r.name,
            r.ratings,
            r.csv_bytes,
            r.snapshot_bytes,
            r.csv_load_ms,
            r.snapshot_load_ms,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_persist.json");
    eprintln!("wrote {out_path}");

    let _ = std::fs::remove_dir_all(&work);

    let worst = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);
    assert!(
        worst >= 1.0,
        "snapshot load slower than CSV ingest ({worst:.2}x)"
    );
}
