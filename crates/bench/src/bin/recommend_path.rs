//! Recommend-path benchmark: walked vs derived candidate-group
//! materialization, with and without the shared group cache.
//!
//! Two measurements on the Yelp-like study workload:
//!
//! 1. **Candidate materialization** (the headline): for every add-predicate
//!    candidate the recommendation builder enumerates, the time to build
//!    its group columns by the full posting-list walk
//!    (`collect_group_columns`) versus one linear filter over the parent's
//!    columns (`derive_refinement_columns`) versus a shared-cache hit.
//!    This is the component the derivation layer replaces; the outputs are
//!    byte-identical by contract.
//! 2. **End-to-end `recommend`** under four configurations —
//!    `walk/nocache`, `derive/nocache`, `walk/cache`, `derive/cache` — for
//!    context (the generator's phase scans, identical across configs,
//!    dominate this number).
//!
//! Results are printed as tables and written to a machine-readable JSON
//! file (default `BENCH_recommend.json`) so the perf trajectory
//! accumulates across PRs. `--quick` switches to smoke scale for CI.

use std::sync::Arc;
use std::time::{Duration, Instant};

use subdex_bench::harness::{yelp_at, Scale};
use subdex_core::generator::{self, CriterionNormalizers, GeneratorConfig};
use subdex_core::ratingmap::ScoredRatingMap;
use subdex_core::recommend::{
    enumerate_candidates, recommend_with_stats, Materialization, RecommendConfig,
};
use subdex_core::SeenContext;
use subdex_store::{AttrValue, GroupCache, GroupColumns, SelectionQuery, SubjectiveDb};

struct BenchCase {
    query: SelectionQuery,
    parent: GroupColumns,
    maps: Vec<ScoredRatingMap>,
}

struct ConfigResult {
    name: &'static str,
    total: Duration,
    calls: u32,
    stats: Materialization,
}

impl ConfigResult {
    fn mean_ms(&self) -> f64 {
        self.total.as_secs_f64() * 1000.0 / f64::from(self.calls.max(1))
    }
}

fn displayed(
    db: &SubjectiveDb,
    q: &SelectionQuery,
    gen_cfg: &GeneratorConfig,
) -> Vec<ScoredRatingMap> {
    let group = db.scan_group(q, 3);
    let seen = SeenContext::new(db.ratings().dim_count());
    let mut norms = CriterionNormalizers::new(Default::default());
    let out = generator::generate(db, &group, q, &seen, &mut norms, gen_cfg);
    out.pool.into_iter().take(9).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_recommend.json".to_string());

    let (scale, scale_name, reps) = if quick {
        (Scale::Smoke, "smoke", 3u32)
    } else {
        (Scale::Study, "study", 10u32)
    };

    eprintln!("building yelp dataset at {scale_name} scale...");
    let db = Arc::new(yelp_at(scale).db);
    let stats = db.stats();
    eprintln!(
        "ratings {} | reviewers {} | items {}",
        stats.rating_count, stats.reviewer_count, stats.item_count
    );

    let gen_cfg = GeneratorConfig::default();
    let rec_cfg = RecommendConfig::default();
    let seen = SeenContext::new(db.ratings().dim_count());
    let norms = CriterionNormalizers::new(Default::default());

    // Bench cases: the root query plus the exploration steps its own
    // recommendations lead to — the queries a real session would evaluate.
    let mut cases: Vec<BenchCase> = Vec::new();
    let mut query = SelectionQuery::all();
    for _ in 0..4 {
        let parent = db.collect_group_columns(&query);
        let maps = displayed(&db, &query, &gen_cfg);
        let (recs, _, _) = recommend_with_stats(
            &db,
            &query,
            &maps,
            &seen,
            &norms,
            &gen_cfg,
            &rec_cfg,
            7,
            None,
            Some(&parent),
            None,
        );
        let next = recs.first().map(|r| r.query.clone());
        cases.push(BenchCase {
            query: query.clone(),
            parent,
            maps,
        });
        match next {
            Some(q) if q != query => query = q,
            _ => break,
        }
    }
    eprintln!("bench cases: {}", cases.len());

    // ---- Measurement 1: candidate-group materialization ----------------
    // Every add-predicate candidate across all bench cases, with the
    // parent it derives from.
    let refinements: Vec<(&BenchCase, SelectionQuery, AttrValue)> = cases
        .iter()
        .flat_map(|case| {
            enumerate_candidates(&db, &case.query, &case.maps, &rec_cfg)
                .into_iter()
                .filter_map(move |q| case.query.single_added_pred(&q).map(|p| (case, q, p)))
        })
        .collect();
    eprintln!("add-predicate candidates: {}", refinements.len());

    // The three materialization paths are timed *interleaved* — each rep
    // runs every path back to back — so clock-frequency drift and noisy
    // neighbours distort them equally instead of biasing whichever path
    // happened to run in a slow window.
    let mat_reps = reps * 20;
    let hit_cache = GroupCache::new(256 << 20);
    for (case, q, p) in &refinements {
        hit_cache.get_or_insert_with(q, db.epoch(), || {
            db.derive_refinement_columns(&case.parent, p)
        });
    }
    type PathFn<'a> = &'a dyn Fn(&BenchCase, &SelectionQuery, &AttrValue) -> usize;
    let walk_path: PathFn = &|_case, q, _p| db.collect_group_columns(q).len();
    let derive_path: PathFn = &|case, _q, p| db.derive_refinement_columns(&case.parent, p).len();
    let hit_path: PathFn = &|case, q, p| {
        hit_cache
            .get_or_insert_with(q, db.epoch(), || {
                db.derive_refinement_columns(&case.parent, p)
            })
            .len()
    };
    // Mean µs per group build for each path over `subset`, rep 0 a warmup.
    let time_paths = |subset: &[&(&BenchCase, SelectionQuery, AttrValue)],
                      paths: &[PathFn]|
     -> Vec<(f64, usize)> {
        let mut totals = vec![(Duration::ZERO, 0usize); paths.len()];
        for rep in 0..mat_reps {
            for (pi, f) in paths.iter().enumerate() {
                let start = Instant::now();
                let mut produced = 0usize;
                for (case, q, p) in subset {
                    produced += f(case, q, p);
                }
                std::hint::black_box(produced);
                if rep > 0 {
                    totals[pi].0 += start.elapsed();
                    totals[pi].1 += produced;
                }
            }
        }
        totals
            .into_iter()
            .map(|(total, produced)| {
                (
                    total.as_secs_f64() * 1e6
                        / f64::from(mat_reps - 1)
                        / subset.len().max(1) as f64,
                    produced,
                )
            })
            .collect()
    };

    let all: Vec<&(&BenchCase, SelectionQuery, AttrValue)> = refinements.iter().collect();
    let timed = time_paths(&all, &[walk_path, derive_path, hit_path]);
    let ((walk_us, walk_records), (derive_us, derive_records), (hit_us, _)) =
        (timed[0], timed[1], timed[2]);
    assert_eq!(
        walk_records, derive_records,
        "derived groups must carry exactly the walked record sets"
    );

    println!("\ncandidate-group materialization (mean µs per group):");
    println!("{:<22} {:>10}", "path", "µs/group");
    println!("{:<22} {:>10.1}", "posting-list walk", walk_us);
    println!("{:<22} {:>10.1}", "derive from parent", derive_us);
    println!("{:<22} {:>10.1}", "shared-cache hit", hit_us);
    let mat_speedup = walk_us / derive_us;
    println!("speedup derive vs walk: {mat_speedup:.2}x");

    // Per-parent breakdown: how the walk/derive balance shifts as the
    // exploration drills down and the parent group shrinks.
    println!(
        "\n{:<8} {:>12} {:>11} {:>12} {:>12} {:>9}",
        "parent", "parent rows", "candidates", "walk µs", "derive µs", "speedup"
    );
    for (ci, case) in cases.iter().enumerate() {
        let subset: Vec<&(&BenchCase, SelectionQuery, AttrValue)> = refinements
            .iter()
            .filter(|(c, _, _)| std::ptr::eq(*c, case))
            .collect();
        if subset.is_empty() {
            continue;
        }
        let timed = time_paths(&subset, &[walk_path, derive_path]);
        let (w, d) = (timed[0].0, timed[1].0);
        println!(
            "step {:<3} {:>12} {:>11} {:>12.1} {:>12.1} {:>8.2}x",
            ci,
            case.parent.len(),
            subset.len(),
            w,
            d,
            w / d
        );
    }

    // ---- Measurement 2: end-to-end recommend ---------------------------
    let run_config =
        |name: &'static str, derive: bool, cache: Option<&GroupCache>| -> ConfigResult {
            let cfg = RecommendConfig {
                derive_candidates: derive,
                ..rec_cfg
            };
            let mut total = Duration::ZERO;
            let mut calls = 0u32;
            let mut stats = Materialization::default();
            for rep in 0..reps {
                for case in &cases {
                    let start = Instant::now();
                    let (recs, s, _) = recommend_with_stats(
                        &db,
                        &case.query,
                        &case.maps,
                        &seen,
                        &norms,
                        &gen_cfg,
                        &cfg,
                        7,
                        cache,
                        derive.then_some(&case.parent),
                        None,
                    );
                    // Only the steady state counts toward the timing: rep 0
                    // warms caches and the allocator.
                    if rep > 0 {
                        total += start.elapsed();
                        calls += 1;
                        stats.merge(&s);
                    }
                    assert!(!recs.is_empty(), "{name}: no recommendations produced");
                }
            }
            ConfigResult {
                name,
                total,
                calls,
                stats,
            }
        };

    let walk_cache = GroupCache::new(256 << 20);
    let derive_cache = GroupCache::new(256 << 20);
    let results = vec![
        run_config("walk/nocache", false, None),
        run_config("derive/nocache", true, None),
        run_config("walk/cache", false, Some(&walk_cache)),
        run_config("derive/cache", true, Some(&derive_cache)),
    ];

    println!(
        "\n{:<16} {:>10} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "config", "mean ms", "derived", "walked", "cached", "skipped", "filtered"
    );
    for r in &results {
        println!(
            "{:<16} {:>10.2} {:>9} {:>9} {:>9} {:>9} {:>12}",
            r.name,
            r.mean_ms(),
            r.stats.derived,
            r.stats.walked,
            r.stats.cached,
            r.stats.skipped_empty,
            r.stats.records_filtered
        );
    }
    let speedup_nocache = results[0].mean_ms() / results[1].mean_ms();
    let speedup_cache = results[0].mean_ms() / results[3].mean_ms();
    println!("\nspeedup derive vs walk (no cache):     {speedup_nocache:.2}x");
    println!("speedup derive+cache vs walk (no cache): {speedup_cache:.2}x");

    // Hand-rolled JSON (no serde_json in the vendored set); every value is
    // a number or a plain ASCII string, so no escaping is needed.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"recommend_path\",\n");
    json.push_str("  \"dataset\": \"yelp\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"ratings\": {},\n", stats.rating_count));
    json.push_str(&format!("  \"timed_reps\": {},\n", reps - 1));
    json.push_str(&format!("  \"bench_cases\": {},\n", cases.len()));
    json.push_str(&format!("  \"add_candidates\": {},\n", refinements.len()));
    json.push_str("  \"materialization_us_per_group\": {\n");
    json.push_str(&format!("    \"walk\": {walk_us:.3},\n"));
    json.push_str(&format!("    \"derive\": {derive_us:.3},\n"));
    json.push_str(&format!("    \"cache_hit\": {hit_us:.3}\n"));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"materialization_speedup_derive_vs_walk\": {mat_speedup:.4},\n"
    ));
    json.push_str("  \"recommend_configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ms\": {:.4}, \"calls\": {}, \"derived\": {}, \"walked\": {}, \"cached\": {}, \"skipped_empty\": {}, \"records_filtered\": {}}}{}\n",
            r.name,
            r.mean_ms(),
            r.calls,
            r.stats.derived,
            r.stats.walked,
            r.stats.cached,
            r.stats.skipped_empty,
            r.stats.records_filtered,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_derive_vs_walk_nocache\": {speedup_nocache:.4},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_derive_cache_vs_walk_nocache\": {speedup_cache:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_recommend.json");
    eprintln!("wrote {out_path}");
}
