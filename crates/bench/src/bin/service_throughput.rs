//! Service throughput: aggregate steps/sec of the multi-session server as
//! a function of worker-pool size and the shared group cache.
//!
//! ```text
//! service_throughput [--quick]
//! ```
//!
//! For every cell of workers {1, 2, 4} × cache {off, on}, the benchmark
//! starts a fresh `SubdexService` over the same Yelp-like database, drives
//! 16 recommendation-powered sessions (overlapping scripts, so the cache
//! has real sharing to exploit) from 8 client threads, and reports
//! steps/sec plus the observed cache hit rate. The `--quick` flag shrinks
//! the dataset and step count for smoke runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use subdex_bench::harness::{yelp_at, Scale};
use subdex_core::{EngineConfig, ExplorationMode};
use subdex_service::{ServiceConfig, ServiceError, SessionId, StepRequest, SubdexService};
use subdex_store::{SelectionQuery, SubjectiveDb};

const CLIENT_THREADS: usize = 8;
const SESSIONS: usize = 16;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, steps) = if quick {
        (Scale::Smoke, 3)
    } else {
        (Scale::Study, 5)
    };
    let db = Arc::new(yelp_at(scale).db);
    let stats = db.stats();
    println!(
        "# Service throughput — {} sessions x {} steps, {} client threads",
        SESSIONS, steps, CLIENT_THREADS
    );
    println!(
        "# Yelp-like db: {} reviewers, {} items, {} ratings\n",
        stats.reviewer_count, stats.item_count, stats.rating_count
    );
    println!(
        "| {:>7} | {:>5} | {:>9} | {:>9} | {:>8} | {:>8} |",
        "workers", "cache", "steps/sec", "hit rate", "rejects", "q hwm"
    );
    println!("|---------|-------|-----------|-----------|----------|----------|");

    for &workers in &[1usize, 2, 4] {
        for &cache_enabled in &[false, true] {
            let cell = run_cell(&db, workers, cache_enabled, steps);
            println!(
                "| {:>7} | {:>5} | {:>9.1} | {:>9} | {:>8} | {:>8} |",
                workers,
                if cache_enabled { "on" } else { "off" },
                cell.steps_per_sec,
                cell.hit_rate
                    .map(|r| format!("{:.1}%", 100.0 * r))
                    .unwrap_or_else(|| "—".into()),
                cell.rejected,
                cell.queue_hwm,
            );
        }
    }
}

struct Cell {
    steps_per_sec: f64,
    hit_rate: Option<f64>,
    rejected: u64,
    queue_hwm: usize,
}

fn run_cell(db: &Arc<SubjectiveDb>, workers: usize, cache_enabled: bool, steps: usize) -> Cell {
    let config = ServiceConfig {
        workers,
        queue_capacity: 8,
        cache_enabled,
        engine: EngineConfig {
            parallel: false, // the worker pool is the parallelism axis here
            max_candidates: 8,
            ..EngineConfig::default()
        },
        mode: ExplorationMode::RecommendationPowered,
        ..ServiceConfig::default()
    };
    let service = Arc::new(SubdexService::start(Arc::clone(db), config));
    let sessions: Vec<SessionId> = (0..SESSIONS).map(|_| service.create_session()).collect();

    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let mine: Vec<(usize, SessionId)> = sessions
                .iter()
                .enumerate()
                .filter(|(idx, _)| idx % CLIENT_THREADS == t)
                .map(|(idx, &id)| (idx, id))
                .collect();
            std::thread::spawn(move || {
                for (idx, id) in mine {
                    drive_session(&service, id, idx, steps);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not panic");
    }
    let elapsed = started.elapsed();

    let m = service.metrics();
    assert_eq!(m.requests_served, (SESSIONS * steps) as u64);
    service.shutdown();
    Cell {
        steps_per_sec: (SESSIONS * steps) as f64 / elapsed.as_secs_f64(),
        hit_rate: m.cache.map(|c| c.hit_rate()),
        rejected: m.requests_rejected,
        queue_hwm: m.queue_depth_hwm,
    }
}

/// The same deterministic script the stress test uses: start wide, then
/// follow recommendation `(session_idx + step) % n`. Rejections retry.
fn drive_session(service: &SubdexService, id: SessionId, session_idx: usize, steps: usize) {
    let run = |request: StepRequest| loop {
        match service.run_step(id, request.clone()) {
            Ok(step) => break step,
            Err(ServiceError::Rejected { .. }) => std::thread::sleep(Duration::from_micros(200)),
            Err(e) => panic!("session {id}: {e}"),
        }
    };
    let mut last = run(StepRequest::Operation(SelectionQuery::all()));
    for step in 1..steps {
        let n = last.recommendations.len();
        last = if n == 0 {
            run(StepRequest::Operation(SelectionQuery::all()))
        } else {
            run(StepRequest::Recommendation((session_idx + step) % n))
        };
    }
}
