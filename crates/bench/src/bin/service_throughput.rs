//! Service throughput: aggregate steps/sec of the multi-session server as
//! a function of worker-pool size and the shared group cache, plus a
//! steady-state allocation probe for the per-session `ExecContext`.
//!
//! ```text
//! service_throughput [--quick] [--out BENCH_service.json]
//! ```
//!
//! For every cell of workers {1, 2, 4} (clamped to the host's available
//! cores — oversubscribed cells measure scheduler noise, not scaling) ×
//! thread budget {1, auto} × cache {off, on}, the benchmark starts a fresh
//! `SubdexService` over the same Yelp-like database, drives 16
//! recommendation-powered sessions (overlapping scripts, so the cache has
//! real sharing to exploit) from 8 client threads, and reports steps/sec,
//! the observed cache hit rate, the scaling efficiency against the
//! 1-worker cell of the same budget × cache configuration
//! (`steps_per_sec / (workers × steps_per_sec₁)`), and the process CPU
//! utilization over the cell (utime + stime from `/proc/self/stat` divided
//! by wall time × host cores).
//! Budget 1 pins every step to one intra-step thread (the worker pool is
//! the only parallelism axis); budget "auto" (0) lets the service divide
//! the cores across busy workers.
//!
//! The steady-state probe runs one serial engine through repeated steps of
//! one session and counts heap allocations per step through a counting
//! global allocator: step 1 pays for growing the pooled scratch
//! (scan gathers, distance matrices, selection buffers, candidate
//! vectors); steps 2..n should re-use it, so their allocation count is the
//! regression signal for ExecContext pooling. The `--quick` flag shrinks
//! the dataset and step counts for smoke runs; results are written to a
//! machine-readable JSON file (default `BENCH_service.json`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use subdex_bench::harness::{yelp_at, Scale};
use subdex_core::{EngineConfig, ExplorationMode, SdeEngine};
use subdex_service::{ServiceConfig, ServiceError, SessionId, StepRequest, SubdexService};
use subdex_store::{SelectionQuery, SubjectiveDb};

const CLIENT_THREADS: usize = 8;
const SESSIONS: usize = 16;

/// Counts every heap allocation (and allocated bytes) the process makes;
/// the probe reads the counters around single engine steps.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Cumulative process CPU time (user + system) in seconds, from
/// `/proc/self/stat` fields 14/15 (utime, stime). The tick rate is assumed
/// to be the Linux default `USER_HZ = 100` — there is no libc binding in
/// the vendored set to ask `sysconf(_SC_CLK_TCK)`. Returns `None` off
/// Linux (or if the file is unreadable), in which case the utilization
/// columns report as absent rather than wrong.
fn process_cpu_secs() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may itself contain spaces and parentheses; the
    // numeric fields start after the *last* ')'.
    let rest = stat.get(stat.rfind(')')? + 1..)?;
    let mut fields = rest.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?; // field 14
    let stime: u64 = fields.next()?.parse().ok()?; // field 15
    const USER_HZ: f64 = 100.0;
    Some((utime + stime) as f64 / USER_HZ)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".into());
    let (scale, scale_name, steps, probe_steps) = if quick {
        (Scale::Smoke, "smoke", 3, 10)
    } else {
        (Scale::Study, "study", 5, 20)
    };
    let db = Arc::new(yelp_at(scale).db);
    let stats = db.stats();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "# Service throughput — {} sessions x {} steps, {} client threads",
        SESSIONS, steps, CLIENT_THREADS
    );
    println!(
        "# Yelp-like db: {} reviewers, {} items, {} ratings, {} host cores\n",
        stats.reviewer_count, stats.item_count, stats.rating_count, host_cores
    );

    // The probe runs first, while this is the only thread touching the
    // allocator, so the counters attribute cleanly to engine steps.
    let (first, steady) = steady_state_probe(&db, probe_steps);
    println!("# Steady-state single-session probe ({probe_steps} steps after warm-up):");
    println!(
        "#   step 1 (cold scratch): {:>8} allocs {:>12} bytes {:>10.1}µs",
        first.allocs, first.bytes, first.us
    );
    println!(
        "#   steps 2..n (mean):     {:>8.0} allocs {:>12.0} bytes {:>10.1}µs\n",
        steady.allocs, steady.bytes, steady.us
    );

    println!(
        "| {:>7} | {:>6} | {:>5} | {:>9} | {:>9} | {:>6} | {:>7} | {:>8} | {:>8} |",
        "workers", "budget", "cache", "steps/sec", "hit rate", "eff", "cpu", "rejects", "q hwm"
    );
    println!(
        "|---------|--------|-------|-----------|-----------|--------|---------|----------|----------|"
    );

    // Clamp the worker axis to the host: a cell with more workers than
    // cores measures oversubscription noise, not scaling. Dedup keeps the
    // grid stable on small machines (e.g. 2 cores ⇒ {1, 2}).
    let mut worker_grid: Vec<usize> = [1usize, 2, 4].iter().map(|&w| w.min(host_cores)).collect();
    worker_grid.dedup();

    // Sweep the grid first, then derive scaling efficiency against the
    // 1-worker cell of the same budget × cache configuration.
    let mut cells: Vec<(usize, usize, bool, Cell)> = Vec::new();
    for &workers in &worker_grid {
        for &thread_budget in &[1usize, 0] {
            for &cache_enabled in &[false, true] {
                let cell = run_cell(&db, workers, thread_budget, cache_enabled, steps);
                cells.push((workers, thread_budget, cache_enabled, cell));
            }
        }
    }
    let mut json_rows: Vec<String> = Vec::new();
    for &(workers, thread_budget, cache_enabled, ref cell) in &cells {
        let base = cells
            .iter()
            .find(|&&(w, b, c, _)| w == 1 && b == thread_budget && c == cache_enabled)
            .map(|(_, _, _, c)| c.steps_per_sec)
            .unwrap_or(cell.steps_per_sec);
        let efficiency = if base > 0.0 {
            cell.steps_per_sec / (workers as f64 * base)
        } else {
            0.0
        };
        // CPU utilization of the whole process over the cell's wall time,
        // as a fraction of the host (1.0 = every core busy throughout).
        let cpu_util = cell
            .cpu_secs
            .map(|cpu| cpu / (cell.wall_secs * host_cores as f64));
        println!(
            "| {:>7} | {:>6} | {:>5} | {:>9.1} | {:>9} | {:>6.2} | {:>7} | {:>8} | {:>8} |",
            workers,
            if thread_budget == 0 {
                "auto".to_string()
            } else {
                thread_budget.to_string()
            },
            if cache_enabled { "on" } else { "off" },
            cell.steps_per_sec,
            cell.hit_rate
                .map(|r| format!("{:.1}%", 100.0 * r))
                .unwrap_or_else(|| "—".into()),
            efficiency,
            cpu_util
                .map(|u| format!("{:.1}%", 100.0 * u))
                .unwrap_or_else(|| "—".into()),
            cell.rejected,
            cell.queue_hwm,
        );
        json_rows.push(format!(
            "    {{\"workers\": {workers}, \"thread_budget\": {thread_budget}, \"cache\": {cache_enabled}, \"steps_per_sec\": {:.3}, \"scaling_efficiency\": {:.4}, \"cpu_secs\": {}, \"cpu_utilization\": {}, \"rejected\": {}, \"queue_hwm\": {}}}",
            cell.steps_per_sec,
            efficiency,
            cell.cpu_secs
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "null".into()),
            cpu_util
                .map(|u| format!("{u:.4}"))
                .unwrap_or_else(|| "null".into()),
            cell.rejected,
            cell.queue_hwm
        ));
    }

    // Hand-rolled JSON (no serde_json in the vendored set); every value is
    // a number or a plain ASCII string, so no escaping is needed.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"service_throughput\",\n");
    json.push_str("  \"dataset\": \"yelp\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"ratings\": {},\n", stats.rating_count));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"sessions\": {SESSIONS},\n"));
    json.push_str(&format!("  \"steps\": {steps},\n"));
    json.push_str(&format!("  \"client_threads\": {CLIENT_THREADS},\n"));
    json.push_str(&format!(
        "  \"probe\": {{\"steps\": {probe_steps}, \"first_step\": {{\"allocs\": {}, \"bytes\": {}, \"us\": {:.1}}}, \"steady_per_step\": {{\"allocs\": {:.1}, \"bytes\": {:.1}, \"us\": {:.1}}}}},\n",
        first.allocs, first.bytes, first.us, steady.allocs, steady.bytes, steady.us
    ));
    json.push_str("  \"grid\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_service.json");
    eprintln!("wrote {out_path}");
}

#[derive(Clone, Copy, Default)]
struct ProbeSample {
    allocs: f64,
    bytes: f64,
    us: f64,
}

/// Drives one serial engine through `1 + probe_steps` steps of the same
/// session and reports (step-1 cost, mean steps-2..n cost). Runs serially
/// (`parallel: false`) so no worker thread perturbs the process-wide
/// allocation counters.
fn steady_state_probe(db: &Arc<SubjectiveDb>, probe_steps: usize) -> (ProbeSample, ProbeSample) {
    let cfg = EngineConfig {
        parallel: false,
        max_candidates: 8,
        ..EngineConfig::default()
    };
    let mut engine = SdeEngine::new(Arc::clone(db), cfg);
    let query = SelectionQuery::all();
    let mut measure = || {
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
        let t = Instant::now();
        let res = engine.step(&query);
        let us = t.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(&res);
        drop(res);
        ProbeSample {
            allocs: (ALLOCS.load(Ordering::Relaxed) - a0) as f64,
            bytes: (ALLOC_BYTES.load(Ordering::Relaxed) - b0) as f64,
            us,
        }
    };
    let first = measure();
    let mut steady = ProbeSample::default();
    for _ in 0..probe_steps.max(1) {
        let s = measure();
        steady.allocs += s.allocs;
        steady.bytes += s.bytes;
        steady.us += s.us;
    }
    let n = probe_steps.max(1) as f64;
    steady.allocs /= n;
    steady.bytes /= n;
    steady.us /= n;
    (first, steady)
}

struct Cell {
    steps_per_sec: f64,
    wall_secs: f64,
    /// Process CPU time the cell consumed (utime + stime delta around the
    /// run); `None` where `/proc/self/stat` is unavailable.
    cpu_secs: Option<f64>,
    hit_rate: Option<f64>,
    rejected: u64,
    queue_hwm: usize,
}

fn run_cell(
    db: &Arc<SubjectiveDb>,
    workers: usize,
    thread_budget: usize,
    cache_enabled: bool,
    steps: usize,
) -> Cell {
    let config = ServiceConfig {
        workers,
        queue_capacity: 8,
        cache_enabled,
        // Intra-step parallelism on, governed by the budget: 1 pins steps
        // to one thread, 0 lets the service divide cores across busy
        // workers.
        thread_budget,
        engine: EngineConfig {
            parallel: true,
            threads: 0,
            max_candidates: 8,
            ..EngineConfig::default()
        },
        mode: ExplorationMode::RecommendationPowered,
        ..ServiceConfig::default()
    };
    let service = Arc::new(SubdexService::start(Arc::clone(db), config));
    let sessions: Vec<SessionId> = (0..SESSIONS).map(|_| service.create_session()).collect();

    let cpu_before = process_cpu_secs();
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let mine: Vec<(usize, SessionId)> = sessions
                .iter()
                .enumerate()
                .filter(|(idx, _)| idx % CLIENT_THREADS == t)
                .map(|(idx, &id)| (idx, id))
                .collect();
            std::thread::spawn(move || {
                for (idx, id) in mine {
                    drive_session(&service, id, idx, steps);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread must not panic");
    }
    let elapsed = started.elapsed();
    let cpu_secs = match (cpu_before, process_cpu_secs()) {
        (Some(before), Some(after)) => Some(after - before),
        _ => None,
    };

    let m = service.metrics();
    assert_eq!(m.requests_served, (SESSIONS * steps) as u64);
    service.shutdown();
    Cell {
        steps_per_sec: (SESSIONS * steps) as f64 / elapsed.as_secs_f64(),
        wall_secs: elapsed.as_secs_f64(),
        cpu_secs,
        hit_rate: m.cache.map(|c| c.hit_rate()),
        rejected: m.requests_rejected,
        queue_hwm: m.queue_depth_hwm,
    }
}

/// The same deterministic script the stress test uses: start wide, then
/// follow recommendation `(session_idx + step) % n`. Rejections retry.
fn drive_session(service: &SubdexService, id: SessionId, session_idx: usize, steps: usize) {
    let run = |request: StepRequest| loop {
        match service.run_step(id, request.clone()) {
            Ok(step) => break step,
            Err(ServiceError::Rejected { .. }) => std::thread::sleep(Duration::from_micros(200)),
            Err(e) => panic!("session {id}: {e}"),
        }
    };
    let mut last = run(StepRequest::Operation(SelectionQuery::all()));
    for step in 1..steps {
        let n = last.recommendations.len();
        last = if n == 0 {
            run(StepRequest::Operation(SelectionQuery::all()))
        } else {
            run(StepRequest::Recommendation((session_idx + step) % n))
        };
    }
}
