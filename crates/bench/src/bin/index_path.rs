//! Index-path benchmark: cold group materialization through the compressed
//! hybrid posting index versus the adjacency walk.
//!
//! ```text
//! index_path [--quick] [--out BENCH_index.json]
//! ```
//!
//! Three measurements on the Yelp-like study dataset:
//!
//! 1. **Container compression** (acceptance: resident bytes ≤ 50% of the
//!    flat `Vec<u32>` posting layout): the per-class container census and
//!    byte totals of both entity indexes.
//! 2. **Cold materialization, walk vs probe vs planner** (the headline;
//!    acceptance: ≥ 2× planner-over-walk on multi-predicate queries): every
//!    bench query materialized with the route pinned to the adjacency walk,
//!    pinned to the index probe, and left to the planner's cardinality
//!    pricing. Every run asserts the three record lists byte-identical
//!    before any timing — the contract the `index_equivalence` proptests
//!    pin, re-checked on the real dataset.
//! 3. **Refinement derivation**: gather columns of a refined query derived
//!    from a cached ancestor's columns (the multi-predicate container
//!    filter) versus walked from scratch.
//!
//! Queries are built from the dataset's own attribute summaries — the most
//! frequent value of each attribute, combined into 1-, 2-, and 3-predicate
//! shapes mixing both entity sides, exactly the drill-downs the explorer
//! produces. Results go to a machine-readable JSON file (default
//! `BENCH_index.json`); `--quick` shrinks scale and reps for CI smoke.

use std::time::Instant;

use subdex_bench::harness::{hotels_at, movielens_at, yelp_at, Scale};
use subdex_store::{AttrValue, Entity, GroupRoute, SelectionQuery, SubjectiveDb};

struct QueryCase {
    label: String,
    query: SelectionQuery,
    preds: usize,
}

/// Best-of-`passes` mean µs per call of `f`, after one warm-up call.
fn time_us(reps: u32, passes: u32, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e6 / f64::from(reps));
    }
    best
}

/// The most frequent non-empty values of every attribute, as predicates,
/// most selective side of the dataset first in each entity's list.
fn frequent_preds(db: &SubjectiveDb, entity: Entity, per_attr: usize) -> Vec<AttrValue> {
    db.attribute_summaries(entity)
        .into_iter()
        .flat_map(|summary| {
            summary
                .values
                .into_iter()
                .filter(|(_, count)| *count > 0)
                .take(per_attr)
                .map(move |(value, _)| {
                    db.pred(entity, &summary.name, &value)
                        .expect("summary value exists in dictionary")
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_index.json".to_string());
    let (scale, scale_name, reps, passes) = if quick {
        (Scale::Smoke, "smoke", 5u32, 3u32)
    } else {
        (Scale::Study, "study", 20u32, 5u32)
    };

    eprintln!("building yelp dataset at {scale_name} scale...");
    let db = yelp_at(scale).db;
    let db_stats = db.stats();
    eprintln!(
        "ratings {} | reviewers {} | items {}",
        db_stats.rating_count, db_stats.reviewer_count, db_stats.item_count
    );

    // --- 1. container compression ------------------------------------------
    let index = db.index_stats();
    let byte_ratio = index.resident_bytes as f64 / (index.flat_bytes as f64).max(1.0);
    println!(
        "containers: {} arrays / {} bitmaps / {} runs",
        index.array_containers, index.bitmap_containers, index.run_containers
    );
    println!(
        "bytes: {} resident vs {} flat Vec<u32> postings ({:.1}% — acceptance ≤ 50%)",
        index.resident_bytes,
        index.flat_bytes,
        byte_ratio * 100.0
    );

    // --- bench queries ------------------------------------------------------
    // The most frequent value per attribute gives dense selections — the
    // regime where the walk's enumerate-filter-sort is at its worst and the
    // paper's drill-downs actually live (reviewers pick prominent values
    // from the drop-downs, not rare ones).
    // Predicate pools sorted densest-first: the drill-downs a real session
    // makes combine a prominent reviewer demographic with a prominent item
    // facet, so the multi-predicate cases here are two-sided — the regime
    // where the walk enumerates one side's whole adjacency and rejects
    // against the other side's bitset.
    let by_density = |mut preds: Vec<AttrValue>| -> Vec<AttrValue> {
        preds.sort_by_key(|p| std::cmp::Reverse(db.index(p.entity).cardinality(p.attr, p.value)));
        preds
    };
    let reviewer_preds = by_density(frequent_preds(&db, Entity::Reviewer, 1));
    let item_preds = by_density(frequent_preds(&db, Entity::Item, 1));
    let mut cases: Vec<QueryCase> = Vec::new();
    for (n, p) in reviewer_preds.iter().chain(&item_preds).enumerate().take(4) {
        cases.push(QueryCase {
            label: format!("1pred#{n}"),
            query: SelectionQuery::from_preds([*p]),
            preds: 1,
        });
    }
    for (n, (r, i)) in reviewer_preds
        .iter()
        .take(3)
        .flat_map(|r| item_preds.iter().take(2).map(move |i| (r, i)))
        .enumerate()
    {
        cases.push(QueryCase {
            label: format!("2pred#{n}"),
            query: SelectionQuery::from_preds([*r, *i]),
            preds: 2,
        });
    }
    let item_pairs: Vec<(AttrValue, AttrValue)> = item_preds
        .iter()
        .enumerate()
        .flat_map(|(a, i1)| {
            item_preds
                .iter()
                .skip(a + 1)
                .filter(move |i2| i2.attr != i1.attr)
                .map(move |i2| (*i1, *i2))
        })
        .collect();
    for (n, (i1, i2)) in item_pairs.iter().enumerate().take(3) {
        let r = &reviewer_preds[n % reviewer_preds.len().max(1)];
        cases.push(QueryCase {
            label: format!("3pred#{n}"),
            query: SelectionQuery::from_preds([*r, *i1, *i2]),
            preds: 3,
        });
    }
    eprintln!("bench queries: {}", cases.len());

    // --- 2. cold materialization: walk vs probe vs planner ------------------
    println!(
        "\n{:<10} {:>6} {:>8} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "query", "preds", "records", "walk µs", "probe µs", "auto µs", "route", "walk/auto"
    );
    let mut json_rows: Vec<String> = Vec::new();
    let mut multi_walk_us = 0.0f64;
    let mut multi_auto_us = 0.0f64;
    for case in &cases {
        let (walk_records, _) =
            db.collect_group_records_routed(&case.query, Some(GroupRoute::Walk));
        let (probe_records, _) =
            db.collect_group_records_routed(&case.query, Some(GroupRoute::Probe));
        let (auto_records, route) = db.collect_group_records_routed(&case.query, None);
        assert_eq!(
            walk_records, probe_records,
            "walk and probe must be byte-identical ({})",
            case.label
        );
        assert_eq!(
            walk_records, auto_records,
            "planner route must be byte-identical ({})",
            case.label
        );
        let records = walk_records.len();

        let walk_us = time_us(reps, passes, || {
            std::hint::black_box(db.collect_group_records_routed(
                std::hint::black_box(&case.query),
                Some(GroupRoute::Walk),
            ));
        });
        let probe_us = time_us(reps, passes, || {
            std::hint::black_box(db.collect_group_records_routed(
                std::hint::black_box(&case.query),
                Some(GroupRoute::Probe),
            ));
        });
        let auto_us = time_us(reps, passes, || {
            std::hint::black_box(
                db.collect_group_records_routed(std::hint::black_box(&case.query), None),
            );
        });
        let route_name = match route {
            GroupRoute::Full => "full",
            GroupRoute::Walk => "walk",
            GroupRoute::Probe => "probe",
        };
        let speedup = walk_us / auto_us.max(1e-9);
        if case.preds >= 2 {
            multi_walk_us += walk_us;
            multi_auto_us += auto_us;
        }
        println!(
            "{:<10} {:>6} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>8} {:>9.2}x",
            case.label, case.preds, records, walk_us, probe_us, auto_us, route_name, speedup
        );
        json_rows.push(format!(
            "    {{\"query\": \"{}\", \"preds\": {}, \"records\": {records}, \"walk_us\": {walk_us:.3}, \"probe_us\": {probe_us:.3}, \"auto_us\": {auto_us:.3}, \"route\": \"{route_name}\", \"walk_over_auto\": {speedup:.3}}}",
            case.label, case.preds
        ));
    }
    let multi_speedup = multi_walk_us / multi_auto_us.max(1e-9);
    // The ≥ 2× acceptance bar is defined at study scale; at smoke scale
    // the probe's fixed per-|R| cost dominates the tiny walks.
    let bar = if quick { "" } else { " (acceptance ≥ 2x)" };
    println!("\ncold multi-predicate materialization, walk over planner: {multi_speedup:.2}x{bar}");

    // --- 3. refinement derivation vs walk ------------------------------------
    // Child = densest 2-pred query; ancestor = its reviewer side only. The
    // derive path filters the ancestor's cached gather columns through the
    // added predicate's containers instead of re-walking.
    let (derive_us, derive_walk_us) = {
        let r = reviewer_preds.first().copied();
        let i = item_preds.first().copied();
        match (r, i) {
            (Some(r), Some(i)) => {
                let ancestor_q = SelectionQuery::from_preds([r]);
                let child_q = SelectionQuery::from_preds([r, i]);
                let ancestor = db.collect_group_columns(&ancestor_q);
                let added = [i];
                let derived = db.derive_refinement_columns_multi(&ancestor, &added);
                let walked = db.collect_group_columns(&child_q);
                assert_eq!(derived, walked, "derivation must be byte-identical");
                let d = time_us(reps, passes, || {
                    std::hint::black_box(
                        db.derive_refinement_columns_multi(std::hint::black_box(&ancestor), &added),
                    );
                });
                let w = time_us(reps, passes, || {
                    std::hint::black_box(db.collect_group_columns(std::hint::black_box(&child_q)));
                });
                println!(
                    "refinement derivation: {d:.1} µs derived vs {w:.1} µs walked ({:.2}x)",
                    w / d.max(1e-9)
                );
                (d, w)
            }
            _ => (0.0, 0.0),
        }
    };

    // --- container census across all three generated datasets ----------------
    // The container mix depends on value layout: yelp's demographics are
    // row-shuffled (dense values → bitmaps), while clustered layouts
    // promote to runs and sparse tails stay arrays.
    println!(
        "\n{:<10} {:>8} {:>8} {:>6} {:>12} {:>12} {:>8}",
        "dataset", "arrays", "bitmaps", "runs", "resident B", "flat B", "ratio"
    );
    let mut census_rows: Vec<String> = Vec::new();
    let census_dbs = [
        ("yelp", None),
        ("movielens", Some(movielens_at(scale).db)),
        ("hotels", Some(hotels_at(scale).db)),
    ];
    for (name, other) in census_dbs {
        let s = other.as_ref().unwrap_or(&db).index_stats();
        let ratio = s.resident_bytes as f64 / (s.flat_bytes as f64).max(1.0);
        println!(
            "{:<10} {:>8} {:>8} {:>6} {:>12} {:>12} {:>7.1}%",
            name,
            s.array_containers,
            s.bitmap_containers,
            s.run_containers,
            s.resident_bytes,
            s.flat_bytes,
            ratio * 100.0
        );
        census_rows.push(format!(
            "    {{\"dataset\": \"{name}\", \"arrays\": {}, \"bitmaps\": {}, \"runs\": {}, \"resident_bytes\": {}, \"flat_bytes\": {}, \"byte_ratio\": {ratio:.4}}}",
            s.array_containers, s.bitmap_containers, s.run_containers, s.resident_bytes, s.flat_bytes
        ));
    }

    // Hand-rolled JSON (no serde_json in the vendored set); every value is
    // a number or a plain ASCII string, so no escaping is needed.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"index_path\",\n");
    json.push_str("  \"dataset\": \"yelp\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"ratings\": {},\n", db_stats.rating_count));
    json.push_str(&format!("  \"reviewers\": {},\n", db_stats.reviewer_count));
    json.push_str(&format!("  \"items\": {},\n", db_stats.item_count));
    json.push_str(&format!(
        "  \"array_containers\": {},\n",
        index.array_containers
    ));
    json.push_str(&format!(
        "  \"bitmap_containers\": {},\n",
        index.bitmap_containers
    ));
    json.push_str(&format!(
        "  \"run_containers\": {},\n",
        index.run_containers
    ));
    json.push_str(&format!(
        "  \"resident_bytes\": {},\n",
        index.resident_bytes
    ));
    json.push_str(&format!("  \"flat_bytes\": {},\n", index.flat_bytes));
    json.push_str(&format!("  \"byte_ratio\": {byte_ratio:.4},\n"));
    json.push_str(&format!(
        "  \"multi_pred_walk_over_auto\": {multi_speedup:.4},\n"
    ));
    json.push_str(&format!("  \"derive_us\": {derive_us:.3},\n"));
    json.push_str(&format!("  \"derive_walk_us\": {derive_walk_us:.3},\n"));
    json.push_str("  \"census\": [\n");
    json.push_str(&census_rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"queries\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_index.json");
    eprintln!("wrote {out_path}");
}
