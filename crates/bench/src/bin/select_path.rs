//! Select-path benchmark: bounded, cached, parallel GMM distance
//! evaluation versus the exhaustive baseline.
//!
//! Three measurements on the Yelp-like study workload, over candidate
//! pools the generator actually produces (root query plus the drill-downs
//! its own recommendations lead to), swept across `(k, l)` selection
//! configurations:
//!
//! 1. **Exact transportation solves** (the headline): how many EMD
//!    transportation problems the GMM selection solves exactly with
//!    bounds on versus off. The lower bounds (mixture-CDF centroid, then
//!    cost-matrix independent minimization) prove most pairs irrelevant to
//!    the running max-min without touching the augmenting-path solver.
//! 2. **Warm-cache replay**: selection wall time against a cold versus a
//!    pre-populated shared distance cache — the steady state of a service
//!    session revisiting a query.
//! 3. **Wall time per configuration** — exhaustive, bounds, bounds+cache
//!    (cold/warm), bounds+parallel — for context.
//!
//! Every configuration must pick the byte-identical map subset; the bench
//! asserts this on every run. Results are printed as tables and written to
//! a machine-readable JSON file (default `BENCH_select.json`). `--quick`
//! switches to smoke scale for CI.

use std::sync::Arc;
use std::time::Duration;

use subdex_bench::harness::{yelp_at, Scale};
use subdex_core::generator::{self, CriterionNormalizers, GeneratorConfig};
use subdex_core::ratingmap::ScoredRatingMap;
use subdex_core::recommend::{recommend_with_stats, RecommendConfig};
use subdex_core::selector::{select_diverse_tracked, SelectionStrategy};
use subdex_core::{DistanceEngine, MapKey, SeenContext, SelectionStats};
use subdex_store::{DistanceCache, SelectionQuery, SubjectiveDb};

/// One candidate pool the selection phase would see: the generator's
/// utility-ranked top-`k'` maps for a query of the exploration walk.
struct PoolCase {
    step: usize,
    pool: Vec<ScoredRatingMap>,
}

/// Aggregate over every `(case, rep)` run of one engine configuration.
#[derive(Default)]
struct ConfigResult {
    total: Duration,
    runs: u32,
    stats: SelectionStats,
}

impl ConfigResult {
    fn mean_us(&self) -> f64 {
        self.total.as_secs_f64() * 1e6 / f64::from(self.runs.max(1))
    }
}

fn generate_pool(
    db: &SubjectiveDb,
    query: &SelectionQuery,
    k_prime: usize,
) -> Vec<ScoredRatingMap> {
    let gen_cfg = GeneratorConfig {
        k_prime,
        ..GeneratorConfig::default()
    };
    let group = db.scan_group(query, 3);
    let seen = SeenContext::new(db.ratings().dim_count());
    let mut norms = CriterionNormalizers::new(Default::default());
    generator::generate(db, &group, query, &seen, &mut norms, &gen_cfg).pool
}

fn keys(maps: &[ScoredRatingMap]) -> Vec<MapKey> {
    maps.iter().map(|m| m.map.key).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_select.json".to_string());

    let (scale, scale_name, reps) = if quick {
        (Scale::Smoke, "smoke", 3u32)
    } else {
        (Scale::Study, "study", 10u32)
    };
    // (k, l) selection configurations; the pool is the generator's
    // top-`k·l`. The paper's default is l = 3; larger l stresses the
    // diversity phase the way Diversity-Only selection does.
    let configs: &[(usize, usize)] = &[(5, 3), (5, 6), (8, 5), (10, 6)];
    let max_k_prime = configs.iter().map(|&(k, l)| k * l).max().unwrap();

    eprintln!("building yelp dataset at {scale_name} scale...");
    let db = Arc::new(yelp_at(scale).db);
    let db_stats = db.stats();
    eprintln!(
        "ratings {} | reviewers {} | items {}",
        db_stats.rating_count, db_stats.reviewer_count, db_stats.item_count
    );

    // Bench queries: the root plus the exploration steps its own
    // recommendations lead to — the pools a real session would rank.
    let mut queries: Vec<SelectionQuery> = Vec::new();
    let mut query = SelectionQuery::all();
    {
        let gen_cfg = GeneratorConfig::default();
        let rec_cfg = RecommendConfig::default();
        let seen = SeenContext::new(db.ratings().dim_count());
        let norms = CriterionNormalizers::new(Default::default());
        for _ in 0..4 {
            let maps: Vec<ScoredRatingMap> =
                generate_pool(&db, &query, 9).into_iter().take(9).collect();
            let (recs, _, _) = recommend_with_stats(
                &db, &query, &maps, &seen, &norms, &gen_cfg, &rec_cfg, 7, None, None, None,
            );
            let next = recs.first().map(|r| r.query.clone());
            queries.push(query.clone());
            match next {
                Some(q) if q != query => query = q,
                _ => break,
            }
        }
    }
    eprintln!("bench queries: {}", queries.len());

    // One generator pass per query at the largest k'; smaller configs use
    // the utility-ranked prefix, exactly as the engine would request them.
    let cases: Vec<PoolCase> = queries
        .iter()
        .enumerate()
        .map(|(step, q)| PoolCase {
            step,
            pool: generate_pool(&db, q, max_k_prime),
        })
        .collect();
    for c in &cases {
        eprintln!("step {} pool: {} maps", c.step, c.pool.len());
    }

    println!(
        "\n{:<8} {:>6} {:>6} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "config", "k", "l", "pairs", "exact(off)", "exact(on)", "pruned", "solve red."
    );

    let mut json_rows: Vec<String> = Vec::new();
    let mut total_off = 0u64;
    let mut total_on = 0u64;
    let mut cold_total = 0.0f64;
    let mut warm_total = 0.0f64;

    for &(k, l) in configs {
        let strategy = SelectionStrategy::Hybrid { l };
        let k_prime = k * l;

        // Named engine configurations. The warm cache is pre-populated by
        // the cold pass of the same rep, so "bounds+cache warm" measures
        // the service steady state of a revisited query.
        let exhaustive = DistanceEngine::new().with_bounds(false);
        let bounds = DistanceEngine::new();
        let parallel = DistanceEngine::new().with_threads(0);

        let mut r_exhaustive = ConfigResult::default();
        let mut r_bounds = ConfigResult::default();
        let mut r_cold = ConfigResult::default();
        let mut r_warm = ConfigResult::default();
        let mut r_parallel = ConfigResult::default();

        for rep in 0..reps {
            for case in &cases {
                let pool: Vec<ScoredRatingMap> = case.pool.iter().take(k_prime).cloned().collect();
                let cache = Arc::new(DistanceCache::new(32 << 20));
                let cached = DistanceEngine::new().with_cache(Some(Arc::clone(&cache)));

                let (reference, s0) =
                    select_diverse_tracked(pool.clone(), k, strategy, &exhaustive);
                let runs = [
                    (&bounds, &mut r_bounds),
                    (&cached, &mut r_cold),
                    (&cached, &mut r_warm),
                    (&parallel, &mut r_parallel),
                ];
                let ref_keys = keys(&reference);
                for (engine, result) in runs {
                    let (sel, s) = select_diverse_tracked(pool.clone(), k, strategy, engine);
                    assert_eq!(
                        keys(&sel),
                        ref_keys,
                        "engine configs must pick byte-identical subsets (k={k}, l={l}, step={})",
                        case.step
                    );
                    // Only the steady state counts: rep 0 warms the
                    // allocator and page cache.
                    if rep > 0 {
                        result.total += s.select_time;
                        result.runs += 1;
                        result.stats.merge(&s);
                    }
                }
                if rep > 0 {
                    r_exhaustive.total += s0.select_time;
                    r_exhaustive.runs += 1;
                    r_exhaustive.stats.merge(&s0);
                }
            }
        }

        let off = r_exhaustive.stats.exact_solves;
        let on = r_bounds.stats.exact_solves;
        let reduction = off as f64 / (on as f64).max(1.0);
        total_off += off;
        total_on += on;
        cold_total += r_cold.total.as_secs_f64();
        warm_total += r_warm.total.as_secs_f64();
        println!(
            "{:<8} {:>6} {:>6} {:>8} {:>12} {:>12} {:>12} {:>9.2}x",
            format!("k{k}l{l}"),
            k,
            l,
            r_exhaustive.stats.evaluations(),
            off,
            on,
            r_bounds.stats.pruned(),
            reduction
        );

        let named = [
            ("exhaustive", &r_exhaustive),
            ("bounds", &r_bounds),
            ("bounds+cache cold", &r_cold),
            ("bounds+cache warm", &r_warm),
            ("bounds+parallel", &r_parallel),
        ];
        println!(
            "  {:<20} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "engine", "mean µs", "exact", "mixture", "matrix", "cachehit"
        );
        for (name, r) in named {
            println!(
                "  {:<20} {:>10.1} {:>10} {:>10} {:>10} {:>10}",
                name,
                r.mean_us(),
                r.stats.exact_solves,
                r.stats.pruned_mixture,
                r.stats.pruned_matrix,
                r.stats.cache_hits
            );
            json_rows.push(format!(
                "    {{\"k\": {k}, \"l\": {l}, \"engine\": \"{name}\", \"mean_us\": {:.3}, \"exact_solves\": {}, \"pruned_mixture\": {}, \"pruned_matrix\": {}, \"cache_hits\": {}, \"evaluations\": {}}}",
                r.mean_us(),
                r.stats.exact_solves,
                r.stats.pruned_mixture,
                r.stats.pruned_matrix,
                r.stats.cache_hits,
                r.stats.evaluations()
            ));
        }
    }

    let solve_reduction = total_off as f64 / (total_on as f64).max(1.0);
    let warm_speedup = cold_total / warm_total.max(1e-12);
    println!("\nexact-solve reduction, bounds on vs off (all configs): {solve_reduction:.2}x");
    println!("warm-cache speedup over cold, bounds+cache: {warm_speedup:.2}x");

    // Hand-rolled JSON (no serde_json in the vendored set); every value is
    // a number or a plain ASCII string, so no escaping is needed.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"select_path\",\n");
    json.push_str("  \"dataset\": \"yelp\",\n");
    json.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    json.push_str(&format!("  \"ratings\": {},\n", db_stats.rating_count));
    json.push_str(&format!("  \"timed_reps\": {},\n", reps - 1));
    json.push_str(&format!("  \"bench_queries\": {},\n", queries.len()));
    json.push_str(&format!("  \"exact_solves_exhaustive\": {total_off},\n"));
    json.push_str(&format!("  \"exact_solves_bounded\": {total_on},\n"));
    json.push_str(&format!(
        "  \"solve_reduction_bounds_on_vs_off\": {solve_reduction:.4},\n"
    ));
    json.push_str(&format!("  \"warm_cache_speedup\": {warm_speedup:.4},\n"));
    json.push_str("  \"configs\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str("\n  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_select.json");
    eprintln!("wrote {out_path}");
}
