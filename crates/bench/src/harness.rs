//! Shared helpers for the experiment binary and Criterion benches.

use std::sync::Arc;
use std::time::Duration;
use subdex_core::{EngineConfig, SdeEngine};
use subdex_data::datasets::Dataset;
use subdex_data::{hotels, movielens, yelp, IrregularSpec};
use subdex_sim::workload::Workload;
use subdex_store::{SelectionQuery, SubjectiveDb};

/// Scale presets. `Full` reproduces Table 2 exactly; `Study` is the
/// smaller scale the simulated user studies run at (documented in
/// EXPERIMENTS.md); `Smoke` keeps CI fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table 2 cardinalities.
    Full,
    /// Study scale (minutes, not hours, for 120-subject studies).
    Study,
    /// Tiny smoke-test scale.
    Smoke,
}

impl Scale {
    fn factor(self) -> f64 {
        scale_factor(self)
    }
}

/// Scale factor as a free function (usable before `Scale` methods exist in
/// scope).
pub fn scale_factor(scale: Scale) -> f64 {
    match scale {
        Scale::Full => 1.0,
        Scale::Study => 0.2,
        Scale::Smoke => 0.02,
    }
}

/// The three generated datasets at a given scale.
pub fn movielens_at(scale: Scale) -> Dataset {
    movielens::dataset(movielens::default_params().scaled(scale.factor()))
}

/// Yelp-like dataset at a given scale (item count is kept at 93 — the
/// paper's Yelp slice is item-poor and reviewer-rich).
pub fn yelp_at(scale: Scale) -> Dataset {
    let mut p = yelp::default_params().scaled(scale.factor());
    p.items = 93;
    yelp::dataset(p)
}

/// Hotels-like dataset at a given scale.
pub fn hotels_at(scale: Scale) -> Dataset {
    hotels::dataset(hotels::default_params().scaled(scale.factor()))
}

/// A Scenario I workload at the given scale and injection seed.
///
/// Reviewer-side irregular groups are required to hold at least ~2% of the
/// reviewers (floor 5): a planted anomaly spanning a handful of records in
/// a 40K-record table would be statistically invisible in *any* grouped
/// histogram, which is not the situation the paper's subjects faced.
pub fn scenario1_workload(dataset: &str, scale: Scale, seed: u64) -> Workload {
    let reviewers = match dataset {
        "movielens" => {
            movielens::default_params()
                .scaled(scale_factor(scale))
                .reviewers
        }
        "yelp" => yelp::default_params().scaled(scale_factor(scale)).reviewers,
        _ => {
            hotels::default_params()
                .scaled(scale_factor(scale))
                .reviewers
        }
    };
    let spec = IrregularSpec {
        reviewer_groups: 1,
        item_groups: 1,
        min_members: (reviewers / 50).max(5),
        min_item_members: 5,
        seed,
    };
    let raw = match dataset {
        "movielens" => movielens::generate(movielens::default_params().scaled(scale.factor())),
        "yelp" => {
            let mut p = yelp::default_params().scaled(scale.factor());
            p.items = 93;
            yelp::generate(p)
        }
        "hotels" => hotels::generate(hotels::default_params().scaled(scale.factor())),
        other => panic!("unknown dataset {other}"),
    };
    Workload::scenario1(raw, &spec)
}

/// A Scenario II workload.
pub fn scenario2_workload(dataset: &str, scale: Scale) -> Workload {
    scenario2_workload_seeded(dataset, scale, 0)
}

/// A Scenario II workload with a seed offset (distinct task instances for
/// the paired study protocol).
pub fn scenario2_workload_seeded(dataset: &str, scale: Scale, seed_offset: u64) -> Workload {
    let with_seed = |mut p: subdex_data::GenParams| {
        p.seed = p.seed.wrapping_add(seed_offset);
        p
    };
    let ds = match dataset {
        "movielens" => movielens::dataset(with_seed(
            movielens::default_params().scaled(scale.factor()),
        )),
        "yelp" => {
            let mut p = with_seed(yelp::default_params().scaled(scale.factor()));
            p.items = 93;
            yelp::dataset(p)
        }
        "hotels" => hotels::dataset(with_seed(hotels::default_params().scaled(scale.factor()))),
        other => panic!("unknown dataset {other}"),
    };
    Workload::scenario2(ds)
}

/// The six engine variants of the scalability evaluation, labeled.
pub fn engine_variants() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("SubDEx", EngineConfig::subdex()),
        ("No-Pruning", EngineConfig::no_pruning()),
        ("CI Pruning", EngineConfig::ci_pruning()),
        ("MAB Pruning", EngineConfig::mab_pruning()),
        ("No Parallelism", EngineConfig::no_parallelism()),
        ("Naive", EngineConfig::naive()),
    ]
}

/// Runs a Fully-Automated path of `steps` steps and returns the mean
/// wall-clock step time — the paper's runtime metric (operation pick →
/// display, Figures 10–11).
pub fn mean_step_time(db: &Arc<SubjectiveDb>, cfg: &EngineConfig, steps: usize) -> Duration {
    let mut engine = SdeEngine::new(db.clone(), *cfg);
    let mut query = SelectionQuery::all();
    let mut total = Duration::ZERO;
    let mut executed = 0u32;
    for _ in 0..steps {
        let res = engine.step(&query);
        total += res.stats.elapsed;
        executed += 1;
        match res.recommendations.first() {
            Some(r) if r.query != query => query = r.query.clone(),
            _ => break,
        }
    }
    total / executed.max(1)
}

/// Formats a duration as fractional milliseconds.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_datasets_build() {
        let m = movielens_at(Scale::Smoke);
        assert!(m.db.ratings().len() >= 1000);
        let y = yelp_at(Scale::Smoke);
        assert_eq!(y.db.items().len(), 93);
        let h = hotels_at(Scale::Smoke);
        assert_eq!(h.db.stats().attr_count, 8);
    }

    #[test]
    fn variants_cover_the_paper_baselines() {
        let names: Vec<&str> = engine_variants().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "SubDEx",
                "No-Pruning",
                "CI Pruning",
                "MAB Pruning",
                "No Parallelism",
                "Naive"
            ]
        );
    }

    #[test]
    fn mean_step_time_positive() {
        let ds = yelp_at(Scale::Smoke);
        let db = Arc::new(ds.db);
        let cfg = EngineConfig {
            max_candidates: 8,
            ..EngineConfig::default()
        };
        let t = mean_step_time(&db, &cfg, 2);
        assert!(t > Duration::ZERO);
    }
}
