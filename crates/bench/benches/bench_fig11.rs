//! Criterion benches behind Figure 11: one exploration step as a function
//! of system parameters (k, o, l), SubDEx vs the No-Parallelism and Naive
//! baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use subdex_bench::harness::{scenario1_workload, Scale};
use subdex_core::{EngineConfig, SdeEngine};
use subdex_store::{SelectionQuery, SubjectiveDb};

fn step_once(db: &Arc<SubjectiveDb>, cfg: &EngineConfig) -> usize {
    let mut engine = SdeEngine::new(db.clone(), *cfg);
    let res = engine.step(&SelectionQuery::all());
    res.maps.len() + res.recommendations.len()
}

fn bench_k(c: &mut Criterion) {
    let w = scenario1_workload("yelp", Scale::Study, 44);
    let db = w.db.clone();
    let mut group = c.benchmark_group("fig11a_k");
    group.sample_size(10);
    for k in [1usize, 3, 5] {
        let cfg = EngineConfig {
            k,
            ..EngineConfig::subdex()
        };
        group.bench_with_input(BenchmarkId::new("subdex", k), &db, |b, db| {
            b.iter(|| black_box(step_once(db, &cfg)))
        });
    }
    group.finish();
}

fn bench_o(c: &mut Criterion) {
    let w = scenario1_workload("yelp", Scale::Study, 44);
    let db = w.db.clone();
    let mut group = c.benchmark_group("fig11b_o");
    group.sample_size(10);
    for o in [1usize, 3, 5] {
        for (name, base) in [
            ("subdex", EngineConfig::subdex()),
            ("no_parallelism", EngineConfig::no_parallelism()),
        ] {
            let cfg = EngineConfig { o, ..base };
            group.bench_with_input(BenchmarkId::new(name, o), &db, |b, db| {
                b.iter(|| black_box(step_once(db, &cfg)))
            });
        }
    }
    group.finish();
}

fn bench_l(c: &mut Criterion) {
    let w = scenario1_workload("yelp", Scale::Study, 44);
    let db = w.db.clone();
    let mut group = c.benchmark_group("fig11c_l");
    group.sample_size(10);
    for l in [1usize, 3, 5] {
        for (name, base) in [
            ("subdex", EngineConfig::subdex()),
            ("no_pruning", EngineConfig::no_pruning()),
        ] {
            let cfg = base.with_l(l);
            group.bench_with_input(BenchmarkId::new(name, l), &db, |b, db| {
                b.iter(|| black_box(step_once(db, &cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_k, bench_o, bench_l);
criterion_main!(benches);
