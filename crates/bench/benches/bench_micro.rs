//! Micro-benchmarks of the engine's hot paths: rating-group
//! materialization, the shared GroupBy scan, the exact EMD map distance,
//! GMM selection, and CI/MAB pruning arithmetic. These are the quantities
//! the design decisions in DESIGN.md (dictionary codes, CSR, SoA scores,
//! phase sharing) are meant to keep cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use subdex_bench::harness::{yelp_at, Scale};
use subdex_core::accumulator::FamilyAccumulator;
use subdex_core::generator::scan_block;
use subdex_core::mapdist::map_distance;
use subdex_core::selector::{select_diverse, SelectionStrategy};
use subdex_stats::emd::emd_transport;
use subdex_stats::HoeffdingSerfling;
use subdex_store::{Column, DimId, Entity, ScanScratch, SelectionQuery, SubjectiveDb};

fn bench_rating_group(c: &mut Criterion) {
    let ds = yelp_at(Scale::Study);
    let db = ds.db;
    let q_all = SelectionQuery::all();
    let young = db
        .pred(
            Entity::Reviewer,
            "age_group",
            &subdex_store::Value::str("young"),
        )
        .unwrap();
    let q_young = SelectionQuery::from_preds(vec![young]);
    let mut group = c.benchmark_group("rating_group");
    group.bench_function("all_records", |b| {
        b.iter(|| black_box(db.rating_group(&q_all, 1).len()))
    });
    group.bench_function("reviewer_filtered", |b| {
        b.iter(|| black_box(db.rating_group(&q_young, 1).len()))
    });
    group.finish();
}

fn bench_family_scan(c: &mut Criterion) {
    let ds = yelp_at(Scale::Study);
    let db = ds.db;
    let group = db.scan_group(&SelectionQuery::all(), 1);
    let attr = db.items().schema().attr_by_name("cuisine").unwrap();
    let dims: Vec<_> = db.ratings().dims().collect();
    let mut scratch = ScanScratch::new();
    scratch.prepare_group(db.ratings(), &group);
    c.bench_function("family_scan_all_dims", |b| {
        b.iter(|| {
            let mut fam = FamilyAccumulator::new(&db, Entity::Item, attr, dims.clone());
            let block = scratch.gather_phase(db.ratings(), &group, 0..group.len(), &dims);
            fam.update_block(&db, &block);
            black_box(fam.records_processed())
        })
    });
}

/// The pre-refactor row-at-a-time scan: per record, resolve the grouping
/// entity's row, then per dimension fetch the score and bump the count —
/// exactly what `FamilyAccumulator::update` used to do. The columnar
/// kernels must beat this to justify the gather.
fn rowwise_counts(
    db: &SubjectiveDb,
    entity: Entity,
    attr: subdex_store::AttrId,
    dims: &[DimId],
    records: &[u32],
) -> Vec<Vec<u64>> {
    let table = db.table(entity);
    let column = table.column(attr);
    let ratings = db.ratings();
    let scale = ratings.scale() as usize;
    let value_count = table.dictionary(attr).len();
    let mut counts = vec![vec![0u64; value_count * scale]; dims.len()];
    for &rec in records {
        let row = match entity {
            Entity::Reviewer => ratings.reviewer_of(rec),
            Entity::Item => ratings.item_of(rec),
        };
        for (dim_pos, &dim) in dims.iter().enumerate() {
            let score = ratings.score(rec, dim) as usize;
            match column {
                Column::Single(codes) => {
                    counts[dim_pos][codes[row as usize].index() * scale + score - 1] += 1;
                }
                Column::Multi(csr) => {
                    for &v in csr.values(row) {
                        counts[dim_pos][v.index() * scale + score - 1] += 1;
                    }
                }
            }
        }
    }
    counts
}

/// Columnar count kernels against the row-at-a-time baseline, for both
/// column layouts and at several thread counts (the few-families worst case:
/// a single family, where the old per-family parallelism had nothing to
/// split). Numbers feed the scan-kernel entry in EXPERIMENTS.md.
fn bench_scan_kernel(c: &mut Criterion) {
    let ds = yelp_at(Scale::Study);
    let db = ds.db;
    let group = db.scan_group(&SelectionQuery::all(), 1);
    let dims: Vec<DimId> = db.ratings().dims().collect();
    let mut scratch = ScanScratch::new();
    scratch.prepare_group(db.ratings(), &group);
    for (name, entity, attr_name) in [
        ("atomic_age_group", Entity::Reviewer, "age_group"),
        ("csr_cuisine", Entity::Item, "cuisine"),
    ] {
        let attr = db.table(entity).schema().attr_by_name(attr_name).unwrap();
        let mut g = c.benchmark_group(&format!("scan_kernel_{name}"));
        g.bench_function("rowwise", |b| {
            b.iter(|| black_box(rowwise_counts(&db, entity, attr, &dims, group.records())))
        });
        for threads in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new("columnar", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let mut fams =
                            vec![FamilyAccumulator::new(&db, entity, attr, dims.clone())];
                        let block =
                            scratch.gather_phase(db.ratings(), &group, 0..group.len(), &dims);
                        scan_block(&db, &mut fams, &block, threads);
                        black_box(fams[0].records_processed())
                    })
                },
            );
        }
        g.finish();
    }
}

fn bench_emd(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd");
    for n in [4usize, 16, 48] {
        let supplies: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let demands: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 3) % 7) as f64).collect();
        group.bench_with_input(BenchmarkId::new("transport", n), &n, |b, _| {
            b.iter(|| {
                black_box(emd_transport(&supplies, &demands, |i, j| {
                    (i as f64 - j as f64).abs() / n as f64
                }))
            })
        });
    }
    group.finish();
}

fn bench_gmm(c: &mut Criterion) {
    let ds = yelp_at(Scale::Smoke);
    let db = std::sync::Arc::new(ds.db);
    // Build a realistic pool via one no-pruning generator run.
    let q = SelectionQuery::all();
    let group = db.rating_group(&q, 2);
    let seen = subdex_core::SeenContext::new(db.ratings().dim_count());
    let mut norms = subdex_core::generator::CriterionNormalizers::new(Default::default());
    let cfg = subdex_core::generator::GeneratorConfig {
        pruning: subdex_core::PruningStrategy::None,
        parallel: false,
        ..Default::default()
    };
    let pool = subdex_core::generator::generate(&db, &group, &q, &seen, &mut norms, &cfg).pool;
    c.bench_function("gmm_select_3_of_pool", |b| {
        b.iter(|| {
            black_box(select_diverse(
                pool.clone(),
                3,
                SelectionStrategy::Hybrid { l: 3 },
            ))
        })
    });
    c.bench_function("map_distance_pair", |b| {
        if pool.len() >= 2 {
            b.iter(|| black_box(map_distance(&pool[0].map, &pool[1].map)))
        }
    });
}

fn bench_bounds(c: &mut Criterion) {
    let hs = HoeffdingSerfling::new(200_500, 0.05);
    c.bench_function("hoeffding_serfling_interval", |b| {
        b.iter(|| black_box(hs.interval(0.42, 20_050)))
    });
}

fn bench_pruning(c: &mut Criterion) {
    use subdex_core::pruning::{ci_survivors, utility_envelope, SarState};
    use subdex_stats::ConfidenceInterval;
    // A realistic candidate field: 96 envelopes (24 attrs × 4 dims).
    let envelopes: Vec<ConfidenceInterval> = (0..96)
        .map(|i| {
            let mid = 0.3 + (i as f64 % 17.0) / 34.0;
            ConfidenceInterval::new((mid - 0.08).max(0.0), (mid + 0.08).min(1.0))
        })
        .collect();
    c.bench_function("ci_prune_96_candidates", |b| {
        b.iter(|| black_box(ci_survivors(&envelopes, 9)))
    });
    let criteria = [
        ConfidenceInterval::new(0.2, 0.5),
        ConfidenceInterval::new(0.4, 0.8),
        ConfidenceInterval::new(0.1, 0.3),
        ConfidenceInterval::new(0.35, 0.6),
    ];
    c.bench_function("utility_envelope_4_criteria", |b| {
        b.iter(|| black_box(utility_envelope(&criteria, 0.75)))
    });
    let means: Vec<(usize, f64)> = (0..96).map(|i| (i, (i as f64 % 13.0) / 13.0)).collect();
    c.bench_function("sar_decide_96_arms", |b| {
        b.iter(|| {
            let mut sar = SarState::new(9);
            black_box(sar.decide(&means))
        })
    });
}

fn bench_normalizers(c: &mut Criterion) {
    use subdex_stats::normalize::NormalizerKind;
    use subdex_stats::normalize::{Normalizer, ScoreNormalizer};
    for (name, kind) in [
        ("zlogistic", NormalizerKind::ZLogistic),
        ("minmax", NormalizerKind::MinMax),
    ] {
        let mut n: ScoreNormalizer = kind.build_enum();
        for i in 0..1000 {
            n.observe((i as f64).sin().abs());
        }
        c.bench_function(&format!("normalize_{name}"), |b| {
            b.iter(|| black_box(n.normalize(0.42)))
        });
    }
}

criterion_group!(
    benches,
    bench_rating_group,
    bench_family_scan,
    bench_scan_kernel,
    bench_emd,
    bench_gmm,
    bench_bounds,
    bench_pruning,
    bench_normalizers
);
criterion_main!(benches);
