//! Criterion benches behind Figure 10: one exploration step as a function
//! of data properties (database size, #attributes, #attribute-values),
//! for the full SubDEx configuration and the Naive baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use subdex_bench::harness::{scenario1_workload, Scale};
use subdex_core::{EngineConfig, SdeEngine};
use subdex_data::transform::{drop_attributes, restrict_values, sample_reviewers};
use subdex_store::{SelectionQuery, SubjectiveDb};

fn step_once(db: &Arc<SubjectiveDb>, cfg: &EngineConfig) -> usize {
    let mut engine = SdeEngine::new(db.clone(), *cfg);
    let res = engine.step(&SelectionQuery::all());
    res.maps.len() + res.recommendations.len()
}

fn bench_db_size(c: &mut Criterion) {
    let w = scenario1_workload("yelp", Scale::Study, 44);
    let mut group = c.benchmark_group("fig10a_db_size");
    group.sample_size(10);
    for frac in [0.25, 0.5, 1.0] {
        let db = Arc::new(sample_reviewers(&w.db, frac, 1));
        for (name, cfg) in [
            ("subdex", EngineConfig::subdex()),
            ("naive", EngineConfig::naive()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{:.0}%", frac * 100.0)),
                &db,
                |b, db| b.iter(|| black_box(step_once(db, &cfg))),
            );
        }
    }
    group.finish();
}

fn bench_attribute_count(c: &mut Criterion) {
    let w = scenario1_workload("yelp", Scale::Study, 44);
    let mut group = c.benchmark_group("fig10b_attributes");
    group.sample_size(10);
    for keep in [6usize, 12, 24] {
        let db = Arc::new(drop_attributes(&w.db, keep, 1));
        let cfg = EngineConfig::subdex();
        group.bench_with_input(BenchmarkId::new("subdex", keep), &db, |b, db| {
            b.iter(|| black_box(step_once(db, &cfg)))
        });
    }
    group.finish();
}

fn bench_value_count(c: &mut Criterion) {
    let w = scenario1_workload("yelp", Scale::Study, 44);
    let mut group = c.benchmark_group("fig10c_values");
    group.sample_size(10);
    for cap in [4usize, 8, 13] {
        let db = Arc::new(restrict_values(&w.db, cap, 1));
        let cfg = EngineConfig::subdex();
        group.bench_with_input(BenchmarkId::new("subdex", cap), &db, |b, db| {
            b.iter(|| black_box(step_once(db, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_db_size,
    bench_attribute_count,
    bench_value_count
);
criterion_main!(benches);
