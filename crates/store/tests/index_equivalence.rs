//! Property tests pinning the compressed hybrid index byte-identical to
//! the canonical adjacency walk, across query shapes (0–4 predicates over
//! both entities), container classes (array / bitmap / runs), and kernel
//! paths (every path the host supports, scalar included).
//!
//! These are the byte-identity contracts the group cache and the snapshot
//! format rely on: every materialization route — walk, index probe, and
//! multi-predicate derivation from an ancestor's columns — must produce
//! the same canonical ascending record order.

use proptest::prelude::*;
use proptest::strategy::Just;
use std::collections::BTreeSet;

use subdex_stats::kernels::KernelPath;
use subdex_store::{
    AttrValue, Cell, Entity, EntityTableBuilder, GroupRoute, RatingTableBuilder, Schema,
    SelectionQuery, SubjectiveDb, Value,
};

/// Random database whose reviewer attributes are laid out to provoke every
/// container class: `md` (row % k — fragmented and dense, promotes to
/// bitmaps once rows grow), `blk` (row / chunk — clustered, promotes to
/// runs), `rnd` (random over a wide domain — sparse arrays). Items carry a
/// multi-valued `tags` attribute whose cells may repeat a value (the
/// build-time dedup case) plus a `city`.
#[derive(Debug, Clone)]
struct Spec {
    modk: u8,
    chunk: u8,
    rnd: Vec<u8>,
    item_tags: Vec<Vec<u8>>,
    item_city: Vec<u8>,
    ratings: Vec<(u16, u16)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (8usize..96, 3usize..10, 2u8..5, 2u8..17).prop_flat_map(|(rows, items, modk, chunk)| {
        (
            Just(modk),
            Just(chunk),
            prop::collection::vec(0u8..32, rows),
            prop::collection::vec(prop::collection::vec(0u8..4, 1..4), items),
            prop::collection::vec(0u8..3, items),
            prop::collection::vec((0..rows as u16, 0..items as u16), 1..200),
        )
            .prop_map(|(modk, chunk, rnd, item_tags, item_city, mut ratings)| {
                let mut seen = std::collections::HashSet::new();
                ratings.retain(|&(r, i)| seen.insert((r, i)));
                Spec {
                    modk,
                    chunk,
                    rnd,
                    item_tags,
                    item_city,
                    ratings,
                }
            })
    })
}

fn build(spec: &Spec) -> SubjectiveDb {
    let mut us = Schema::new();
    us.add("md", false);
    us.add("blk", false);
    us.add("rnd", false);
    let mut ub = EntityTableBuilder::new(us);
    for (row, &rnd) in spec.rnd.iter().enumerate() {
        ub.push_row(vec![
            Cell::One(Value::int((row % spec.modk as usize) as i64)),
            Cell::One(Value::int((row / spec.chunk as usize) as i64)),
            Cell::One(Value::int(i64::from(rnd))),
        ]);
    }
    let mut is = Schema::new();
    is.add("tags", true);
    is.add("city", false);
    let mut ib = EntityTableBuilder::new(is);
    for (tags, &city) in spec.item_tags.iter().zip(&spec.item_city) {
        ib.push_row(vec![
            Cell::Many(tags.iter().map(|&t| Value::int(i64::from(t))).collect()),
            Cell::One(Value::int(i64::from(city))),
        ]);
    }
    let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
    for &(r, i) in &spec.ratings {
        rb.push(u32::from(r), u32::from(i), &[3]);
    }
    SubjectiveDb::new(
        ub.build(),
        ib.build(),
        rb.build(spec.rnd.len(), spec.item_tags.len()),
    )
}

/// Deduped predicate list picked from the spec by small value seeds; any
/// seed that names an absent value is simply dropped.
fn pick_preds(db: &SubjectiveDb, picks: &[(u8, u8)]) -> Vec<AttrValue> {
    let mut preds = BTreeSet::new();
    for &(which, v) in picks {
        let p = match which % 5 {
            0 => db.pred(Entity::Reviewer, "md", &Value::int(i64::from(v % 5))),
            1 => db.pred(Entity::Reviewer, "blk", &Value::int(i64::from(v % 8))),
            2 => db.pred(Entity::Reviewer, "rnd", &Value::int(i64::from(v % 32))),
            3 => db.pred(Entity::Item, "tags", &Value::int(i64::from(v % 4))),
            _ => db.pred(Entity::Item, "city", &Value::int(i64::from(v % 3))),
        };
        preds.extend(p);
    }
    preds.into_iter().collect()
}

/// Brute-force reviewer/item rows matching a predicate, straight from the
/// spec (ground truth independent of any index structure).
fn naive_rows(spec: &Spec, p: &AttrValue, db: &SubjectiveDb) -> Vec<u32> {
    let table = match p.entity {
        Entity::Reviewer => db.reviewers(),
        Entity::Item => db.items(),
    };
    let name = &table.schema().attr(p.attr).name;
    let want = match table.dictionary(p.attr).value(p.value) {
        Value::Int(i) => *i,
        Value::Str(_) => unreachable!("all test attributes are ints"),
    };
    let rows = match p.entity {
        Entity::Reviewer => spec.rnd.len(),
        Entity::Item => spec.item_tags.len(),
    };
    (0..rows as u32)
        .filter(|&row| {
            let r = row as usize;
            match name.as_str() {
                "md" => (r % spec.modk as usize) as i64 == want,
                "blk" => (r / spec.chunk as usize) as i64 == want,
                "rnd" => i64::from(spec.rnd[r]) == want,
                "tags" => spec.item_tags[r].iter().any(|&t| i64::from(t) == want),
                "city" => i64::from(spec.item_city[r]) == want,
                other => unreachable!("unknown attribute {other}"),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The walk route, the probe route, and the planner's own choice all
    /// produce the identical canonical ascending record list for every
    /// query shape.
    #[test]
    fn probe_walk_and_planner_routes_agree(
        sp in spec(),
        picks in prop::collection::vec((0u8..5, 0u8..32), 0..5),
    ) {
        let db = build(&sp);
        let q = SelectionQuery::from_preds(pick_preds(&db, &picks));
        let (walked, wr) = db.collect_group_records_routed(&q, Some(GroupRoute::Walk));
        let (probed, pr) = db.collect_group_records_routed(&q, Some(GroupRoute::Probe));
        let (chosen, _) = db.collect_group_records_routed(&q, None);
        if !q.is_empty() {
            prop_assert_eq!(wr, GroupRoute::Walk);
            prop_assert_eq!(pr, GroupRoute::Probe);
        }
        prop_assert_eq!(&walked, &probed, "walk and probe routes must agree");
        prop_assert_eq!(&walked, &chosen, "planner choice must agree with both");
        prop_assert!(walked.windows(2).all(|w| w[0] < w[1]), "canonical ascending");
    }

    /// Deriving a refinement's columns from ANY ancestor (not just the
    /// direct parent) against ANY added predicate set is byte-identical to
    /// walking the refined query from scratch.
    #[test]
    fn multi_pred_derivation_matches_walk(
        sp in spec(),
        picks in prop::collection::vec((0u8..5, 0u8..32), 1..5),
        mask in 0u8..16,
    ) {
        let db = build(&sp);
        let preds = pick_preds(&db, &picks);
        let (kept, added): (Vec<_>, Vec<_>) = preds
            .iter()
            .enumerate()
            .partition(|(i, _)| mask & (1 << (i % 4)) != 0);
        let added: Vec<AttrValue> = added.into_iter().map(|(_, p)| *p).collect();
        if added.is_empty() {
            return Ok(());
        }
        let ancestor_q =
            SelectionQuery::from_preds(kept.into_iter().map(|(_, p)| *p).collect::<Vec<_>>());
        let child_q = SelectionQuery::from_preds(preds.clone());
        let ancestor = db.collect_group_columns(&ancestor_q);
        let derived = db.derive_refinement_columns_multi(&ancestor, &added);
        let walked = db.collect_group_columns(&child_q);
        prop_assert_eq!(derived, walked, "derived columns must be byte-identical");
    }

    /// Every container answers membership, decode, and cardinality exactly
    /// like the brute-force ground truth, on every kernel path the host
    /// supports — including multi-valued cells that repeat a value (the
    /// index must count the row once).
    #[test]
    fn containers_agree_with_ground_truth_on_every_path(
        sp in spec(),
        picks in prop::collection::vec((0u8..5, 0u8..32), 1..6),
    ) {
        let db = build(&sp);
        for p in pick_preds(&db, &picks) {
            let expect = naive_rows(&sp, &p, &db);
            let index = db.index(p.entity);
            prop_assert_eq!(index.cardinality(p.attr, p.value), expect.len(),
                "cardinality must be exact (dedup at build)");
            let container = index.container(p.attr, p.value).expect("pred value exists");
            for row in 0..index.rows() as u32 {
                prop_assert_eq!(container.contains(row), expect.contains(&row));
            }
            for path in KernelPath::available() {
                let mut got = Vec::new();
                container.decode_into(path, &mut got);
                prop_assert_eq!(&got, &expect, "decode on {} must match", path);
            }
        }
    }

    /// Multi-predicate container intersection equals the brute-force set
    /// intersection of the per-predicate ground truths.
    #[test]
    fn intersection_matches_naive_model(
        sp in spec(),
        picks in prop::collection::vec((0u8..5, 0u8..32), 1..6),
    ) {
        let db = build(&sp);
        for entity in [Entity::Reviewer, Entity::Item] {
            let preds: Vec<AttrValue> = pick_preds(&db, &picks)
                .into_iter()
                .filter(|p| p.entity == entity)
                .collect();
            if preds.is_empty() {
                continue;
            }
            let index = db.index(entity);
            let mut expect: Option<BTreeSet<u32>> = None;
            for p in &preds {
                let rows: BTreeSet<u32> = naive_rows(&sp, p, &db).into_iter().collect();
                expect = Some(match expect {
                    None => rows,
                    Some(acc) => acc.intersection(&rows).copied().collect(),
                });
            }
            let expect: Vec<u32> = expect.unwrap_or_default().into_iter().collect();
            let pairs: Vec<_> = preds.iter().map(|p| (p.attr, p.value)).collect();
            let got = index.intersect(&pairs).into_bitset(index.rows()).to_vec();
            prop_assert_eq!(got, expect);
        }
    }
}

/// Deterministic pin: a database large and structured enough that all
/// three container classes actually coexist, and the routes still agree on
/// a battery of fixed queries.
#[test]
fn all_container_classes_coexist_and_routes_agree() {
    let sp = Spec {
        modk: 2,
        chunk: 16,
        rnd: (0..192u32).map(|r| ((r * 37) % 61) as u8).collect(),
        item_tags: (0..8u32)
            .map(|i| vec![(i % 4) as u8, (i % 2) as u8])
            .collect(),
        item_city: (0..8u8).map(|i| i % 3).collect(),
        ratings: (0..192u16)
            .flat_map(|r| (0..8u16).map(move |i| (r, i)))
            .collect(),
    };
    let db = build(&sp);
    let stats = db.index_stats();
    assert!(stats.array_containers > 0, "{stats:?}");
    assert!(stats.bitmap_containers > 0, "{stats:?}");
    assert!(stats.run_containers > 0, "{stats:?}");
    assert!(stats.resident_bytes <= stats.flat_bytes, "{stats:?}");

    for picks in [
        vec![(0u8, 1u8)],
        vec![(1, 2), (4, 1)],
        vec![(0, 0), (1, 1), (2, 7)],
        vec![(3, 2), (4, 0), (0, 1), (2, 30)],
    ] {
        let q = SelectionQuery::from_preds(pick_preds(&db, &picks));
        let (walked, _) = db.collect_group_records_routed(&q, Some(GroupRoute::Walk));
        let (probed, _) = db.collect_group_records_routed(&q, Some(GroupRoute::Probe));
        assert_eq!(walked, probed, "picks {picks:?}");
    }
}
