//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use std::collections::HashSet;
use subdex_store::bitset::BitSet;
use subdex_store::{
    AttrValue, Cell, Entity, EntityTableBuilder, RatingGroup, RatingTableBuilder, Schema,
    SelectionQuery, SubjectiveDb, Value,
};

// ------------------------------------------------------------- BitSet model

proptest! {
    #[test]
    fn bitset_models_hashset(
        ops in prop::collection::vec((0u32..200, prop::bool::ANY), 0..120),
    ) {
        let mut bs = BitSet::empty(200);
        let mut model: HashSet<u32> = HashSet::new();
        for (id, insert) in ops {
            if insert {
                bs.insert(id);
                model.insert(id);
            } else {
                bs.remove(id);
                model.remove(&id);
            }
        }
        prop_assert_eq!(bs.len(), model.len());
        let mut expect: Vec<u32> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(bs.to_vec(), expect);
    }

    #[test]
    fn bitset_intersection_matches_model(
        a in prop::collection::hash_set(0u32..150, 0..80),
        b in prop::collection::hash_set(0u32..150, 0..80),
    ) {
        let va: Vec<u32> = a.iter().copied().collect();
        let vb: Vec<u32> = b.iter().copied().collect();
        let mut bs = BitSet::from_ids(150, &va);
        bs.intersect_with(&BitSet::from_ids(150, &vb));
        let mut expect: Vec<u32> = a.intersection(&b).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(bs.to_vec(), expect);
    }

    #[test]
    fn bitset_union_matches_model(
        a in prop::collection::hash_set(0u32..150, 0..80),
        b in prop::collection::hash_set(0u32..150, 0..80),
    ) {
        let va: Vec<u32> = a.iter().copied().collect();
        let vb: Vec<u32> = b.iter().copied().collect();
        let mut bs = BitSet::from_ids(150, &va);
        bs.union_with(&BitSet::from_ids(150, &vb));
        let mut expect: Vec<u32> = a.union(&b).copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(bs.to_vec(), expect);
    }
}

// --------------------------------------------------- random small databases

/// Raw spec of a random database: per-reviewer attribute codes, per-item
/// codes, rating endpoints.
#[derive(Debug, Clone)]
struct DbSpec {
    reviewer_attrs: Vec<Vec<u8>>, // [attr][row] -> value code (< 4)
    item_attrs: Vec<Vec<u8>>,
    ratings: Vec<(u8, u8, u8)>, // (reviewer, item, score)
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (2usize..8, 2usize..8, 1usize..40).prop_flat_map(|(n_rev, n_item, n_rat)| {
        (
            prop::collection::vec(prop::collection::vec(0u8..4, n_rev), 2),
            prop::collection::vec(prop::collection::vec(0u8..4, n_item), 2),
            prop::collection::vec((0..n_rev as u8, 0..n_item as u8, 1u8..=5), n_rat),
        )
            .prop_map(|(reviewer_attrs, item_attrs, ratings)| DbSpec {
                reviewer_attrs,
                item_attrs,
                ratings,
            })
    })
}

fn build(spec: &DbSpec) -> SubjectiveDb {
    let mut us = Schema::new();
    us.add("ua0", false);
    us.add("ua1", false);
    let mut ub = EntityTableBuilder::new(us);
    let n_rev = spec.reviewer_attrs[0].len();
    for r in 0..n_rev {
        ub.push_row(vec![
            Cell::One(Value::int(i64::from(spec.reviewer_attrs[0][r]))),
            Cell::One(Value::int(i64::from(spec.reviewer_attrs[1][r]))),
        ]);
    }
    let mut is = Schema::new();
    is.add("ia0", false);
    is.add("ia1", false);
    let mut ib = EntityTableBuilder::new(is);
    let n_item = spec.item_attrs[0].len();
    for i in 0..n_item {
        ib.push_row(vec![
            Cell::One(Value::int(i64::from(spec.item_attrs[0][i]))),
            Cell::One(Value::int(i64::from(spec.item_attrs[1][i]))),
        ]);
    }
    let mut rb = RatingTableBuilder::new(vec!["overall".into()], 5);
    for &(r, i, s) in &spec.ratings {
        rb.push(u32::from(r), u32::from(i), &[s]);
    }
    SubjectiveDb::new(ub.build(), ib.build(), rb.build(n_rev, n_item))
}

proptest! {
    #[test]
    fn selection_matches_brute_force(spec in db_spec(), av in 0u8..4, bv in 0u8..4) {
        let db = build(&spec);
        let mut preds = Vec::new();
        if let Some(p) = db.pred(Entity::Reviewer, "ua0", &Value::int(i64::from(av))) {
            preds.push(p);
        }
        if let Some(p) = db.pred(Entity::Item, "ia1", &Value::int(i64::from(bv))) {
            preds.push(p);
        }
        let q = SelectionQuery::from_preds(preds.clone());
        let group = db.rating_group(&q, 0);
        // Brute force over all rating records.
        let mut expect: Vec<u32> = Vec::new();
        for rec in 0..db.ratings().len() as u32 {
            let r = db.ratings().reviewer_of(rec) as usize;
            let i = db.ratings().item_of(rec) as usize;
            let ok_r = preds
                .iter()
                .filter(|p| p.entity == Entity::Reviewer)
                .all(|_| spec.reviewer_attrs[0][r] == av);
            let ok_i = preds
                .iter()
                .filter(|p| p.entity == Entity::Item)
                .all(|_| spec.item_attrs[1][i] == bv);
            if ok_r && ok_i {
                expect.push(rec);
            }
        }
        let mut got = group.records().to_vec();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn filter_shrinks_generalize_grows(spec in db_spec(), av in 0u8..4) {
        let db = build(&spec);
        let base = SelectionQuery::all();
        let Some(p) = db.pred(Entity::Reviewer, "ua0", &Value::int(i64::from(av))) else {
            return Ok(());
        };
        let narrowed = base.with_added(p);
        let g_base = db.rating_group(&base, 0).len();
        let g_narrow = db.rating_group(&narrowed, 0).len();
        prop_assert!(g_narrow <= g_base, "filter can only shrink");
        let widened = narrowed.with_removed(&p);
        prop_assert_eq!(db.rating_group(&widened, 0).len(), g_base);
    }

    #[test]
    fn query_canonical_form_is_order_independent(
        pairs in prop::collection::vec((prop::bool::ANY, 0u16..3, 0u32..4), 0..6),
    ) {
        let preds: Vec<AttrValue> = pairs
            .iter()
            .map(|&(item, attr, val)| {
                AttrValue::new(
                    if item { Entity::Item } else { Entity::Reviewer },
                    subdex_store::AttrId(attr),
                    subdex_store::ValueId(val),
                )
            })
            .collect();
        let forward = SelectionQuery::from_preds(preds.clone());
        let mut reversed_preds = preds;
        reversed_preds.reverse();
        let reversed = SelectionQuery::from_preds(reversed_preds);
        prop_assert_eq!(forward, reversed);
    }

    #[test]
    fn phases_partition_the_group(records in prop::collection::vec(0u32..1000, 0..200), n in 1usize..12, seed in 0u64..100) {
        let unique: Vec<u32> = records.into_iter().collect::<HashSet<_>>().into_iter().collect();
        let g = RatingGroup::new(unique.clone(), seed);
        let phases = g.phases(n);
        prop_assert_eq!(phases.len(), n);
        let mut collected: Vec<u32> = phases.iter().flat_map(|p| p.iter().copied()).collect();
        collected.sort_unstable();
        let mut expect = unique;
        expect.sort_unstable();
        prop_assert_eq!(collected, expect);
        // Sizes within 1 of each other.
        let sizes: Vec<usize> = phases.iter().map(|p| p.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn parse_query_never_panics(spec in db_spec(), text in ".{0,80}") {
        let db = build(&spec);
        // Arbitrary input must yield Ok or a structured error, never panic.
        let _ = subdex_store::parse_query(&db, &text);
    }

    #[test]
    fn parse_round_trips_describe(spec in db_spec(), av in 0u8..4, bv in 0u8..4) {
        let db = build(&spec);
        let mut preds = Vec::new();
        if let Some(p) = db.pred(Entity::Reviewer, "ua1", &Value::int(i64::from(av))) {
            preds.push(p);
        }
        if let Some(p) = db.pred(Entity::Item, "ia0", &Value::int(i64::from(bv))) {
            preds.push(p);
        }
        let q = SelectionQuery::from_preds(preds);
        let text = db.describe_query(&q);
        let back = subdex_store::parse_query(&db, &text).expect("round trip parses");
        prop_assert_eq!(q, back);
    }

    #[test]
    fn csv_round_trip_preserves_tables(spec in db_spec()) {
        let db = build(&spec);
        let (u_csv, i_csv, r_csv) = subdex_store::csv::db_to_csv(&db);
        let u = subdex_store::csv::entity_from_csv(&u_csv, &[]).unwrap();
        let i = subdex_store::csv::entity_from_csv(&i_csv, &[]).unwrap();
        let r = subdex_store::csv::ratings_from_csv(&r_csv, 5, u.len(), i.len()).unwrap();
        prop_assert_eq!(u.len(), db.reviewers().len());
        prop_assert_eq!(i.len(), db.items().len());
        prop_assert_eq!(r.len(), db.ratings().len());
        let db2 = SubjectiveDb::new(u, i, r);
        // Every record's scores survive.
        for rec in 0..db.ratings().len() as u32 {
            prop_assert_eq!(
                db.ratings().score(rec, subdex_store::DimId(0)),
                db2.ratings().score(rec, subdex_store::DimId(0))
            );
        }
    }
}
