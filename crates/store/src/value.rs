//! Attribute values and dictionary encoding.
//!
//! Objective attribute values (cities, cuisines, age groups, …) are interned
//! into per-attribute dictionaries. Rows then store compact [`ValueId`]
//! codes, which is what makes the GroupBy scans of the exploration engine
//! cache-friendly: a scan reads a dense `u32` vector, never a string.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dictionary code for a value of one attribute. Codes are dense
/// (`0..dictionary.len()`), so per-value accumulators can be flat vectors.
///
/// `repr(transparent)` guarantees a `ValueId` is layout-identical to its
/// `u32` code, which lets code slices be reinterpreted for the SIMD
/// histogram kernels (see [`ValueId::as_u32_slice`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The code as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reinterprets a slice of ids as its raw `u32` codes — sound because
    /// `ValueId` is `repr(transparent)` over `u32`.
    #[inline]
    pub fn as_u32_slice(ids: &[ValueId]) -> &[u32] {
        // SAFETY: `ValueId` is `repr(transparent)` over `u32`, so the two
        // slice types have identical layout.
        unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<u32>(), ids.len()) }
    }
}

/// An attribute value as seen by users of the library.
///
/// The store is agnostic to value semantics; strings cover categorical
/// attributes and integers cover things like release years. Both are
/// interned identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A categorical / textual value.
    Str(String),
    /// An integral value (years, zip prefixes, …).
    Int(i64),
}

impl Value {
    /// Convenience constructor from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integers.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

/// An interning dictionary for one attribute.
///
/// Maps [`Value`]s to dense [`ValueId`] codes and back. Insertion order
/// defines codes, so data loaded deterministically yields deterministic
/// encodings (important for reproducible experiments).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionary {
    values: Vec<Value>,
    codes: HashMap<Value, ValueId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a dictionary from its code-ordered value list (the inverse
    /// of serializing [`iter`](Self::iter)). Fails on duplicate values,
    /// which could never have been produced by interning.
    pub fn from_values(values: Vec<Value>) -> Result<Self, crate::error::StoreError> {
        let mut codes = HashMap::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            if codes.insert(v.clone(), ValueId(i as u32)).is_some() {
                return Err(crate::error::StoreError::invalid(format!(
                    "dictionary value {v} appears twice"
                )));
            }
        }
        Ok(Self { values, codes })
    }

    /// Interns `value`, returning its (possibly pre-existing) code.
    pub fn intern(&mut self, value: Value) -> ValueId {
        if let Some(&id) = self.codes.get(&value) {
            return id;
        }
        let id = ValueId(u32::try_from(self.values.len()).expect("dictionary overflow"));
        self.values.push(value.clone());
        self.codes.insert(value, id);
        id
    }

    /// Looks up the code of `value` without interning.
    pub fn code(&self, value: &Value) -> Option<ValueId> {
        self.codes.get(value).copied()
    }

    /// Resolves a code back to its value.
    ///
    /// # Panics
    /// Panics if the code is out of range (codes from a different
    /// dictionary).
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &Value)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Value::str("NYC"));
        let b = d.intern(Value::str("Austin"));
        let a2 = d.intern(Value::str("NYC"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn codes_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let id = d.intern(Value::str(*name));
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn round_trip() {
        let mut d = Dictionary::new();
        let id = d.intern(Value::int(1999));
        assert_eq!(d.value(id), &Value::Int(1999));
        assert_eq!(d.code(&Value::Int(1999)), Some(id));
        assert_eq!(d.code(&Value::Int(2000)), None);
    }

    #[test]
    fn str_and_int_are_distinct() {
        let mut d = Dictionary::new();
        let a = d.intern(Value::str("5"));
        let b = d.intern(Value::int(5));
        assert_ne!(a, b);
    }

    #[test]
    fn iter_yields_all() {
        let mut d = Dictionary::new();
        d.intern(Value::str("x"));
        d.intern(Value::str("y"));
        let pairs: Vec<_> = d
            .iter()
            .map(|(id, v)| (id.index(), v.to_string()))
            .collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::str("SoHo").to_string(), "SoHo");
        assert_eq!(Value::int(-3).to_string(), "-3");
    }
}
