//! Columnar attribute storage.
//!
//! Single-valued attributes are plain code vectors; multi-valued attributes
//! use a CSR layout (offset array + flattened code array), so per-row value
//! sets are contiguous slices and the column never allocates per row.

use crate::value::ValueId;
use serde::{Deserialize, Serialize};

/// One attribute column of an entity table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Column {
    /// Exactly one value per row.
    Single(Vec<ValueId>),
    /// Zero or more values per row, CSR layout.
    Multi(CsrColumn),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Single(v) => v.len(),
            Column::Multi(c) => c.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw dictionary codes of a single-valued column, or `None` for a
    /// CSR column — the input shape of the branch-free histogram kernel.
    #[inline]
    pub fn single_codes(&self) -> Option<&[u32]> {
        match self {
            Column::Single(codes) => Some(ValueId::as_u32_slice(codes)),
            Column::Multi(_) => None,
        }
    }

    /// The values of `row` as a slice (length 1 for single-valued columns).
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    #[inline]
    pub fn values(&self, row: u32) -> &[ValueId] {
        match self {
            Column::Single(v) => std::slice::from_ref(&v[row as usize]),
            Column::Multi(c) => c.values(row),
        }
    }

    /// Whether `row` carries value `v`.
    #[inline]
    pub fn contains(&self, row: u32, v: ValueId) -> bool {
        self.values(row).contains(&v)
    }
}

/// Compressed-sparse-row storage for a multi-valued column.
///
/// `offsets` has `rows + 1` entries; row `r`'s values are
/// `values[offsets[r]..offsets[r + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrColumn {
    offsets: Vec<u32>,
    values: Vec<ValueId>,
}

impl CsrColumn {
    /// Builds a CSR column from per-row value lists.
    pub fn from_rows<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[ValueId]>,
    {
        let mut offsets = vec![0u32];
        let mut values = Vec::new();
        for row in rows {
            values.extend_from_slice(row.as_ref());
            offsets.push(u32::try_from(values.len()).expect("CSR overflow"));
        }
        Self { offsets, values }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Values of one row.
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    #[inline]
    pub fn values(&self, row: u32) -> &[ValueId] {
        let r = row as usize;
        let start = self.offsets[r] as usize;
        let end = self.offsets[r + 1] as usize;
        &self.values[start..end]
    }

    /// Total number of stored values across all rows.
    pub fn total_values(&self) -> usize {
        self.values.len()
    }

    /// The raw offset array (`rows + 1` entries, monotone, starting at 0).
    /// Exposed for columnar serialization.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flattened value codes in row order. Exposed for columnar
    /// serialization.
    pub fn flat_values(&self) -> &[ValueId] {
        &self.values
    }

    /// Reassembles a CSR column from its raw arrays (the inverse of
    /// [`offsets`](Self::offsets) / [`flat_values`](Self::flat_values)),
    /// validating the CSR invariants so a damaged file cannot produce a
    /// column whose accessors panic or slice out of bounds.
    pub fn from_raw_parts(
        offsets: Vec<u32>,
        values: Vec<ValueId>,
    ) -> Result<Self, crate::error::StoreError> {
        use crate::error::StoreError;
        if offsets.first() != Some(&0) {
            return Err(StoreError::invalid("CSR offsets must start at 0"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::invalid("CSR offsets must be monotone"));
        }
        if *offsets.last().expect("checked non-empty") as usize != values.len() {
            return Err(StoreError::invalid(
                "CSR final offset must equal the value count",
            ));
        }
        Ok(Self { offsets, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> ValueId {
        ValueId(x)
    }

    #[test]
    fn single_column_access() {
        let c = Column::Single(vec![v(3), v(1), v(4)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.values(1), &[v(1)]);
        assert!(c.contains(2, v(4)));
        assert!(!c.contains(2, v(3)));
    }

    #[test]
    fn csr_from_rows() {
        let c = CsrColumn::from_rows(vec![vec![v(0), v(2)], vec![], vec![v(1)]]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.values(0), &[v(0), v(2)]);
        assert_eq!(c.values(1), &[] as &[ValueId]);
        assert_eq!(c.values(2), &[v(1)]);
        assert_eq!(c.total_values(), 3);
    }

    #[test]
    fn multi_column_contains() {
        let c = Column::Multi(CsrColumn::from_rows(vec![vec![v(0), v(5)], vec![v(5)]]));
        assert!(c.contains(0, v(5)));
        assert!(c.contains(1, v(5)));
        assert!(!c.contains(1, v(0)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_csr() {
        let c = CsrColumn::from_rows(Vec::<Vec<ValueId>>::new());
        assert!(c.is_empty());
        assert_eq!(c.total_values(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_row_panics() {
        let c = Column::Single(vec![v(1)]);
        let _ = c.values(1);
    }
}
