//! The rating-record table.
//!
//! Each rating record is `⟨i, u, s₁ … s_t⟩` (Section 3.1): a reviewer, an
//! item, and one score per rating dimension on the scale `1..=m`. Storage is
//! struct-of-arrays — parallel `Vec<u32>` reviewer/item columns and one
//! dense `Vec<u8>` per dimension — so a phase scan over one dimension is a
//! contiguous byte walk. CSR adjacency (reviewer → records, item → records)
//! supports fast rating-group materialization when one side of the
//! selection is small.

use serde::{Deserialize, Serialize};

/// Index of a rating record in the rating table.
pub type RecordId = u32;

/// Index of a rating dimension (`overall`, `food`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DimId(pub u16);

impl DimId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One rating record awaiting append: a reviewer, an item, and one score
/// per dimension. This is the unit the write-ahead log frames and the
/// store's append path validates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatingDraft {
    /// Reviewer row id.
    pub reviewer: u32,
    /// Item row id.
    pub item: u32,
    /// One score per rating dimension, each in `1..=scale`.
    pub scores: Vec<u8>,
}

impl RatingDraft {
    /// Convenience constructor.
    pub fn new(reviewer: u32, item: u32, scores: Vec<u8>) -> Self {
        Self {
            reviewer,
            item,
            scores,
        }
    }
}

/// The rating table `R`.
#[derive(Debug, Clone)]
pub struct RatingTable {
    dim_names: Vec<String>,
    scale: u8,
    reviewers: Vec<u32>,
    items: Vec<u32>,
    /// `scores[d][rec]` — score of record `rec` on dimension `d`.
    scores: Vec<Vec<u8>>,
    /// CSR reviewer → record ids.
    by_reviewer: Csr,
    /// CSR item → record ids.
    by_item: Csr,
}

#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<u32>,
    records: Vec<RecordId>,
}

impl Csr {
    fn build(keys: &[u32], key_count: usize) -> Self {
        let mut counts = vec![0u32; key_count + 1];
        for &k in keys {
            counts[k as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut records = vec![0u32; keys.len()];
        for (rec, &k) in keys.iter().enumerate() {
            records[cursor[k as usize] as usize] = rec as u32;
            cursor[k as usize] += 1;
        }
        Self { offsets, records }
    }

    fn records_of(&self, key: u32) -> &[RecordId] {
        let k = key as usize;
        &self.records[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }
}

impl RatingTable {
    /// Number of rating records.
    pub fn len(&self) -> usize {
        self.reviewers.len()
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.reviewers.is_empty()
    }

    /// The rating scale `m` (scores are `1..=m`).
    pub fn scale(&self) -> u8 {
        self.scale
    }

    /// Number of rating dimensions `t`.
    pub fn dim_count(&self) -> usize {
        self.dim_names.len()
    }

    /// Dimension names in id order.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Resolves a dimension by name.
    pub fn dim_by_name(&self, name: &str) -> Option<DimId> {
        self.dim_names
            .iter()
            .position(|n| n == name)
            .map(|i| DimId(i as u16))
    }

    /// The name of one dimension.
    pub fn dim_name(&self, dim: DimId) -> &str {
        &self.dim_names[dim.index()]
    }

    /// All dimension ids.
    pub fn dims(&self) -> impl Iterator<Item = DimId> + '_ {
        (0..self.dim_names.len()).map(|i| DimId(i as u16))
    }

    /// The reviewer of a record.
    #[inline]
    pub fn reviewer_of(&self, rec: RecordId) -> u32 {
        self.reviewers[rec as usize]
    }

    /// The item of a record.
    #[inline]
    pub fn item_of(&self, rec: RecordId) -> u32 {
        self.items[rec as usize]
    }

    /// The score of a record on one dimension.
    #[inline]
    pub fn score(&self, rec: RecordId, dim: DimId) -> u8 {
        self.scores[dim.index()][rec as usize]
    }

    /// The full score column of a dimension (for vectorized scans).
    #[inline]
    pub fn score_column(&self, dim: DimId) -> &[u8] {
        &self.scores[dim.index()]
    }

    /// The reviewer-id column.
    pub fn reviewer_column(&self) -> &[u32] {
        &self.reviewers
    }

    /// The item-id column.
    pub fn item_column(&self) -> &[u32] {
        &self.items
    }

    /// Record ids rated by `reviewer`.
    pub fn records_of_reviewer(&self, reviewer: u32) -> &[RecordId] {
        self.by_reviewer.records_of(reviewer)
    }

    /// Record ids rating `item`.
    pub fn records_of_item(&self, item: u32) -> &[RecordId] {
        self.by_item.records_of(item)
    }

    /// Reassembles a table from its raw columns (the snapshot-load path),
    /// validating column agreement, id ranges and the score scale, then
    /// rebuilding both adjacency indexes (cheaper to rebuild in one `O(R)`
    /// pass than to store).
    pub fn from_parts(
        dim_names: Vec<String>,
        scale: u8,
        reviewers: Vec<u32>,
        items: Vec<u32>,
        scores: Vec<Vec<u8>>,
        reviewer_count: usize,
        item_count: usize,
    ) -> Result<Self, crate::error::StoreError> {
        use crate::error::StoreError;
        if dim_names.is_empty() || scale == 0 {
            return Err(StoreError::invalid(
                "rating table needs at least one dimension and a positive scale",
            ));
        }
        if scores.len() != dim_names.len() {
            return Err(StoreError::invalid(format!(
                "{} dimensions but {} score columns",
                dim_names.len(),
                scores.len()
            )));
        }
        let n = reviewers.len();
        if items.len() != n || scores.iter().any(|col| col.len() != n) {
            return Err(StoreError::invalid(
                "rating columns disagree on record count",
            ));
        }
        if reviewers.iter().any(|&r| (r as usize) >= reviewer_count) {
            return Err(StoreError::invalid("rating references a missing reviewer"));
        }
        if items.iter().any(|&i| (i as usize) >= item_count) {
            return Err(StoreError::invalid("rating references a missing item"));
        }
        if scores
            .iter()
            .any(|col| col.iter().any(|&s| s == 0 || s > scale))
        {
            return Err(StoreError::invalid(format!(
                "rating score outside 1..={scale}"
            )));
        }
        let by_reviewer = Csr::build(&reviewers, reviewer_count);
        let by_item = Csr::build(&items, item_count);
        Ok(Self {
            dim_names,
            scale,
            reviewers,
            items,
            scores,
            by_reviewer,
            by_item,
        })
    }

    /// Validates a batch of drafts against this table's shape without
    /// mutating anything — the WAL writer calls this *before* logging so a
    /// record that would be rejected in memory is never made durable.
    pub fn check_drafts(
        &self,
        drafts: &[RatingDraft],
        reviewer_count: usize,
        item_count: usize,
    ) -> Result<(), crate::error::StoreError> {
        use crate::error::StoreError;
        for (i, d) in drafts.iter().enumerate() {
            if d.scores.len() != self.dim_count() {
                return Err(StoreError::invalid(format!(
                    "draft {i}: {} scores, table has {} dimensions",
                    d.scores.len(),
                    self.dim_count()
                )));
            }
            if d.scores.iter().any(|&s| s == 0 || s > self.scale) {
                return Err(StoreError::invalid(format!(
                    "draft {i}: score outside 1..={}",
                    self.scale
                )));
            }
            if (d.reviewer as usize) >= reviewer_count {
                return Err(StoreError::invalid(format!(
                    "draft {i}: reviewer {} out of range",
                    d.reviewer
                )));
            }
            if (d.item as usize) >= item_count {
                return Err(StoreError::invalid(format!(
                    "draft {i}: item {} out of range",
                    d.item
                )));
            }
        }
        Ok(())
    }

    /// Appends validated drafts, extending every column and rebuilding both
    /// adjacency indexes. Callers must have run
    /// [`check_drafts`](Self::check_drafts) (re-checked here in debug
    /// builds).
    pub fn append_drafts(
        &mut self,
        drafts: &[RatingDraft],
        reviewer_count: usize,
        item_count: usize,
    ) {
        debug_assert!(self
            .check_drafts(drafts, reviewer_count, item_count)
            .is_ok());
        for d in drafts {
            self.reviewers.push(d.reviewer);
            self.items.push(d.item);
            for (col, &s) in self.scores.iter_mut().zip(&d.scores) {
                col.push(s);
            }
        }
        self.by_reviewer = Csr::build(&self.reviewers, reviewer_count);
        self.by_item = Csr::build(&self.items, item_count);
    }
}

/// Builder for [`RatingTable`].
#[derive(Debug, Clone)]
pub struct RatingTableBuilder {
    dim_names: Vec<String>,
    scale: u8,
    reviewers: Vec<u32>,
    items: Vec<u32>,
    scores: Vec<Vec<u8>>,
}

impl RatingTableBuilder {
    /// Creates a builder for the given dimensions and scale.
    ///
    /// # Panics
    /// Panics if no dimensions are given or `scale == 0`.
    pub fn new(dim_names: Vec<String>, scale: u8) -> Self {
        assert!(!dim_names.is_empty(), "at least one rating dimension");
        assert!(scale > 0, "scale must be at least 1");
        let t = dim_names.len();
        Self {
            dim_names,
            scale,
            reviewers: Vec::new(),
            items: Vec::new(),
            scores: vec![Vec::new(); t],
        }
    }

    /// Appends a record. `scores` must have one entry per dimension, each in
    /// `1..=scale`.
    ///
    /// # Panics
    /// Panics on arity mismatch or out-of-scale scores.
    pub fn push(&mut self, reviewer: u32, item: u32, scores: &[u8]) -> RecordId {
        assert_eq!(scores.len(), self.dim_names.len(), "score arity mismatch");
        for &s in scores {
            assert!(
                s >= 1 && s <= self.scale,
                "score {s} outside scale 1..={}",
                self.scale
            );
        }
        let rec = self.reviewers.len() as u32;
        self.reviewers.push(reviewer);
        self.items.push(item);
        for (col, &s) in self.scores.iter_mut().zip(scores) {
            col.push(s);
        }
        rec
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.reviewers.len()
    }

    /// Whether no records were appended.
    pub fn is_empty(&self) -> bool {
        self.reviewers.is_empty()
    }

    /// Overwrites the score of an existing record (used by the irregular-
    /// group injection workload, which forces chosen records to a score).
    ///
    /// # Panics
    /// Panics if the record or dimension is out of range, or the score is
    /// outside the scale.
    pub fn set_score(&mut self, rec: RecordId, dim: DimId, score: u8) {
        assert!(score >= 1 && score <= self.scale);
        self.scores[dim.index()][rec as usize] = score;
    }

    /// The reviewer ids of records appended so far (index = record id).
    pub fn reviewer_column(&self) -> &[u32] {
        &self.reviewers
    }

    /// The item ids of records appended so far (index = record id).
    pub fn item_column(&self) -> &[u32] {
        &self.items
    }

    /// Finalizes the table, building both adjacency indexes.
    ///
    /// `reviewer_count` / `item_count` are the entity-table sizes; all
    /// referenced ids must be below them.
    ///
    /// # Panics
    /// Panics if any record references an out-of-range reviewer or item.
    pub fn build(self, reviewer_count: usize, item_count: usize) -> RatingTable {
        for &r in &self.reviewers {
            assert!(
                (r as usize) < reviewer_count,
                "reviewer id {r} out of range"
            );
        }
        for &i in &self.items {
            assert!((i as usize) < item_count, "item id {i} out of range");
        }
        let by_reviewer = Csr::build(&self.reviewers, reviewer_count);
        let by_item = Csr::build(&self.items, item_count);
        RatingTable {
            dim_names: self.dim_names,
            scale: self.scale,
            reviewers: self.reviewers,
            items: self.items,
            scores: self.scores,
            by_reviewer,
            by_item,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RatingTable {
        // Mirrors Figure 2's rating-record table (4 dimensions).
        let dims = vec![
            "overall".to_owned(),
            "food".to_owned(),
            "service".to_owned(),
            "ambiance".to_owned(),
        ];
        let mut b = RatingTableBuilder::new(dims, 5);
        b.push(0, 3, &[4, 3, 5, 4]);
        b.push(1, 0, &[4, 4, 3, 5]);
        b.push(1, 1, &[3, 4, 3, 3]);
        b.push(2, 3, &[5, 5, 5, 4]);
        b.build(3, 4)
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.dim_count(), 4);
        assert_eq!(t.scale(), 5);
        assert_eq!(t.reviewer_of(0), 0);
        assert_eq!(t.item_of(0), 3);
        let food = t.dim_by_name("food").unwrap();
        assert_eq!(t.score(0, food), 3);
        assert_eq!(t.dim_name(food), "food");
        assert_eq!(t.score_column(food), &[3, 4, 4, 5]);
    }

    #[test]
    fn adjacency_indexes() {
        let t = sample();
        assert_eq!(t.records_of_reviewer(1), &[1, 2]);
        assert_eq!(t.records_of_reviewer(0), &[0]);
        assert_eq!(t.records_of_item(3), &[0, 3]);
        assert_eq!(t.records_of_item(2), &[] as &[u32]);
    }

    #[test]
    fn dims_iterator() {
        let t = sample();
        let names: Vec<_> = t.dims().map(|d| t.dim_name(d).to_owned()).collect();
        assert_eq!(names, vec!["overall", "food", "service", "ambiance"]);
        assert!(t.dim_by_name("missing").is_none());
    }

    #[test]
    fn set_score_overwrites() {
        let dims = vec!["overall".to_owned()];
        let mut b = RatingTableBuilder::new(dims, 5);
        let rec = b.push(0, 0, &[5]);
        b.set_score(rec, DimId(0), 1);
        let t = b.build(1, 1);
        assert_eq!(t.score(rec, DimId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "outside scale")]
    fn out_of_scale_score_panics() {
        let mut b = RatingTableBuilder::new(vec!["overall".to_owned()], 5);
        b.push(0, 0, &[6]);
    }

    #[test]
    #[should_panic(expected = "outside scale")]
    fn zero_score_panics() {
        let mut b = RatingTableBuilder::new(vec!["overall".to_owned()], 5);
        b.push(0, 0, &[0]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut b = RatingTableBuilder::new(vec!["a".to_owned(), "b".to_owned()], 5);
        b.push(0, 0, &[3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_reviewer_panics() {
        let mut b = RatingTableBuilder::new(vec!["overall".to_owned()], 5);
        b.push(7, 0, &[3]);
        let _ = b.build(3, 4);
    }
}
