//! The unified storage-layer error type.
//!
//! Every fallible path of the store — CSV ingest, query parsing, the binary
//! snapshot reader, the rating WAL — reports failures as a [`StoreError`]:
//! a [`StoreErrorKind`] classifying what went wrong plus a human-readable
//! context string saying where. Keeping the payload a plain string (rather
//! than nesting source errors) makes the type `Clone + PartialEq`, which the
//! service layer needs for its own comparable error enums, and keeps
//! corruption reports uniform no matter which reader produced them.

use crate::csv::{CsvError, PersistError};
use crate::parse::ParseError;

/// Classification of a storage-layer failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreErrorKind {
    /// Filesystem failure (open, read, write, fsync, rename).
    Io,
    /// CSV text failed to parse.
    Csv,
    /// A query string failed to parse.
    Parse,
    /// A persisted file is structurally not what was expected: wrong magic,
    /// unsupported format version, malformed manifest.
    Format,
    /// A persisted file was recognized but its bytes are damaged: CRC
    /// mismatch, truncated section, out-of-range offsets, impossible
    /// lengths. Readers return this instead of loading silently-wrong data.
    Corrupt,
    /// Decoded data is internally inconsistent (dangling ids, non-monotone
    /// CSR offsets, scores outside the scale).
    Invalid,
}

impl StoreErrorKind {
    fn label(self) -> &'static str {
        match self {
            StoreErrorKind::Io => "io",
            StoreErrorKind::Csv => "csv",
            StoreErrorKind::Parse => "parse",
            StoreErrorKind::Format => "format",
            StoreErrorKind::Corrupt => "corrupt",
            StoreErrorKind::Invalid => "invalid",
        }
    }
}

/// A storage-layer error: what kind of failure, and where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// Failure classification.
    pub kind: StoreErrorKind,
    /// Human-readable context, e.g. `"snapshot section 3: crc mismatch"`.
    pub context: String,
}

impl StoreError {
    /// Creates an error of the given kind.
    pub fn new(kind: StoreErrorKind, context: impl Into<String>) -> Self {
        Self {
            kind,
            context: context.into(),
        }
    }

    /// Shorthand for a [`StoreErrorKind::Io`] error.
    pub fn io(context: impl Into<String>) -> Self {
        Self::new(StoreErrorKind::Io, context)
    }

    /// Shorthand for a [`StoreErrorKind::Format`] error.
    pub fn format(context: impl Into<String>) -> Self {
        Self::new(StoreErrorKind::Format, context)
    }

    /// Shorthand for a [`StoreErrorKind::Corrupt`] error.
    pub fn corrupt(context: impl Into<String>) -> Self {
        Self::new(StoreErrorKind::Corrupt, context)
    }

    /// Shorthand for a [`StoreErrorKind::Invalid`] error.
    pub fn invalid(context: impl Into<String>) -> Self {
        Self::new(StoreErrorKind::Invalid, context)
    }

    /// Wraps an [`std::io::Error`] with a location prefix.
    pub fn from_io(context: &str, e: std::io::Error) -> Self {
        Self::io(format!("{context}: {e}"))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} error: {}", self.kind.label(), self.context)
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::io(e.to_string())
    }
}

impl From<CsvError> for StoreError {
    fn from(e: CsvError) -> Self {
        StoreError::new(StoreErrorKind::Csv, e.to_string())
    }
}

impl From<ParseError> for StoreError {
    fn from(e: ParseError) -> Self {
        StoreError::new(StoreErrorKind::Parse, e.to_string())
    }
}

impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(io) => StoreError::io(io.to_string()),
            PersistError::Csv(c) => c.into(),
            PersistError::BadManifest => StoreError::format("missing or malformed manifest"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_context() {
        let e = StoreError::corrupt("section 2: crc mismatch");
        assert_eq!(e.to_string(), "corrupt error: section 2: crc mismatch");
        assert_eq!(e.kind, StoreErrorKind::Corrupt);
    }

    #[test]
    fn csv_errors_convert_with_line_context() {
        let e: StoreError = CsvError::ArityMismatch { line: 7 }.into();
        assert_eq!(e.kind, StoreErrorKind::Csv);
        assert!(e.context.contains("line 7"), "{}", e.context);
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StoreError = io.into();
        assert_eq!(e.kind, StoreErrorKind::Io);
        assert!(e.context.contains("nope"));
    }

    #[test]
    fn persist_errors_map_to_kinds() {
        let e: StoreError = PersistError::BadManifest.into();
        assert_eq!(e.kind, StoreErrorKind::Format);
        let e: StoreError = PersistError::Csv(CsvError::MissingHeader).into();
        assert_eq!(e.kind, StoreErrorKind::Csv);
    }

    #[test]
    fn errors_are_comparable_and_clonable() {
        let a = StoreError::invalid("x");
        let b = a.clone();
        assert_eq!(a, b);
    }
}
