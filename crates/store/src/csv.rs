//! CSV import/export of subjective databases.
//!
//! The paper's datasets ship as CSV-like dumps; this module round-trips a
//! [`SubjectiveDb`] through three files (reviewers, items, ratings) so
//! generated datasets can be inspected or exchanged. A minimal RFC-4180
//! writer/parser is implemented in-repo (quoting for commas, quotes and
//! newlines); multi-valued cells are joined with `|`.

use crate::database::SubjectiveDb;
use crate::ratings::RatingTableBuilder;
use crate::schema::{Entity, Schema};
use crate::table::{Cell, EntityTable, EntityTableBuilder};
use crate::value::Value;
use std::fmt::Write as _;

/// Quotes a field if needed (RFC 4180).
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Splits one CSV line into fields, honoring quotes.
///
/// Returns `None` on malformed quoting (unterminated quote).
fn split_line(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(cur);
    Some(fields)
}

fn render_value(v: &Value) -> String {
    v.to_string()
}

fn parse_value(s: &str) -> Value {
    // Integers round-trip as integers; everything else is categorical.
    match s.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Str(s.to_owned()),
    }
}

/// Serializes one entity table to CSV (header row = attribute names).
pub fn entity_to_csv(table: &EntityTable) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.schema().iter().map(|(_, d)| quote(&d.name)).collect();
    let _ = writeln!(out, "{}", header.join(","));
    for row in 0..table.len() as u32 {
        let fields: Vec<String> = table
            .schema()
            .attr_ids()
            .map(|attr| {
                let joined = table
                    .decoded_values(row, attr)
                    .iter()
                    .map(render_value)
                    .collect::<Vec<_>>()
                    .join("|");
                quote(&joined)
            })
            .collect();
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// Errors arising while parsing CSV input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A data row had a different number of fields than the header.
    ArityMismatch {
        /// 1-based line number.
        line: usize,
    },
    /// Unterminated quote or similar.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A ratings field failed to parse as the expected number.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A rating score was `0` or above the scale. Rejected at ingest so the
    /// accumulator's `score − 1` indexing can never underflow on malformed
    /// data.
    ScoreOutOfRange {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing CSV header"),
            CsvError::ArityMismatch { line } => write!(f, "line {line}: wrong field count"),
            CsvError::Malformed { line } => write!(f, "line {line}: malformed CSV"),
            CsvError::BadNumber { line } => write!(f, "line {line}: invalid number"),
            CsvError::ScoreOutOfRange { line } => {
                write!(f, "line {line}: rating score outside 1..=scale")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses an entity table from CSV. `multi_valued` names the attributes
/// whose cells should be split on `|`.
pub fn entity_from_csv(csv: &str, multi_valued: &[&str]) -> Result<EntityTable, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let names = split_line(header).ok_or(CsvError::Malformed { line: 1 })?;
    let mut schema = Schema::new();
    for name in &names {
        schema.add(name.clone(), multi_valued.contains(&name.as_str()));
    }
    let mut b = EntityTableBuilder::new(schema);
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let line_no = i + 1;
        let fields = split_line(line).ok_or(CsvError::Malformed { line: line_no })?;
        if fields.len() != names.len() {
            return Err(CsvError::ArityMismatch { line: line_no });
        }
        let cells: Vec<Cell> = fields
            .iter()
            .enumerate()
            .map(|(j, f)| {
                if multi_valued.contains(&names[j].as_str()) {
                    Cell::Many(
                        f.split('|')
                            .filter(|s| !s.is_empty())
                            .map(parse_value)
                            .collect(),
                    )
                } else {
                    Cell::One(parse_value(f))
                }
            })
            .collect();
        b.push_row(cells);
    }
    Ok(b.build())
}

/// Serializes the rating table to CSV
/// (`reviewer,item,<dim1>,<dim2>,…`).
pub fn ratings_to_csv(db: &SubjectiveDb) -> String {
    let r = db.ratings();
    let mut out = String::new();
    let mut header = vec!["reviewer".to_owned(), "item".to_owned()];
    header.extend(r.dim_names().iter().cloned());
    let _ = writeln!(out, "{}", header.join(","));
    for rec in 0..r.len() as u32 {
        let mut fields = vec![r.reviewer_of(rec).to_string(), r.item_of(rec).to_string()];
        for d in r.dims() {
            fields.push(r.score(rec, d).to_string());
        }
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// Parses a rating table CSV produced by [`ratings_to_csv`].
pub fn ratings_from_csv(
    csv: &str,
    scale: u8,
    reviewer_count: usize,
    item_count: usize,
) -> Result<crate::ratings::RatingTable, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let names = split_line(header).ok_or(CsvError::Malformed { line: 1 })?;
    if names.len() < 3 || names[0] != "reviewer" || names[1] != "item" {
        return Err(CsvError::MissingHeader);
    }
    let dims: Vec<String> = names[2..].to_vec();
    let mut b = RatingTableBuilder::new(dims, scale);
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let line_no = i + 1;
        let fields = split_line(line).ok_or(CsvError::Malformed { line: line_no })?;
        if fields.len() != names.len() {
            return Err(CsvError::ArityMismatch { line: line_no });
        }
        let reviewer: u32 = fields[0]
            .parse()
            .map_err(|_| CsvError::BadNumber { line: line_no })?;
        let item: u32 = fields[1]
            .parse()
            .map_err(|_| CsvError::BadNumber { line: line_no })?;
        let scores: Vec<u8> = fields[2..]
            .iter()
            .map(|f| {
                f.parse::<u8>()
                    .map_err(|_| CsvError::BadNumber { line: line_no })
            })
            .collect::<Result<_, _>>()?;
        if scores.iter().any(|&s| s == 0 || s > scale) {
            return Err(CsvError::ScoreOutOfRange { line: line_no });
        }
        b.push(reviewer, item, &scores);
    }
    Ok(b.build(reviewer_count, item_count))
}

/// Exports the full database as three CSV documents
/// (reviewers, items, ratings).
pub fn db_to_csv(db: &SubjectiveDb) -> (String, String, String) {
    (
        entity_to_csv(db.table(Entity::Reviewer)),
        entity_to_csv(db.table(Entity::Item)),
        ratings_to_csv(db),
    )
}

/// Errors from directory-level persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// One of the CSV files failed to parse.
    Csv(CsvError),
    /// The manifest is missing or malformed.
    BadManifest,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Csv(e) => write!(f, "csv error: {e}"),
            PersistError::BadManifest => write!(f, "missing or malformed manifest"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CsvError> for PersistError {
    fn from(e: CsvError) -> Self {
        PersistError::Csv(e)
    }
}

/// Saves a database as a directory: `reviewers.csv`, `items.csv`,
/// `ratings.csv`, plus a `manifest` recording the rating scale and which
/// attributes are multi-valued (needed to re-parse faithfully).
pub fn save_dir(db: &SubjectiveDb, dir: &std::path::Path) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir)?;
    let (u, i, r) = db_to_csv(db);
    std::fs::write(dir.join("reviewers.csv"), u)?;
    std::fs::write(dir.join("items.csv"), i)?;
    std::fs::write(dir.join("ratings.csv"), r)?;
    let mut manifest = format!("scale={}\n", db.ratings().scale());
    for (entity, file) in [(Entity::Reviewer, "reviewers"), (Entity::Item, "items")] {
        let multi: Vec<&str> = db
            .schema(entity)
            .iter()
            .filter(|(_, d)| d.multi_valued)
            .map(|(_, d)| d.name.as_str())
            .collect();
        manifest.push_str(&format!("multi_{}={}\n", file, multi.join("|")));
    }
    std::fs::write(dir.join("manifest"), manifest)?;
    Ok(())
}

/// Loads a database saved by [`save_dir`].
pub fn load_dir(dir: &std::path::Path) -> Result<SubjectiveDb, PersistError> {
    let manifest = std::fs::read_to_string(dir.join("manifest"))?;
    let mut scale: Option<u8> = None;
    let mut multi_reviewers: Vec<String> = Vec::new();
    let mut multi_items: Vec<String> = Vec::new();
    for line in manifest.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key {
            "scale" => scale = value.parse().ok(),
            "multi_reviewers" => {
                multi_reviewers = value
                    .split('|')
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "multi_items" => {
                multi_items = value
                    .split('|')
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            _ => {}
        }
    }
    let scale = scale.ok_or(PersistError::BadManifest)?;
    let mr: Vec<&str> = multi_reviewers.iter().map(String::as_str).collect();
    let mi: Vec<&str> = multi_items.iter().map(String::as_str).collect();
    let reviewers = entity_from_csv(&std::fs::read_to_string(dir.join("reviewers.csv"))?, &mr)?;
    let items = entity_from_csv(&std::fs::read_to_string(dir.join("items.csv"))?, &mi)?;
    let ratings = ratings_from_csv(
        &std::fs::read_to_string(dir.join("ratings.csv"))?,
        scale,
        reviewers.len(),
        items.len(),
    )?;
    Ok(SubjectiveDb::new(reviewers, items, ratings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::SelectionQuery;

    fn tiny_db() -> SubjectiveDb {
        let mut us = Schema::new();
        us.add("gender", false);
        let mut ub = EntityTableBuilder::new(us);
        ub.push_row(vec!["F".into()]);
        ub.push_row(vec!["M".into()]);

        let mut is = Schema::new();
        is.add("cuisine", true);
        is.add("city", false);
        let mut ib = EntityTableBuilder::new(is);
        ib.push_row(vec![
            Cell::Many(vec![Value::str("Pizza"), Value::str("Italian")]),
            "NYC, NY".into(), // embedded comma exercises quoting
        ]);

        let mut rb = RatingTableBuilder::new(vec!["overall".to_owned()], 5);
        rb.push(0, 0, &[4]);
        rb.push(1, 0, &[2]);
        SubjectiveDb::new(ub.build(), ib.build(), rb.build(2, 1))
    }

    #[test]
    fn entity_round_trip() {
        let db = tiny_db();
        let csv = entity_to_csv(db.items());
        let parsed = entity_from_csv(&csv, &["cuisine"]).unwrap();
        assert_eq!(parsed.len(), 1);
        let cuisine = parsed.schema().attr_by_name("cuisine").unwrap();
        let city = parsed.schema().attr_by_name("city").unwrap();
        assert_eq!(parsed.decoded_values(0, cuisine).len(), 2);
        assert_eq!(parsed.decoded_values(0, city), vec![Value::str("NYC, NY")]);
    }

    #[test]
    fn ratings_round_trip() {
        let db = tiny_db();
        let csv = ratings_to_csv(&db);
        let parsed = ratings_from_csv(&csv, 5, 2, 1).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.score(0, crate::ratings::DimId(0)), 4);
        assert_eq!(parsed.reviewer_of(1), 1);
    }

    #[test]
    fn full_db_round_trip_preserves_queries() {
        let db = tiny_db();
        let (u_csv, i_csv, r_csv) = db_to_csv(&db);
        let u = entity_from_csv(&u_csv, &[]).unwrap();
        let i = entity_from_csv(&i_csv, &["cuisine"]).unwrap();
        let r = ratings_from_csv(&r_csv, 5, u.len(), i.len()).unwrap();
        let db2 = SubjectiveDb::new(u, i, r);
        let q = SelectionQuery::from_preds(vec![db2
            .pred(Entity::Reviewer, "gender", &Value::str("F"))
            .unwrap()]);
        assert_eq!(db2.rating_group(&q, 0).len(), 1);
    }

    #[test]
    fn quoting_round_trips() {
        let fields = split_line("plain,\"with, comma\",\"with \"\"quote\"\"\"").unwrap();
        assert_eq!(fields, vec!["plain", "with, comma", "with \"quote\""]);
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("plain"), "plain");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(split_line("\"unterminated").is_none());
        assert_eq!(
            entity_from_csv("", &[]).unwrap_err(),
            CsvError::MissingHeader
        );
        let err = entity_from_csv("a,b\n1\n", &[]).unwrap_err();
        assert_eq!(err, CsvError::ArityMismatch { line: 2 });
        let err = ratings_from_csv("reviewer,item,overall\nx,0,3\n", 5, 1, 1).unwrap_err();
        assert_eq!(err, CsvError::BadNumber { line: 2 });
    }

    #[test]
    fn out_of_range_scores_are_rejected_at_ingest() {
        // A zero score would underflow the accumulator's `score − 1` index.
        let err = ratings_from_csv("reviewer,item,overall\n0,0,0\n", 5, 1, 1).unwrap_err();
        assert_eq!(err, CsvError::ScoreOutOfRange { line: 2 });
        // A score above the scale would index past the histogram row.
        let err = ratings_from_csv("reviewer,item,overall\n0,0,6\n", 5, 1, 1).unwrap_err();
        assert_eq!(err, CsvError::ScoreOutOfRange { line: 2 });
        // The line number points at the offending record, not the header.
        let err = ratings_from_csv("reviewer,item,overall\n0,0,5\n0,0,9\n", 5, 1, 1).unwrap_err();
        assert_eq!(err, CsvError::ScoreOutOfRange { line: 3 });
        // Boundary scores stay accepted.
        assert!(ratings_from_csv("reviewer,item,overall\n0,0,1\n0,0,5\n", 5, 1, 1).is_ok());
    }

    #[test]
    fn save_dir_load_dir_round_trip() {
        let db = tiny_db();
        let dir = std::env::temp_dir().join(format!("subdex-persist-{}", std::process::id()));
        save_dir(&db, &dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.stats(), db.stats());
        // Multi-valued attribute survived as multi-valued.
        let cuisine = loaded.items().schema().attr_by_name("cuisine").unwrap();
        assert!(loaded.items().schema().attr(cuisine).multi_valued);
        assert_eq!(loaded.items().values(0, cuisine).len(), 2);
        // Scale preserved.
        assert_eq!(loaded.ratings().scale(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_missing_manifest_errors() {
        let dir = std::env::temp_dir().join(format!("subdex-nope-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(load_dir(&dir), Err(PersistError::Io(_))));
        std::fs::write(dir.join("manifest"), "garbage\n").unwrap();
        assert!(matches!(load_dir(&dir), Err(PersistError::BadManifest)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn integer_values_round_trip_typed() {
        let mut s = Schema::new();
        s.add("year", false);
        let mut b = EntityTableBuilder::new(s);
        b.push_row(vec![Cell::One(Value::int(1995))]);
        let t = b.build();
        let csv = entity_to_csv(&t);
        let parsed = entity_from_csv(&csv, &[]).unwrap();
        let year = parsed.schema().attr_by_name("year").unwrap();
        assert_eq!(parsed.decoded_values(0, year), vec![Value::int(1995)]);
    }
}
