//! A fixed-capacity bitset over row ids.
//!
//! Selection queries are conjunctions of attribute–value predicates; each
//! predicate's posting list is intersected into a bitset, and rating-group
//! materialization probes the reviewer-side and item-side bitsets per
//! record. Words are `u64`, operations are branch-light.

use subdex_stats::kernels;

/// A fixed-size set of `u32` row ids backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold ids `0..capacity`.
    pub fn empty(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a bitset with all ids `0..capacity` set.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self {
            words: vec![!0u64; capacity.div_ceil(64)],
            capacity,
        };
        s.trim_tail();
        s
    }

    /// Builds a bitset from a list of ids.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn from_ids(capacity: usize, ids: &[u32]) -> Self {
        let mut s = Self::empty(capacity);
        for &id in ids {
            s.insert(id);
        }
        s
    }

    /// Wraps pre-built words covering ids `0..capacity` (the
    /// compressed-index handoff: container intersections produce word
    /// buffers directly). Short buffers are zero-extended; tail bits past
    /// `capacity` are cleared.
    ///
    /// # Panics
    /// Panics if `words` has more than `⌈capacity/64⌉` words.
    pub fn from_words(mut words: Vec<u64>, capacity: usize) -> Self {
        let need = capacity.div_ceil(64);
        assert!(words.len() <= need, "word buffer exceeds capacity");
        words.resize(need, 0);
        let mut s = Self { words, capacity };
        s.trim_tail();
        s
    }

    /// The backing words (ascending id order, 64 ids per word) — the
    /// shape the set kernels consume.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Clears bits beyond `capacity` in the last word.
    fn trim_tail(&mut self) {
        let rem = self.capacity % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Capacity (one past the largest representable id).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an id.
    ///
    /// # Panics
    /// Panics if `id >= capacity`.
    #[inline]
    pub fn insert(&mut self, id: u32) {
        let i = id as usize;
        assert!(
            i < self.capacity,
            "id {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes an id (no-op if absent).
    #[inline]
    pub fn remove(&mut self, id: u32) {
        let i = id as usize;
        if i < self.capacity {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test. Out-of-range ids are reported absent.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let i = id as usize;
        i < self.capacity && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with another bitset of the same capacity.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        kernels::and_words(kernels::active(), &mut self.words, &other.words);
    }

    /// In-place intersection with a *sorted or unsorted* posting list:
    /// retains only ids present in `ids`. Scatters the list into a
    /// word buffer, then intersects word-wise through the set kernels
    /// (the pre-kernel version allocated a whole `BitSet` per call —
    /// `kernel_path` benches the before/after).
    pub fn intersect_with_ids(&mut self, ids: &[u32]) {
        let mut other = vec![0u64; self.words.len()];
        for &id in ids {
            if (id as usize) < self.capacity {
                other[id as usize / 64] |= 1u64 << (id % 64);
            }
        }
        kernels::and_words(kernels::active(), &mut self.words, &other);
    }

    /// In-place union.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some((wi * 64) as u32 + bit)
            })
        })
    }

    /// Collects set ids into a vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::empty(100);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        let f = BitSet::full(100);
        assert_eq!(f.len(), 100);
        assert!(f.contains(0) && f.contains(99) && !f.contains(100));
    }

    #[test]
    fn full_trims_tail_bits() {
        let f = BitSet::full(65);
        assert_eq!(f.len(), 65);
        assert!(!f.contains(65));
        assert!(!f.contains(127));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::empty(70);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(69);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        s.remove(63); // idempotent
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::empty(10);
        s.insert(10);
    }

    #[test]
    fn intersect_and_union() {
        let mut a = BitSet::from_ids(128, &[1, 5, 64, 100]);
        let b = BitSet::from_ids(128, &[5, 64, 101]);
        a.intersect_with(&b);
        assert_eq!(a.to_vec(), vec![5, 64]);
        let mut u = BitSet::from_ids(128, &[1]);
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 5, 64, 101]);
    }

    #[test]
    fn intersect_with_ids_list() {
        let mut a = BitSet::full(10);
        a.intersect_with_ids(&[2, 7, 9, 9]);
        assert_eq!(a.to_vec(), vec![2, 7, 9]);
    }

    #[test]
    fn iter_ascending() {
        let s = BitSet::from_ids(200, &[150, 3, 64, 63]);
        assert_eq!(s.to_vec(), vec![3, 63, 64, 150]);
    }

    #[test]
    fn from_words_extends_and_trims() {
        let s = BitSet::from_words(vec![!0u64], 70);
        assert_eq!(s.len(), 64);
        assert_eq!(s.capacity(), 70);
        assert!(!s.contains(64));
        let t = BitSet::from_words(vec![!0u64], 10);
        assert_eq!(t.to_vec(), (0..10).collect::<Vec<_>>());
        assert_eq!(t, BitSet::full(10));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn intersect_capacity_mismatch_panics() {
        let mut a = BitSet::empty(10);
        let b = BitSet::empty(20);
        a.intersect_with(&b);
    }
}
